/**
 * @file
 * mwasm — assembler / disassembler / runner for MW32 programs.
 *
 *   mwasm asm  prog.s            assemble, print words + symbols
 *   mwasm dis  prog.s            assemble, then disassemble
 *   mwasm run  prog.s [options]  execute on the functional CPU
 *
 * run options:
 *   --max N        instruction budget (default 10M)
 *   --trace F      capture the reference stream to F (MWTR format)
 *   --pim          also time the run on the integrated device
 *   --regs         dump registers at exit
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/memwall.hh"
#include "exec/fast_executor.hh"

using namespace memwall;

namespace {

std::string
slurp(const char *path)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "mwasm: cannot open '%s'\n", path);
        std::exit(1);
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

AssembledProgram
assembleFile(const char *path)
{
    const AssembledProgram prog = assemble(slurp(path), path);
    if (!prog.ok()) {
        for (const auto &e : prog.errors)
            std::fprintf(stderr, "%s\n", e.format(path).c_str());
        std::exit(1);
    }
    return prog;
}

int
cmdAsm(const char *path)
{
    const AssembledProgram prog = assembleFile(path);
    std::printf("; %zu words, entry 0x%llx\n", prog.words.size(),
                static_cast<unsigned long long>(prog.entry));
    for (const auto &[addr, word] : prog.words)
        std::printf("%08llx: %08x\n",
                    static_cast<unsigned long long>(addr), word);
    std::printf("\n; symbols\n");
    for (const auto &[name, value] : prog.symbols)
        std::printf("%-24s 0x%llx\n", name.c_str(),
                    static_cast<unsigned long long>(value));
    return 0;
}

int
cmdDis(const char *path)
{
    const AssembledProgram prog = assembleFile(path);
    for (const auto &[addr, word] : prog.words) {
        bool ok = true;
        const Instruction inst = Instruction::decode(word, &ok);
        std::printf("%08llx: %08x  %s\n",
                    static_cast<unsigned long long>(addr), word,
                    ok ? inst.disassemble().c_str()
                       : ".word (data)");
    }
    return 0;
}

int
cmdRun(int argc, char **argv)
{
    const char *path = nullptr;
    const char *trace_path = nullptr;
    std::uint64_t max_instr = 10'000'000;
    bool pim = false, regs = false;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--max") == 0 && i + 1 < argc)
            max_instr = std::strtoull(argv[++i], nullptr, 0);
        else if (std::strcmp(argv[i], "--trace") == 0 &&
                 i + 1 < argc)
            trace_path = argv[++i];
        else if (std::strcmp(argv[i], "--pim") == 0)
            pim = true;
        else if (std::strcmp(argv[i], "--regs") == 0)
            regs = true;
        else if (!path)
            path = argv[i];
    }
    if (!path) {
        std::fprintf(stderr, "mwasm run: missing input file\n");
        return 2;
    }

    const AssembledProgram prog = assembleFile(path);
    BackingStore mem;
    prog.loadInto(mem);
    // Fast path by default; MEMWALL_FASTPATH=0 selects the plain
    // interpreter (identical results, for differential debugging).
    FastExecutor cpu(mem, prog);
    cpu.setPc(prog.entry);

    TraceBuffer trace;
    PimDevice device;
    PipelineSim pipeline(device, PipelineConfig{});

    RefSink sink = [&](const MemRef &ref) {
        if (trace_path)
            trace.record(ref);
        if (pim)
            pipeline.consume(ref);
    };
    const bool need_sink = trace_path || pim;
    const StopReason stop =
        cpu.run(max_instr, need_sink ? &sink : nullptr);
    pipeline.drain();

    const char *why = stop == StopReason::Halted ? "halt"
        : stop == StopReason::InstrLimit         ? "instruction limit"
        : stop == StopReason::AlignmentFault     ? "alignment fault"
        : stop == StopReason::DivideByZero       ? "divide by zero"
                                                 : "bad instruction";
    std::printf("stopped: %s after %llu instructions "
                "(%llu loads, %llu stores, %llu branches)\n",
                why,
                static_cast<unsigned long long>(
                    cpu.stats().instructions),
                static_cast<unsigned long long>(cpu.stats().loads),
                static_cast<unsigned long long>(cpu.stats().stores),
                static_cast<unsigned long long>(
                    cpu.stats().branches));

    if (pim) {
        std::printf("integrated device: %.3f CPI, %.1f us at "
                    "200 MHz\n",
                    pipeline.cpi(),
                    device.config().clock.cyclesToNs(
                        pipeline.cycles()) /
                        1000.0);
        const PimDeviceStats stats = device.stats();
        std::printf("  icache %.3f%% miss, dcache %.3f%% miss, "
                    "%llu DRAM accesses\n",
                    100.0 * stats.icache.missRate(),
                    100.0 * stats.dcache.missRate(),
                    static_cast<unsigned long long>(
                        stats.dram_accesses));
    }
    if (trace_path) {
        if (!trace.save(trace_path)) {
            std::fprintf(stderr, "mwasm: cannot write '%s'\n",
                         trace_path);
            return 1;
        }
        std::printf("trace: %zu references -> %s\n", trace.size(),
                    trace_path);
    }
    if (regs) {
        for (unsigned r = 0; r < 32; ++r)
            std::printf("r%-2u = 0x%08x%s", r,
                        cpu.state().reg(r),
                        (r % 4 == 3) ? "\n" : "   ");
    }
    return (stop == StopReason::BadInstruction ||
            stop == StopReason::AlignmentFault ||
            stop == StopReason::DivideByZero)
               ? 1
               : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: mwasm asm|dis|run prog.s [options]\n");
        return 2;
    }
    if (std::strcmp(argv[1], "asm") == 0)
        return cmdAsm(argv[2]);
    if (std::strcmp(argv[1], "dis") == 0)
        return cmdDis(argv[2]);
    if (std::strcmp(argv[1], "run") == 0)
        return cmdRun(argc - 2, argv + 2);
    std::fprintf(stderr, "mwasm: unknown command '%s'\n", argv[1]);
    return 2;
}
