/**
 * @file
 * mwmp — run a SPLASH kernel on a configurable machine from the
 * command line.
 *
 *   mwmp KERNEL [--cpus N] [--arch ARCH] [--scale S] [--no-victim]
 *        [--contention]
 *
 *   KERNEL: lu | mp3d | ocean | water | pthor
 *   ARCH  : integrated (default) | reference | scoma
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/memwall.hh"

using namespace memwall;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: mwmp KERNEL [--cpus N] [--arch "
                     "integrated|reference|scoma] [--scale S] "
                     "[--no-victim] [--contention]\n");
        return 2;
    }
    const std::string kernel = argv[1];
    SplashParams params;
    params.nprocs = 4;
    params.scale = 0.2;
    params.machine.arch = NodeArch::Integrated;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cpus") == 0 && i + 1 < argc) {
            params.nprocs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--scale") == 0 &&
                   i + 1 < argc) {
            params.scale = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--arch") == 0 &&
                   i + 1 < argc) {
            const std::string arch = argv[++i];
            if (arch == "integrated")
                params.machine.arch = NodeArch::Integrated;
            else if (arch == "reference")
                params.machine.arch = NodeArch::ReferenceCcNuma;
            else if (arch == "scoma")
                params.machine.arch = NodeArch::SimpleComa;
            else {
                std::fprintf(stderr, "mwmp: unknown arch '%s'\n",
                             arch.c_str());
                return 2;
            }
        } else if (std::strcmp(argv[i], "--no-victim") == 0) {
            params.machine.victim_cache = false;
        } else if (std::strcmp(argv[i], "--contention") == 0) {
            params.machine.model_fabric_contention = true;
        } else {
            std::fprintf(stderr, "mwmp: unknown option '%s'\n",
                         argv[i]);
            return 2;
        }
    }
    params.machine.nodes = params.nprocs;

    const SplashResult res = runSplash(kernel, params);
    std::printf("%s on %u cpus (scale %.2f):\n", kernel.c_str(),
                params.nprocs, params.scale);
    std::printf("  makespan      : %llu cycles (%.2f ms at "
                "200 MHz)\n",
                static_cast<unsigned long long>(res.makespan),
                res.makespan / 200e3);
    std::printf("  accesses      : %llu\n",
                static_cast<unsigned long long>(res.accesses));
    std::printf("  remote loads  : %llu\n",
                static_cast<unsigned long long>(res.remote_loads));
    std::printf("  invalidations : %llu\n",
                static_cast<unsigned long long>(
                    res.invalidations));
    std::printf("  checksum      : %.6g\n", res.checksum);
    return 0;
}
