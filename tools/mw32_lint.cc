/**
 * @file
 * mw32-lint — static analysis of MW32 assembly programs.
 *
 *   mw32-lint [options] prog.mw32s [more.mw32s ...]
 *
 * options:
 *   --error-on=ID[,ID...]  promote diagnostics to errors ("all")
 *   --cfg                  dump basic blocks, edges and loops
 *   --charact              dump the static workload characterization
 *   --ranges               dump abstract value ranges (loop IVs and
 *                          memory effective addresses)
 *   --format=json          machine-readable diagnostics + ranges
 *   -q                     suppress the per-file summary line
 *
 * Exit status: 2 on assembly failure or bad usage, 1 if any
 * diagnostic of Severity::Error was emitted, else 0.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/absint.hh"
#include "analysis/charact.hh"
#include "analysis/lint.hh"
#include "isa/assembler.hh"

using namespace memwall;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: mw32-lint [--error-on=ID[,ID...]] [--cfg] "
        "[--charact] [--ranges] [--format=json] [-q] "
        "prog.mw32s ...\n       IDs:");
    for (const std::string &id : lintIds())
        std::fprintf(stderr, " %s", id.c_str());
    std::fprintf(stderr, " all\n");
    return 2;
}

void
dumpCfg(const Program &prog, const Cfg &cfg)
{
    std::printf("; %zu blocks, %zu loops%s\n", cfg.size(),
                cfg.loops().size(),
                cfg.irreducible() ? ", irreducible" : "");
    for (const BasicBlock &bb : cfg.blocks()) {
        std::printf("; bb%u [0x%llx..0x%llx] lines %u..%u ->", bb.id,
                    static_cast<unsigned long long>(
                        prog.instr(bb.first).addr),
                    static_cast<unsigned long long>(
                        prog.instr(bb.last).addr),
                    prog.line(bb.first), prog.line(bb.last));
        for (unsigned s : bb.succs)
            std::printf(" bb%u", s);
        if (bb.is_exit)
            std::printf(" exit");
        if (bb.has_unknown_succ)
            std::printf(" ?");
        if (!cfg.reachable()[bb.id])
            std::printf(" (unreachable)");
        std::printf("\n");
    }
    for (const Loop &l : cfg.loops())
        std::printf("; loop header bb%u depth %u (%zu blocks)\n",
                    l.header, l.depth, l.blocks.size());
}

void
dumpCharact(const StaticCharacterization &chr)
{
    std::printf("; mix: %.1f alu, %.1f load, %.1f store, %.1f "
                "branch, %.1f jump, %.1f other (%s)\n",
                chr.counts.alu, chr.counts.load, chr.counts.store,
                chr.counts.branch, chr.counts.jump, chr.counts.other,
                chr.counts_exact ? "exact" : "approximate");
    for (const LoopChar &l : chr.loops) {
        if (l.trip)
            std::printf("; loop line %u depth %u trip %llu (%llu "
                        "static instrs)\n",
                        l.header_line, l.depth,
                        static_cast<unsigned long long>(l.trip),
                        static_cast<unsigned long long>(
                            l.body_instrs));
        else
            std::printf("; loop line %u depth %u trip unknown\n",
                        l.header_line, l.depth);
    }
    for (const MemOpChar &m : chr.memops) {
        const char *kind =
            m.kind == MemOpChar::Kind::Constant   ? "constant"
            : m.kind == MemOpChar::Kind::Strided  ? "strided"
                                                  : "unknown";
        std::printf("; %s line %u: %s", m.is_store ? "store" : "load",
                    m.line, kind);
        if (m.kind == MemOpChar::Kind::Strided)
            std::printf(" stride %lld",
                        static_cast<long long>(m.stride));
        if (m.region_known)
            std::printf(" region [0x%llx, 0x%llx)",
                        static_cast<unsigned long long>(
                            m.region_begin),
                        static_cast<unsigned long long>(
                            m.region_end));
        std::printf("\n");
    }
    std::printf("; footprint: %llu bytes%s\n",
                static_cast<unsigned long long>(chr.footprint_bytes),
                chr.footprint_known ? "" : " (incomplete)");
}

void
dumpRanges(const Program &prog, const StaticCharacterization &chr,
           const AbsInt &ai)
{
    if (ai.topMode()) {
        std::printf("; ranges: top (unbounded control flow)\n");
        return;
    }
    for (const LoopChar &l : chr.loops) {
        if (!l.trip_sound)
            continue;
        for (const LoopIv &iv : l.ivs)
            std::printf("; ranges: loop line %u r%u = %lld + "
                        "k*%lld, k <= %llu\n",
                        l.header_line, iv.reg,
                        static_cast<long long>(iv.init),
                        static_cast<long long>(iv.step),
                        static_cast<unsigned long long>(l.trip));
    }
    for (const MemOpChar &m : chr.memops)
        std::printf("; ranges: %s line %u ea %s\n",
                    m.is_store ? "store" : "load", m.line,
                    ai.addressRange(m.instr).str().c_str());
    if (chr.footprint_bounded)
        std::printf("; ranges: footprint <= %llu bytes\n",
                    static_cast<unsigned long long>(
                        chr.footprint_bound_bytes));
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

void
printJson(const std::string &file,
          const std::vector<Diagnostic> &diags,
          const StaticCharacterization &chr, const AbsInt &ai,
          bool last)
{
    std::printf("  {\n    \"file\": \"%s\",\n",
                jsonEscape(file).c_str());
    std::printf("    \"top_mode\": %s,\n",
                ai.topMode() ? "true" : "false");
    std::printf("    \"diagnostics\": [");
    for (std::size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic &d = diags[i];
        std::printf(
            "%s\n      {\"id\": \"%s\", \"severity\": \"%s\", "
            "\"line\": %u, \"addr\": %llu, \"message\": \"%s\"}",
            i ? "," : "", jsonEscape(d.id).c_str(),
            d.severity == Severity::Error ? "error" : "warning",
            d.line, static_cast<unsigned long long>(d.addr),
            jsonEscape(d.message).c_str());
    }
    std::printf("%s],\n", diags.empty() ? "" : "\n    ");
    std::printf("    \"loops\": [");
    bool first = true;
    for (const LoopChar &l : chr.loops) {
        std::printf("%s\n      {\"line\": %u, \"depth\": %u, "
                    "\"trip\": %llu, \"trip_sound\": %s, "
                    "\"ivs\": [",
                    first ? "" : ",", l.header_line, l.depth,
                    static_cast<unsigned long long>(l.trip),
                    l.trip_sound ? "true" : "false");
        for (std::size_t i = 0; i < l.ivs.size(); ++i)
            std::printf("%s{\"reg\": %u, \"init\": %lld, "
                        "\"step\": %lld}",
                        i ? ", " : "", l.ivs[i].reg,
                        static_cast<long long>(l.ivs[i].init),
                        static_cast<long long>(l.ivs[i].step));
        std::printf("]}");
        first = false;
    }
    std::printf("%s],\n", first ? "" : "\n    ");
    std::printf("    \"memops\": [");
    first = true;
    for (const MemOpChar &m : chr.memops) {
        std::printf("%s\n      {\"line\": %u, \"store\": %s, "
                    "\"size\": %u, \"ea\": \"%s\"",
                    first ? "" : ",", m.line,
                    m.is_store ? "true" : "false", m.size,
                    jsonEscape(ai.addressRange(m.instr).str())
                        .c_str());
        if (m.range_known)
            std::printf(", \"range\": [%llu, %llu]",
                        static_cast<unsigned long long>(
                            m.range_begin),
                        static_cast<unsigned long long>(
                            m.range_end));
        std::printf("}");
        first = false;
    }
    std::printf("%s],\n", first ? "" : "\n    ");
    std::printf("    \"footprint_bounded\": %s,\n",
                chr.footprint_bounded ? "true" : "false");
    std::printf("    \"footprint_bound_bytes\": %llu\n",
                static_cast<unsigned long long>(
                    chr.footprint_bound_bytes));
    std::printf("  }%s\n", last ? "" : ",");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string error_on;
    bool show_cfg = false, show_charact = false, quiet = false;
    bool show_ranges = false, json = false;
    int nerrors = 0;
    std::vector<const char *> files;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--error-on=", 11) == 0) {
            if (!error_on.empty())
                error_on += ",";
            error_on += arg + 11;
            continue;
        }
        if (std::strcmp(arg, "--cfg") == 0) {
            show_cfg = true;
            continue;
        }
        if (std::strcmp(arg, "--charact") == 0) {
            show_charact = true;
            continue;
        }
        if (std::strcmp(arg, "--ranges") == 0) {
            show_ranges = true;
            continue;
        }
        if (std::strcmp(arg, "--format=json") == 0) {
            json = true;
            continue;
        }
        if (std::strcmp(arg, "--format=text") == 0) {
            json = false;
            continue;
        }
        if (std::strcmp(arg, "-q") == 0) {
            quiet = true;
            continue;
        }
        if (arg[0] == '-')
            return usage();
        files.push_back(arg);
    }
    if (files.empty())
        return usage();

    if (json)
        std::printf("[\n");
    for (std::size_t fi = 0; fi < files.size(); ++fi) {
        const char *arg = files[fi];
        std::ifstream is(arg);
        if (!is) {
            std::fprintf(stderr, "mw32-lint: cannot open '%s'\n",
                         arg);
            return 2;
        }
        std::ostringstream ss;
        ss << is.rdbuf();

        AssembledProgram asmprog = assemble(ss.str(), arg);
        if (!asmprog.ok()) {
            for (const auto &e : asmprog.errors)
                std::fprintf(stderr, "%s\n",
                             e.format(arg).c_str());
            return 2;
        }

        Program prog = Program::build(asmprog);
        Cfg cfg = Cfg::build(prog);
        Dataflow df = Dataflow::build(prog, cfg);
        StaticCharacterization chr = characterize(prog, cfg, df);
        AbsInt ai = AbsInt::build(prog, cfg, df, chr);
        annotateRanges(prog, chr, ai);

        auto diags = lint(prog, cfg, df, chr, ai);
        if (!promoteErrors(diags, error_on)) {
            std::fprintf(stderr,
                         "mw32-lint: unknown ID in --error-on=%s\n",
                         error_on.c_str());
            return usage();
        }

        int ferr = 0, fwarn = 0;
        for (const Diagnostic &d : diags)
            if (d.severity == Severity::Error)
                ++ferr;
            else
                ++fwarn;
        nerrors += ferr;

        if (json) {
            printJson(arg, diags, chr, ai,
                      fi + 1 == files.size());
            continue;
        }
        if (show_cfg)
            dumpCfg(prog, cfg);
        if (show_charact)
            dumpCharact(chr);
        if (show_ranges)
            dumpRanges(prog, chr, ai);
        for (const Diagnostic &d : diags)
            std::printf("%s\n", d.format(arg).c_str());
        if (!quiet)
            std::printf("%s: %d error(s), %d warning(s)\n", arg,
                        ferr, fwarn);
    }
    if (json)
        std::printf("]\n");
    return nerrors != 0 ? 1 : 0;
}
