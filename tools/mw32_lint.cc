/**
 * @file
 * mw32-lint — static analysis of MW32 assembly programs.
 *
 *   mw32-lint [options] prog.mw32s [more.mw32s ...]
 *
 * options:
 *   --error-on=ID[,ID...]  promote diagnostics to errors ("all")
 *   --cfg                  dump basic blocks, edges and loops
 *   --charact              dump the static workload characterization
 *   -q                     suppress the per-file summary line
 *
 * Exit status: 2 on assembly failure or bad usage, 1 if any
 * diagnostic of Severity::Error was emitted, else 0.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/charact.hh"
#include "analysis/lint.hh"
#include "isa/assembler.hh"

using namespace memwall;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: mw32-lint [--error-on=ID[,ID...]] [--cfg] "
        "[--charact] [-q] prog.mw32s ...\n       IDs:");
    for (const std::string &id : lintIds())
        std::fprintf(stderr, " %s", id.c_str());
    std::fprintf(stderr, " all\n");
    return 2;
}

void
dumpCfg(const Program &prog, const Cfg &cfg)
{
    std::printf("; %zu blocks, %zu loops%s\n", cfg.size(),
                cfg.loops().size(),
                cfg.irreducible() ? ", irreducible" : "");
    for (const BasicBlock &bb : cfg.blocks()) {
        std::printf("; bb%u [0x%llx..0x%llx] lines %u..%u ->", bb.id,
                    static_cast<unsigned long long>(
                        prog.instr(bb.first).addr),
                    static_cast<unsigned long long>(
                        prog.instr(bb.last).addr),
                    prog.line(bb.first), prog.line(bb.last));
        for (unsigned s : bb.succs)
            std::printf(" bb%u", s);
        if (bb.is_exit)
            std::printf(" exit");
        if (bb.has_unknown_succ)
            std::printf(" ?");
        if (!cfg.reachable()[bb.id])
            std::printf(" (unreachable)");
        std::printf("\n");
    }
    for (const Loop &l : cfg.loops())
        std::printf("; loop header bb%u depth %u (%zu blocks)\n",
                    l.header, l.depth, l.blocks.size());
}

void
dumpCharact(const StaticCharacterization &chr)
{
    std::printf("; mix: %.1f alu, %.1f load, %.1f store, %.1f "
                "branch, %.1f jump, %.1f other (%s)\n",
                chr.counts.alu, chr.counts.load, chr.counts.store,
                chr.counts.branch, chr.counts.jump, chr.counts.other,
                chr.counts_exact ? "exact" : "approximate");
    for (const LoopChar &l : chr.loops) {
        if (l.trip)
            std::printf("; loop line %u depth %u trip %llu (%llu "
                        "static instrs)\n",
                        l.header_line, l.depth,
                        static_cast<unsigned long long>(l.trip),
                        static_cast<unsigned long long>(
                            l.body_instrs));
        else
            std::printf("; loop line %u depth %u trip unknown\n",
                        l.header_line, l.depth);
    }
    for (const MemOpChar &m : chr.memops) {
        const char *kind =
            m.kind == MemOpChar::Kind::Constant   ? "constant"
            : m.kind == MemOpChar::Kind::Strided  ? "strided"
                                                  : "unknown";
        std::printf("; %s line %u: %s", m.is_store ? "store" : "load",
                    m.line, kind);
        if (m.kind == MemOpChar::Kind::Strided)
            std::printf(" stride %lld",
                        static_cast<long long>(m.stride));
        if (m.region_known)
            std::printf(" region [0x%llx, 0x%llx)",
                        static_cast<unsigned long long>(
                            m.region_begin),
                        static_cast<unsigned long long>(
                            m.region_end));
        std::printf("\n");
    }
    std::printf("; footprint: %llu bytes%s\n",
                static_cast<unsigned long long>(chr.footprint_bytes),
                chr.footprint_known ? "" : " (incomplete)");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string error_on;
    bool show_cfg = false, show_charact = false, quiet = false;
    int nerrors = 0, nwarnings = 0;
    bool any_file = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--error-on=", 11) == 0) {
            if (!error_on.empty())
                error_on += ",";
            error_on += arg + 11;
            continue;
        }
        if (std::strcmp(arg, "--cfg") == 0) {
            show_cfg = true;
            continue;
        }
        if (std::strcmp(arg, "--charact") == 0) {
            show_charact = true;
            continue;
        }
        if (std::strcmp(arg, "-q") == 0) {
            quiet = true;
            continue;
        }
        if (arg[0] == '-')
            return usage();

        any_file = true;
        std::ifstream is(arg);
        if (!is) {
            std::fprintf(stderr, "mw32-lint: cannot open '%s'\n",
                         arg);
            return 2;
        }
        std::ostringstream ss;
        ss << is.rdbuf();

        AssembledProgram asmprog = assemble(ss.str(), arg);
        if (!asmprog.ok()) {
            for (const auto &e : asmprog.errors)
                std::fprintf(stderr, "%s\n",
                             e.format(arg).c_str());
            return 2;
        }

        Program prog = Program::build(asmprog);
        Cfg cfg = Cfg::build(prog);
        Dataflow df = Dataflow::build(prog, cfg);
        StaticCharacterization chr = characterize(prog, cfg, df);

        if (show_cfg)
            dumpCfg(prog, cfg);
        if (show_charact)
            dumpCharact(chr);

        auto diags = lint(prog, cfg, df, chr);
        if (!promoteErrors(diags, error_on)) {
            std::fprintf(stderr,
                         "mw32-lint: unknown ID in --error-on=%s\n",
                         error_on.c_str());
            return usage();
        }

        int ferr = 0, fwarn = 0;
        for (const Diagnostic &d : diags) {
            std::printf("%s\n", d.format(arg).c_str());
            if (d.severity == Severity::Error)
                ++ferr;
            else
                ++fwarn;
        }
        nerrors += ferr;
        nwarnings += fwarn;
        if (!quiet)
            std::printf("%s: %d error(s), %d warning(s)\n", arg,
                        ferr, fwarn);
    }

    if (!any_file)
        return usage();
    return nerrors != 0 ? 1 : 0;
}
