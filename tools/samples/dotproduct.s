; Dot product of two 256-element vectors, MW32 sample program.
; Run:  mwasm run tools/samples/dotproduct.s --pim --regs
    .equ N, 256
    .org 0x1000
start:
    li   r10, 0x100000      ; vector a
    li   r11, 0x108000      ; vector b (32 KiB away: same cache set)
    addi r1, r0, 0          ; i
    addi r5, r0, N
init:
    addi r2, r1, 1
    sw   r2, 0(r10)
    addi r3, r1, 2
    sw   r3, 0(r11)
    addi r10, r10, 4
    addi r11, r11, 4
    addi r1, r1, 1
    bne  r1, r5, init

    li   r10, 0x100000
    li   r11, 0x108000
    addi r1, r0, 0
    addi r4, r0, 0          ; accumulator
loop:
    lw   r2, 0(r10)
    lw   r3, 0(r11)
    mul  r6, r2, r3
    add  r4, r4, r6
    addi r10, r10, 4
    addi r11, r11, 4
    addi r1, r1, 1
    bne  r1, r5, loop
    halt                    ; result in r4
