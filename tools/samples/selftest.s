; Device self-test (paper Section 3).
;
; "Since an integrated processing element is a complete system, it
;  greatly reduces these tester requirements. All that is required is
;  to download a self-test program." This is that program: it marches
; patterns over a memory window, exercises every ALU class, runs the
; load/store widths, and thrashes the column-buffer sets so the
; sixteen banks all see traffic. On success r20 = 0x600D; each failed
; phase sets a bit in r21.
;
; Run: mwasm run tools/samples/selftest.s --pim --regs
    .equ WINDOW, 0x100000
    .equ WORDS, 2048          ; 8 KiB test window
    .org 0x1000
start:
    addi r21, r0, 0           ; failure bitmap

; ---- phase 1: march 0x00000000 / 0xffffffff --------------------------
    li   r10, WINDOW
    li   r5, WORDS
    addi r1, r0, 0
    addi r2, r0, -1           ; 0xffffffff
m1w:
    sw   r2, 0(r10)
    addi r10, r10, 4
    addi r1, r1, 1
    bne  r1, r5, m1w
    li   r10, WINDOW
    addi r1, r0, 0
m1r:
    lw   r3, 0(r10)
    beq  r3, r2, m1ok
    ori  r21, r21, 1
m1ok:
    sw   r0, 0(r10)           ; march down to zeros
    lw   r3, 0(r10)
    beq  r3, r0, m1ok2
    ori  r21, r21, 1
m1ok2:
    addi r10, r10, 4
    addi r1, r1, 1
    bne  r1, r5, m1r

; ---- phase 2: address-in-data (detects aliased banks/columns) --------
    li   r10, WINDOW
    addi r1, r0, 0
a1w:
    sw   r10, 0(r10)
    addi r10, r10, 4
    addi r1, r1, 1
    bne  r1, r5, a1w
    li   r10, WINDOW
    addi r1, r0, 0
a1r:
    lw   r3, 0(r10)
    beq  r3, r10, a1ok
    ori  r21, r21, 2
a1ok:
    addi r10, r10, 4
    addi r1, r1, 1
    bne  r1, r5, a1r

; ---- phase 3: ALU classes --------------------------------------------
    addi r1, r0, 1000
    addi r2, r0, 37
    mul  r3, r1, r2           ; 37000
    li   r4, 37000
    beq  r3, r4, alu1
    ori  r21, r21, 4
alu1:
    div  r3, r3, r2           ; back to 1000
    beq  r3, r1, alu2
    ori  r21, r21, 4
alu2:
    xor  r3, r1, r1           ; 0
    beq  r3, r0, alu3
    ori  r21, r21, 4
alu3:
    addi r3, r0, 1
    sll  r3, r3, r2           ; 1 << (37 & 31) = 32
    addi r4, r0, 32
    beq  r3, r4, alu4
    ori  r21, r21, 4
alu4:
    addi r3, r0, -16
    srai r3, r3, 2            ; -4
    addi r4, r0, -4
    beq  r3, r4, aludone
    ori  r21, r21, 4
aludone:

; ---- phase 4: sub-word loads and stores ------------------------------
    li   r10, WINDOW
    li   r1, 0x8001fa5c
    sw   r1, 0(r10)
    lbu  r3, 3(r10)           ; 0x80
    addi r4, r0, 0x80
    beq  r3, r4, w1
    ori  r21, r21, 8
w1:
    lb   r3, 3(r10)           ; sign-extended 0xffffff80
    li   r4, 0xffffff80
    beq  r3, r4, w2
    ori  r21, r21, 8
w2:
    lhu  r3, 0(r10)           ; 0xfa5c
    li   r4, 0xfa5c
    beq  r3, r4, w3
    ori  r21, r21, 8
w3:
    addi r3, r0, 0x7e
    sb   r3, 1(r10)
    lw   r3, 0(r10)
    li   r4, 0x80017e5c       ; byte 1 replaced by 0x7e
    beq  r3, r4, wdone
    ori  r21, r21, 8
wdone:

; ---- phase 5: bank sweep (touch every 512B column over 16 KiB) -------
    li   r10, WINDOW
    addi r1, r0, 0
    addi r5, r0, 32           ; 32 columns
bank:
    mul  r2, r1, r1
    sw   r2, 0(r10)
    addi r10, r10, 512
    addi r1, r1, 1
    bne  r1, r5, bank
    li   r10, WINDOW
    addi r1, r0, 0
bankr:
    mul  r2, r1, r1
    lw   r3, 0(r10)
    beq  r3, r2, bankok
    ori  r21, r21, 16
bankok:
    addi r10, r10, 512
    addi r1, r1, 1
    bne  r1, r5, bankr

; ---- verdict ----------------------------------------------------------
    bne  r21, r0, fail
    li   r20, 0x600D
    halt
fail:
    li   r20, 0xDEAD
    halt
