/**
 * @file
 * mwtrace — reference-trace utility.
 *
 *   mwtrace info  trace.mwtr            summary statistics
 *   mwtrace gen   WORKLOAD N out.mwtr   capture N refs of a proxy
 *   mwtrace sim   trace.mwtr            replay into the standard
 *                                       cache comparison set
 *
 * Traces use the MWTR binary format (trace/trace_file.hh), so any
 * front end — proxies, the MW32 interpreter via `mwasm run --trace`,
 * or external generators — can feed the same cache models.
 */

#include <cstdio>
#include <cstring>
#include <map>

#include "core/memwall.hh"

using namespace memwall;

namespace {

int
cmdInfo(const char *path)
{
    TraceBuffer trace;
    if (!trace.load(path)) {
        std::fprintf(stderr, "mwtrace: cannot load '%s'\n", path);
        return 1;
    }
    std::uint64_t fetches = 0, loads = 0, stores = 0;
    Addr min_addr = invalid_addr, max_addr = 0;
    std::map<std::uint64_t, std::uint64_t> pages;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const MemRef &r = trace[i];
        switch (r.type) {
          case RefType::IFetch: ++fetches; break;
          case RefType::Load: ++loads; break;
          case RefType::Store: ++stores; break;
        }
        if (r.type != RefType::IFetch) {
            min_addr = std::min(min_addr, r.addr);
            max_addr = std::max(max_addr, r.addr);
            ++pages[r.addr / 4096];
        }
    }
    std::printf("%s: %zu references\n", path, trace.size());
    std::printf("  fetches %llu, loads %llu, stores %llu\n",
                static_cast<unsigned long long>(fetches),
                static_cast<unsigned long long>(loads),
                static_cast<unsigned long long>(stores));
    if (loads + stores > 0) {
        std::printf("  data range 0x%llx..0x%llx, %zu pages "
                    "touched (%.1f KiB working set)\n",
                    static_cast<unsigned long long>(min_addr),
                    static_cast<unsigned long long>(max_addr),
                    pages.size(), pages.size() * 4.0);
    }
    return 0;
}

int
cmdGen(const char *workload, const char *count_str,
       const char *out_path)
{
    const std::uint64_t count =
        std::strtoull(count_str, nullptr, 0);
    const SpecWorkload &w = findWorkload(workload);
    SyntheticWorkload source(w.proxy);
    TraceBuffer trace;
    source.generate(count, trace.sink());
    if (!trace.save(out_path)) {
        std::fprintf(stderr, "mwtrace: cannot write '%s'\n",
                     out_path);
        return 1;
    }
    std::printf("wrote %zu references of %s to %s\n", trace.size(),
                w.name.c_str(), out_path);
    return 0;
}

int
cmdSim(const char *path)
{
    TraceBuffer trace;
    if (!trace.load(path)) {
        std::fprintf(stderr, "mwtrace: cannot load '%s'\n", path);
        return 1;
    }

    ColumnCacheConfig pim_cfg;
    ColumnInstrCache icache(pim_cfg);
    ColumnDataCache dcache(pim_cfg);
    ColumnCacheConfig no_vc = pim_cfg;
    no_vc.victim_enabled = false;
    ColumnDataCache dcache_novc(no_vc);
    Cache conv16({16 * KiB, 32, 1, ReplPolicy::LRU, 32, "c16"});
    Cache conv64({64 * KiB, 32, 1, ReplPolicy::LRU, 32, "c64"});

    trace.generate(trace.size(), [&](const MemRef &r) {
        if (r.type == RefType::IFetch) {
            icache.fetch(r.pc);
        } else {
            const bool store = r.type == RefType::Store;
            dcache.access(r.addr, store);
            dcache_novc.access(r.addr, store);
            conv16.access(r.addr, store);
            conv64.access(r.addr, store);
        }
    });

    std::printf("%s replayed through the standard set:\n", path);
    std::printf("  proposed I-cache (8K/512B)   : %6.3f%% miss\n",
                100.0 * icache.stats().missRate());
    std::printf("  proposed D-cache + victim    : %6.3f%% miss\n",
                100.0 * dcache.stats().missRate());
    std::printf("  proposed D-cache, no victim  : %6.3f%% miss\n",
                100.0 * dcache_novc.stats().missRate());
    std::printf("  conventional 16K DM (32B)    : %6.3f%% miss\n",
                100.0 * conv16.stats().missRate());
    std::printf("  conventional 64K DM (32B)    : %6.3f%% miss\n",
                100.0 * conv64.stats().missRate());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 3 && std::strcmp(argv[1], "info") == 0)
        return cmdInfo(argv[2]);
    if (argc >= 5 && std::strcmp(argv[1], "gen") == 0)
        return cmdGen(argv[2], argv[3], argv[4]);
    if (argc >= 3 && std::strcmp(argv[1], "sim") == 0)
        return cmdSim(argv[2]);
    std::fprintf(stderr,
                 "usage: mwtrace info FILE | gen WORKLOAD N FILE | "
                 "sim FILE\n");
    return 2;
}
