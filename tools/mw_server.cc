/**
 * @file
 * mw-server — resident experiment service.
 *
 *   mw-server --socket PATH --cache-dir DIR [--jobs N]
 *             [--cache-cap-bytes N] [--max-connections N]
 *             [--max-inflight N] [--max-retries N]
 *             [--backoff-base-ms N] [--wedge-grace-ms N]
 *             [--watchdog-interval-ms N] [--batch-window-ms N]
 *             [--allow-test-faults]
 *
 * Listens on a Unix-domain socket for framed JSON requests (see
 * src/server/protocol.hh for the schema), computes the experiment
 * catalog (figures 7/8, the SPEC tables, the SPLASH figures)
 * on a shared thread pool with request deduplication and batching,
 * and memoizes results in a crash-safe on-disk cache under
 * --cache-dir. SIGINT/SIGTERM (or a "shutdown" request) drain and
 * exit cleanly; a SIGKILL'd server replays its journal on restart.
 *
 * --allow-test-faults enables the "fault" request field used by the
 * torture bench to inject worker failures and hangs; never pass it
 * in real use.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <csignal>

#include "common/logging.hh"
#include "server/server.hh"

using namespace memwall;

namespace {

server::MwServer *g_server = nullptr;

void
handleSignal(int)
{
    if (g_server != nullptr)
        g_server->requestStop(); // one async-signal-safe write(2)
}

[[noreturn]] void
usage(const char *why)
{
    if (why != nullptr)
        std::fprintf(stderr, "mw-server: %s\n", why);
    std::fprintf(
        stderr,
        "usage: mw-server --socket PATH --cache-dir DIR [--jobs N]\n"
        "                 [--cache-cap-bytes N] [--max-connections N]\n"
        "                 [--max-inflight N] [--max-retries N]\n"
        "                 [--backoff-base-ms N] [--wedge-grace-ms N]\n"
        "                 [--watchdog-interval-ms N]\n"
        "                 [--batch-window-ms N]\n"
        "                 [--allow-test-faults]\n");
    std::exit(2);
}

std::uint64_t
numberArg(const char *flag, const char *value)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(value, &end, 0);
    if (errno != 0 || end == value || *end != '\0') {
        std::string why = std::string("invalid value '") + value +
                          "' for " + flag;
        usage(why.c_str());
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    server::ServerOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                const std::string why =
                    "missing value for " + arg;
                usage(why.c_str());
            }
            return argv[++i];
        };
        if (arg == "--socket")
            opt.socket_path = value();
        else if (arg == "--cache-dir")
            opt.cache_dir = value();
        else if (arg == "--jobs")
            opt.jobs =
                static_cast<unsigned>(numberArg("--jobs", value()));
        else if (arg == "--cache-cap-bytes")
            opt.cache_cap_bytes =
                numberArg("--cache-cap-bytes", value());
        else if (arg == "--max-connections")
            opt.max_connections =
                numberArg("--max-connections", value());
        else if (arg == "--max-inflight")
            opt.max_inflight = numberArg("--max-inflight", value());
        else if (arg == "--max-retries")
            opt.max_retries = static_cast<unsigned>(
                numberArg("--max-retries", value()));
        else if (arg == "--backoff-base-ms")
            opt.backoff_base_ms =
                numberArg("--backoff-base-ms", value());
        else if (arg == "--wedge-grace-ms")
            opt.wedge_grace_ms =
                numberArg("--wedge-grace-ms", value());
        else if (arg == "--watchdog-interval-ms")
            opt.watchdog_interval_ms =
                numberArg("--watchdog-interval-ms", value());
        else if (arg == "--batch-window-ms")
            opt.batch_window_ms =
                numberArg("--batch-window-ms", value());
        else if (arg == "--allow-test-faults")
            opt.allow_test_faults = true;
        else
            usage(("unknown flag '" + arg + "'").c_str());
    }
    if (opt.socket_path.empty())
        usage("--socket is required");
    if (opt.cache_dir.empty())
        usage("--cache-dir is required");

    server::MwServer srv(opt);
    std::string why;
    if (!srv.start(&why)) {
        std::fprintf(stderr, "mw-server: %s\n", why.c_str());
        return 1;
    }

    g_server = &srv;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = handleSignal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    // A client that closes its socket before we finish writing must
    // surface as EPIPE in writeFrame, not SIGPIPE-kill the daemon
    // (writeFrame also passes MSG_NOSIGNAL; this covers everything
    // else that might ever write to a dead peer).
    struct sigaction ign;
    std::memset(&ign, 0, sizeof(ign));
    ign.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ign, nullptr);

    MW_INFORM("mw-server: listening on ", opt.socket_path,
              " (cache: ", opt.cache_dir,
              ", build: ", server::gitDescribe(), ")");
    srv.run();
    MW_INFORM("mw-server: stopped");
    g_server = nullptr;
    return 0;
}
