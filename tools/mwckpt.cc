/**
 * @file
 * mwckpt — MWCP checkpoint and MWSJ journal inspector.
 *
 *   mwckpt info     file.mwcp   header + section table dump
 *   mwckpt verify   file.mwcp   full CRC walk; exit 1 on any damage
 *   mwckpt journal  file.mwsj   record listing of a sweep journal
 *   mwckpt selftest             write/corrupt/reject round trip in
 *                               a scratch directory (smoke test)
 *
 * The inspector loads files WITHOUT a config-hash expectation (the
 * hash is printed for the operator to compare); simulation code must
 * always pass the expected hash instead.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "checkpoint/checkpoint.hh"
#include "checkpoint/journal.hh"

using namespace memwall;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: mwckpt info    FILE.mwcp\n"
                 "       mwckpt verify  FILE.mwcp\n"
                 "       mwckpt journal FILE.mwsj\n"
                 "       mwckpt selftest\n");
    return 2;
}

/** Load with full validation; prints the rejection on failure. */
bool
loadChecked(ckpt::CheckpointReader &reader, const char *path)
{
    const ckpt::LoadError e =
        reader.loadFile(path, std::nullopt);
    if (e != ckpt::LoadError::None) {
        std::printf("%s: REJECTED (%s): %s\n", path,
                    ckpt::loadErrorName(e),
                    reader.errorDetail().c_str());
        return false;
    }
    return true;
}

int
cmdInfo(const char *path)
{
    ckpt::CheckpointReader reader;
    if (!loadChecked(reader, path))
        return 1;
    std::printf("%s: MWCP checkpoint\n", path);
    std::printf("  format version %u\n", reader.version());
    std::printf("  config hash    %016llx\n",
                static_cast<unsigned long long>(
                    reader.configHash()));
    std::printf("  sections       %zu\n", reader.sections().size());
    for (const auto &s : reader.sections())
        std::printf("    %-4s  offset %8llu  length %8llu  "
                    "crc %08x\n",
                    ckpt::fourccName(s.id).c_str(),
                    static_cast<unsigned long long>(s.offset),
                    static_cast<unsigned long long>(s.length),
                    s.crc);
    return 0;
}

int
cmdVerify(const char *path)
{
    // loadFile already walks every CRC (header and per-section);
    // verify is info's validation without the dump.
    ckpt::CheckpointReader reader;
    if (!loadChecked(reader, path))
        return 1;
    std::printf("%s: ok (%zu section(s), config %016llx)\n", path,
                reader.sections().size(),
                static_cast<unsigned long long>(
                    reader.configHash()));
    return 0;
}

int
cmdJournal(const char *path)
{
    ckpt::SweepJournal journal;
    std::string why;
    // Run hash 0 never matches a real journal; a foreign-hash open
    // still reports the record scan, which is what the inspector
    // wants — but it would also TRUNCATE the file, so peek at the
    // header hash first and reopen with it.
    const auto bytes = ckpt::readFileBytes(path, &why);
    if (!bytes) {
        std::fprintf(stderr, "mwckpt: %s\n", why.c_str());
        return 1;
    }
    if (bytes->size() < 16) {
        std::printf("%s: not a sweep journal (too short)\n", path);
        return 1;
    }
    ckpt::Decoder header(bytes->data(), bytes->size());
    const std::uint32_t magic = header.u32();
    header.u32(); // version
    const std::uint64_t run_hash = header.u64();
    if (magic != ckpt::fourcc("MWSJ")) {
        std::printf("%s: not a MWSJ sweep journal\n", path);
        return 1;
    }
    if (!journal.open(path, run_hash, &why)) {
        std::fprintf(stderr, "mwckpt: %s\n", why.c_str());
        return 1;
    }
    std::printf("%s: MWSJ sweep journal\n", path);
    std::printf("  run hash  %016llx\n",
                static_cast<unsigned long long>(run_hash));
    std::printf("  records   %zu\n", journal.recovered());
    if (journal.tornBytes())
        std::printf("  torn tail %zu byte(s) truncated\n",
                    journal.tornBytes());
    for (std::size_t i = 0; i < 1u << 20; ++i) {
        const auto *payload = journal.lookup(i);
        if (payload)
            std::printf("    point %4zu  %zu byte(s)\n", i,
                        payload->size());
    }
    return 0;
}

int
cmdSelftest()
{
    char tmpl[] = "/tmp/mwckpt-selftest-XXXXXX";
    if (!::mkdtemp(tmpl)) {
        std::perror("mwckpt: mkdtemp");
        return 1;
    }
    const std::string path = std::string(tmpl) + "/self.mwcp";
    int failures = 0;
    const auto check = [&failures](bool ok, const char *what) {
        std::printf("  %-34s %s\n", what, ok ? "ok" : "FAIL");
        if (!ok)
            ++failures;
    };

    ckpt::CheckpointWriter w(0xfeedface);
    ckpt::Encoder &enc = w.section(ckpt::fourcc("SELF"));
    for (std::uint64_t i = 0; i < 1000; ++i)
        enc.varint(i * i);
    std::string why;
    check(w.writeFile(path, &why), "atomic write");

    ckpt::CheckpointReader reader;
    check(reader.loadFile(path, 0xfeedface) ==
              ckpt::LoadError::None,
          "validated load");
    check(reader.loadFile(path, 0xdeadbeef) ==
              ckpt::LoadError::BadConfig,
          "foreign config rejected");

    auto bytes = ckpt::readFileBytes(path);
    check(bytes.has_value(), "read back");
    if (bytes) {
        (*bytes)[bytes->size() / 2] ^= 0x20;
        ckpt::atomicWriteFile(path, bytes->data(), bytes->size());
        check(reader.loadFile(path, 0xfeedface) !=
                  ckpt::LoadError::None,
              "bit flip rejected");
    }

    const std::string cleanup =
        std::string("rm -rf '") + tmpl + "'";
    [[maybe_unused]] const int rc = std::system(cleanup.c_str());
    return failures ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const char *cmd = argv[1];
    if (std::strcmp(cmd, "selftest") == 0)
        return cmdSelftest();
    if (argc < 3)
        return usage();
    if (std::strcmp(cmd, "info") == 0)
        return cmdInfo(argv[2]);
    if (std::strcmp(cmd, "verify") == 0)
        return cmdVerify(argv[2]);
    if (std::strcmp(cmd, "journal") == 0)
        return cmdJournal(argv[2]);
    return usage();
}
