/**
 * @file
 * mw-client — one-shot client for the mw-server experiment service.
 *
 *   mw-client --socket PATH run --experiment NAME [--quick]
 *             [--refs N] [--seed N] [--sample PLAN] [--nodes N]
 *             [--deadline-ms N] [--timeout-ms N] [--id STR]
 *             [--raw-result]
 *   mw-client --socket PATH stats
 *   mw-client --socket PATH ping
 *   mw-client --socket PATH shutdown
 *   mw-client --socket PATH send JSON     (raw request passthrough)
 *
 * NAME is a catalog entry: fig7, fig8, table1, table3, table4, or a
 * SPLASH figure fig13..fig17. --sample forwards a sampling plan (the
 * bench --sample syntax) for the experiments that accept one;
 * --nodes restricts a SPLASH sweep to one processor count.
 *
 * --timeout-ms bounds the WHOLE transaction per syscall: the
 * connect itself (a wedged server whose accept backlog is full hangs
 * a plain connect(2) forever — no read timeout would ever fire) and
 * every subsequent read/write. 0 (default) means wait indefinitely.
 *
 * Prints the server's response envelope to stdout. With
 * --raw-result, prints only the bytes of the embedded "result"
 * member (extracted by byte span, not re-serialized), which for a
 * run request is byte-identical to the corresponding one-shot
 * bench's --format json output.
 *
 * Exit status: 0 for a "status":"ok" response, 1 for a server-side
 * error response or transport failure, 2 for usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "server/json.hh"
#include "server/wire.hh"

using namespace memwall;
using namespace memwall::server;

namespace {

[[noreturn]] void
usage(const char *why)
{
    if (why != nullptr)
        std::fprintf(stderr, "mw-client: %s\n", why);
    std::fprintf(
        stderr,
        "usage: mw-client --socket PATH run --experiment NAME\n"
        "                 [--quick] [--refs N] [--seed N]\n"
        "                 [--sample PLAN] [--nodes N]\n"
        "                 [--deadline-ms N] [--timeout-ms N]\n"
        "                 [--id STR] [--raw-result]\n"
        "       mw-client --socket PATH stats|ping|shutdown\n"
        "       mw-client --socket PATH send JSON\n"
        "catalog: fig7 fig8 table1 table3 table4 fig13 fig14 fig15 "
        "fig16 fig17\n");
    std::exit(2);
}

std::uint64_t
numberArg(const char *flag, const char *value)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(value, &end, 0);
    if (errno != 0 || end == value || *end != '\0') {
        const std::string why = std::string("invalid value '") +
                                value + "' for " + flag;
        usage(why.c_str());
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    std::string request;
    bool raw_result = false;

    int i = 1;
    const auto value = [&](const std::string &flag) -> const char * {
        if (i + 1 >= argc)
            usage(("missing value for " + flag).c_str());
        return argv[++i];
    };

    std::string cmd;
    std::string experiment;
    std::string id;
    std::string sample;
    bool quick = false;
    std::uint64_t refs = 0, seed = 42, deadline_ms = 0;
    std::uint64_t nodes = 0, timeout_ms = 0;
    bool have_seed_flag = false;
    std::string raw_json;

    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket")
            socket_path = value(arg);
        else if (arg == "--experiment")
            experiment = value(arg);
        else if (arg == "--quick")
            quick = true;
        else if (arg == "--refs")
            refs = numberArg("--refs", value(arg));
        else if (arg == "--seed") {
            seed = numberArg("--seed", value(arg));
            have_seed_flag = true;
        } else if (arg == "--sample")
            sample = value(arg);
        else if (arg == "--nodes")
            nodes = numberArg("--nodes", value(arg));
        else if (arg == "--deadline-ms")
            deadline_ms = numberArg("--deadline-ms", value(arg));
        else if (arg == "--timeout-ms")
            timeout_ms = numberArg("--timeout-ms", value(arg));
        else if (arg == "--id")
            id = value(arg);
        else if (arg == "--raw-result")
            raw_result = true;
        else if (cmd.empty() &&
                 (arg == "run" || arg == "stats" || arg == "ping" ||
                  arg == "shutdown"))
            cmd = arg;
        else if (cmd.empty() && arg == "send") {
            cmd = arg;
            raw_json = value(arg);
        } else
            usage(("unknown argument '" + arg + "'").c_str());
    }
    if (socket_path.empty())
        usage("--socket is required");
    if (cmd.empty())
        usage("no command given");

    if (cmd == "send") {
        request = raw_json;
    } else if (cmd == "run") {
        if (experiment.empty())
            usage("run needs --experiment NAME (fig7 fig8 table1 "
                  "table3 table4 fig13 fig14 fig15 fig16 fig17)");
        request = "{\"cmd\":\"run\",\"experiment\":\"" +
                  jsonEscape(experiment) + "\"";
        if (!id.empty())
            request += ",\"id\":\"" + jsonEscape(id) + "\"";
        if (quick)
            request += ",\"quick\":true";
        if (refs > 0)
            request += ",\"refs\":" + std::to_string(refs);
        if (have_seed_flag)
            request += ",\"seed\":" + std::to_string(seed);
        if (!sample.empty())
            request += ",\"sample\":\"" + jsonEscape(sample) + "\"";
        if (nodes > 0)
            request += ",\"nodes\":" + std::to_string(nodes);
        if (deadline_ms > 0)
            request +=
                ",\"deadline_ms\":" + std::to_string(deadline_ms);
        request += "}";
    } else {
        request = "{\"cmd\":\"" + cmd + "\"";
        if (!id.empty())
            request += ",\"id\":\"" + jsonEscape(id) + "\"";
        request += "}";
    }

    std::string why;
    const int fd = connectUnixTimeout(socket_path, timeout_ms, &why);
    if (fd < 0) {
        std::fprintf(stderr, "mw-client: %s\n", why.c_str());
        return 1;
    }
    if (!setIoTimeout(fd, timeout_ms, &why)) {
        std::fprintf(stderr, "mw-client: %s\n", why.c_str());
        ::close(fd);
        return 1;
    }
    if (!writeFrame(fd, request, &why)) {
        std::fprintf(stderr, "mw-client: %s\n", why.c_str());
        ::close(fd);
        return 1;
    }
    std::string response;
    const FrameStatus st = readFrame(fd, response, &why);
    ::close(fd);
    if (st != FrameStatus::Ok) {
        std::fprintf(stderr, "mw-client: %s\n",
                     why.empty() ? "connection closed" : why.c_str());
        return 1;
    }

    JsonValue root;
    std::string err;
    if (!parseJson(response, root, err)) {
        std::fprintf(stderr,
                     "mw-client: unparseable response (%s)\n",
                     err.c_str());
        std::fwrite(response.data(), 1, response.size(), stdout);
        return 1;
    }
    const JsonValue *status = root.find("status");
    const bool ok = status != nullptr && status->isString() &&
                    status->text == "ok";

    if (raw_result && ok) {
        // The protocol puts "result" last in the envelope, so its
        // raw bytes run to the envelope's closing brace. That tail
        // matters: the figure document ends in a newline, which is
        // part of what the one-shot binary prints but trailing
        // whitespace outside the JSON value's span.
        if (const JsonValue *result = root.find("result")) {
            const std::size_t end = response.size() - 1;
            std::fwrite(response.data() + result->begin, 1,
                        end - result->begin, stdout);
            return 0;
        }
        std::fprintf(stderr,
                     "mw-client: ok response without result\n");
        return 1;
    }

    std::fwrite(response.data(), 1, response.size(), stdout);
    std::fputc('\n', stdout);
    return ok ? 0 : 1;
}
