#include "server/wire.hh"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace memwall {
namespace server {

namespace {

std::string
errnoMessage(const std::string &what)
{
    return what + ": " + std::strerror(errno);
}

/** read(2) with EINTR retry; returns bytes read, 0 on EOF, -1. */
ssize_t
readSome(int fd, char *buf, std::size_t len)
{
    for (;;) {
        const ssize_t n = ::read(fd, buf, len);
        if (n >= 0 || errno != EINTR)
            return n;
    }
}

/**
 * Consume exactly @p len bytes into the bit bucket so the stream
 * stays frame-aligned after an oversized advertisement.
 */
bool
drain(int fd, std::size_t len, std::string *why)
{
    char sink[4096];
    while (len > 0) {
        const std::size_t want =
            len < sizeof(sink) ? len : sizeof(sink);
        const ssize_t n = readSome(fd, sink, want);
        if (n < 0) {
            if (why)
                *why = errnoMessage("read while draining frame");
            return false;
        }
        if (n == 0) {
            if (why)
                *why = "eof while draining oversized frame";
            return false;
        }
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/** Fill a sockaddr_un; rejects paths that do not fit sun_path. */
bool
unixAddress(const std::string &path, sockaddr_un &addr,
            std::string *why)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        if (why)
            *why = "socket path '" + path +
                   "' is empty or longer than sun_path allows";
        return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

FrameStatus
readFrame(int fd, std::string &payload, std::string *why)
{
    // Header: decimal digits then '\n', read byte-wise. Header reads
    // are tiny and infrequent relative to the payload, and byte-wise
    // is the only way to avoid reading past the header without
    // buffering state across calls.
    std::size_t len = 0;
    std::size_t digits = 0;
    for (;;) {
        char c = 0;
        const ssize_t n = readSome(fd, &c, 1);
        if (n < 0) {
            if (why)
                *why = errnoMessage("read frame header");
            return FrameStatus::IoError;
        }
        if (n == 0) {
            if (digits == 0)
                return FrameStatus::Eof;
            if (why)
                *why = "eof inside frame header";
            return FrameStatus::BadFrame;
        }
        if (c == '\n') {
            if (digits == 0) {
                if (why)
                    *why = "empty frame header";
                return FrameStatus::BadFrame;
            }
            break;
        }
        if (c < '0' || c > '9') {
            if (why)
                *why = "non-digit byte in frame header";
            return FrameStatus::BadFrame;
        }
        // 20 digits can already overflow size_t arithmetic; a sane
        // header is at most 7 digits under the 4 MiB cap.
        if (++digits > 12) {
            if (why)
                *why = "frame header longer than 12 digits";
            return FrameStatus::BadFrame;
        }
        len = len * 10 + static_cast<std::size_t>(c - '0');
    }

    if (len > max_frame_bytes) {
        std::string drain_why;
        if (!drain(fd, len, &drain_why)) {
            if (why)
                *why = "oversized frame (" + std::to_string(len) +
                       " bytes) and " + drain_why;
            return FrameStatus::IoError;
        }
        if (why)
            *why = "frame of " + std::to_string(len) +
                   " bytes exceeds the " +
                   std::to_string(max_frame_bytes) + "-byte limit";
        return FrameStatus::Oversized;
    }

    payload.resize(len);
    std::size_t off = 0;
    while (off < len) {
        const ssize_t n =
            readSome(fd, payload.data() + off, len - off);
        if (n < 0) {
            if (why)
                *why = errnoMessage("read frame payload");
            return FrameStatus::IoError;
        }
        if (n == 0) {
            if (why)
                *why = "eof inside frame payload";
            return FrameStatus::BadFrame;
        }
        off += static_cast<std::size_t>(n);
    }
    return FrameStatus::Ok;
}

bool
writeFrame(int fd, const std::string &payload, std::string *why)
{
    std::string buf = std::to_string(payload.size());
    buf.push_back('\n');
    buf += payload;
    std::size_t off = 0;
    while (off < buf.size()) {
        // send(MSG_NOSIGNAL) so a peer that vanished mid-response
        // surfaces as EPIPE on this call instead of a SIGPIPE whose
        // default action kills the whole process. Tests drive frames
        // over non-socket fds, hence the ENOTSOCK fallback.
        ssize_t n = ::send(fd, buf.data() + off, buf.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK)
            n = ::write(fd, buf.data() + off, buf.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (why)
                *why = errnoMessage("write frame");
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

int
listenUnix(const std::string &path, int backlog, std::string *why)
{
    sockaddr_un addr;
    if (!unixAddress(path, addr, why))
        return -1;

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (why)
            *why = errnoMessage("socket");
        return -1;
    }

    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        if (errno != EADDRINUSE) {
            if (why)
                *why = errnoMessage("bind '" + path + "'");
            ::close(fd);
            return -1;
        }
        // The path exists. Probe it: a live server accepts the
        // connect; a stale file from a SIGKILL'd server refuses it.
        int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (probe < 0) {
            if (why)
                *why = errnoMessage("socket (probe)");
            ::close(fd);
            return -1;
        }
        const int rc = ::connect(
            probe, reinterpret_cast<sockaddr *>(&addr), sizeof(addr));
        const int probe_errno = errno;
        ::close(probe);
        if (rc == 0) {
            if (why)
                *why = "a server is already listening on '" + path +
                       "'";
            ::close(fd);
            return -1;
        }
        if (probe_errno != ECONNREFUSED) {
            errno = probe_errno;
            if (why)
                *why = errnoMessage("probe connect '" + path + "'");
            ::close(fd);
            return -1;
        }
        if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
            if (why)
                *why =
                    errnoMessage("unlink stale socket '" + path + "'");
            ::close(fd);
            return -1;
        }
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            if (why)
                *why = errnoMessage("rebind '" + path + "'");
            ::close(fd);
            return -1;
        }
    }

    if (::listen(fd, backlog) != 0) {
        if (why)
            *why = errnoMessage("listen '" + path + "'");
        ::close(fd);
        ::unlink(path.c_str());
        return -1;
    }
    return fd;
}

int
connectUnix(const std::string &path, std::string *why)
{
    sockaddr_un addr;
    if (!unixAddress(path, addr, why))
        return -1;
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (why)
            *why = errnoMessage("socket");
        return -1;
    }
    for (;;) {
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            return fd;
        if (errno != EINTR)
            break;
    }
    if (why)
        *why = errnoMessage("connect '" + path + "'");
    ::close(fd);
    return -1;
}

int
connectUnixTimeout(const std::string &path,
                   std::uint64_t timeout_ms, std::string *why)
{
    if (timeout_ms == 0)
        return connectUnix(path, why);

    sockaddr_un addr;
    if (!unixAddress(path, addr, why))
        return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (why)
            *why = errnoMessage("socket");
        return -1;
    }
    const int flags = ::fcntl(fd, F_GETFL);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    const auto timed_out = [&]() -> int {
        if (why)
            *why = "connect '" + path + "' timed out after " +
                   std::to_string(timeout_ms) + " ms";
        ::close(fd);
        return -1;
    };

    for (;;) {
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            break;
        if (errno == EINTR)
            continue;
        if (errno == EINPROGRESS) {
            // In-flight connect: poll for the outcome.
            for (;;) {
                const auto left =
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(deadline -
                                                   Clock::now())
                        .count();
                if (left <= 0)
                    return timed_out();
                pollfd pfd{fd, POLLOUT, 0};
                const int rc =
                    ::poll(&pfd, 1, static_cast<int>(left));
                if (rc < 0 && errno == EINTR)
                    continue;
                if (rc <= 0)
                    return timed_out();
                break;
            }
            int err = 0;
            socklen_t len = sizeof(err);
            ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
            if (err != 0) {
                errno = err;
                if (why)
                    *why = errnoMessage("connect '" + path + "'");
                ::close(fd);
                return -1;
            }
            break;
        }
        if (errno == EAGAIN) {
            // Unix-domain specialty: a full accept backlog answers a
            // non-blocking connect with EAGAIN (a blocking one would
            // have parked us indefinitely — the hang this timeout
            // exists to prevent). Retry until the deadline.
            if (Clock::now() >= deadline)
                return timed_out();
            ::poll(nullptr, 0, 10);
            continue;
        }
        if (why)
            *why = errnoMessage("connect '" + path + "'");
        ::close(fd);
        return -1;
    }

    ::fcntl(fd, F_SETFL, flags);
    return fd;
}

bool
setIoTimeout(int fd, std::uint64_t timeout_ms, std::string *why)
{
    if (timeout_ms == 0)
        return true;
    timeval tv;
    tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
    tv.tv_usec =
        static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
    if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv,
                     sizeof(tv)) != 0 ||
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv,
                     sizeof(tv)) != 0) {
        if (why)
            *why = errnoMessage("setsockopt io timeout");
        return false;
    }
    return true;
}

} // namespace server
} // namespace memwall
