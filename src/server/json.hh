/**
 * @file
 * Strict JSON parser for the experiment service wire protocol.
 *
 * Requests arrive from arbitrary clients over a socket, so the
 * parser is written like the checkpoint decoder: bounds-checked
 * everywhere, depth-capped, no recursion on attacker-controlled
 * nesting beyond the cap, and *strict* — trailing junk, duplicate
 * object keys, unpaired surrogates and bare control characters are
 * errors, never silently accepted. Rejecting sloppy input loudly is
 * what keeps request canonicalization sound: two requests that parse
 * are either identical JSON values or different cache keys.
 *
 * Every parsed value remembers its [begin,end) byte span in the
 * input, which is how mw-client extracts a server response's
 * embedded "result" document byte-for-byte (the span, not a
 * re-serialization, so the bytes are exactly what the server sent).
 */

#ifndef MEMWALL_SERVER_JSON_HH
#define MEMWALL_SERVER_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace memwall {
namespace server {

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    /** String: the decoded text. Number: the raw spelling (kept so
     *  integers round-trip exactly; see asU64). */
    std::string text;
    std::vector<JsonValue> items; ///< Array elements
    /** Object members in source order (duplicates were rejected). */
    std::vector<std::pair<std::string, JsonValue>> members;
    /** Byte span of this value in the parsed input. */
    std::size_t begin = 0, end = 0;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /**
     * Exact unsigned 64-bit integer: the number must be spelled as
     * plain digits (no sign, fraction, or exponent) and fit in
     * uint64. This is how seeds and reference counts cross the wire
     * without double-rounding.
     */
    bool asU64(std::uint64_t &out) const;
};

/**
 * Parse the whole of @p in as one JSON value. Returns false with a
 * position-annotated message in @p err on any violation. @p max_depth
 * caps array/object nesting.
 */
bool parseJson(std::string_view in, JsonValue &out, std::string &err,
               std::size_t max_depth = 32);

/** Escape @p s for inclusion inside a JSON string literal. */
std::string jsonEscape(std::string_view s);

} // namespace server
} // namespace memwall

#endif // MEMWALL_SERVER_JSON_HH
