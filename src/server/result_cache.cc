#include "server/result_cache.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "checkpoint/checkpoint.hh"
#include "checkpoint/codec.hh"
#include "common/logging.hh"
#include "server/protocol.hh"

namespace memwall {
namespace server {

namespace {

constexpr std::uint32_t result_section = ckpt::fourcc("RSLT");
/** Journal framing overhead per record (index + len + crc). */
constexpr std::uint64_t record_overhead = 8 + 8 + 4;
/** Results are figure JSON documents, well under this. */
constexpr std::size_t max_result_bytes = 8u << 20;

std::string
hexKey(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

std::vector<std::uint8_t>
encodePayload(const std::string &canonical, const std::string &result)
{
    ckpt::Encoder e;
    e.u64(ckpt::fnv1a64(canonical));
    e.str(canonical);
    e.str(result);
    return e.take();
}

} // namespace

bool
ResultCache::open(const std::string &dir, std::uint64_t cap_bytes,
                  std::string *why)
{
    close();
    dir_ = dir;
    cap_bytes_ = cap_bytes;
    journal_path_ = dir + "/results.mwsj";
    // The journal run hash binds the cache to this binary: a server
    // rebuilt from different code must recompute, not replay.
    run_hash_ = ckpt::fnv1a64(std::string("mw-server-results|") +
                              gitDescribe());

    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
        if (why)
            *why = "cannot create cache dir '" + dir +
                   "': " + std::strerror(errno);
        return false;
    }
    struct stat st;
    if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
        if (why)
            *why = "cache dir '" + dir + "' is not a directory";
        return false;
    }

    if (!journal_.open(journal_path_, run_hash_, why))
        return false;

    // Replay: records are keyed by insertion sequence, so the map
    // walk reproduces insertion order and seq bookkeeping exactly.
    entries_.clear();
    journal_bytes_ = 4 + 4 + 8; // journal header
    next_seq_ = 0;
    for (const auto &[seq, payload] : journal_.records()) {
        ckpt::Decoder d(payload);
        d.u64(); // key hash; recomputable, kept for inspection
        const std::string canonical = d.str();
        const std::string result = d.str(max_result_bytes);
        if (d.failed() || !d.atEnd()) {
            MW_WARN("result cache: undecodable journal record ", seq,
                    " ignored (", d.error(), ")");
            continue;
        }
        entries_[canonical] =
            Entry{result, static_cast<std::uint64_t>(seq)};
        next_seq_ =
            std::max(next_seq_, static_cast<std::uint64_t>(seq) + 1);
        journal_bytes_ += record_overhead + payload.size();
    }
    recovered_ = entries_.size();
    torn_bytes_ = journal_.tornBytes();
    discarded_foreign_ = journal_.discardedForeign();

    mirror_ = std::make_unique<ckpt::CheckpointStore>(dir, run_hash_);
    mirror_->setCapBytes(cap_bytes);
    return true;
}

void
ResultCache::close()
{
    journal_.close();
    mirror_.reset();
    entries_.clear();
    recovered_ = 0;
    torn_bytes_ = 0;
    discarded_foreign_ = false;
    compactions_ = 0;
    journal_bytes_ = 0;
    next_seq_ = 0;
}

const std::string *
ResultCache::lookup(const std::string &canonical) const
{
    const auto it = entries_.find(canonical);
    return it == entries_.end() ? nullptr : &it->second.result;
}

bool
ResultCache::appendRecord(const std::string &canonical,
                          const std::string &result, std::string *why)
{
    const auto payload = encodePayload(canonical, result);
    if (!journal_.append(static_cast<std::size_t>(next_seq_), payload,
                         why))
        return false;
    journal_bytes_ += record_overhead + payload.size();
    return true;
}

void
ResultCache::mirrorEntry(const std::string &canonical,
                         const std::string &result)
{
    ckpt::CheckpointWriter w(run_hash_);
    ckpt::Encoder &e = w.section(result_section);
    e.str(canonical);
    e.str(result);
    std::string why;
    // Mirror failures are counted by the store; the journal already
    // holds the durable copy, so a bad mirror write costs nothing
    // but inspectability.
    if (!mirror_->save(hexKey(ckpt::fnv1a64(canonical)), w, &why))
        MW_WARN("result cache: mirror write failed: ", why);
}

bool
ResultCache::insert(const std::string &canonical,
                    const std::string &result, std::string *why)
{
    const bool appended = appendRecord(canonical, result, why);
    entries_[canonical] = Entry{result, next_seq_};
    ++next_seq_;
    if (appended)
        mirrorEntry(canonical, result);
    if (appended && cap_bytes_ > 0 && journal_bytes_ > cap_bytes_) {
        std::string compact_why;
        if (!compact(&compact_why))
            MW_WARN("result cache: compaction failed: ", compact_why);
    }
    return appended;
}

bool
ResultCache::compact(std::string *why)
{
    // Newest-first, keep while under the cap (the newest entry is
    // always kept even if it alone busts the cap), then rewrite the
    // keepers oldest-first into a temp journal renamed over the old
    // one — crash mid-compaction leaves the previous journal intact.
    std::vector<std::pair<std::uint64_t, const std::string *>> order;
    order.reserve(entries_.size());
    for (const auto &[canonical, entry] : entries_)
        order.emplace_back(entry.seq, &canonical);
    std::sort(order.begin(), order.end(),
              [](const auto &a, const auto &b) {
                  return a.first > b.first;
              });

    std::vector<std::pair<const std::string *,
                          std::vector<std::uint8_t>>>
        keep;
    std::uint64_t bytes = 4 + 4 + 8;
    for (const auto &[seq, canonical] : order) {
        auto payload =
            encodePayload(*canonical, entries_[*canonical].result);
        const std::uint64_t cost = record_overhead + payload.size();
        if (!keep.empty() && bytes + cost > cap_bytes_)
            break;
        bytes += cost;
        keep.emplace_back(canonical, std::move(payload));
    }
    std::reverse(keep.begin(), keep.end()); // back to oldest-first

    const std::string tmp = journal_path_ + ".compact";
    ::unlink(tmp.c_str());
    {
        ckpt::SweepJournal rewrite;
        if (!rewrite.open(tmp, run_hash_, why))
            return false;
        for (std::size_t i = 0; i < keep.size(); ++i) {
            if (!rewrite.append(i, keep[i].second, why)) {
                rewrite.close();
                ::unlink(tmp.c_str());
                return false;
            }
        }
    }

    journal_.close();
    if (::rename(tmp.c_str(), journal_path_.c_str()) != 0) {
        if (why)
            *why = "cannot rename '" + tmp + "' over '" +
                   journal_path_ + "': " + std::strerror(errno);
        ::unlink(tmp.c_str());
        // Reopen the untouched original so the cache stays usable.
        std::string reopen_why;
        if (!journal_.open(journal_path_, run_hash_, &reopen_why))
            MW_WARN("result cache: reopen after failed compaction: ",
                    reopen_why);
        return false;
    }
    if (!journal_.open(journal_path_, run_hash_, why))
        return false;

    // Rebuild the memo table from the survivors with fresh seqs.
    std::map<std::string, Entry> survivors;
    for (std::size_t i = 0; i < keep.size(); ++i)
        survivors[*keep[i].first] =
            Entry{std::move(entries_[*keep[i].first].result), i};
    entries_ = std::move(survivors);
    next_seq_ = keep.size();
    journal_bytes_ = bytes;
    ++compactions_;
    return true;
}

} // namespace server
} // namespace memwall
