/**
 * @file
 * Length-prefixed framing over Unix-domain stream sockets.
 *
 * Every message in either direction is one frame:
 *
 *     <decimal payload length> '\n' <payload bytes>
 *
 * The ASCII header keeps the protocol debuggable with `nc -U`, and
 * the explicit length is what lets a multi-line JSON document (the
 * figure results embed verbatim, newlines and all) cross the socket
 * without in-band delimiters.
 *
 * Robustness contract: an oversized frame is NOT a connection error.
 * readFrame() drains and discards the advertised payload so the
 * stream stays in sync, then reports Oversized — the server answers
 * with a named error and the client can keep using the connection. A
 * malformed header, by contrast, means we no longer know where the
 * next frame starts, so the only safe response is to close.
 */

#ifndef MEMWALL_SERVER_WIRE_HH
#define MEMWALL_SERVER_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace memwall {
namespace server {

/** Outcome of readFrame(). */
enum class FrameStatus {
    Ok,        ///< payload delivered
    Eof,       ///< clean end of stream before any header byte
    BadFrame,  ///< malformed header; stream position unknown
    Oversized, ///< advertised length over the cap; payload drained
    IoError,   ///< read(2) failed; why has errno text
};

/** Frames larger than this are drained and rejected, not read. */
constexpr std::size_t max_frame_bytes = 4u << 20;

/**
 * Read one frame from @p fd into @p payload. On Oversized the
 * advertised payload was consumed from the stream (up to the
 * advertised length) so the next readFrame() starts at a frame
 * boundary. @p why carries detail for BadFrame/Oversized/IoError.
 */
FrameStatus readFrame(int fd, std::string &payload, std::string *why);

/**
 * Write @p payload as one frame. Returns false with errno text in
 * @p why on failure; handles partial writes and EINTR.
 */
bool writeFrame(int fd, const std::string &payload, std::string *why);

/**
 * Bind and listen on Unix-domain socket @p path. A stale socket file
 * left by a SIGKILL'd server is detected (connect() fails with
 * ECONNREFUSED), unlinked and rebound; a *live* server on the path is
 * an error — two servers sharing a cache directory would race. The
 * caller owns the returned fd; returns -1 with @p why on failure.
 */
int listenUnix(const std::string &path, int backlog,
               std::string *why);

/** Connect to the server socket at @p path; -1 + @p why on failure. */
int connectUnix(const std::string &path, std::string *why);

/**
 * connectUnix() with an upper bound on the connect itself.
 * @p timeout_ms of 0 means no bound (plain connectUnix). The bound
 * matters for Unix-domain sockets specifically: connect(2) to a
 * bound-and-listening socket whose accept backlog is full BLOCKS
 * until the server accepts — a wedged (but not dead) server hangs
 * its clients before a single byte is written, where no read/write
 * timeout can help. Implemented with a non-blocking connect polled
 * against the deadline; the returned fd is blocking again.
 */
int connectUnixTimeout(const std::string &path,
                       std::uint64_t timeout_ms, std::string *why);

/**
 * Bound every subsequent read/write on @p fd to @p timeout_ms
 * (SO_RCVTIMEO/SO_SNDTIMEO); 0 leaves the socket unbounded. A timed
 * out read surfaces as FrameStatus::IoError with an EAGAIN message.
 */
bool setIoTimeout(int fd, std::uint64_t timeout_ms,
                  std::string *why);

} // namespace server
} // namespace memwall

#endif // MEMWALL_SERVER_WIRE_HH
