#include "server/json.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace memwall {
namespace server {

namespace {

/** Recursive-descent parser over a bounded input span. */
class Parser
{
  public:
    Parser(std::string_view in, std::size_t max_depth)
        : in_(in), max_depth_(max_depth)
    {
    }

    bool
    parse(JsonValue &out, std::string &err)
    {
        skipWs();
        if (!parseValue(out, 0))
            ok_ = false;
        if (ok_) {
            skipWs();
            if (pos_ != in_.size())
                fail("trailing characters after JSON value");
        }
        if (!ok_)
            err = error_ + " at byte " + std::to_string(err_pos_);
        return ok_;
    }

  private:
    void
    fail(const std::string &why)
    {
        if (ok_) {
            ok_ = false;
            error_ = why;
            err_pos_ = pos_;
        }
    }

    bool
    eof() const
    {
        return pos_ >= in_.size();
    }

    char
    peek() const
    {
        return in_[pos_];
    }

    void
    skipWs()
    {
        while (!eof() && (peek() == ' ' || peek() == '\t' ||
                          peek() == '\n' || peek() == '\r'))
            ++pos_;
    }

    bool
    literal(std::string_view word)
    {
        if (in_.compare(pos_, word.size(), word) != 0) {
            fail("invalid literal");
            return false;
        }
        pos_ += word.size();
        return true;
    }

    bool
    parseValue(JsonValue &out, std::size_t depth)
    {
        if (depth > max_depth_) {
            fail("nesting deeper than the limit");
            return false;
        }
        if (eof()) {
            fail("unexpected end of input");
            return false;
        }
        out.begin = pos_;
        bool good = false;
        switch (peek()) {
        case '{':
            good = parseObject(out, depth);
            break;
        case '[':
            good = parseArray(out, depth);
            break;
        case '"':
            out.kind = JsonValue::Kind::String;
            good = parseString(out.text);
            break;
        case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            good = literal("true");
            break;
        case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            good = literal("false");
            break;
        case 'n':
            out.kind = JsonValue::Kind::Null;
            good = literal("null");
            break;
        default:
            good = parseNumber(out);
            break;
        }
        out.end = pos_;
        return good;
    }

    bool
    parseObject(JsonValue &out, std::size_t depth)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (!eof() && peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (eof() || peek() != '"') {
                fail("expected object key string");
                return false;
            }
            std::string key;
            if (!parseString(key))
                return false;
            for (const auto &m : out.members)
                if (m.first == key) {
                    fail("duplicate object key '" + key + "'");
                    return false;
                }
            skipWs();
            if (eof() || peek() != ':') {
                fail("expected ':' after object key");
                return false;
            }
            ++pos_;
            skipWs();
            JsonValue v;
            if (!parseValue(v, depth + 1))
                return false;
            out.members.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (eof()) {
                fail("unterminated object");
                return false;
            }
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            fail("expected ',' or '}' in object");
            return false;
        }
    }

    bool
    parseArray(JsonValue &out, std::size_t depth)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (!eof() && peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            JsonValue v;
            if (!parseValue(v, depth + 1))
                return false;
            out.items.push_back(std::move(v));
            skipWs();
            if (eof()) {
                fail("unterminated array");
                return false;
            }
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            fail("expected ',' or ']' in array");
            return false;
        }
    }

    /** Append @p cp as UTF-8. Callers guarantee cp <= 0x10FFFF. */
    static void
    appendUtf8(std::string &s, std::uint32_t cp)
    {
        if (cp < 0x80) {
            s.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            s.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            s.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            s.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            s.push_back(
                static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    bool
    hex4(std::uint32_t &out)
    {
        if (in_.size() - pos_ < 4) {
            fail("truncated \\u escape");
            return false;
        }
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = in_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<std::uint32_t>(c - 'A' + 10);
            else {
                fail("invalid hex digit in \\u escape");
                return false;
            }
        }
        return true;
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        for (;;) {
            if (eof()) {
                fail("unterminated string");
                return false;
            }
            const unsigned char c =
                static_cast<unsigned char>(in_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20) {
                fail("bare control character in string");
                return false;
            }
            if (c != '\\') {
                out.push_back(static_cast<char>(c));
                ++pos_;
                continue;
            }
            ++pos_; // backslash
            if (eof()) {
                fail("unterminated escape");
                return false;
            }
            const char esc = in_[pos_++];
            switch (esc) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                std::uint32_t cp = 0;
                if (!hex4(cp))
                    return false;
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: require the low half.
                    if (in_.size() - pos_ < 2 || in_[pos_] != '\\' ||
                        in_[pos_ + 1] != 'u') {
                        fail("unpaired high surrogate");
                        return false;
                    }
                    pos_ += 2;
                    std::uint32_t lo = 0;
                    if (!hex4(lo))
                        return false;
                    if (lo < 0xDC00 || lo > 0xDFFF) {
                        fail("invalid low surrogate");
                        return false;
                    }
                    cp = 0x10000 + ((cp - 0xD800) << 10) +
                         (lo - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    fail("unpaired low surrogate");
                    return false;
                }
                appendUtf8(out, cp);
                break;
            }
            default:
                fail("invalid escape character");
                return false;
            }
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Number;
        const std::size_t start = pos_;
        if (!eof() && peek() == '-')
            ++pos_;
        if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
            fail("invalid number");
            return false;
        }
        if (peek() == '0') {
            ++pos_; // no leading zeros
        } else {
            while (!eof() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (!eof() && peek() == '.') {
            ++pos_;
            if (eof() ||
                !std::isdigit(static_cast<unsigned char>(peek()))) {
                fail("digit required after decimal point");
                return false;
            }
            while (!eof() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!eof() && (peek() == '+' || peek() == '-'))
                ++pos_;
            if (eof() ||
                !std::isdigit(static_cast<unsigned char>(peek()))) {
                fail("digit required in exponent");
                return false;
            }
            while (!eof() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        out.text = std::string(in_.substr(start, pos_ - start));
        errno = 0;
        out.number = std::strtod(out.text.c_str(), nullptr);
        if (errno == ERANGE) {
            fail("number out of range");
            return false;
        }
        return true;
    }

    std::string_view in_;
    std::size_t max_depth_;
    std::size_t pos_ = 0;
    bool ok_ = true;
    std::string error_;
    std::size_t err_pos_ = 0;
};

} // namespace

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &m : members)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

bool
JsonValue::asU64(std::uint64_t &out) const
{
    if (kind != Kind::Number || text.empty())
        return false;
    for (const char c : text)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false; // sign, fraction or exponent: not exact
    errno = 0;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE || end != text.c_str() + text.size())
        return false;
    out = v;
    return true;
}

bool
parseJson(std::string_view in, JsonValue &out, std::string &err,
          std::size_t max_depth)
{
    Parser p(in, max_depth);
    return p.parse(out, err);
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        const auto u = static_cast<unsigned char>(c);
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (u < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", u);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace server
} // namespace memwall
