#include "server/server.hh"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "server/catalog.hh"
#include "server/json.hh"
#include "server/wire.hh"

namespace memwall {
namespace server {

namespace {

std::chrono::milliseconds
ms(std::uint64_t v)
{
    return std::chrono::milliseconds(v);
}

void
setCloexec(int fd)
{
    const int flags = ::fcntl(fd, F_GETFD);
    if (flags >= 0)
        ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

} // namespace

std::uint64_t
saturatingBackoffMs(std::uint64_t base_ms, unsigned exponent)
{
    constexpr std::uint64_t cap_ms = 60'000;
    if (base_ms == 0)
        return 0;
    if (base_ms >= cap_ms || exponent >= 16)
        return cap_ms;
    // base_ms < 2^16 and exponent < 16: the shift fits easily.
    return std::min(base_ms << exponent, cap_ms);
}

/** Scatter/gather context for one deduplicated experiment run.
 *  remaining/results/failed are guarded by MwServer::mu_; the fault
 *  countdown is atomic because units decrement it concurrently
 *  outside the lock. */
struct MwServer::ComputeJob
{
    std::string canonical;
    std::shared_ptr<Inflight> entry;
    RunRequest run;
    CatalogPlan plan;
    std::vector<std::shared_ptr<void>> results; ///< one per point
    std::size_t remaining = 0;
    bool failed = false;
    std::string fail_detail;
    std::atomic<std::int64_t> fault_countdown{0};
};

/** One deduplicated computation inside a batch pass: the compute
 *  closure of the first point that named this unit key, plus every
 *  (job, point index) its result must be delivered to. Immutable
 *  after the batcher publishes it to the pool, except through the
 *  subscribing jobs' own synchronization. */
struct MwServer::ComputeUnit
{
    std::string label;
    std::function<std::shared_ptr<void>()> compute;
    /** The owning job when this unit is fault-injected; unit keys of
     *  fault runs are scoped to their canonical key, so a fault unit
     *  has exactly one subscriber and this is it. Null for clean
     *  units. */
    std::shared_ptr<ComputeJob> fault_job;
    std::vector<std::pair<std::shared_ptr<ComputeJob>, std::size_t>>
        subscribers;
};

MwServer::~MwServer()
{
    shutdownInternal();
    // The stop pipe outlives shutdown so requestStop() (a signal
    // handler's write(2)) can never race a close of its fd; it dies
    // only with the object itself.
    for (int &fd : stop_pipe_) {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
    }
}

bool
MwServer::start(std::string *why)
{
    MW_ASSERT(!started_, "server started twice");
    if (stop_pipe_[0] < 0) {
        if (::pipe(stop_pipe_) != 0) {
            if (why)
                *why = std::string("cannot create stop pipe: ") +
                       std::strerror(errno);
            return false;
        }
        setCloexec(stop_pipe_[0]);
        setCloexec(stop_pipe_[1]);
    } else {
        // Reused after a shutdown: drain any stale stop byte so the
        // new accept loop does not exit immediately.
        const int flags = ::fcntl(stop_pipe_[0], F_GETFL);
        ::fcntl(stop_pipe_[0], F_SETFL, flags | O_NONBLOCK);
        char sink[16];
        while (::read(stop_pipe_[0], sink, sizeof(sink)) > 0) {
        }
        ::fcntl(stop_pipe_[0], F_SETFL, flags);
    }

    if (!cache_.open(opt_.cache_dir, opt_.cache_cap_bytes, why))
        return false;
    if (cache_.recovered() > 0)
        MW_INFORM("mw-server: replayed ", cache_.recovered(),
                  " cached result(s) from ", opt_.cache_dir);
    if (cache_.tornBytes() > 0)
        MW_WARN("mw-server: dropped ", cache_.tornBytes(),
                " torn byte(s) from the result journal");
    if (cache_.discardedForeign())
        MW_INFORM("mw-server: discarded result journal from a "
                  "different build");

    listen_fd_ = listenUnix(opt_.socket_path, opt_.backlog, why);
    if (listen_fd_ < 0)
        return false;
    setCloexec(listen_fd_);

    pool_ = std::make_unique<ThreadPool>(opt_.jobs);
    // A restart after shutdownInternal() must not inherit the old
    // stop flag or runs that were queued but never batched.
    stopping_ = false;
    pending_.clear();
    inflight_.clear();
    last_unit_done_ = Clock::now();
    watchdog_ = std::thread([this] { watchdogLoop(); });
    batcher_ = std::thread([this] { batcherLoop(); });
    started_ = true;
    return true;
}

void
MwServer::requestStop()
{
    if (stop_pipe_[1] >= 0) {
        const char c = 's';
        // Async-signal-safe: one write(2), no locks, no allocation.
        [[maybe_unused]] const ssize_t n =
            ::write(stop_pipe_[1], &c, 1);
    }
}

void
MwServer::run()
{
    MW_ASSERT(started_, "run() before start()");
    acceptLoop();
    shutdownInternal();
}

void
MwServer::shutdownInternal()
{
    if (!started_)
        return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
        // Wake every request thread parked on an in-flight entry
        // (they answer shutting_down) and half-close every
        // connection so blocked readFrame() calls return.
        for (auto &[canonical, entry] : inflight_)
            entry->cv.notify_all();
        for (auto &[id, conn] : connections_)
            ::shutdown(conn.fd, SHUT_RDWR);
    }
    stop_cv_.notify_all();
    batch_cv_.notify_all();

    for (;;) {
        std::vector<std::thread> dead;
        {
            std::lock_guard<std::mutex> lock(mu_);
            for (auto &[id, conn] : connections_)
                if (conn.thread.joinable())
                    dead.push_back(std::move(conn.thread));
            connections_.clear();
            finished_connections_.clear();
        }
        if (dead.empty())
            break;
        for (auto &t : dead)
            t.join();
    }

    if (watchdog_.joinable())
        watchdog_.join();
    // The batcher must stop submitting before the pool dies.
    if (batcher_.joinable())
        batcher_.join();
    // Drain outstanding computations before the cache goes away:
    // finalize still wants to journal their results.
    pool_.reset();
    cache_.close();

    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        ::unlink(opt_.socket_path.c_str());
    }
    // stop_pipe_ stays open (see ~MwServer): requestStop() may be
    // called from a signal handler at any point in the lifetime.
    started_ = false;
}

ServerCounters
MwServer::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

void
MwServer::acceptLoop()
{
    for (;;) {
        pollfd fds[2] = {{listen_fd_, POLLIN, 0},
                         {stop_pipe_[0], POLLIN, 0}};
        const int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            MW_WARN("mw-server: poll: ", std::strerror(errno));
            break;
        }
        if (fds[1].revents != 0)
            break; // requestStop()
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        const int cfd = ::accept(listen_fd_, nullptr, nullptr);
        if (cfd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            MW_WARN("mw-server: accept: ", std::strerror(errno));
            break;
        }
        setCloexec(cfd);

        reapFinishedConnections();

        bool shed = false;
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++counters_.connections;
            if (stopping_ ||
                connections_.size() >= opt_.max_connections) {
                ++counters_.shed;
                shed = true;
            } else {
                const std::uint64_t id = next_conn_id_++;
                Connection &conn = connections_[id];
                conn.fd = cfd;
                conn.thread = std::thread(
                    [this, id, cfd] { serveConnection(id, cfd); });
            }
        }
        if (shed) {
            // One named rejection, then close: the client learns to
            // back off instead of hanging on an ignored socket.
            writeFrame(cfd,
                       errorResponse(
                           "", ErrorCode::Overloaded,
                           "connection limit reached",
                           static_cast<long>(saturatingBackoffMs(
                               opt_.backoff_base_ms, 3))),
                       nullptr);
            ::close(cfd);
        }
    }
}

void
MwServer::reapFinishedConnections()
{
    std::vector<std::thread> dead;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const std::uint64_t id : finished_connections_) {
            auto it = connections_.find(id);
            if (it == connections_.end())
                continue;
            dead.push_back(std::move(it->second.thread));
            connections_.erase(it);
        }
        finished_connections_.clear();
    }
    for (auto &t : dead)
        t.join();
}

void
MwServer::serveConnection(std::uint64_t conn_id, int fd)
{
    std::string payload;
    for (;;) {
        std::string why;
        const FrameStatus st = readFrame(fd, payload, &why);
        if (st == FrameStatus::Eof || st == FrameStatus::IoError)
            break;
        if (st == FrameStatus::BadFrame) {
            // The stream position is unknown; answer and close.
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++counters_.bad_requests;
            }
            writeFrame(fd,
                       errorResponse("", ErrorCode::BadFrame, why),
                       nullptr);
            break;
        }
        if (st == FrameStatus::Oversized) {
            // The payload was drained; the stream is still framed.
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++counters_.bad_requests;
            }
            if (!writeFrame(
                    fd, errorResponse("", ErrorCode::Oversized, why),
                    nullptr))
                break;
            continue;
        }
        bool close_after = false;
        const std::string response =
            handlePayload(payload, close_after);
        if (!writeFrame(fd, response, &why)) {
            MW_WARN("mw-server: ", why);
            break;
        }
        if (close_after) {
            requestStop();
            break;
        }
    }
    ::close(fd);
    std::lock_guard<std::mutex> lock(mu_);
    finished_connections_.push_back(conn_id);
}

std::string
MwServer::handlePayload(const std::string &payload, bool &close_after)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.requests;
    }
    Request req;
    ErrorCode code = ErrorCode::Internal;
    std::string detail;
    if (!parseRequest(payload, req, code, detail)) {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.bad_requests;
        return errorResponse(req.id, code, detail);
    }
    switch (req.cmd) {
    case Request::Cmd::Ping:
        return okResponse(req.id, false, "{\"pong\":true}");
    case Request::Cmd::Stats:
        return okResponse(req.id, false, statsJson());
    case Request::Cmd::Shutdown:
        close_after = true;
        return okResponse(req.id, false,
                          "{\"shutting_down\":true}");
    case Request::Cmd::Run:
        if (req.run.has_fault && !opt_.allow_test_faults) {
            std::lock_guard<std::mutex> lock(mu_);
            ++counters_.bad_requests;
            return errorResponse(
                req.id, ErrorCode::FaultInjectionDisabled,
                "the server was not started with "
                "--allow-test-faults");
        }
        return handleRun(req);
    }
    return errorResponse(req.id, ErrorCode::Internal,
                         "unhandled command");
}

std::string
MwServer::handleRun(const Request &req)
{
    const auto arrival = Clock::now();
    const auto deadline = arrival + ms(req.run.deadline_ms);

    std::string canonical = canonicalRunKey(req.run);
    if (req.run.has_fault)
        // Fault-injected runs must never collide with (or poison)
        // the real entry for the same parameters.
        canonical += "|fault=" +
                     std::to_string(req.run.fault_fail_points) + "," +
                     std::to_string(req.run.fault_hang_ms);

    std::unique_lock<std::mutex> lk(mu_);
    std::shared_ptr<Inflight> entry;
    // Two passes at most: the first may drop mu_ to probe the cache
    // (the probe must not hold mu_ — the memo journal may be mid-
    // fsync or compaction under cache_mu_, and request handling must
    // not stall behind that disk I/O), after which stop/quarantine/
    // in-flight state must be re-checked from scratch.
    for (bool probed = false; entry == nullptr;) {
        if (stopping_)
            return errorResponse(req.id, ErrorCode::ShuttingDown,
                                 "server is draining");
        if (quarantined_.contains(canonical))
            return errorResponse(
                req.id, ErrorCode::Quarantined,
                "a previous computation of this request wedged; the "
                "key is fenced off until it completes",
                static_cast<long>(opt_.wedge_grace_ms));
        if (auto it = inflight_.find(canonical);
            it != inflight_.end()) {
            entry = it->second;
            ++counters_.dedup_joined;
            break;
        }
        if (!req.run.has_fault && !probed) {
            probed = true;
            lk.unlock();
            bool found = false;
            std::string hit;
            {
                std::lock_guard<std::mutex> cache_lock(cache_mu_);
                if (const std::string *p = cache_.lookup(canonical)) {
                    hit = *p;
                    found = true;
                }
            }
            lk.lock();
            if (found) {
                ++counters_.cache_hits;
                return okResponse(req.id, true, hit);
            }
            continue;
        }
        if (inflight_.size() >= opt_.max_inflight) {
            ++counters_.shed;
            return errorResponse(
                req.id, ErrorCode::Overloaded,
                "experiment queue is full",
                static_cast<long>(saturatingBackoffMs(
                    opt_.backoff_base_ms, 3)));
        }
        entry = std::make_shared<Inflight>();
        entry->last_progress = arrival;
        entry->cacheable = !req.run.has_fault;
        inflight_[canonical] = entry;

        auto job = std::make_shared<ComputeJob>();
        job->canonical = canonical;
        job->entry = entry;
        job->run = req.run;
        // Fault-injected units are scoped to this run's canonical
        // key (unique while in flight), so they can never coalesce
        // with — or poison — a clean request's unit.
        job->plan = buildCatalogPlan(
            req.run, req.run.has_fault ? canonical : std::string());
        MW_ASSERT(!job->plan.points.empty(),
                  "catalog plan with no points");
        job->results.resize(job->plan.points.size());
        job->remaining = job->plan.points.size();
        job->fault_countdown = static_cast<std::int64_t>(
            req.run.has_fault ? req.run.fault_fail_points : 0);
        pending_.push_back(std::move(job));
        batch_cv_.notify_one();
    }

    // Owner and joiners alike wait for completion, quarantine, stop
    // or their own deadline — whichever comes first.
    const auto done_or_doomed = [&] {
        return stopping_ ||
               entry->state != Inflight::State::Running ||
               entry->quarantined;
    };
    bool in_time = true;
    if (req.run.deadline_ms > 0)
        in_time = entry->cv.wait_until(lk, deadline, done_or_doomed);
    else
        entry->cv.wait(lk, done_or_doomed);

    // A finished result outranks every doom condition: if it is
    // there, serve it.
    if (entry->state == Inflight::State::Done)
        return okResponse(req.id, false, entry->result);
    if (entry->state == Inflight::State::Failed)
        return errorResponse(req.id, ErrorCode::WorkerFailed,
                             entry->error_detail,
                             static_cast<long>(saturatingBackoffMs(
                                 opt_.backoff_base_ms,
                                 opt_.max_retries)));
    if (!in_time) {
        ++counters_.deadline_misses;
        return errorResponse(
            req.id, ErrorCode::DeadlineExceeded,
            "deadline of " + std::to_string(req.run.deadline_ms) +
                " ms elapsed; the computation continues and will be "
                "cached",
            static_cast<long>(req.run.deadline_ms));
    }
    if (entry->quarantined)
        return errorResponse(
            req.id, ErrorCode::Quarantined,
            "the computation wedged past the watchdog grace period",
            static_cast<long>(opt_.wedge_grace_ms));
    return errorResponse(req.id, ErrorCode::ShuttingDown,
                         "server is draining");
}

void
MwServer::batcherLoop()
{
    std::unique_lock<std::mutex> lk(mu_);
    while (!stopping_) {
        batch_cv_.wait(
            lk, [&] { return stopping_ || !pending_.empty(); });
        if (stopping_)
            break;
        if (opt_.batch_window_ms > 0) {
            // Linger with the queue open so near-simultaneous
            // requests coalesce into this pass.
            lk.unlock();
            std::this_thread::sleep_for(ms(opt_.batch_window_ms));
            lk.lock();
            if (stopping_)
                break;
        }
        std::vector<std::shared_ptr<ComputeJob>> batch;
        batch.swap(pending_);

        // Coalesce equal unit keys across every run in the batch:
        // one computation, delivered to all subscribers. Submission
        // order follows first appearance, so a solo batch schedules
        // exactly like the pre-batching server did.
        std::map<std::string, std::shared_ptr<ComputeUnit>> units;
        std::vector<std::shared_ptr<ComputeUnit>> order;
        std::size_t points_total = 0;
        for (const auto &job : batch) {
            for (std::size_t i = 0; i < job->plan.points.size();
                 ++i) {
                CatalogPoint &pt = job->plan.points[i];
                std::shared_ptr<ComputeUnit> &slot =
                    units[pt.unit_key];
                if (!slot) {
                    slot = std::make_shared<ComputeUnit>();
                    slot->label = pt.label;
                    slot->compute = std::move(pt.compute);
                    if (job->run.has_fault)
                        slot->fault_job = job;
                    order.push_back(slot);
                }
                slot->subscribers.emplace_back(job, i);
                ++points_total;
            }
        }
        ++counters_.batches;
        counters_.batched_keys += batch.size();
        counters_.points_computed += order.size();
        counters_.points_shared += points_total - order.size();

        lk.unlock();
        for (const auto &unit : order)
            pool_->submit([this, unit] { runUnit(unit); });
        lk.lock();
    }
}

void
MwServer::runUnit(const std::shared_ptr<ComputeUnit> &unit)
{
    std::shared_ptr<void> result;
    bool success = false;
    std::string last_error;
    const std::shared_ptr<ComputeJob> &fault = unit->fault_job;
    for (unsigned attempt = 0; attempt <= opt_.max_retries;
         ++attempt) {
        if (attempt > 0) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++counters_.retries;
            }
            // This backoff (and the fault hang below) sleeps on the
            // pool worker itself: with a small pool, enough hung or
            // retrying units can occupy every worker and unrelated
            // requests queue behind the sleeps. Accepted for an
            // experiment service whose units normally never sleep;
            // resubmit-with-delay is the upgrade path if it hurts.
            std::this_thread::sleep_for(ms(saturatingBackoffMs(
                opt_.backoff_base_ms, attempt - 1)));
        }
        if (fault && fault->run.fault_hang_ms > 0)
            std::this_thread::sleep_for(
                ms(fault->run.fault_hang_ms));
        try {
            if (fault && fault->fault_countdown.fetch_sub(1) > 0)
                throw std::runtime_error(
                    "injected transient worker fault");
            result = unit->compute();
            success = true;
            break;
        } catch (const std::exception &e) {
            last_error = e.what();
        }
    }

    // Deliver to every subscriber; finalize each job whose last
    // point this was. finalize() journals under cache_mu_, so it
    // must run with mu_ dropped.
    std::vector<std::shared_ptr<ComputeJob>> completed;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto now = Clock::now();
        last_unit_done_ = now;
        for (const auto &[job, index] : unit->subscribers) {
            // Even a failed attempt is forward motion: the watchdog
            // fences off computations where NO unit resolves for a
            // whole grace period, not merely slow ones.
            job->entry->last_progress = now;
            if (success) {
                job->results[index] = result;
            } else {
                ++counters_.worker_failures;
                if (!job->failed) {
                    job->failed = true;
                    job->fail_detail =
                        unit->label + " failed " +
                        std::to_string(opt_.max_retries + 1) +
                        " attempts: " + last_error;
                }
            }
            MW_ASSERT(job->remaining > 0,
                      "compute job over-completed");
            if (--job->remaining == 0)
                completed.push_back(job);
        }
    }
    for (const auto &job : completed)
        finalize(job);
}

void
MwServer::finalize(const std::shared_ptr<ComputeJob> &job)
{
    // Every point has finished: each one's mu_-guarded decrement
    // happened-before this thread observed remaining == 0, so the
    // job fields are safe to read without the lock — and no one
    // writes them again.
    const std::shared_ptr<Inflight> &entry = job->entry;
    std::string result_json;
    if (!job->failed)
        result_json = job->plan.render(job->results);

    // Journal BEFORE publishing completion: the key stays visible in
    // inflight_ until the cache holds it, so a duplicate request can
    // never slip between the two and recompute. The fsync (and any
    // compaction) runs under cache_mu_ only — never under mu_ — so
    // request handling, stats and the watchdog do not stall behind
    // disk I/O.
    if (!job->failed && entry->cacheable) {
        std::string why;
        std::lock_guard<std::mutex> cache_lock(cache_mu_);
        if (!cache_.insert(job->canonical, result_json, &why))
            // The response is still served from memory; only
            // restart durability is lost.
            MW_WARN("mw-server: result not persisted: ", why);
    }

    std::lock_guard<std::mutex> lock(mu_);
    if (job->failed) {
        entry->state = Inflight::State::Failed;
        entry->error_detail = job->fail_detail;
    } else {
        entry->state = Inflight::State::Done;
        entry->result = std::move(result_json);
        ++counters_.computed;
    }
    if (entry->quarantined) {
        // The wedged computation finally finished: lift the fence so
        // the (now cached) key serves normally again.
        quarantined_.erase(job->canonical);
        entry->quarantined = false;
        ++counters_.unquarantines;
    }
    inflight_.erase(job->canonical);
    entry->cv.notify_all();
}

void
MwServer::watchdogLoop()
{
    std::unique_lock<std::mutex> lk(mu_);
    while (!stopping_) {
        stop_cv_.wait_for(lk, ms(opt_.watchdog_interval_ms),
                          [&] { return stopping_; });
        if (stopping_)
            break;
        const auto now = Clock::now();
        for (auto &[canonical, entry] : inflight_) {
            if (entry->state != Inflight::State::Running ||
                entry->quarantined)
                continue;
            // A wedged computation is one where no unit has resolved
            // for a whole grace period — total age alone would
            // quarantine a big batched job steadily chewing through
            // its units on a small pool. And the pool-wide stamp
            // must be equally stale: a job whose units sit queued
            // behind someone else's long batch refreshes no stamp of
            // its own, yet it is waiting its turn, not wedged.
            if (now - entry->last_progress < ms(opt_.wedge_grace_ms))
                continue;
            if (now - last_unit_done_ < ms(opt_.wedge_grace_ms))
                continue;
            quarantined_.insert(canonical);
            entry->quarantined = true;
            ++counters_.quarantines;
            MW_WARN("mw-server: quarantined wedged computation: ",
                    canonical);
            entry->cv.notify_all();
        }
    }
}

std::string
MwServer::statsJson()
{
    // Snapshot the two lock domains separately (never nested): the
    // cache may be mid-fsync under cache_mu_, and stats must not
    // drag mu_ into waiting on that.
    ServerCounters counters;
    std::size_t inflight_count = 0;
    std::size_t quarantined_count = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        counters = counters_;
        inflight_count = inflight_.size();
        quarantined_count = quarantined_.size();
    }
    std::size_t cache_entries = 0;
    std::size_t cache_recovered = 0;
    std::size_t cache_torn = 0;
    std::uint64_t cache_compactions = 0;
    ckpt::StoreCounters mirror;
    {
        std::lock_guard<std::mutex> cache_lock(cache_mu_);
        cache_entries = cache_.size();
        cache_recovered = cache_.recovered();
        cache_torn = cache_.tornBytes();
        cache_compactions = cache_.compactions();
        mirror = cache_.mirrorCounters();
    }
    std::string out = "{\"build\":\"";
    out += jsonEscape(gitDescribe());
    out += "\",\"workers\":" + std::to_string(pool_->workers());
    out += ",\"steals\":" + std::to_string(pool_->steals());
    out += ",\"task_exceptions\":" +
           std::to_string(pool_->taskExceptions());
    out += ",\"counters\":{";
    out += "\"connections\":" +
           std::to_string(counters.connections);
    out += ",\"requests\":" + std::to_string(counters.requests);
    out += ",\"computed\":" + std::to_string(counters.computed);
    out += ",\"cache_hits\":" + std::to_string(counters.cache_hits);
    out += ",\"dedup_joined\":" +
           std::to_string(counters.dedup_joined);
    out += ",\"shed\":" + std::to_string(counters.shed);
    out += ",\"bad_requests\":" +
           std::to_string(counters.bad_requests);
    out += ",\"deadline_misses\":" +
           std::to_string(counters.deadline_misses);
    out += ",\"retries\":" + std::to_string(counters.retries);
    out += ",\"worker_failures\":" +
           std::to_string(counters.worker_failures);
    out += ",\"quarantines\":" +
           std::to_string(counters.quarantines);
    out += ",\"unquarantines\":" +
           std::to_string(counters.unquarantines);
    out += ",\"batches\":" + std::to_string(counters.batches);
    out += ",\"batched_keys\":" +
           std::to_string(counters.batched_keys);
    out += ",\"points_computed\":" +
           std::to_string(counters.points_computed);
    out += ",\"points_shared\":" +
           std::to_string(counters.points_shared);
    out += "},\"cache\":{";
    out += "\"entries\":" + std::to_string(cache_entries);
    out += ",\"recovered\":" + std::to_string(cache_recovered);
    out += ",\"torn_bytes\":" + std::to_string(cache_torn);
    out += ",\"compactions\":" + std::to_string(cache_compactions);
    out += ",\"mirror_evicted\":" + std::to_string(mirror.evicted);
    out += ",\"mirror_write_errors\":" +
           std::to_string(mirror.write_errors);
    out += "},\"inflight\":" + std::to_string(inflight_count);
    out += ",\"quarantined\":" +
           std::to_string(quarantined_count);
    out += "}";
    return out;
}

} // namespace server
} // namespace memwall
