#include "server/protocol.hh"

#include <cstdio>

#include "checkpoint/codec.hh"
#include "server/json.hh"

#ifndef MEMWALL_GIT_DESCRIBE
#define MEMWALL_GIT_DESCRIBE "unknown"
#endif

namespace memwall {
namespace server {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
    case ErrorCode::BadFrame: return "bad_frame";
    case ErrorCode::Oversized: return "oversized";
    case ErrorCode::BadJson: return "bad_json";
    case ErrorCode::BadRequest: return "bad_request";
    case ErrorCode::UnknownExperiment: return "unknown_experiment";
    case ErrorCode::BadParam: return "bad_param";
    case ErrorCode::FaultInjectionDisabled:
        return "fault_injection_disabled";
    case ErrorCode::Overloaded: return "overloaded";
    case ErrorCode::DeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::WorkerFailed: return "worker_failed";
    case ErrorCode::Quarantined: return "quarantined";
    case ErrorCode::ShuttingDown: return "shutting_down";
    case ErrorCode::Internal: return "internal";
    }
    return "internal";
}

namespace {

/** Schema-check one field as an exact uint64, with a named error. */
bool
takeU64(const JsonValue &v, const char *field, std::uint64_t &out,
        ErrorCode &code, std::string &detail)
{
    if (!v.asU64(out)) {
        code = ErrorCode::BadParam;
        detail = std::string("field \"") + field +
                 "\" must be a non-negative integer";
        return false;
    }
    return true;
}

bool
parseFault(const JsonValue &v, RunRequest &run, ErrorCode &code,
           std::string &detail)
{
    if (!v.isObject()) {
        code = ErrorCode::BadRequest;
        detail = "field \"fault\" must be an object";
        return false;
    }
    run.has_fault = true;
    for (const auto &m : v.members) {
        if (m.first == "fail_points") {
            if (!takeU64(m.second, "fault.fail_points",
                         run.fault_fail_points, code, detail))
                return false;
        } else if (m.first == "hang_ms") {
            if (!takeU64(m.second, "fault.hang_ms",
                         run.fault_hang_ms, code, detail))
                return false;
        } else {
            code = ErrorCode::BadRequest;
            detail = "unknown fault field \"" + m.first + "\"";
            return false;
        }
    }
    return true;
}

} // namespace

bool
parseRequest(const std::string &payload, Request &out,
             ErrorCode &code, std::string &detail)
{
    out = Request{};

    JsonValue root;
    std::string err;
    if (!parseJson(payload, root, err)) {
        code = ErrorCode::BadJson;
        detail = err;
        return false;
    }
    if (!root.isObject()) {
        code = ErrorCode::BadRequest;
        detail = "request must be a JSON object";
        return false;
    }

    // Grab the id first so even a failed validation can echo it.
    if (const JsonValue *id = root.find("id"); id && id->isString())
        out.id = id->text;

    bool have_experiment = false;
    for (const auto &m : root.members) {
        const std::string &key = m.first;
        const JsonValue &v = m.second;
        if (key == "id") {
            if (!v.isString()) {
                code = ErrorCode::BadRequest;
                detail = "field \"id\" must be a string";
                return false;
            }
        } else if (key == "cmd") {
            if (!v.isString()) {
                code = ErrorCode::BadRequest;
                detail = "field \"cmd\" must be a string";
                return false;
            }
            if (v.text == "run")
                out.cmd = Request::Cmd::Run;
            else if (v.text == "stats")
                out.cmd = Request::Cmd::Stats;
            else if (v.text == "ping")
                out.cmd = Request::Cmd::Ping;
            else if (v.text == "shutdown")
                out.cmd = Request::Cmd::Shutdown;
            else {
                code = ErrorCode::BadRequest;
                detail = "unknown cmd \"" + v.text + "\"";
                return false;
            }
        } else if (key == "experiment") {
            if (!v.isString()) {
                code = ErrorCode::BadRequest;
                detail = "field \"experiment\" must be a string";
                return false;
            }
            if (v.text == "fig7")
                out.run.figure = MissRateFigure::ICache;
            else if (v.text == "fig8")
                out.run.figure = MissRateFigure::DCache;
            else {
                code = ErrorCode::UnknownExperiment;
                detail = "unknown experiment \"" + v.text +
                         "\" (expected \"fig7\" or \"fig8\")";
                return false;
            }
            have_experiment = true;
        } else if (key == "quick") {
            if (!v.isBool()) {
                code = ErrorCode::BadRequest;
                detail = "field \"quick\" must be a boolean";
                return false;
            }
            out.run.quick = v.boolean;
        } else if (key == "refs") {
            if (!takeU64(v, "refs", out.run.refs, code, detail))
                return false;
        } else if (key == "seed") {
            if (!takeU64(v, "seed", out.run.seed, code, detail))
                return false;
        } else if (key == "deadline_ms") {
            if (!takeU64(v, "deadline_ms", out.run.deadline_ms, code,
                         detail))
                return false;
            if (out.run.deadline_ms > max_deadline_ms) {
                code = ErrorCode::BadParam;
                detail = "\"deadline_ms\" of " +
                         std::to_string(out.run.deadline_ms) +
                         " exceeds the maximum of " +
                         std::to_string(max_deadline_ms);
                return false;
            }
        } else if (key == "fault") {
            if (!parseFault(v, out.run, code, detail))
                return false;
        } else {
            code = ErrorCode::BadRequest;
            detail = "unknown field \"" + key + "\"";
            return false;
        }
    }

    if (out.cmd == Request::Cmd::Run && !have_experiment) {
        code = ErrorCode::BadRequest;
        detail = "run request is missing \"experiment\"";
        return false;
    }
    return true;
}

std::string
canonicalRunKey(const RunRequest &run)
{
    // Canonicalize through the same resolver the bench binaries use:
    // {"quick":true} and {"refs":400000} request identical work and
    // must collapse to one cache entry.
    const MissRateParams params =
        resolveMissRateParams(run.quick, run.refs);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s|measured=%llu|warmup=%llu|seed=%llu|build=%s",
                  missRateFigureName(run.figure),
                  static_cast<unsigned long long>(params.measured_refs),
                  static_cast<unsigned long long>(params.warmup_refs),
                  static_cast<unsigned long long>(run.seed),
                  gitDescribe());
    return buf;
}

std::uint64_t
runKeyHash(const RunRequest &run)
{
    return ckpt::fnv1a64(canonicalRunKey(run));
}

const char *
gitDescribe()
{
    return MEMWALL_GIT_DESCRIBE;
}

std::string
okResponse(const std::string &id, bool cached,
           const std::string &result_json)
{
    std::string out = "{\"id\":\"" + jsonEscape(id) +
                      "\",\"status\":\"ok\",\"cached\":";
    out += cached ? "true" : "false";
    // "result" last, value spliced verbatim: the member's byte span
    // in the response is exactly the one-shot binary's output.
    out += ",\"result\":";
    out += result_json;
    out += "}";
    return out;
}

std::string
errorResponse(const std::string &id, ErrorCode code,
              const std::string &detail, long retry_after_ms)
{
    std::string out = "{\"id\":\"" + jsonEscape(id) +
                      "\",\"status\":\"error\",\"error\":{\"code\":\"";
    out += errorCodeName(code);
    out += "\",\"detail\":\"" + jsonEscape(detail) + "\"";
    if (retry_after_ms >= 0)
        out += ",\"retry_after_ms\":" + std::to_string(retry_after_ms);
    out += "}}";
    return out;
}

} // namespace server
} // namespace memwall
