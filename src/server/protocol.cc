#include "server/protocol.hh"

#include <cstdio>

#include "checkpoint/codec.hh"
#include "server/json.hh"
#include "workloads/spec_tables.hh"
#include "workloads/splash_figures.hh"

#ifndef MEMWALL_GIT_DESCRIBE
#define MEMWALL_GIT_DESCRIBE ""
#endif
#ifndef MEMWALL_SOURCE_DIGEST
#define MEMWALL_SOURCE_DIGEST "nodigest"
#endif

namespace memwall {
namespace server {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
    case ErrorCode::BadFrame: return "bad_frame";
    case ErrorCode::Oversized: return "oversized";
    case ErrorCode::BadJson: return "bad_json";
    case ErrorCode::BadRequest: return "bad_request";
    case ErrorCode::UnknownExperiment: return "unknown_experiment";
    case ErrorCode::BadParam: return "bad_param";
    case ErrorCode::FaultInjectionDisabled:
        return "fault_injection_disabled";
    case ErrorCode::Overloaded: return "overloaded";
    case ErrorCode::DeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::WorkerFailed: return "worker_failed";
    case ErrorCode::Quarantined: return "quarantined";
    case ErrorCode::ShuttingDown: return "shutting_down";
    case ErrorCode::Internal: return "internal";
    }
    return "internal";
}

namespace {

struct ExperimentEntry
{
    Experiment exp;
    const char *name;
};

constexpr ExperimentEntry experiment_table[] = {
    {Experiment::Fig7, "fig7"},
    {Experiment::Fig8, "fig8"},
    {Experiment::Table1, "table1"},
    {Experiment::Table3, "table3"},
    {Experiment::Table4, "table4"},
    {Experiment::Fig13Lu, "fig13"},
    {Experiment::Fig14Mp3d, "fig14"},
    {Experiment::Fig15Ocean, "fig15"},
    {Experiment::Fig16Water, "fig16"},
    {Experiment::Fig17Pthor, "fig17"},
};

} // namespace

const char *
experimentName(Experiment exp)
{
    for (const auto &e : experiment_table)
        if (e.exp == exp)
            return e.name;
    return "?";
}

bool
parseExperimentName(const std::string &name, Experiment &out)
{
    for (const auto &e : experiment_table) {
        if (name == e.name) {
            out = e.exp;
            return true;
        }
    }
    return false;
}

bool
experimentIsSplash(Experiment exp)
{
    switch (exp) {
    case Experiment::Fig13Lu:
    case Experiment::Fig14Mp3d:
    case Experiment::Fig15Ocean:
    case Experiment::Fig16Water:
    case Experiment::Fig17Pthor:
        return true;
    default:
        return false;
    }
}

bool
experimentIsMissRate(Experiment exp)
{
    return exp == Experiment::Fig7 || exp == Experiment::Fig8;
}

bool
experimentAcceptsSample(Experiment exp)
{
    return experimentIsMissRate(exp) || experimentIsSplash(exp);
}

namespace {

/** The SPLASH figure behind a catalogued splash experiment. */
SplashFigure
splashFigureOf(Experiment exp)
{
    switch (exp) {
    case Experiment::Fig13Lu: return SplashFigure::Fig13Lu;
    case Experiment::Fig14Mp3d: return SplashFigure::Fig14Mp3d;
    case Experiment::Fig15Ocean: return SplashFigure::Fig15Ocean;
    case Experiment::Fig16Water: return SplashFigure::Fig16Water;
    default: return SplashFigure::Fig17Pthor;
    }
}

/** Schema-check one field as an exact uint64, with a named error. */
bool
takeU64(const JsonValue &v, const char *field, std::uint64_t &out,
        ErrorCode &code, std::string &detail)
{
    if (!v.asU64(out)) {
        code = ErrorCode::BadParam;
        detail = std::string("field \"") + field +
                 "\" must be a non-negative integer";
        return false;
    }
    return true;
}

bool
parseFault(const JsonValue &v, RunRequest &run, ErrorCode &code,
           std::string &detail)
{
    if (!v.isObject()) {
        code = ErrorCode::BadRequest;
        detail = "field \"fault\" must be an object";
        return false;
    }
    run.has_fault = true;
    for (const auto &m : v.members) {
        if (m.first == "fail_points") {
            if (!takeU64(m.second, "fault.fail_points",
                         run.fault_fail_points, code, detail))
                return false;
        } else if (m.first == "hang_ms") {
            if (!takeU64(m.second, "fault.hang_ms",
                         run.fault_hang_ms, code, detail))
                return false;
        } else {
            code = ErrorCode::BadRequest;
            detail = "unknown fault field \"" + m.first + "\"";
            return false;
        }
    }
    return true;
}

/**
 * Fields apply per experiment: a field the catalog entry would
 * silently ignore is rejected instead, so a client never believes it
 * configured something it did not.
 */
bool
validateRun(const RunRequest &run, ErrorCode &code,
            std::string &detail)
{
    const std::string name = experimentName(run.experiment);
    if (run.has_sample && !experimentAcceptsSample(run.experiment)) {
        code = ErrorCode::BadParam;
        detail = "\"sample\" does not apply to experiment \"" + name +
                 "\" (tables are deterministic full runs)";
        return false;
    }
    if (run.nodes != 0 && !experimentIsSplash(run.experiment)) {
        code = ErrorCode::BadParam;
        detail = "\"nodes\" only applies to the SPLASH figures, not "
                 "\"" + name + "\"";
        return false;
    }
    if (run.nodes > splash_max_nodes) {
        code = ErrorCode::BadParam;
        detail = "\"nodes\" of " + std::to_string(run.nodes) +
                 " exceeds the maximum of " +
                 std::to_string(splash_max_nodes);
        return false;
    }
    if (run.refs != 0 && experimentIsSplash(run.experiment)) {
        code = ErrorCode::BadParam;
        detail = "\"refs\" does not apply to experiment \"" + name +
                 "\" (SPLASH problem size is set by \"quick\")";
        return false;
    }
    return true;
}

} // namespace

bool
parseRequest(const std::string &payload, Request &out,
             ErrorCode &code, std::string &detail)
{
    out = Request{};

    JsonValue root;
    std::string err;
    if (!parseJson(payload, root, err)) {
        code = ErrorCode::BadJson;
        detail = err;
        return false;
    }
    if (!root.isObject()) {
        code = ErrorCode::BadRequest;
        detail = "request must be a JSON object";
        return false;
    }

    // Grab the id first so even a failed validation can echo it.
    if (const JsonValue *id = root.find("id"); id && id->isString())
        out.id = id->text;

    bool have_experiment = false;
    for (const auto &m : root.members) {
        const std::string &key = m.first;
        const JsonValue &v = m.second;
        if (key == "id") {
            if (!v.isString()) {
                code = ErrorCode::BadRequest;
                detail = "field \"id\" must be a string";
                return false;
            }
        } else if (key == "cmd") {
            if (!v.isString()) {
                code = ErrorCode::BadRequest;
                detail = "field \"cmd\" must be a string";
                return false;
            }
            if (v.text == "run")
                out.cmd = Request::Cmd::Run;
            else if (v.text == "stats")
                out.cmd = Request::Cmd::Stats;
            else if (v.text == "ping")
                out.cmd = Request::Cmd::Ping;
            else if (v.text == "shutdown")
                out.cmd = Request::Cmd::Shutdown;
            else {
                code = ErrorCode::BadRequest;
                detail = "unknown cmd \"" + v.text + "\"";
                return false;
            }
        } else if (key == "experiment") {
            if (!v.isString()) {
                code = ErrorCode::BadRequest;
                detail = "field \"experiment\" must be a string";
                return false;
            }
            if (!parseExperimentName(v.text, out.run.experiment)) {
                code = ErrorCode::UnknownExperiment;
                detail = "unknown experiment \"" + v.text +
                         "\" (catalog: fig7 fig8 table1 table3 "
                         "table4 fig13 fig14 fig15 fig16 fig17)";
                return false;
            }
            have_experiment = true;
        } else if (key == "quick") {
            if (!v.isBool()) {
                code = ErrorCode::BadRequest;
                detail = "field \"quick\" must be a boolean";
                return false;
            }
            out.run.quick = v.boolean;
        } else if (key == "refs") {
            if (!takeU64(v, "refs", out.run.refs, code, detail))
                return false;
        } else if (key == "seed") {
            if (!takeU64(v, "seed", out.run.seed, code, detail))
                return false;
        } else if (key == "nodes") {
            if (!takeU64(v, "nodes", out.run.nodes, code, detail))
                return false;
        } else if (key == "sample") {
            if (!v.isString()) {
                code = ErrorCode::BadRequest;
                detail = "field \"sample\" must be a string (the "
                         "--sample plan syntax)";
                return false;
            }
            std::string why;
            if (!tryParseSamplingPlan(v.text, out.run.sample,
                                      &why)) {
                code = ErrorCode::BadParam;
                detail = "field \"sample\": " + why;
                return false;
            }
            out.run.has_sample = true;
        } else if (key == "deadline_ms") {
            if (!takeU64(v, "deadline_ms", out.run.deadline_ms, code,
                         detail))
                return false;
            if (out.run.deadline_ms > max_deadline_ms) {
                code = ErrorCode::BadParam;
                detail = "\"deadline_ms\" of " +
                         std::to_string(out.run.deadline_ms) +
                         " exceeds the maximum of " +
                         std::to_string(max_deadline_ms);
                return false;
            }
        } else if (key == "fault") {
            if (!parseFault(v, out.run, code, detail))
                return false;
        } else {
            code = ErrorCode::BadRequest;
            detail = "unknown field \"" + key + "\"";
            return false;
        }
    }

    if (out.cmd == Request::Cmd::Run) {
        if (!have_experiment) {
            code = ErrorCode::BadRequest;
            detail = "run request is missing \"experiment\"";
            return false;
        }
        if (!validateRun(out.run, code, detail))
            return false;
    }
    return true;
}

std::string
canonicalRunKey(const RunRequest &run)
{
    // Canonicalize through the same resolvers the bench binaries
    // use: {"quick":true} and the explicit refs it implies request
    // identical work and must collapse to one cache entry. The seed
    // and build id always close the key; a sampled request also
    // carries the plan hash, which covers every plan parameter.
    char buf[320];
    char sample[40] = "";
    if (run.has_sample)
        std::snprintf(sample, sizeof(sample), "|sample=%016llx",
                      static_cast<unsigned long long>(
                          samplingPlanHash(run.sample)));

    switch (run.experiment) {
    case Experiment::Fig7:
    case Experiment::Fig8: {
        const MissRateParams params =
            resolveMissRateParams(run.quick, run.refs);
        const MissRateFigure fig = run.experiment == Experiment::Fig7
            ? MissRateFigure::ICache
            : MissRateFigure::DCache;
        std::snprintf(
            buf, sizeof(buf),
            "%s|measured=%llu|warmup=%llu|seed=%llu%s|build=%s",
            missRateFigureName(fig),
            static_cast<unsigned long long>(params.measured_refs),
            static_cast<unsigned long long>(params.warmup_refs),
            static_cast<unsigned long long>(run.seed), sample,
            gitDescribe());
        break;
    }
    case Experiment::Table1:
        std::snprintf(
            buf, sizeof(buf),
            "table1_ss5_vs_ss10|refs=%llu|seed=%llu|build=%s",
            static_cast<unsigned long long>(
                resolveTable1Refs(run.quick, run.refs)),
            static_cast<unsigned long long>(run.seed),
            gitDescribe());
        break;
    case Experiment::Table3:
    case Experiment::Table4: {
        const bool vc = run.experiment == Experiment::Table4;
        const SpecEvalParams params =
            resolveSpecEvalParams(run.quick, run.refs, run.seed);
        std::snprintf(
            buf, sizeof(buf),
            "%s|measured=%llu|warmup=%llu|gspn=%llu|seed=%llu"
            "|build=%s",
            specTableName(vc),
            static_cast<unsigned long long>(
                params.missrate.measured_refs),
            static_cast<unsigned long long>(
                params.missrate.warmup_refs),
            static_cast<unsigned long long>(
                params.gspn_instructions),
            static_cast<unsigned long long>(run.seed),
            gitDescribe());
        break;
    }
    default: {
        const SplashFigure fig = splashFigureOf(run.experiment);
        char cpus[24];
        if (run.nodes == 0)
            std::snprintf(cpus, sizeof(cpus), "all");
        else
            std::snprintf(cpus, sizeof(cpus), "%llu",
                          static_cast<unsigned long long>(run.nodes));
        std::snprintf(
            buf, sizeof(buf),
            "%s|scale=%.9g|cpus=%s|seed=%llu%s|build=%s",
            splashFigureName(fig),
            resolveSplashScale(fig, run.quick), cpus,
            static_cast<unsigned long long>(run.seed), sample,
            gitDescribe());
        break;
    }
    }
    return buf;
}

std::uint64_t
runKeyHash(const RunRequest &run)
{
    return ckpt::fnv1a64(canonicalRunKey(run));
}

std::string
sanitizeBuildId(const std::string &raw,
                const std::string &source_digest)
{
    if (raw.empty())
        return "src-" + source_digest;
    const std::string dirty = "-dirty";
    if (raw.size() >= dirty.size() &&
        raw.compare(raw.size() - dirty.size(), dirty.size(),
                    dirty) == 0)
        return raw + "+" + source_digest;
    return raw;
}

const char *
gitDescribe()
{
    static const std::string id =
        sanitizeBuildId(MEMWALL_GIT_DESCRIBE, MEMWALL_SOURCE_DIGEST);
    return id.c_str();
}

std::string
okResponse(const std::string &id, bool cached,
           const std::string &result_json)
{
    std::string out = "{\"id\":\"" + jsonEscape(id) +
                      "\",\"status\":\"ok\",\"cached\":";
    out += cached ? "true" : "false";
    // "result" last, value spliced verbatim: the member's byte span
    // in the response is exactly the one-shot binary's output.
    out += ",\"result\":";
    out += result_json;
    out += "}";
    return out;
}

std::string
errorResponse(const std::string &id, ErrorCode code,
              const std::string &detail, long retry_after_ms)
{
    std::string out = "{\"id\":\"" + jsonEscape(id) +
                      "\",\"status\":\"error\",\"error\":{\"code\":\"";
    out += errorCodeName(code);
    out += "\",\"detail\":\"" + jsonEscape(detail) + "\"";
    if (retry_after_ms >= 0)
        out += ",\"retry_after_ms\":" + std::to_string(retry_after_ms);
    out += "}}";
    return out;
}

} // namespace server
} // namespace memwall
