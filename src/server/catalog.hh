/**
 * @file
 * The experiment catalog: the bridge between a validated RunRequest
 * and the workloads library.
 *
 * buildCatalogPlan() decomposes a request into independent compute
 * points — the same points, in the same order, with the same
 * per-point seeding as the one-shot bench binary — plus a renderer
 * that turns the completed point results into the binary's
 * --format=json document. The server schedules the points; the
 * catalog guarantees that what gets served is byte-identical to the
 * binary's output.
 *
 * Every point also carries a `unit_key` naming the computation
 * itself (workload, resolved window, per-point seed — but NOT the
 * experiment or request seed when the computation ignores them).
 * Points from different requests with equal unit keys are guaranteed
 * to produce interchangeable results, which is what lets the
 * batching layer run one computation for all of them: fig7 and fig8
 * at the same window both need measureMissRates() per workload — one
 * pass serves both figures. Fault-injected requests get their
 * canonical key appended to every unit key, so a fault can never
 * poison a clean request's shared unit.
 */

#ifndef MEMWALL_SERVER_CATALOG_HH
#define MEMWALL_SERVER_CATALOG_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "server/protocol.hh"

namespace memwall {
namespace server {

/** One independent computation of an experiment. */
struct CatalogPoint
{
    /** Names the computation for cross-request sharing: equal keys
     *  compute equal results (type included). */
    std::string unit_key;
    /** Human-readable point name for failure details
     *  ("workload '130.li'", "lu arch=reference cpus=4", ...). */
    std::string label;
    /** Execute the point. Runs on a pool worker; may throw. The
     *  pointee type is fixed by the experiment and understood by the
     *  plan's render(). */
    std::function<std::shared_ptr<void>()> compute;
};

/** A request decomposed into points plus its document renderer. */
struct CatalogPlan
{
    std::vector<CatalogPoint> points;
    /** Render the finished points (plan order, all non-null) into
     *  the --format=json document, trailing newline included. */
    std::function<std::string(
        const std::vector<std::shared_ptr<void>> &)>
        render;
};

/**
 * Decompose a validated @p run into its catalog plan. The request
 * must have passed parseRequest() validation; @p fault_scope is
 * appended to every unit key when non-empty (the server passes the
 * fault-suffixed canonical key so fault-injected units are never
 * shared).
 */
CatalogPlan buildCatalogPlan(const RunRequest &run,
                             const std::string &fault_scope);

} // namespace server
} // namespace memwall

#endif // MEMWALL_SERVER_CATALOG_HH
