/**
 * @file
 * Crash-safe memo cache for experiment results.
 *
 * Two representations of the same data, each doing the job it is
 * shaped for:
 *
 *  - The authoritative record is an append-only ckpt::SweepJournal
 *    ("results.mwsj"): one fsync'd, CRC-checked record per computed
 *    result, keyed by the FNV-1a hash of the canonical run key. A
 *    SIGKILL'd server replays the journal at startup and resumes
 *    with its memo table intact; a torn tail is truncated exactly as
 *    for a resumable sweep. The journal's run hash covers the git
 *    describe, so a rebuilt binary discards results computed by
 *    different code instead of serving them.
 *
 *  - Each entry is mirrored as a content-addressed MWCP container
 *    ("<key-hash-hex>.mwcp") via ckpt::CheckpointStore: per-entry
 *    CRCs, atomic-rename writes, and a byte cap with oldest-first
 *    eviction. The mirror is for inspection and bounded disk use;
 *    losing a mirror entry never loses a result.
 *
 * The cache compacts its journal when the file outgrows the byte
 * cap: live entries are rewritten oldest-dropped-first into a temp
 * journal that is atomically renamed over the old one — the same
 * crash contract as every other writer in src/checkpoint.
 */

#ifndef MEMWALL_SERVER_RESULT_CACHE_HH
#define MEMWALL_SERVER_RESULT_CACHE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "checkpoint/journal.hh"
#include "checkpoint/store.hh"

namespace memwall {
namespace server {

class ResultCache
{
  public:
    /**
     * Open (or create) the cache in directory @p dir. Existing
     * journal records from the same build are replayed into the memo
     * table. @p cap_bytes bounds both the journal file and the MWCP
     * mirror; 0 = unbounded. Returns false with @p why on I/O errors.
     */
    bool open(const std::string &dir, std::uint64_t cap_bytes,
              std::string *why);

    /** Close the journal (results remain on disk). */
    void close();

    /**
     * The memoized result for @p canonical, or nullptr. The pointer
     * stays valid until the next insert()/close(). Not thread-safe;
     * the server serializes access under a dedicated cache mutex
     * (never its state mutex — insert() can fsync and compact).
     */
    const std::string *lookup(const std::string &canonical) const;

    /**
     * Memoize @p result under @p canonical, durably (journal append
     * + fsync) and mirrored to an MWCP entry. A failure to persist
     * is reported but the in-memory entry is still usable — the
     * result is correct, it just will not survive a restart.
     */
    bool insert(const std::string &canonical,
                const std::string &result, std::string *why);

    /** Entries currently memoized. */
    std::size_t size() const { return entries_.size(); }
    /** Entries replayed from a previous server life at open(). */
    std::size_t recovered() const { return recovered_; }
    /** Torn bytes truncated from the journal tail at open(). */
    std::size_t tornBytes() const { return torn_bytes_; }
    /** Whether open() discarded a journal from a different build. */
    bool discardedForeign() const { return discarded_foreign_; }
    /** Journal compactions performed since open(). */
    std::uint64_t compactions() const { return compactions_; }
    /** Mirror-store counters (eviction, write errors, ...). */
    ckpt::StoreCounters mirrorCounters() const
    {
        return mirror_ ? mirror_->counters() : ckpt::StoreCounters{};
    }

  private:
    struct Entry
    {
        std::string result;
        std::uint64_t seq = 0; ///< insertion order, for compaction
    };

    bool appendRecord(const std::string &canonical,
                      const std::string &result, std::string *why);
    void mirrorEntry(const std::string &canonical,
                     const std::string &result);
    bool compact(std::string *why);

    std::string dir_;
    std::string journal_path_;
    std::uint64_t run_hash_ = 0;
    std::uint64_t cap_bytes_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t journal_bytes_ = 0; ///< approximate file size
    std::uint64_t compactions_ = 0;
    std::size_t recovered_ = 0;
    std::size_t torn_bytes_ = 0;
    bool discarded_foreign_ = false;
    ckpt::SweepJournal journal_;
    std::unique_ptr<ckpt::CheckpointStore> mirror_;
    std::map<std::string, Entry> entries_;
};

} // namespace server
} // namespace memwall

#endif // MEMWALL_SERVER_RESULT_CACHE_HH
