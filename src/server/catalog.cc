#include "server/catalog.hh"

#include <cinttypes>
#include <cstdio>

#include "common/logging.hh"
#include "workloads/missrate.hh"
#include "workloads/spec_suite.hh"
#include "workloads/spec_tables.hh"
#include "workloads/splash_figures.hh"

namespace memwall {
namespace server {

namespace {

/** snprintf into a std::string (unit keys are short and bounded). */
template <typename... Args>
std::string
keyf(const char *fmt, Args... args)
{
    char buf[192];
    const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
    MW_ASSERT(n >= 0 && static_cast<std::size_t>(n) < sizeof(buf),
              "unit key overflow");
    return buf;
}

/** Downcast the erased point results back to their concrete type. */
template <typename T>
std::vector<T>
gather(const std::vector<std::shared_ptr<void>> &results)
{
    std::vector<T> out;
    out.reserve(results.size());
    for (const auto &r : results) {
        MW_ASSERT(r != nullptr, "render before all points finished");
        out.push_back(*std::static_pointer_cast<T>(r));
    }
    return out;
}

CatalogPlan
missRatePlan(const RunRequest &run)
{
    const MissRateParams params =
        resolveMissRateParams(run.quick, run.refs);
    const MissRateFigure fig = run.experiment == Experiment::Fig7
        ? MissRateFigure::ICache
        : MissRateFigure::DCache;
    const bool sampled = run.has_sample;
    const SamplingPlan plan = run.sample;

    CatalogPlan out;
    for (const SpecWorkload &w : specSuite()) {
        CatalogPoint p;
        // No figure and no request seed in the key: one
        // measureMissRates() pass computes both the fig7 and fig8
        // rows for a workload and never draws from the request seed,
        // so fig7/fig8 requests (at any seed) share these units.
        if (sampled)
            p.unit_key = keyf(
                "missrate-sampled|%s|measured=%" PRIu64
                "|warmup=%" PRIu64 "|plan=%016" PRIx64,
                w.name.c_str(), params.measured_refs,
                params.warmup_refs, samplingPlanHash(plan));
        else
            p.unit_key = keyf("missrate|%s|measured=%" PRIu64
                              "|warmup=%" PRIu64,
                              w.name.c_str(), params.measured_refs,
                              params.warmup_refs);
        p.label = "workload '" + w.name + "'";
        const SpecWorkload *wp = &w;
        if (sampled)
            p.compute = [wp, params, plan] {
                return std::make_shared<SampledWorkloadMissRates>(
                    measureMissRatesSampled(*wp, params, plan));
            };
        else
            p.compute = [wp, params] {
                return std::make_shared<WorkloadMissRates>(
                    measureMissRates(*wp, params));
            };
        out.points.push_back(std::move(p));
    }
    if (sampled)
        out.render =
            [fig](const std::vector<std::shared_ptr<void>> &r) {
                return missRateFigureSampledJson(
                    fig, gather<SampledWorkloadMissRates>(r));
            };
    else
        out.render =
            [fig](const std::vector<std::shared_ptr<void>> &r) {
                return missRateFigureJson(fig,
                                          gather<WorkloadMissRates>(r));
            };
    return out;
}

CatalogPlan
table1Plan(const RunRequest &run)
{
    const std::uint64_t refs =
        resolveTable1Refs(run.quick, run.refs);
    CatalogPlan out;
    for (std::size_t i = 0; i < table1_points; ++i) {
        CatalogPoint p;
        // The point is fully determined by (index, refs): the
        // hierarchy replay draws nothing from the request seed.
        p.unit_key = keyf("table1|%zu|refs=%" PRIu64, i, refs);
        p.label = std::string("table1 point '") +
                  table1PointWorkload(i) + " on " +
                  table1PointMachine(i) + "'";
        p.compute = [i, refs] {
            return std::make_shared<MachineRun>(
                runTable1Point(i, refs));
        };
        out.points.push_back(std::move(p));
    }
    out.render = [](const std::vector<std::shared_ptr<void>> &r) {
        return table1Json(gather<MachineRun>(r));
    };
    return out;
}

CatalogPlan
specTablePlan(const RunRequest &run)
{
    const bool vc = run.experiment == Experiment::Table4;
    const SpecEvalParams base =
        resolveSpecEvalParams(run.quick, run.refs, run.seed);
    CatalogPlan out;
    const auto workloads = specTableWorkloads();
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const SpecWorkload *w = workloads[i];
        SpecEvalParams p = base;
        // The same splitmix64 per-point stream ParallelSweep hands
        // the bench binary's point i — reproducing its Monte-Carlo
        // draws exactly.
        p.seed = specTablePointSeed(run.seed, i);
        CatalogPoint point;
        point.unit_key = keyf(
            "spec|%s|vc=%d|measured=%" PRIu64 "|warmup=%" PRIu64
            "|gspn=%" PRIu64 "|pointseed=%" PRIu64,
            w->name.c_str(), vc ? 1 : 0,
            base.missrate.measured_refs, base.missrate.warmup_refs,
            base.gspn_instructions, p.seed);
        point.label = "workload '" + w->name + "'";
        point.compute = [w, vc, p] {
            return std::make_shared<SpecEstimate>(
                runSpecTablePoint(*w, vc, p));
        };
        out.points.push_back(std::move(point));
    }
    out.render = [vc](const std::vector<std::shared_ptr<void>> &r) {
        return specTableJson(vc, gather<SpecEstimate>(r));
    };
    return out;
}

SplashFigure
splashFigureOf(Experiment exp)
{
    switch (exp) {
    case Experiment::Fig13Lu: return SplashFigure::Fig13Lu;
    case Experiment::Fig14Mp3d: return SplashFigure::Fig14Mp3d;
    case Experiment::Fig15Ocean: return SplashFigure::Fig15Ocean;
    case Experiment::Fig16Water: return SplashFigure::Fig16Water;
    default: return SplashFigure::Fig17Pthor;
    }
}

CatalogPlan
splashPlan(const RunRequest &run)
{
    const SplashFigure fig = splashFigureOf(run.experiment);
    const double scale = resolveSplashScale(fig, run.quick);
    const std::uint64_t nodes = run.nodes;
    const bool sampled = run.has_sample;
    const SamplingPlan plan = run.sample;

    CatalogPlan out;
    for (const std::string &arch : splashArchs()) {
        for (unsigned ncpus : splashCpuCounts(nodes)) {
            CatalogPoint p;
            // The kernels seed from the problem, not the request
            // seed, so the unit is (kernel, arch, cpus, scale) — a
            // fig13 full-axis sweep and a fig13 --nodes=4 run share
            // their common point.
            if (sampled)
                p.unit_key = keyf(
                    "splash-sampled|%s|%s|cpus=%u|scale=%.9g"
                    "|plan=%016" PRIx64,
                    splashFigureKernel(fig), arch.c_str(), ncpus,
                    scale, samplingPlanHash(plan));
            else
                p.unit_key =
                    keyf("splash|%s|%s|cpus=%u|scale=%.9g",
                         splashFigureKernel(fig), arch.c_str(),
                         ncpus, scale);
            p.label = std::string(splashFigureKernel(fig)) +
                      " arch=" + arch +
                      " cpus=" + std::to_string(ncpus);
            p.compute = [fig, arch, ncpus, scale, sampled, plan] {
                return std::make_shared<SplashResult>(
                    runSplashFigurePoint(fig, arch, ncpus, scale,
                                         sampled ? &plan : nullptr));
            };
            out.points.push_back(std::move(p));
        }
    }
    if (sampled)
        out.render = [fig, scale, nodes](
                         const std::vector<std::shared_ptr<void>> &r) {
            return splashFigureSampledJson(fig, scale, nodes,
                                           gather<SplashResult>(r));
        };
    else
        out.render = [fig, scale, nodes](
                         const std::vector<std::shared_ptr<void>> &r) {
            return splashFigureJson(fig, scale, nodes,
                                    gather<SplashResult>(r));
        };
    return out;
}

} // namespace

CatalogPlan
buildCatalogPlan(const RunRequest &run,
                 const std::string &fault_scope)
{
    CatalogPlan plan;
    switch (run.experiment) {
    case Experiment::Fig7:
    case Experiment::Fig8:
        plan = missRatePlan(run);
        break;
    case Experiment::Table1:
        plan = table1Plan(run);
        break;
    case Experiment::Table3:
    case Experiment::Table4:
        plan = specTablePlan(run);
        break;
    default:
        plan = splashPlan(run);
        break;
    }
    if (!fault_scope.empty())
        // Scope fault-injected units to their own request: the
        // injected failures and hangs must never leak into a clean
        // request's shared computation.
        for (CatalogPoint &p : plan.points)
            p.unit_key += "|scope=" + fault_scope;
    return plan;
}

} // namespace server
} // namespace memwall
