/**
 * @file
 * The resident experiment service (mw-server).
 *
 * One process owns the Unix-domain socket, the shared ThreadPool and
 * the crash-safe ResultCache; clients frame JSON requests at it and
 * get figure documents back. The interesting parts are the failure
 * paths:
 *
 *  - Deduplication: concurrent requests for the same canonical run
 *    key share ONE computation. The first requester becomes the
 *    owner and enqueues the run; later requesters join the in-flight
 *    entry as waiters. A completed result is journaled into the
 *    cache BEFORE the in-flight entry is erased, so the key is
 *    always visible in one of the two and a request either joins the
 *    computation or hits the cache — never recomputes. The journal
 *    fsync (and any compaction) runs under a dedicated cache mutex,
 *    never under the state mutex, so request handling and the
 *    watchdog never stall behind disk I/O.
 *
 *  - Batching: enqueued runs are decomposed into catalog points
 *    (see server/catalog.hh) by a batcher thread that drains the
 *    queue in one pass — optionally after a short batch window — and
 *    coalesces points with equal unit keys across DISTINCT in-flight
 *    keys into one pool task each. A fig7 and a fig8 request at the
 *    same window need the same per-workload miss-rate pass; batched
 *    together, that pass runs once and both documents render from
 *    it. Completion distributes the shared result to every
 *    subscribing request; a request is finalized when its last point
 *    lands, exactly once, whether or not any point was shared.
 *
 *  - Deadlines: a waiter whose deadline_ms expires gets a
 *    deadline_exceeded error immediately; the computation itself is
 *    never torn down (the pool has no preemption and the result is
 *    still worth caching) — it finishes in the background and the
 *    next request is a cache hit.
 *
 *  - Retry: a workload point that throws is retried with exponential
 *    backoff (saturatingBackoffMs(backoff_base_ms, attempt), capped
 *    at one minute) up to max_retries times; only a point that keeps
 *    failing fails the request (worker_failed).
 *
 *  - Admission control: over max_connections the connection is
 *    answered with one overloaded error (with retry_after_ms) and
 *    closed; over max_inflight a run request is shed the same way.
 *
 *  - Watchdog: a computation still running wedge_grace_ms past its
 *    start is quarantined — new requests for that key fail fast with
 *    "quarantined" instead of piling onto a wedged computation. If
 *    the computation ever does finish, the key is unquarantined and
 *    the result cached like any other.
 *
 *  - Crash recovery: all completed results live in the ResultCache
 *    journal; a SIGKILL'd server replays it on restart and serves
 *    the same bytes as cache hits.
 *
 * Fault injection (the "fault" request field) is honoured only when
 * Options::allow_test_faults is set — it exists so the torture bench
 * can exercise every path above deterministically.
 */

#ifndef MEMWALL_SERVER_SERVER_HH
#define MEMWALL_SERVER_SERVER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "harness/thread_pool.hh"
#include "server/protocol.hh"
#include "server/result_cache.hh"

namespace memwall {
namespace server {

/**
 * base_ms << exponent with saturation at one minute. Every retry
 * sleep and retry_after_ms hint goes through this, so a configurable
 * --max-retries can never push the shift to the width of the type
 * (undefined behaviour at >= 64) or produce an hours-long sleep.
 */
std::uint64_t saturatingBackoffMs(std::uint64_t base_ms,
                                  unsigned exponent);

/** Server configuration; defaults suit interactive use. */
struct ServerOptions
{
    std::string socket_path;
    std::string cache_dir;
    unsigned jobs = 0; ///< pool workers; 0 = hardware default
    int backlog = 64;
    std::uint64_t cache_cap_bytes = 0; ///< 0 = unbounded
    std::uint64_t max_connections = 32;
    std::uint64_t max_inflight = 8;
    unsigned max_retries = 2;          ///< extra attempts per point
    std::uint64_t backoff_base_ms = 10;
    std::uint64_t wedge_grace_ms = 30'000; ///< no-unit-progress stall
    std::uint64_t watchdog_interval_ms = 100;
    /** Batcher linger before draining the run queue: 0 drains
     *  immediately (requests still coalesce while the pool is
     *  busy); >0 trades latency for larger batches. */
    std::uint64_t batch_window_ms = 0;
    bool allow_test_faults = false;
};

/** Monotonic counters, snapshotted for the "stats" command. */
struct ServerCounters
{
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t computed = 0;      ///< figure runs actually executed
    std::uint64_t cache_hits = 0;
    std::uint64_t dedup_joined = 0;  ///< requests that shared a run
    std::uint64_t shed = 0;          ///< overload rejections
    std::uint64_t bad_requests = 0;  ///< schema/frame/json rejections
    std::uint64_t deadline_misses = 0;
    std::uint64_t retries = 0;       ///< point attempts after the first
    std::uint64_t worker_failures = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t unquarantines = 0;
    std::uint64_t batches = 0;       ///< batcher pool passes
    std::uint64_t batched_keys = 0;  ///< runs drained into a batch
    std::uint64_t points_computed = 0; ///< unit computations executed
    std::uint64_t points_shared = 0; ///< unit results reused in-batch
};

class MwServer
{
  public:
    explicit MwServer(ServerOptions opt) : opt_(std::move(opt)) {}
    ~MwServer();

    MwServer(const MwServer &) = delete;
    MwServer &operator=(const MwServer &) = delete;

    /**
     * Open the cache, bind the socket (reclaiming a stale file from
     * a killed server) and start the pool and watchdog. Returns
     * false with @p why on failure.
     */
    bool start(std::string *why);

    /** Accept-and-serve until requestStop(); then drain and clean up. */
    void run();

    /**
     * Ask the accept loop to exit. Async-signal-safe (one write(2)
     * to a self-pipe); the natural SIGTERM/SIGINT handler body.
     */
    void requestStop();

    /** The socket path actually bound (for tests). */
    const std::string &socketPath() const { return opt_.socket_path; }

    /** Counter snapshot (thread-safe). */
    ServerCounters counters() const;

  private:
    using Clock = std::chrono::steady_clock;

    /** One deduplicated computation in flight. */
    struct Inflight
    {
        // All fields are guarded by MwServer::mu_; the cv waits on
        // that same mutex. One lock for the whole server keeps the
        // dedup/cache/quarantine transitions atomic and TSan-clean.
        std::condition_variable cv;
        enum class State { Running, Done, Failed } state =
            State::Running;
        std::string result;       ///< figure JSON when Done
        std::string error_detail; ///< when Failed
        /** Last time any compute unit delivered a result to this
         *  entry (its arrival time until the first unit lands). The
         *  watchdog quarantines on a stall of this timestamp, not on
         *  total age: a large batched job that is steadily finishing
         *  units is slow, not wedged. */
        Clock::time_point last_progress;
        bool quarantined = false;
        bool cacheable = true; ///< fault-injected runs are not
    };

    /** Scatter/gather context for one experiment computation. */
    struct ComputeJob;
    /** One deduplicated unit of work inside a batch pass. */
    struct ComputeUnit;

    struct Connection
    {
        int fd = -1;
        std::thread thread;
    };

    void acceptLoop();
    void serveConnection(std::uint64_t conn_id, int fd);
    /** Handle one request payload; returns the response frame.
     *  Sets @p close_after for shutdown. */
    std::string handlePayload(const std::string &payload,
                              bool &close_after);
    std::string handleRun(const Request &req);
    std::string statsJson();
    /** Drain the run queue into batches; coalesce unit keys across
     *  the batch and submit one pool task per unique unit. */
    void batcherLoop();
    /** One compute unit with retry/backoff; runs on the pool.
     *  Distributes the result to every subscribing job. */
    void runUnit(const std::shared_ptr<ComputeUnit> &unit);
    /** Last-point completion: journal the result (under cache_mu_),
     *  then publish, unquarantine and notify (under mu_). Caller
     *  holds no locks. */
    void finalize(const std::shared_ptr<ComputeJob> &job);
    void watchdogLoop();
    /** Join exited connection threads (no locks held on entry). */
    void reapFinishedConnections();
    /** Idempotent teardown shared by run() and the destructor. */
    void shutdownInternal();

    ServerOptions opt_;
    int listen_fd_ = -1;
    int stop_pipe_[2] = {-1, -1};
    bool started_ = false;

    std::unique_ptr<ThreadPool> pool_;

    mutable std::mutex mu_;
    std::condition_variable stop_cv_; ///< wakes the watchdog at stop
    bool stopping_ = false;           // guarded by mu_
    // Guards cache_. Held for the journal fsync and compaction, so
    // it is NEVER acquired while holding mu_ (and vice versa): a
    // thread drops one before taking the other.
    mutable std::mutex cache_mu_;
    ResultCache cache_; // guarded by cache_mu_ once threads exist
    std::map<std::string, std::shared_ptr<Inflight>> inflight_;
    /** Last time ANY unit resolved, pool-wide; guarded by mu_. A
     *  request queued behind a busy pool refreshes no per-entry
     *  stamp, yet it is waiting, not wedged — the watchdog only
     *  quarantines when the pool as a whole has also stalled. */
    Clock::time_point last_unit_done_;
    std::set<std::string> quarantined_;
    ServerCounters counters_;
    /** Runs awaiting a batch pass; guarded by mu_. */
    std::vector<std::shared_ptr<ComputeJob>> pending_;
    std::condition_variable batch_cv_; ///< wakes the batcher

    std::map<std::uint64_t, Connection> connections_;
    std::vector<std::uint64_t> finished_connections_;
    std::uint64_t next_conn_id_ = 0;

    std::thread watchdog_;
    std::thread batcher_;
};

} // namespace server
} // namespace memwall

#endif // MEMWALL_SERVER_SERVER_HH
