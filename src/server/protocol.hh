/**
 * @file
 * Request/response schema for the experiment service.
 *
 * A request is one JSON object per frame:
 *
 *     {
 *       "cmd": "run" | "stats" | "ping" | "shutdown",   (default "run")
 *       "id": "<opaque string, echoed back>",            (optional)
 *       "experiment": "fig7" | "fig8",                   (run only)
 *       "quick": true|false,                             (default false)
 *       "refs": <uint>,                                  (default 0 = auto)
 *       "seed": <uint>,                                  (default 42)
 *       "deadline_ms": <uint>,             (default 0 = none; capped)
 *       "fault": {"fail_points": <uint>, "hang_ms": <uint>}
 *     }
 *
 * Unknown top-level or fault fields are rejected by name — a typo'd
 * "qick" must not silently run the full-size experiment. "fault" is
 * only honoured when the server runs with --allow-test-faults; it
 * exists for the torture harness and makes a request non-cacheable.
 *
 * Responses (one frame each):
 *
 *     {"id":"...","status":"ok","cached":bool,"result":<RAW JSON>}
 *     {"id":"...","status":"error",
 *      "error":{"code":"<name>","detail":"...","retry_after_ms":N}}
 *
 * "result" is deliberately the LAST member: the figure document is
 * spliced in verbatim (the same bytes missRateFigureJson produced,
 * trailing newline included) so a client that extracts the member's
 * byte span gets output byte-identical to the one-shot binary.
 */

#ifndef MEMWALL_SERVER_PROTOCOL_HH
#define MEMWALL_SERVER_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "workloads/missrate_figures.hh"

namespace memwall {
namespace server {

/** Named error codes; the wire "code" string is errorCodeName(). */
enum class ErrorCode {
    BadFrame,        ///< unparseable frame header (connection closes)
    Oversized,       ///< frame over the size cap (stream re-synced)
    BadJson,         ///< payload is not valid strict JSON
    BadRequest,      ///< schema violation (unknown/missing/mistyped)
    UnknownExperiment, ///< "experiment" not fig7/fig8
    BadParam,        ///< a field parsed but its value is unusable
    FaultInjectionDisabled, ///< "fault" without --allow-test-faults
    Overloaded,      ///< admission control shed the request
    DeadlineExceeded, ///< computation missed the request deadline
    WorkerFailed,    ///< computation kept failing after retries
    Quarantined,     ///< key wedged earlier; watchdog fenced it off
    ShuttingDown,    ///< server is draining
    Internal,        ///< invariant failure inside the server
};

const char *errorCodeName(ErrorCode code);

/**
 * Upper bound on "deadline_ms": one day. Larger values are rejected
 * with bad_param at parse time — std::chrono::milliseconds has a
 * signed 64-bit representation, so an unchecked client value near
 * 2^63 would wrap "arrival + deadline" into the past.
 */
constexpr std::uint64_t max_deadline_ms = 86'400'000;

/** What a "run" request asks for, after validation. */
struct RunRequest
{
    MissRateFigure figure = MissRateFigure::ICache;
    bool quick = false;
    std::uint64_t refs = 0; ///< 0 = figure default for quick/full
    std::uint64_t seed = 42;
    std::uint64_t deadline_ms = 0; ///< 0 = no deadline
    // Fault injection (torture harness only; gated server-side).
    bool has_fault = false;
    std::uint64_t fault_fail_points = 0; ///< first N points throw
    std::uint64_t fault_hang_ms = 0;     ///< each point sleeps this
};

/** A parsed request of any command. */
struct Request
{
    enum class Cmd { Run, Stats, Ping, Shutdown };
    Cmd cmd = Cmd::Run;
    std::string id; ///< echoed verbatim in the response
    RunRequest run; ///< valid when cmd == Run
};

/**
 * Parse and validate one request payload. On failure returns false
 * and fills @p code / @p detail for an error response; @p out.id is
 * still populated when the payload carried a usable "id" so the
 * error can be correlated.
 */
bool parseRequest(const std::string &payload, Request &out,
                  ErrorCode &code, std::string &detail);

/**
 * Canonical description of a run: resolved parameters (explicit refs
 * and quick-mode defaults collapse to the same string), the seed, and
 * the binary's git describe. Hashing this is the cache key; baking
 * the build id in means a rebuilt server never serves results
 * computed by different code.
 */
std::string canonicalRunKey(const RunRequest &run);

/** FNV-1a of canonicalRunKey — the cache/dedup key. */
std::uint64_t runKeyHash(const RunRequest &run);

/** The git describe string baked into this binary at build time. */
const char *gitDescribe();

/** Build the success envelope around raw @p result_json bytes. */
std::string okResponse(const std::string &id, bool cached,
                       const std::string &result_json);

/** Build the error envelope. @p retry_after_ms < 0 omits the field. */
std::string errorResponse(const std::string &id, ErrorCode code,
                          const std::string &detail,
                          long retry_after_ms = -1);

} // namespace server
} // namespace memwall

#endif // MEMWALL_SERVER_PROTOCOL_HH
