/**
 * @file
 * Request/response schema for the experiment service.
 *
 * A request is one JSON object per frame:
 *
 *     {
 *       "cmd": "run" | "stats" | "ping" | "shutdown",   (default "run")
 *       "id": "<opaque string, echoed back>",            (optional)
 *       "experiment": "fig7" | "fig8" | "table1" | "table3" |
 *                     "table4" | "fig13" | "fig14" | "fig15" |
 *                     "fig16" | "fig17",                 (run only)
 *       "quick": true|false,                             (default false)
 *       "refs": <uint>,                    (default 0 = auto; not splash)
 *       "seed": <uint>,                                  (default 42)
 *       "sample": "U=..,W=..,k=..[,..]",   (fig7/fig8/splash only)
 *       "nodes": <uint 1..16>,             (splash only; 0 = full axis)
 *       "deadline_ms": <uint>,             (default 0 = none; capped)
 *       "fault": {"fail_points": <uint>, "hang_ms": <uint>}
 *     }
 *
 * Unknown top-level or fault fields are rejected by name — a typo'd
 * "qick" must not silently run the full-size experiment — and fields
 * that do not apply to the requested experiment (refs on a SPLASH
 * figure, sample on a table) are rejected rather than ignored.
 * "fault" is only honoured when the server runs with
 * --allow-test-faults; it exists for the torture harness and makes a
 * request non-cacheable.
 *
 * Responses (one frame each):
 *
 *     {"id":"...","status":"ok","cached":bool,"result":<RAW JSON>}
 *     {"id":"...","status":"error",
 *      "error":{"code":"<name>","detail":"...","retry_after_ms":N}}
 *
 * "result" is deliberately the LAST member: the experiment document
 * is spliced in verbatim (the same bytes the one-shot binary's
 * --format=json renderer produced, trailing newline included) so a
 * client that extracts the member's byte span gets output
 * byte-identical to that binary.
 */

#ifndef MEMWALL_SERVER_PROTOCOL_HH
#define MEMWALL_SERVER_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "sampling/plan.hh"
#include "workloads/missrate_figures.hh"

namespace memwall {
namespace server {

/** Named error codes; the wire "code" string is errorCodeName(). */
enum class ErrorCode {
    BadFrame,        ///< unparseable frame header (connection closes)
    Oversized,       ///< frame over the size cap (stream re-synced)
    BadJson,         ///< payload is not valid strict JSON
    BadRequest,      ///< schema violation (unknown/missing/mistyped)
    UnknownExperiment, ///< "experiment" not in the catalog
    BadParam,        ///< a field parsed but its value is unusable
    FaultInjectionDisabled, ///< "fault" without --allow-test-faults
    Overloaded,      ///< admission control shed the request
    DeadlineExceeded, ///< computation missed the request deadline
    WorkerFailed,    ///< computation kept failing after retries
    Quarantined,     ///< key wedged earlier; watchdog fenced it off
    ShuttingDown,    ///< server is draining
    Internal,        ///< invariant failure inside the server
};

const char *errorCodeName(ErrorCode code);

/**
 * The experiment catalog: every table and figure the one-shot bench
 * binaries regenerate is addressable by the wire names below. Each
 * entry resolves to the same parameter defaults, the same point
 * schedule (including per-point seeding) and the same JSON renderer
 * as its binary, so served bytes are byte-identical to
 * `<binary> --format json`.
 */
enum class Experiment {
    Fig7,       ///< fig7_icache_miss
    Fig8,       ///< fig8_dcache_miss
    Table1,     ///< table1_ss5_vs_ss10
    Table3,     ///< table3_spec_estimates
    Table4,     ///< table4_spec_estimates_vc
    Fig13Lu,    ///< fig13_lu
    Fig14Mp3d,  ///< fig14_mp3d
    Fig15Ocean, ///< fig15_ocean
    Fig16Water, ///< fig16_water
    Fig17Pthor, ///< fig17_pthor
};

/** Wire name of @p exp ("fig7", "table3", "fig15", ...). */
const char *experimentName(Experiment exp);

/** Reverse of experimentName(); false if @p name is not catalogued. */
bool parseExperimentName(const std::string &name, Experiment &out);

/** True for the five SPLASH figures (fig13..fig17). */
bool experimentIsSplash(Experiment exp);

/** True for the miss-rate figures (fig7/fig8). */
bool experimentIsMissRate(Experiment exp);

/** True when "sample" applies to @p exp (miss-rate + SPLASH). */
bool experimentAcceptsSample(Experiment exp);

/**
 * Upper bound on "deadline_ms": one day. Larger values are rejected
 * with bad_param at parse time — std::chrono::milliseconds has a
 * signed 64-bit representation, so an unchecked client value near
 * 2^63 would wrap "arrival + deadline" into the past.
 */
constexpr std::uint64_t max_deadline_ms = 86'400'000;

/** What a "run" request asks for, after validation. */
struct RunRequest
{
    Experiment experiment = Experiment::Fig7;
    bool quick = false;
    std::uint64_t refs = 0; ///< 0 = experiment default for quick/full
    std::uint64_t seed = 42;
    std::uint64_t nodes = 0; ///< SPLASH only; 0 = full {1,2,4,8,16}
    bool has_sample = false;
    SamplingPlan sample; ///< valid when has_sample
    std::uint64_t deadline_ms = 0; ///< 0 = no deadline
    // Fault injection (torture harness only; gated server-side).
    bool has_fault = false;
    std::uint64_t fault_fail_points = 0; ///< first N points throw
    std::uint64_t fault_hang_ms = 0;     ///< each point sleeps this
};

/** A parsed request of any command. */
struct Request
{
    enum class Cmd { Run, Stats, Ping, Shutdown };
    Cmd cmd = Cmd::Run;
    std::string id; ///< echoed verbatim in the response
    RunRequest run; ///< valid when cmd == Run
};

/**
 * Parse and validate one request payload. On failure returns false
 * and fills @p code / @p detail for an error response; @p out.id is
 * still populated when the payload carried a usable "id" so the
 * error can be correlated.
 */
bool parseRequest(const std::string &payload, Request &out,
                  ErrorCode &code, std::string &detail);

/**
 * Canonical description of a run: the experiment, its resolved
 * parameters (explicit refs and quick-mode defaults collapse to the
 * same string), the seed, the sampling-plan hash when sampled, and
 * the binary's build id. Hashing this is the cache key; baking the
 * build id in means a rebuilt server never serves results computed
 * by different code.
 */
std::string canonicalRunKey(const RunRequest &run);

/** FNV-1a of canonicalRunKey — the cache/dedup key. */
std::uint64_t runKeyHash(const RunRequest &run);

/**
 * Collapse a raw `git describe --always --dirty` string into a build
 * id that never aliases distinct code. @p source_digest is a hash of
 * the source tree contents:
 *  - raw empty (git missing, not a repo, describe failed): the id is
 *    "src-<digest>" — two different source trees without git history
 *    must not collapse to one constant;
 *  - raw ending in "-dirty": the id is "<raw>+<digest>" — two dirty
 *    worktrees at the same commit differ in uncommitted edits, which
 *    only the content digest can tell apart;
 *  - otherwise raw names the commit exactly and is used verbatim.
 */
std::string sanitizeBuildId(const std::string &raw,
                            const std::string &source_digest);

/** The sanitized build id baked into this binary at build time. */
const char *gitDescribe();

/** Build the success envelope around raw @p result_json bytes. */
std::string okResponse(const std::string &id, bool cached,
                       const std::string &result_json);

/** Build the error envelope. @p retry_after_ms < 0 omits the field. */
std::string errorResponse(const std::string &id, ErrorCode code,
                          const std::string &detail,
                          long retry_after_ms = -1);

} // namespace server
} // namespace memwall

#endif // MEMWALL_SERVER_PROTOCOL_HH
