#include "io/refresh.hh"

#include "checkpoint/state_io.hh"
#include "common/logging.hh"

namespace memwall {

RefreshAgent::RefreshAgent(RefreshConfig config,
                           const DramConfig &dram)
    : config_(config), banks_(dram.banks),
      column_bytes_(dram.column_bytes)
{
    MW_ASSERT(config_.rows_per_bank > 0, "need at least one row");
    MW_ASSERT(config_.max_per_call > 0,
              "refresh drain cap must be positive");
    const double window_cycles =
        config_.interval_ms * 1e-3 * config_.clock_mhz * 1e6;
    const double total_rows =
        static_cast<double>(config_.rows_per_bank) * banks_;
    interval_ = window_cycles / total_rows;
    MW_ASSERT(interval_ >= 1.0,
              "refresh rate exceeds one per cycle");
}

unsigned
RefreshAgent::drainUpTo(Dram &dram, Tick now)
{
    unsigned issued = 0;
    while (next_due_ <= static_cast<double>(now) &&
           issued < config_.max_per_call) {
        // Rotate across banks; the row within the bank is
        // irrelevant to timing, so address by bank stride.
        const std::uint32_t bank =
            static_cast<std::uint32_t>(rotor_ % banks_);
        const std::uint32_t row = static_cast<std::uint32_t>(
            rotor_ / banks_ % config_.rows_per_bank);
        const Addr addr =
            static_cast<Addr>(bank) * column_bytes_ +
            row * static_cast<Addr>(banks_) * column_bytes_;
        dram.access(static_cast<Tick>(next_due_), addr);
        issued_.inc();
        ++issued;
        ++rotor_;
        if (observer_)
            observer_->onRefresh(bank, row,
                                 static_cast<Tick>(next_due_));
        next_due_ += interval_;
    }
    return issued;
}

double
RefreshAgent::overheadFraction(const DramConfig &dram) const
{
    const double busy = static_cast<double>(dram.access_cycles +
                                            dram.precharge_cycles);
    return busy / (interval_ * banks_);
}

void
RefreshAgent::saveState(ckpt::Encoder &e) const
{
    e.varint(banks_);
    e.varint(config_.rows_per_bank);
    e.f64(next_due_);
    e.varint(rotor_);
    ckpt::putCounter(e, issued_);
}

void
RefreshAgent::loadState(ckpt::Decoder &d)
{
    const std::uint64_t banks = d.varint();
    const std::uint64_t rows = d.varint();
    if (d.failed())
        return;
    if (banks != banks_ || rows != config_.rows_per_bank) {
        d.fail("refresh agent: checkpoint geometry mismatch");
        return;
    }
    const double next_due = d.f64();
    const std::uint64_t rotor = d.varint();
    Counter issued;
    ckpt::getCounter(d, issued);
    if (d.failed())
        return;
    next_due_ = next_due;
    rotor_ = rotor;
    issued_ = issued;
}

} // namespace memwall
