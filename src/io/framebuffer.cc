#include "io/framebuffer.hh"

#include "common/logging.hh"

namespace memwall {

FramebufferAgent::FramebufferAgent(FramebufferConfig config)
    : config_(config)
{
    MW_ASSERT(config_.frameBytes() > 0, "empty frame buffer");
    const double columns_per_frame =
        static_cast<double>(config_.frameBytes()) / 512.0;
    const double cycles_per_frame =
        config_.clock_mhz * 1e6 / config_.refresh_hz;
    interval_ = cycles_per_frame / columns_per_frame;
    MW_ASSERT(interval_ > 0.0, "scan-out faster than the clock");
}

unsigned
FramebufferAgent::drainUpTo(Dram &dram, Tick now)
{
    // If scan-out starts long after t=0 (e.g. the display was
    // attached mid-run), skip whole missed frames instead of
    // replaying them.
    const double cycles_per_frame =
        interval_ * (static_cast<double>(config_.frameBytes()) /
                     512.0);
    if (static_cast<double>(now) - next_due_ > cycles_per_frame)
        next_due_ = static_cast<double>(now) -
                    cycles_per_frame;

    unsigned issued = 0;
    while (next_due_ <= static_cast<double>(now)) {
        const Addr addr = config_.base + scan_offset_;
        const DramResult res =
            dram.access(static_cast<Tick>(next_due_), addr);
        queued_.inc(res.queued);
        fetched_.inc();
        ++issued;
        scan_offset_ += 512;
        if (scan_offset_ >= config_.frameBytes())
            scan_offset_ = 0;  // vertical retrace
        next_due_ += interval_;
    }
    return issued;
}

} // namespace memwall
