/**
 * @file
 * DRAM refresh agent.
 *
 * A 256 Mbit DRAM must refresh every row periodically (the classic
 * 64 ms retention window). Integration does not remove this tax:
 * refresh operations occupy banks exactly like accesses, and on a
 * device whose banks double as the processor's caches they briefly
 * steal the memory pipeline. The agent issues distributed refresh
 * (one row at a time, rotating across banks) and shares the Dram
 * with the CPU and the frame buffer.
 */

#ifndef MEMWALL_IO_REFRESH_HH
#define MEMWALL_IO_REFRESH_HH

#include <cstdint>

#include "checkpoint/codec.hh"
#include "common/stats.hh"
#include "mem/dram.hh"

namespace memwall {

/** Retention and geometry parameters. */
struct RefreshConfig
{
    /** Retention window in milliseconds. */
    double interval_ms = 64.0;
    /** Rows per bank needing refresh within the window. */
    std::uint32_t rows_per_bank = 8192;
    /** Core clock, MHz. */
    double clock_mhz = 200.0;
    /**
     * Cap on refreshes issued by a single drainUpTo() call. A caller
     * that jumps far ahead in time (a simulator fast-forward, a
     * resumed checkpoint) would otherwise spin the drain loop for
     * millions of iterations; capped, the deficit carries forward and
     * subsequent calls catch up incrementally. 64 Ki refreshes cover
     * a ~6.4 M-cycle jump at the default rate — far beyond anything
     * the normal per-access drain cadence produces.
     */
    std::uint32_t max_per_call = 64 * 1024;
};

/**
 * Callback invoked once per refreshed row. The memory scrubber rides
 * this hook: every row the refresh agent touches anyway gets a free
 * ECC decode pass (see src/fault/scrub.hh).
 */
class RefreshObserver
{
  public:
    virtual ~RefreshObserver() = default;

    /** Row @p row of bank @p bank was refreshed at time @p when. */
    virtual void onRefresh(std::uint32_t bank, std::uint32_t row,
                           Tick when) = 0;
};

/** Distributed-refresh generator. */
class RefreshAgent
{
  public:
    RefreshAgent(RefreshConfig config, const DramConfig &dram);

    /** Cycles between consecutive row refreshes (any bank). */
    double refreshInterval() const { return interval_; }

    /**
     * Issue refreshes due at or before @p now — at most
     * config.max_per_call of them; any remaining deficit is issued
     * by later calls.
     * @return the number of refreshes issued by this call.
     */
    unsigned drainUpTo(Dram &dram, Tick now);

    /** Attach @p obs (may be null) to see every refreshed row. */
    void setObserver(RefreshObserver *obs) { observer_ = obs; }

    std::uint64_t refreshesIssued() const
    {
        return issued_.value();
    }

    /** Fraction of total bank time refresh consumes (analytic). */
    double overheadFraction(const DramConfig &dram) const;

    /** Serialize the refresh cursor (due time, rotor, counter). */
    void saveState(ckpt::Encoder &e) const;

    /** All-or-nothing restore; fails the decoder on mismatch. */
    void loadState(ckpt::Decoder &d);

  private:
    RefreshConfig config_;
    std::uint32_t banks_;
    std::uint32_t column_bytes_;
    double interval_;
    double next_due_ = 0.0;
    std::uint64_t rotor_ = 0;
    Counter issued_;
    RefreshObserver *observer_ = nullptr;
};

} // namespace memwall

#endif // MEMWALL_IO_REFRESH_HH
