/**
 * @file
 * DRAM refresh agent.
 *
 * A 256 Mbit DRAM must refresh every row periodically (the classic
 * 64 ms retention window). Integration does not remove this tax:
 * refresh operations occupy banks exactly like accesses, and on a
 * device whose banks double as the processor's caches they briefly
 * steal the memory pipeline. The agent issues distributed refresh
 * (one row at a time, rotating across banks) and shares the Dram
 * with the CPU and the frame buffer.
 */

#ifndef MEMWALL_IO_REFRESH_HH
#define MEMWALL_IO_REFRESH_HH

#include <cstdint>

#include "common/stats.hh"
#include "mem/dram.hh"

namespace memwall {

/** Retention and geometry parameters. */
struct RefreshConfig
{
    /** Retention window in milliseconds. */
    double interval_ms = 64.0;
    /** Rows per bank needing refresh within the window. */
    std::uint32_t rows_per_bank = 8192;
    /** Core clock, MHz. */
    double clock_mhz = 200.0;
};

/** Distributed-refresh generator. */
class RefreshAgent
{
  public:
    RefreshAgent(RefreshConfig config, const DramConfig &dram);

    /** Cycles between consecutive row refreshes (any bank). */
    double refreshInterval() const { return interval_; }

    /** Issue all refreshes due at or before @p now. */
    unsigned drainUpTo(Dram &dram, Tick now);

    std::uint64_t refreshesIssued() const
    {
        return issued_.value();
    }

    /** Fraction of total bank time refresh consumes (analytic). */
    double overheadFraction(const DramConfig &dram) const;

  private:
    RefreshConfig config_;
    std::uint32_t banks_;
    std::uint32_t column_bytes_;
    double interval_;
    double next_due_ = 0.0;
    std::uint64_t rotor_ = 0;
    Counter issued_;
};

} // namespace memwall

#endif // MEMWALL_IO_REFRESH_HH
