/**
 * @file
 * Frame-buffer I/O agent (Section 8).
 *
 * "Among the more interesting capabilities of such a system is to
 * build a framebuffer that retrieves its data from the main memory
 * as it refreshes a screen or LCD panel. This is made feasible by
 * the high memory bandwidth that is available internally."
 *
 * The agent scans a frame-buffer region of the device's DRAM at the
 * display refresh rate, fetching one 512-byte column per transaction
 * (the natural unit: a whole column moves to a buffer in one array
 * access). It shares the banks with the CPU, so the interesting
 * questions are (a) how much of the internal bandwidth a display
 * consumes, and (b) how much CPU CPI that steals — see
 * bench/ablation_framebuffer.
 */

#ifndef MEMWALL_IO_FRAMEBUFFER_HH
#define MEMWALL_IO_FRAMEBUFFER_HH

#include <cstdint>

#include "common/stats.hh"
#include "mem/dram.hh"

namespace memwall {

/** Display and scan-out parameters. */
struct FramebufferConfig
{
    std::uint32_t width = 1024;
    std::uint32_t height = 768;
    std::uint32_t bits_per_pixel = 8;
    double refresh_hz = 72.0;
    /** Core clock the scan-out is paced in. */
    double clock_mhz = 200.0;
    /** First byte of the frame buffer in device memory. */
    Addr base = 24 * MiB;  // top of the 32 MiB device

    /** Bytes per frame. */
    std::uint64_t
    frameBytes() const
    {
        return static_cast<std::uint64_t>(width) * height *
               bits_per_pixel / 8;
    }

    /** Scan-out bandwidth in MB/s. */
    double
    bandwidthMBps() const
    {
        return static_cast<double>(frameBytes()) * refresh_hz / 1e6;
    }
};

/**
 * Cycle-paced scan-out engine. Call drainUpTo() before issuing CPU
 * traffic at a given time; the agent issues every column fetch that
 * was due since the last call, occupying banks like any other
 * requester.
 */
class FramebufferAgent
{
  public:
    explicit FramebufferAgent(FramebufferConfig config = {});

    /** Cycles between consecutive column fetches. */
    double columnInterval() const { return interval_; }

    /**
     * Issue all column fetches due at or before @p now into
     * @p dram.
     * @return the number of fetches issued.
     */
    unsigned drainUpTo(Dram &dram, Tick now);

    /** Columns fetched so far. */
    std::uint64_t columnsFetched() const
    {
        return fetched_.value();
    }
    /** Cycles fb requests spent queued behind CPU traffic. */
    std::uint64_t queuedCycles() const { return queued_.value(); }

    const FramebufferConfig &config() const { return config_; }

  private:
    FramebufferConfig config_;
    double interval_;
    /** Time the next column fetch is due. */
    double next_due_ = 0.0;
    /** Scan position within the frame (bytes). */
    std::uint64_t scan_offset_ = 0;
    Counter fetched_;
    Counter queued_;
};

} // namespace memwall

#endif // MEMWALL_IO_FRAMEBUFFER_HH
