/**
 * @file
 * Capture and replay of reference streams.
 *
 * A TraceBuffer records MemRefs in memory and can replay them as a
 * RefSource; save()/load() use a compact binary format so traces can
 * be exchanged between tools (e.g. capture once from the MW32
 * interpreter, replay into many cache configurations).
 */

#ifndef MEMWALL_TRACE_TRACE_FILE_HH
#define MEMWALL_TRACE_TRACE_FILE_HH

#include <string>
#include <vector>

#include "trace/ref.hh"

namespace memwall {

/** In-memory reference trace, recordable and replayable. */
class TraceBuffer : public RefSource
{
  public:
    TraceBuffer() = default;

    /** Append one reference. */
    void record(const MemRef &ref) { refs_.push_back(ref); }

    /** @return a sink that appends to this buffer. */
    RefSink sink()
    {
        return [this](const MemRef &r) { record(r); };
    }

    std::uint64_t generate(std::uint64_t max_refs,
                           const RefSink &out) override;
    void reset() override { position_ = 0; }

    std::size_t size() const { return refs_.size(); }
    bool empty() const { return refs_.empty(); }
    const MemRef &operator[](std::size_t i) const { return refs_[i]; }
    void clear();

    /**
     * Write the trace to @p path in the MWTR binary format, via the
     * crash-safe temp + fsync + rename path (an interrupted save
     * never leaves a torn file under the final name).
     * @return false on I/O failure; lastError() names the path and
     * the errno.
     */
    bool save(const std::string &path) const;

    /**
     * Replace the contents with the trace stored at @p path.
     * All-or-nothing: on failure the previous contents are kept.
     * @return false on I/O failure or format mismatch; lastError()
     * says which record or field was bad.
     */
    bool load(const std::string &path);

    /** Why the last save()/load() failed ("" after a success). */
    const std::string &lastError() const { return last_error_; }

  private:
    std::vector<MemRef> refs_;
    std::size_t position_ = 0;
    /** Mutable: save() is logically const but reports errors. */
    mutable std::string last_error_;
};

} // namespace memwall

#endif // MEMWALL_TRACE_TRACE_FILE_HH
