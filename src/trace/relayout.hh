/**
 * @file
 * Conflict-avoiding code re-layout (the 125.turb3d remedy).
 *
 * Section 5.2: turb3d's extra misses are "an artifact of the reduced
 * number of cache lines, but can be removed by a code profiler
 * noting the subroutine being called by the loop — the respective
 * loop and function code can then be re-laid by the compiler or
 * linker to avoid the conflict."
 *
 * relayoutCode() is that linker pass for workload proxies: it keeps
 * every routine's size and call structure but reassigns base
 * addresses so that hot caller/callee pairs never share a cache set
 * of the target instruction cache.
 */

#ifndef MEMWALL_TRACE_RELAYOUT_HH
#define MEMWALL_TRACE_RELAYOUT_HH

#include <cstdint>

#include "trace/synthetic.hh"

namespace memwall {

/** Target I-cache geometry for the layout pass. */
struct RelayoutConfig
{
    /** Way size of the target cache (capacity for direct-mapped). */
    std::uint64_t way_bytes = 8 * KiB;
    /** Line (set) granularity. */
    std::uint32_t line_bytes = 512;
    /** First byte of the code segment. */
    Addr code_base = 0x00400000;
};

/**
 * Re-place the routines of @p spec. Routines are packed in
 * descending weight x length order (hot code first, like a
 * profile-guided linker); whenever a routine calls another, the
 * callee is padded forward until the pair's cache-set footprints
 * are disjoint modulo the way size (when their combined size
 * permits).
 *
 * @return the re-laid spec (streams and parameters untouched).
 */
SyntheticSpec relayoutCode(const SyntheticSpec &spec,
                           const RelayoutConfig &config = {});

/**
 * @return true iff routines @p a and @p b of @p spec share at least
 * one cache set of the @p config geometry (the conflict predicate
 * the pass eliminates for call pairs).
 */
bool routinesConflict(const CodeRoutine &a, const CodeRoutine &b,
                      const RelayoutConfig &config = {});

} // namespace memwall

#endif // MEMWALL_TRACE_RELAYOUT_HH
