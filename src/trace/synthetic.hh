/**
 * @file
 * Synthetic reference-stream generation.
 *
 * SPEC'95 binaries and a SPARC Shade toolchain are not available, so
 * each benchmark is modelled by a SyntheticWorkload: an instruction-
 * stream model (weighted routines of straight-line code that loop and
 * call each other) interleaved with a data-stream model (a weighted
 * mixture of strided walks, uniform random regions and pointer
 * chases). The parameters per benchmark live in src/workloads/; this
 * file provides the engine. See DESIGN.md, "Substitutions".
 */

#ifndef MEMWALL_TRACE_SYNTHETIC_HH
#define MEMWALL_TRACE_SYNTHETIC_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "checkpoint/codec.hh"
#include "common/rng.hh"
#include "trace/ref.hh"

namespace memwall {

/**
 * A contiguous stretch of code executed front to back. Routines
 * model loop bodies and frequently called functions; placement (the
 * base address) is significant because it determines cache
 * conflicts, e.g. the 125.turb3d loop/function conflict.
 */
struct CodeRoutine
{
    /** First byte of the routine (4-byte aligned). */
    Addr base = 0x10000;
    /** Length in bytes (one instruction = 4 bytes). */
    std::uint32_t length = 256;
    /** Relative probability of being selected next. */
    double weight = 1.0;
    /**
     * Mean number of back-to-back repetitions once selected
     * (geometric); models loop trip counts.
     */
    double mean_repeats = 1.0;
    /**
     * Index of a routine called once after each pass through this
     * routine's body (-1 = no call). Models the 125.turb3d pattern
     * of a loop invoking a function whose placement conflicts with
     * the loop in a 16-line cache. Callees must not call further.
     */
    int call_target = -1;
};

/** Access pattern of one data stream in the mixture. */
enum class StreamKind {
    Strided,  ///< base + k*stride, wrapping at size
    Random,   ///< uniform random offsets in [0, size)
    Chase,    ///< pseudo-random permutation walk (pointer chasing)
};

/** One component of the data-reference mixture. */
struct DataStream
{
    StreamKind kind = StreamKind::Strided;
    /** First byte of the region. */
    Addr base = 0x1000000;
    /** Region size in bytes. */
    std::uint64_t size = 1 * MiB;
    /** Stride in bytes (Strided only; may be negative). */
    std::int64_t stride = 8;
    /** Relative probability of being selected for a reference. */
    double weight = 1.0;
    /** Fraction of this stream's references that are stores. */
    double store_frac = 0.3;
    /** Access granularity in bytes. */
    std::uint8_t access_size = 8;
    /**
     * Mean accesses to each position before the cursor advances
     * (temporal reuse, e.g. stencil codes touch each element
     * several times). Only meaningful for Strided streams.
     */
    std::uint32_t reuse = 1;
    /**
     * Lockstep group id (-1 = independent). Streams sharing a group
     * walk with a SINGLE shared cursor, visited round-robin — the
     * "same loop index into several arrays" pattern of
     * tomcatv/swim/su2cor. With bases congruent modulo the proposed
     * cache's way size, grouped streams collide in one column-buffer
     * set on every iteration (Section 5.3's conflict blow-up).
     * Grouped streams must be Strided and share stride/reuse.
     */
    int group = -1;
};

/** Complete description of a synthetic workload. */
struct SyntheticSpec
{
    std::string name = "synthetic";
    std::vector<CodeRoutine> routines;
    std::vector<DataStream> streams;
    /** Mean data references per instruction (loads + stores). */
    double refs_per_instr = 0.35;
    /** RNG seed (per-benchmark, for reproducibility). */
    std::uint64_t seed = 1;
};

/**
 * FNV-1a hash over every field of @p spec. Checkpoints embed it so
 * generator state saved under one benchmark parameterisation can
 * never be applied to another.
 */
std::uint64_t syntheticSpecHash(const SyntheticSpec &spec);

/**
 * Reference-stream generator executing a SyntheticSpec.
 *
 * Each step emits one instruction fetch from the current routine and,
 * with probability refs_per_instr, one data reference drawn from the
 * stream mixture.
 */
class SyntheticWorkload : public RefSource
{
  public:
    explicit SyntheticWorkload(SyntheticSpec spec);

    std::uint64_t generate(std::uint64_t max_refs,
                           const RefSink &sink) override;
    void reset() override;

    /**
     * Scatter the generator state to an approximate draw from its
     * stationary distribution: stream cursors land uniformly on
     * their walk cycles, the current routine is re-picked, and the
     * instruction pointer lands mid-body. Deterministic given the
     * spec seed. Stratified sampling units call this so each
     * independent substream measures steady-state behaviour instead
     * of the cold start-of-stream phase (fresh cursors at zero and
     * the first routine's prologue are not representative of the
     * long-run reference mix).
     */
    void scatterState();

    /**
     * Same stream as generate(), but delivered to a statically typed
     * sink: the emission loop and @p sink inline into one body, with
     * no std::function indirection per reference. generate() and the
     * batch helpers below are thin wrappers over this.
     */
    template <typename Fn>
    std::uint64_t
    generateInto(std::uint64_t max_refs, Fn &&sink)
    {
        std::uint64_t emitted = 0;
        while (emitted < max_refs) {
            // Instruction fetch from the current routine.
            const CodeRoutine &routine = spec_.routines[cur_routine_];
            const Addr pc = routine.base + cur_offset_;
            sink(MemRef::fetch(pc));
            ++emitted;

            advanceRoutine(routine);

            // Optional data reference.
            if (emitted < max_refs && !spec_.streams.empty() &&
                rng_.bernoulli(spec_.refs_per_instr)) {
                const DataRef ref = nextData(pickStream());
                sink(ref.store
                         ? MemRef::store(pc, ref.addr, ref.size)
                         : MemRef::load(pc, ref.addr, ref.size));
                ++emitted;
            }
        }
        return emitted;
    }

    /**
     * Append up to @p max_refs references to @p out (not cleared).
     * Replaying a batch through several cache models amortises the
     * generator state machine across all of them and turns the
     * per-reference dispatch into tight per-cache loops.
     */
    std::uint64_t
    generateBatch(std::uint64_t max_refs, std::vector<MemRef> &out)
    {
        out.reserve(out.size() + max_refs);
        return generateInto(
            max_refs, [&out](const MemRef &r) { out.push_back(r); });
    }

    const SyntheticSpec &spec() const { return spec_; }

    /**
     * Serialize the complete mutable generator state (RNG stream
     * position, instruction-stream cursor, per-stream and per-group
     * cursors) behind a spec-hash guard.
     */
    void saveState(ckpt::Encoder &e) const;

    /** All-or-nothing restore; fails the decoder on spec mismatch. */
    void loadState(ckpt::Decoder &d);

  private:
    struct DataRef
    {
        Addr addr;
        bool store;
        std::uint8_t size;
    };

    void selectRoutine();
    /**
     * Step the instruction-stream state machine past one fetch. The
     * common case (next instruction of the same routine) stays
     * inline in the caller; the end-of-routine transitions live
     * out-of-line in advanceRoutineEnd().
     */
    void
    advanceRoutine(const CodeRoutine &routine)
    {
        cur_offset_ += 4;
        if (cur_offset_ < routine.length)
            return;
        advanceRoutineEnd(routine);
    }
    void advanceRoutineEnd(const CodeRoutine &routine);
    std::size_t pickStream();
    DataRef nextData(std::size_t stream_index);

    struct Group
    {
        std::vector<std::size_t> members;
        std::uint64_t cursor = 0;
        std::uint32_t rr = 0;
        std::uint32_t reuse_left = 1;
    };

    SyntheticSpec spec_;
    Rng rng_;
    double routine_weight_total_ = 0.0;
    double stream_weight_total_ = 0.0;

    // Instruction-stream state.
    std::size_t cur_routine_ = 0;
    std::uint32_t cur_offset_ = 0;
    std::uint64_t repeats_left_ = 0;
    /** Caller index while executing a callee, or -1. */
    std::ptrdiff_t call_return_ = -1;

    // Per-stream cursors and remaining-reuse counters.
    std::vector<std::uint64_t> cursors_;
    std::vector<std::uint32_t> reuse_left_;
    /** Lockstep groups keyed by DataStream::group id. */
    std::map<int, Group> groups_;
    /** Stream index -> its group id (or -1). */
    std::vector<int> stream_group_;
};

} // namespace memwall

#endif // MEMWALL_TRACE_SYNTHETIC_HH
