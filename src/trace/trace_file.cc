#include "trace/trace_file.hh"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/logging.hh"

namespace memwall {

namespace {

constexpr char magic[4] = {'M', 'W', 'T', 'R'};
constexpr std::uint32_t version = 1;

struct FileRecord
{
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint8_t size;
    std::uint8_t type;
    std::uint8_t pad[6];
};
static_assert(sizeof(FileRecord) == 24, "trace record layout");

} // namespace

std::uint64_t
TraceBuffer::generate(std::uint64_t max_refs, const RefSink &out)
{
    std::uint64_t emitted = 0;
    while (emitted < max_refs && position_ < refs_.size()) {
        out(refs_[position_++]);
        ++emitted;
    }
    return emitted;
}

void
TraceBuffer::clear()
{
    refs_.clear();
    position_ = 0;
}

bool
TraceBuffer::save(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    os.write(magic, sizeof(magic));
    const std::uint32_t ver = version;
    os.write(reinterpret_cast<const char *>(&ver), sizeof(ver));
    const std::uint64_t count = refs_.size();
    os.write(reinterpret_cast<const char *>(&count), sizeof(count));
    for (const MemRef &ref : refs_) {
        FileRecord rec{};
        rec.pc = ref.pc;
        rec.addr = ref.addr;
        rec.size = ref.size;
        rec.type = static_cast<std::uint8_t>(ref.type);
        os.write(reinterpret_cast<const char *>(&rec), sizeof(rec));
    }
    return static_cast<bool>(os);
}

bool
TraceBuffer::load(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    char m[4];
    is.read(m, sizeof(m));
    if (!is || std::memcmp(m, magic, sizeof(magic)) != 0) {
        MW_WARN("'", path, "' is not a MWTR trace file");
        return false;
    }
    std::uint32_t ver = 0;
    is.read(reinterpret_cast<char *>(&ver), sizeof(ver));
    if (!is || ver != version) {
        MW_WARN("'", path, "' has unsupported trace version ", ver);
        return false;
    }
    std::uint64_t count = 0;
    is.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!is)
        return false;
    refs_.clear();
    refs_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        FileRecord rec{};
        is.read(reinterpret_cast<char *>(&rec), sizeof(rec));
        if (!is)
            return false;
        MemRef ref;
        ref.pc = rec.pc;
        ref.addr = rec.addr;
        ref.size = rec.size;
        if (rec.type > static_cast<std::uint8_t>(RefType::Store)) {
            MW_WARN("'", path, "' contains a corrupt record");
            return false;
        }
        ref.type = static_cast<RefType>(rec.type);
        refs_.push_back(ref);
    }
    position_ = 0;
    return true;
}

} // namespace memwall
