#include "trace/trace_file.hh"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>

#include "checkpoint/checkpoint.hh"
#include "common/logging.hh"

namespace memwall {

namespace {

constexpr char magic[4] = {'M', 'W', 'T', 'R'};
constexpr std::uint32_t version = 1;

struct FileRecord
{
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint8_t size;
    std::uint8_t type;
    std::uint8_t pad[6];
};
static_assert(sizeof(FileRecord) == 24, "trace record layout");

std::string
errnoSuffix()
{
    return std::string(": ") + std::strerror(errno);
}

} // namespace

std::uint64_t
TraceBuffer::generate(std::uint64_t max_refs, const RefSink &out)
{
    std::uint64_t emitted = 0;
    while (emitted < max_refs && position_ < refs_.size()) {
        out(refs_[position_++]);
        ++emitted;
    }
    return emitted;
}

void
TraceBuffer::clear()
{
    refs_.clear();
    position_ = 0;
}

bool
TraceBuffer::save(const std::string &path) const
{
    // Serialize into memory, then write through the crash-safe
    // temp + fsync + rename path: a failed or interrupted save never
    // leaves a torn trace under the final name.
    std::vector<std::uint8_t> bytes;
    bytes.reserve(sizeof(magic) + sizeof(std::uint32_t) +
                  sizeof(std::uint64_t) +
                  refs_.size() * sizeof(FileRecord));
    const auto put = [&bytes](const void *p, std::size_t n) {
        const auto *b = static_cast<const std::uint8_t *>(p);
        bytes.insert(bytes.end(), b, b + n);
    };
    put(magic, sizeof(magic));
    const std::uint32_t ver = version;
    put(&ver, sizeof(ver));
    const std::uint64_t count = refs_.size();
    put(&count, sizeof(count));
    for (const MemRef &ref : refs_) {
        FileRecord rec{};
        rec.pc = ref.pc;
        rec.addr = ref.addr;
        rec.size = ref.size;
        rec.type = static_cast<std::uint8_t>(ref.type);
        put(&rec, sizeof(rec));
    }

    std::string why;
    if (!ckpt::atomicWriteFile(path, bytes.data(), bytes.size(),
                               &why)) {
        last_error_ = why;
        MW_WARN("trace save failed: ", why);
        return false;
    }
    last_error_.clear();
    return true;
}

bool
TraceBuffer::load(const std::string &path)
{
    const auto fail = [&](std::string why) {
        last_error_ = std::move(why);
        MW_WARN("trace load failed: ", last_error_);
        return false;
    };

    std::ifstream is(path, std::ios::binary);
    if (!is)
        return fail("cannot open '" + path + "'" + errnoSuffix());
    char m[4];
    is.read(m, sizeof(m));
    if (!is)
        return fail("'" + path + "' is truncated in the magic");
    if (std::memcmp(m, magic, sizeof(magic)) != 0)
        return fail("'" + path + "' is not a MWTR trace file");
    std::uint32_t ver = 0;
    is.read(reinterpret_cast<char *>(&ver), sizeof(ver));
    if (!is)
        return fail("'" + path + "' is truncated in the version");
    if (ver != version)
        return fail("'" + path + "' has unsupported trace version " +
                    std::to_string(ver));
    std::uint64_t count = 0;
    is.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!is)
        return fail("'" + path +
                    "' is truncated in the record count");
    std::vector<MemRef> loaded;
    loaded.reserve(std::min<std::uint64_t>(count, 1u << 20));
    for (std::uint64_t i = 0; i < count; ++i) {
        FileRecord rec{};
        is.read(reinterpret_cast<char *>(&rec), sizeof(rec));
        if (!is)
            return fail("'" + path + "' is truncated at record " +
                        std::to_string(i) + " of " +
                        std::to_string(count));
        MemRef ref;
        ref.pc = rec.pc;
        ref.addr = rec.addr;
        ref.size = rec.size;
        if (rec.type > static_cast<std::uint8_t>(RefType::Store))
            return fail("'" + path + "' has a corrupt record " +
                        std::to_string(i) + " (type " +
                        std::to_string(rec.type) + ")");
        ref.type = static_cast<RefType>(rec.type);
        loaded.push_back(ref);
    }
    // All-or-nothing: the buffer keeps its previous contents on any
    // failure above.
    refs_ = std::move(loaded);
    position_ = 0;
    last_error_.clear();
    return true;
}

} // namespace memwall
