/**
 * @file
 * The Figure 2 microbenchmark: walk arrays of various sizes with
 * various strides to expose the latency of each level of a memory
 * hierarchy (the classic lmbench-style "memory mountain").
 */

#ifndef MEMWALL_TRACE_STRIDE_WALKER_HH
#define MEMWALL_TRACE_STRIDE_WALKER_HH

#include <cstdint>

#include "trace/ref.hh"

namespace memwall {

/**
 * Generates a load stream that repeatedly walks an @p array_bytes
 * array with a fixed @p stride, wrapping at the end, exactly like
 * the pointer-walk loops used to produce Figure 2.
 */
class StrideWalker : public RefSource
{
  public:
    /**
     * @param base        first byte of the array
     * @param array_bytes array size (walk wraps here)
     * @param stride      bytes between consecutive accesses
     */
    StrideWalker(Addr base, std::uint64_t array_bytes,
                 std::uint32_t stride);

    std::uint64_t generate(std::uint64_t max_refs,
                           const RefSink &sink) override;
    void reset() override;

  private:
    Addr base_;
    std::uint64_t array_bytes_;
    std::uint32_t stride_;
    std::uint64_t offset_ = 0;
};

} // namespace memwall

#endif // MEMWALL_TRACE_STRIDE_WALKER_HH
