#include "trace/stride_walker.hh"

#include "common/logging.hh"

namespace memwall {

StrideWalker::StrideWalker(Addr base, std::uint64_t array_bytes,
                           std::uint32_t stride)
    : base_(base), array_bytes_(array_bytes), stride_(stride)
{
    if (stride_ == 0)
        MW_FATAL("stride walker stride must be non-zero");
    if (array_bytes_ < stride_)
        MW_FATAL("stride walker array smaller than one stride");
}

std::uint64_t
StrideWalker::generate(std::uint64_t max_refs, const RefSink &sink)
{
    for (std::uint64_t i = 0; i < max_refs; ++i) {
        sink(MemRef::load(/*pc=*/0x1000, base_ + offset_, 4));
        offset_ += stride_;
        if (offset_ >= array_bytes_)
            offset_ -= array_bytes_;
    }
    return max_refs;
}

void
StrideWalker::reset()
{
    offset_ = 0;
}

} // namespace memwall
