#include "trace/relayout.hh"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/logging.hh"

namespace memwall {

namespace {

/** Cache sets (as a bitmask) touched by [base, base+length). */
std::uint64_t
setMask(Addr base, std::uint32_t length,
        const RelayoutConfig &config)
{
    const std::uint64_t sets = config.way_bytes / config.line_bytes;
    MW_ASSERT(sets <= 64, "relayout supports up to 64 sets");
    std::uint64_t mask = 0;
    const Addr first = base / config.line_bytes;
    const Addr last = (base + length - 1) / config.line_bytes;
    for (Addr line = first; line <= last; ++line)
        mask |= 1ull << (line % sets);
    return mask;
}

} // namespace

bool
routinesConflict(const CodeRoutine &a, const CodeRoutine &b,
                 const RelayoutConfig &config)
{
    return (setMask(a.base, a.length, config) &
            setMask(b.base, b.length, config)) != 0;
}

SyntheticSpec
relayoutCode(const SyntheticSpec &spec, const RelayoutConfig &config)
{
    SyntheticSpec out = spec;
    const std::size_t n = out.routines.size();
    if (n == 0)
        return out;

    // Profile-guided placement order: hottest (weight x length)
    // first, so the dominant code claims conflict-free ground.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t x, std::size_t y) {
                         const auto &a = spec.routines[x];
                         const auto &b = spec.routines[y];
                         return a.weight * a.length >
                                b.weight * b.length;
                     });

    Addr cursor = config.code_base;
    std::vector<bool> placed(n, false);

    auto place = [&](std::size_t idx, std::uint64_t avoid_mask) {
        CodeRoutine &r = out.routines[idx];
        Addr base = cursor;
        // Pad forward until the routine's set footprint avoids the
        // mask (give up after a full wrap: footprints too large).
        const std::uint64_t sets =
            config.way_bytes / config.line_bytes;
        for (std::uint64_t tries = 0; tries <= sets; ++tries) {
            if ((setMask(base, r.length, config) & avoid_mask) == 0)
                break;
            base += config.line_bytes;
        }
        r.base = base;
        placed[idx] = true;
        cursor = base + ((r.length + 3) / 4) * 4;
        // Keep 4-byte alignment.
        cursor = (cursor + 3) & ~Addr{3};
    };

    for (std::size_t idx : order) {
        if (placed[idx])
            continue;
        place(idx, 0);
        // Immediately co-place any callee/caller partners so the
        // pair is guaranteed disjoint.
        const int callee = out.routines[idx].call_target;
        if (callee >= 0 &&
            !placed[static_cast<std::size_t>(callee)]) {
            place(static_cast<std::size_t>(callee),
                  setMask(out.routines[idx].base,
                          out.routines[idx].length, config));
        }
        // If this routine is itself a callee of an unplaced caller,
        // nothing to do — the caller will be placed later and only
        // pairs placed together need the guarantee; handle the
        // reverse direction too for completeness.
        for (std::size_t j = 0; j < n; ++j) {
            if (!placed[j] &&
                out.routines[j].call_target ==
                    static_cast<int>(idx)) {
                place(j, setMask(out.routines[idx].base,
                                 out.routines[idx].length, config));
            }
        }
    }
    return out;
}

} // namespace memwall
