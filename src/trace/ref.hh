/**
 * @file
 * Memory-reference stream abstractions.
 *
 * All uniprocessor evaluation front ends — the synthetic workload
 * proxies, the stride walker and the MW32 interpreter — produce
 * streams of MemRef records; all cache/hierarchy models consume
 * them. This mirrors the paper's methodology of driving cache models
 * from Shade-generated reference streams.
 */

#ifndef MEMWALL_TRACE_REF_HH
#define MEMWALL_TRACE_REF_HH

#include <cstdint>
#include <functional>

#include "common/types.hh"

namespace memwall {

/** Kind of a memory reference. */
enum class RefType : std::uint8_t {
    IFetch = 0,
    Load = 1,
    Store = 2,
};

/** One memory reference. */
struct MemRef
{
    /** Program counter of the referencing instruction. */
    Addr pc = 0;
    /** Effective address (equals pc for instruction fetches). */
    Addr addr = 0;
    /** Access size in bytes. */
    std::uint8_t size = 4;
    /** Reference kind. */
    RefType type = RefType::IFetch;

    static MemRef
    fetch(Addr pc)
    {
        return MemRef{pc, pc, 4, RefType::IFetch};
    }
    static MemRef
    load(Addr pc, Addr addr, std::uint8_t size = 4)
    {
        return MemRef{pc, addr, size, RefType::Load};
    }
    static MemRef
    store(Addr pc, Addr addr, std::uint8_t size = 4)
    {
        return MemRef{pc, addr, size, RefType::Store};
    }

    bool operator==(const MemRef &) const = default;
};

/** Consumer callback for generated reference streams. */
using RefSink = std::function<void(const MemRef &)>;

/**
 * Interface for anything that can replay a reference stream into a
 * sink: workload proxies, captured traces, the interpreter.
 */
class RefSource
{
  public:
    virtual ~RefSource() = default;

    /**
     * Generate up to @p max_refs references into @p sink.
     * @return the number of references produced (less than
     *         @p max_refs only if the source is exhausted).
     */
    virtual std::uint64_t generate(std::uint64_t max_refs,
                                   const RefSink &sink) = 0;

    /** Restart the stream from the beginning. */
    virtual void reset() = 0;
};

} // namespace memwall

#endif // MEMWALL_TRACE_REF_HH
