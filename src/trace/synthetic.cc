#include "trace/synthetic.hh"

#include <algorithm>
#include <cstring>

#include "checkpoint/state_io.hh"

#include "common/logging.hh"

namespace memwall {

SyntheticWorkload::SyntheticWorkload(SyntheticSpec spec)
    : spec_(std::move(spec)), rng_(spec_.seed)
{
    if (spec_.routines.empty())
        MW_FATAL(spec_.name, ": workload needs at least one routine");
    for (const auto &r : spec_.routines) {
        MW_ASSERT(r.length >= 4 && r.length % 4 == 0,
                  spec_.name, ": routine length must be a positive "
                  "multiple of 4");
        MW_ASSERT(r.weight > 0.0 && r.mean_repeats >= 1.0,
                  spec_.name, ": bad routine parameters");
        if (r.call_target >= 0) {
            MW_ASSERT(static_cast<std::size_t>(r.call_target) <
                          spec_.routines.size(),
                      spec_.name, ": call target out of range");
            MW_ASSERT(spec_.routines[static_cast<std::size_t>(
                          r.call_target)].call_target < 0,
                      spec_.name, ": nested routine calls unsupported");
        }
        routine_weight_total_ += r.weight;
    }
    stream_group_.reserve(spec_.streams.size());
    for (std::size_t i = 0; i < spec_.streams.size(); ++i) {
        const auto &s = spec_.streams[i];
        MW_ASSERT(s.size > 0 && s.weight > 0.0,
                  spec_.name, ": bad stream parameters");
        stream_weight_total_ += s.weight;
        stream_group_.push_back(s.group);
        if (s.group >= 0) {
            MW_ASSERT(s.kind == StreamKind::Strided,
                      spec_.name, ": lockstep streams must be strided");
            groups_[s.group].members.push_back(i);
        }
    }
    if (spec_.streams.empty() && spec_.refs_per_instr > 0.0)
        MW_FATAL(spec_.name,
                 ": refs_per_instr > 0 but no data streams given");
    cursors_.assign(spec_.streams.size(), 0);
    reuse_left_.assign(spec_.streams.size(), 0);
    reset();
}

void
SyntheticWorkload::reset()
{
    rng_ = Rng(spec_.seed);
    cur_routine_ = 0;
    cur_offset_ = 0;
    repeats_left_ = 0;
    call_return_ = -1;
    std::fill(cursors_.begin(), cursors_.end(), 0);
    for (std::size_t i = 0; i < reuse_left_.size(); ++i)
        reuse_left_[i] =
            spec_.streams[i].reuse ? spec_.streams[i].reuse : 1;
    for (auto &[id, group] : groups_) {
        group.cursor = 0;
        group.rr = 0;
        const auto &first = spec_.streams[group.members.front()];
        group.reuse_left = first.reuse ? first.reuse : 1;
    }
    selectRoutine();
}

void
SyntheticWorkload::scatterState()
{
    // Independent stream cursors: a uniform position on the walk.
    for (std::size_t i = 0; i < spec_.streams.size(); ++i) {
        if (stream_group_[i] >= 0)
            continue;
        const DataStream &s = spec_.streams[i];
        switch (s.kind) {
          case StreamKind::Strided: {
            const std::uint64_t step = static_cast<std::uint64_t>(
                s.stride < 0 ? -s.stride : s.stride);
            if (step > 0 && step < s.size)
                cursors_[i] =
                    (rng_.uniformInt(s.size / step) * step) % s.size;
            reuse_left_[i] = static_cast<std::uint32_t>(
                rng_.uniformRange(1, s.reuse ? s.reuse : 1));
            break;
          }
          case StreamKind::Random:
            break;  // memoryless
          case StreamKind::Chase:
            cursors_[i] = rng_();  // any LCG state is on the cycle
            break;
        }
    }
    // Lockstep groups: one shared cursor, uniform on the walk; the
    // members stay congruent (that is the modelled conflict).
    for (auto &[id, group] : groups_) {
        const DataStream &first =
            spec_.streams[group.members.front()];
        const std::uint64_t step = static_cast<std::uint64_t>(
            first.stride < 0 ? -first.stride : first.stride);
        if (step > 0 && step < first.size)
            group.cursor =
                (rng_.uniformInt(first.size / step) * step) %
                first.size;
        group.rr = static_cast<std::uint32_t>(
            rng_.uniformInt(group.members.size()));
        group.reuse_left = static_cast<std::uint32_t>(
            rng_.uniformRange(1, first.reuse ? first.reuse : 1));
    }
    // Instruction stream: a draw from the state machine's stationary
    // distribution. One *selection* of routine i covers on average
    //   E_i = m_i * L_i + (m_i - 1) * L_callee
    // fetches (m_i geometric-mean body passes of L_i instructions,
    // with the callee run between passes), so the probability of
    // finding the generator inside a selection of i is proportional
    // to weight_i * E_i — not to weight_i alone, which underweights
    // long-running routines (e.g. 145.fpppp's huge basic blocks).
    std::vector<double> occupancy(spec_.routines.size());
    double occ_total = 0.0;
    for (std::size_t i = 0; i < spec_.routines.size(); ++i) {
        const CodeRoutine &r = spec_.routines[i];
        const double body = r.mean_repeats * (r.length / 4);
        const double callee =
            r.call_target >= 0
                ? (r.mean_repeats - 1.0) *
                      (spec_.routines[static_cast<std::size_t>(
                           r.call_target)].length / 4)
                : 0.0;
        occupancy[i] = r.weight * (body + callee);
        occ_total += occupancy[i];
    }
    double pick = rng_.uniformReal() * occ_total;
    std::size_t chosen = spec_.routines.size() - 1;
    for (std::size_t i = 0; i < spec_.routines.size(); ++i) {
        pick -= occupancy[i];
        if (pick <= 0.0) {
            chosen = i;
            break;
        }
    }
    const CodeRoutine &r = spec_.routines[chosen];
    // Residual passes: geometric repeats are memoryless, so the
    // remaining count has the same distribution as a fresh draw.
    repeats_left_ = r.mean_repeats <= 1.0
        ? 1
        : 1 + rng_.geometric(1.0 / r.mean_repeats);
    // Within a selection, time splits between the caller's body and
    // its callee; land in the callee with the matching probability so
    // the loop/call alternation (125.turb3d's conflict) is preserved.
    const double body = r.mean_repeats * (r.length / 4);
    const double callee =
        r.call_target >= 0
            ? (r.mean_repeats - 1.0) *
                  (spec_.routines[static_cast<std::size_t>(
                       r.call_target)].length / 4)
            : 0.0;
    if (callee > 0.0 && rng_.bernoulli(callee / (body + callee))) {
        // Mid-callee: the caller still owes at least one more pass.
        call_return_ = static_cast<std::ptrdiff_t>(chosen);
        cur_routine_ =
            static_cast<std::size_t>(r.call_target);
        repeats_left_ = std::max<std::uint64_t>(repeats_left_, 2);
    } else {
        call_return_ = -1;
        cur_routine_ = chosen;
    }
    const CodeRoutine &at = spec_.routines[cur_routine_];
    cur_offset_ = static_cast<std::uint32_t>(
        rng_.uniformInt(at.length / 4) * 4);
}

void
SyntheticWorkload::selectRoutine()
{
    double pick = rng_.uniformReal() * routine_weight_total_;
    std::size_t chosen = spec_.routines.size() - 1;
    for (std::size_t i = 0; i < spec_.routines.size(); ++i) {
        pick -= spec_.routines[i].weight;
        if (pick <= 0.0) {
            chosen = i;
            break;
        }
    }
    cur_routine_ = chosen;
    cur_offset_ = 0;
    const double mean = spec_.routines[chosen].mean_repeats;
    // Geometric number of repeats with the requested mean (>= 1).
    repeats_left_ = mean <= 1.0
        ? 1
        : 1 + rng_.geometric(1.0 / mean);
}

std::size_t
SyntheticWorkload::pickStream()
{
    double pick = rng_.uniformReal() * stream_weight_total_;
    for (std::size_t i = 0; i < spec_.streams.size(); ++i) {
        pick -= spec_.streams[i].weight;
        if (pick <= 0.0)
            return i;
    }
    return spec_.streams.size() - 1;
}

SyntheticWorkload::DataRef
SyntheticWorkload::nextData(std::size_t stream_index)
{
    // Lockstep groups: serve members round-robin off one shared
    // cursor, advancing it only after a full round (with reuse).
    const int gid = stream_group_[stream_index];
    if (gid >= 0) {
        Group &g = groups_[gid];
        const std::size_t member = g.members[g.rr];
        const DataStream &ms = spec_.streams[member];
        Addr maddr = (ms.base + g.cursor) &
                     ~static_cast<Addr>(ms.access_size - 1);
        DataRef ref{maddr, rng_.bernoulli(ms.store_frac),
                    ms.access_size};
        g.rr = (g.rr + 1) %
               static_cast<std::uint32_t>(g.members.size());
        if (g.rr == 0) {
            if (g.reuse_left > 1) {
                --g.reuse_left;
            } else {
                g.reuse_left = ms.reuse ? ms.reuse : 1;
                const std::int64_t next =
                    static_cast<std::int64_t>(g.cursor) + ms.stride;
                if (next < 0)
                    g.cursor = ms.size + next;
                else if (static_cast<std::uint64_t>(next) >= ms.size)
                    g.cursor = static_cast<std::uint64_t>(next) -
                               ms.size;
                else
                    g.cursor = static_cast<std::uint64_t>(next);
            }
        }
        return ref;
    }

    const DataStream &s = spec_.streams[stream_index];
    std::uint64_t &cursor = cursors_[stream_index];
    Addr addr = 0;
    bool store = false;
    switch (s.kind) {
      case StreamKind::Strided: {
        addr = s.base + cursor;
        // Temporal reuse: stay on this position until its budget
        // is spent, then advance by the stride.
        if (reuse_left_[stream_index] > 1) {
            --reuse_left_[stream_index];
            break;
        }
        reuse_left_[stream_index] = s.reuse ? s.reuse : 1;
        const std::int64_t next =
            static_cast<std::int64_t>(cursor) + s.stride;
        if (next < 0)
            cursor = s.size + next;  // wrap backwards
        else if (static_cast<std::uint64_t>(next) >= s.size)
            cursor = static_cast<std::uint64_t>(next) - s.size;
        else
            cursor = static_cast<std::uint64_t>(next);
        break;
      }
      case StreamKind::Random: {
        const std::uint64_t slots = s.size / s.access_size;
        addr = s.base + rng_.uniformInt(slots) * s.access_size;
        break;
      }
      case StreamKind::Chase: {
        // Deterministic full-period LCG walk over the region's
        // access slots: visits every slot in a scattered order, the
        // classic linked-list traversal pattern.
        const std::uint64_t slots = s.size / s.access_size;
        addr = s.base + (cursor % slots) * s.access_size;
        cursor = (cursor * 6364136223846793005ULL +
                  1442695040888963407ULL);
        break;
      }
    }
    store = rng_.bernoulli(s.store_frac);
    // Align to the access size.
    addr &= ~static_cast<Addr>(s.access_size - 1);
    return DataRef{addr, store, s.access_size};
}

void
SyntheticWorkload::advanceRoutineEnd(const CodeRoutine &routine)
{
    cur_offset_ = 0;
    if (call_return_ >= 0) {
        // Returning from a callee: resume the caller's loop.
        cur_routine_ = static_cast<std::size_t>(call_return_);
        call_return_ = -1;
        if (repeats_left_ > 1)
            --repeats_left_;
        else
            selectRoutine();
    } else if (routine.call_target >= 0 && repeats_left_ > 1) {
        // The loop body calls its function between passes.
        call_return_ = static_cast<std::ptrdiff_t>(cur_routine_);
        cur_routine_ = static_cast<std::size_t>(routine.call_target);
    } else if (repeats_left_ > 1) {
        --repeats_left_;
    } else {
        selectRoutine();
    }
}

std::uint64_t
SyntheticWorkload::generate(std::uint64_t max_refs, const RefSink &sink)
{
    return generateInto(max_refs, sink);
}

std::uint64_t
syntheticSpecHash(const SyntheticSpec &spec)
{
    using ckpt::fnvMix;
    auto mixDouble = [](std::uint64_t h, double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        return fnvMix(h, bits);
    };
    std::uint64_t h = ckpt::fnv1a64(spec.name);
    h = fnvMix(h, spec.seed);
    h = mixDouble(h, spec.refs_per_instr);
    h = fnvMix(h, spec.routines.size());
    for (const CodeRoutine &r : spec.routines) {
        h = fnvMix(h, r.base);
        h = fnvMix(h, r.length);
        h = mixDouble(h, r.weight);
        h = mixDouble(h, r.mean_repeats);
        h = fnvMix(h, static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(r.call_target)));
    }
    h = fnvMix(h, spec.streams.size());
    for (const DataStream &s : spec.streams) {
        h = fnvMix(h, static_cast<std::uint64_t>(s.kind));
        h = fnvMix(h, s.base);
        h = fnvMix(h, s.size);
        h = fnvMix(h, static_cast<std::uint64_t>(s.stride));
        h = mixDouble(h, s.weight);
        h = mixDouble(h, s.store_frac);
        h = fnvMix(h, s.access_size);
        h = fnvMix(h, s.reuse);
        h = fnvMix(h, static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(s.group)));
    }
    return h;
}

void
SyntheticWorkload::saveState(ckpt::Encoder &e) const
{
    e.u64(syntheticSpecHash(spec_));
    ckpt::putRng(e, rng_);
    e.varint(cur_routine_);
    e.varint(cur_offset_);
    e.varint(repeats_left_);
    // call_return_ is -1 or a routine index; bias by one so the
    // varint stays non-negative.
    e.varint(static_cast<std::uint64_t>(call_return_ + 1));
    for (const std::uint64_t cursor : cursors_)
        e.varint(cursor);
    for (const std::uint32_t reuse : reuse_left_)
        e.varint(reuse);
    // groups_ iterates in key order, so the bytes are canonical.
    for (const auto &[id, group] : groups_) {
        e.varint(group.cursor);
        e.varint(group.rr);
        e.varint(group.reuse_left);
    }
}

void
SyntheticWorkload::loadState(ckpt::Decoder &d)
{
    const std::uint64_t hash = d.u64();
    if (d.failed())
        return;
    if (hash != syntheticSpecHash(spec_)) {
        d.fail("workload '" + spec_.name +
               "': checkpoint is for a different spec");
        return;
    }

    Rng rng = rng_;
    ckpt::getRng(d, rng);
    const std::uint64_t cur_routine = d.varint();
    const std::uint64_t cur_offset = d.varint();
    const std::uint64_t repeats_left = d.varint();
    const std::uint64_t call_return_biased = d.varint();
    if (d.failed())
        return;
    if (cur_routine >= spec_.routines.size() ||
        call_return_biased > spec_.routines.size()) {
        d.fail("workload '" + spec_.name +
               "': routine index out of range");
        return;
    }

    std::vector<std::uint64_t> cursors(cursors_.size());
    for (std::uint64_t &cursor : cursors)
        cursor = d.varint();
    std::vector<std::uint32_t> reuse(reuse_left_.size());
    for (std::uint32_t &r : reuse)
        r = static_cast<std::uint32_t>(d.varint());
    std::map<int, Group> groups = groups_;
    for (auto &[id, group] : groups) {
        group.cursor = d.varint();
        group.rr = static_cast<std::uint32_t>(d.varint());
        group.reuse_left = static_cast<std::uint32_t>(d.varint());
    }
    if (d.failed())
        return;

    rng_ = rng;
    cur_routine_ = static_cast<std::size_t>(cur_routine);
    cur_offset_ = static_cast<std::uint32_t>(cur_offset);
    repeats_left_ = repeats_left;
    call_return_ =
        static_cast<std::ptrdiff_t>(call_return_biased) - 1;
    cursors_ = std::move(cursors);
    reuse_left_ = std::move(reuse);
    groups_ = std::move(groups);
}

} // namespace memwall
