/**
 * @file
 * The proposed device's column-buffer cache organisation
 * (Section 4.1).
 *
 * Each of the sixteen DRAM banks owns three 512-byte column buffers:
 * one forms a direct-mapped instruction cache line (16 x 512 B =
 * 8 KB), two form the ways of a 2-way set-associative data cache
 * (32 x 512 B = 16 KB). Because banks are interleaved at column
 * granularity, the bank index doubles as the cache set index. A
 * 16-entry, 32-byte-line fully-associative victim cache backs the
 * data cache (Section 5.4).
 */

#ifndef MEMWALL_MEM_COLUMN_CACHE_HH
#define MEMWALL_MEM_COLUMN_CACHE_HH

#include <cstdint>
#include <memory>

#include "mem/cache.hh"
#include "mem/victim_cache.hh"

namespace memwall {

/** Where an access to the integrated data cache was served from. */
enum class DAccessOutcome {
    HitColumn,  ///< hit in a column buffer (1 cycle)
    HitVictim,  ///< miss in the buffers, hit in the victim cache
    Miss,       ///< requires a DRAM array access
};

/** Geometry of the integrated cache complex; defaults = the paper. */
struct ColumnCacheConfig
{
    /** DRAM banks = cache sets. */
    std::uint32_t banks = 16;
    /** Column buffer size = cache line size, in bytes. */
    std::uint32_t column_bytes = 512;
    /** Data-cache columns per bank (ways). */
    std::uint32_t data_ways = 2;
    /** Whether the victim cache is present. */
    bool victim_enabled = true;
    /** Victim-cache geometry. */
    VictimCacheConfig victim = {};

    /** @return total data-cache capacity in bytes. */
    std::uint64_t dataCapacity() const
    {
        return static_cast<std::uint64_t>(banks) * data_ways *
               column_bytes;
    }
    /** @return instruction-cache capacity in bytes. */
    std::uint64_t instrCapacity() const
    {
        return static_cast<std::uint64_t>(banks) * column_bytes;
    }
};

/**
 * Direct-mapped column-buffer instruction cache: one column per bank.
 */
class ColumnInstrCache
{
  public:
    explicit ColumnInstrCache(const ColumnCacheConfig &config = {});

    /** @return true on hit; a miss fills from the DRAM array. */
    bool fetch(Addr pc);

    /** fetch() without statistics (functional-warming path). */
    bool warmFetch(Addr pc);

    bool probe(Addr pc) const { return cache_.probe(pc); }
    const AccessStats &stats() const { return cache_.stats(); }
    const Cache &cache() const { return cache_; }
    void flush() { cache_.flush(); }
    void resetStats() { cache_.resetStats(); }

    void saveState(ckpt::Encoder &e) const { cache_.saveState(e); }
    void loadState(ckpt::Decoder &d) { cache_.loadState(d); }

  private:
    Cache cache_;
};

/**
 * 2-way column-buffer data cache plus victim cache.
 *
 * Access protocol (Sections 4.1 and 5.4):
 *  1. The column buffers and the sixteen victim entries are searched
 *     in the same cycle.
 *  2. A buffer hit or a victim hit costs one cycle.
 *  3. A miss triggers a DRAM array access; while the array is busy,
 *     the most recently touched 32-byte sub-block of the displaced
 *     column is copied into the victim cache for free.
 */
class ColumnDataCache
{
  public:
    explicit ColumnDataCache(const ColumnCacheConfig &config = {});

    /** Perform one data access. */
    DAccessOutcome access(Addr addr, bool store);

    /**
     * Search the column buffers and victim cache WITHOUT filling on
     * a miss. The MP coherence layer uses this because remote blocks
     * are imported in 32-byte units through the victim cache, never
     * as full columns (Section 6.2).
     */
    DAccessOutcome accessNoFill(Addr addr, bool store);

    /**
     * access() with identical state transitions (column fill, victim
     * hand-off, LRU, dirty bits) but NO statistics — the
     * functional-warming path of sampled simulation.
     */
    DAccessOutcome warmAccess(Addr addr, bool store);

    /** @return true iff @p addr would hit in buffers or victim. */
    bool probe(Addr addr) const;

    /**
     * Invalidate the 32-byte coherence block containing @p addr in
     * both structures (used by the MP coherence layer). The enclosing
     * column stays resident; only victim entries match exactly.
     * @return true if a column or victim entry held the block.
     */
    bool invalidateBlock(Addr addr);

    /**
     * Stage an imported remote 32-byte block into the victim cache,
     * which doubles as the import staging area (Section 4.1).
     */
    void stageRemoteBlock(Addr addr);

    void flush();
    void resetStats();

    /** Aggregate miss statistics (misses = DRAM array accesses). */
    const AccessStats &stats() const { return stats_; }

    /**
     * Whether the most recent access() miss displaced a DIRTY
     * column (the case Section 4.1's speculative writeback through
     * the third column buffer makes free; without it the writeback
     * serialises with the fill).
     */
    bool lastEvictionDirty() const { return last_eviction_dirty_; }
    /** Column-buffer-only statistics. */
    const AccessStats &columnStats() const { return columns_.stats(); }
    /** Victim-cache statistics. */
    const AccessStats &victimStats() const { return victim_.stats(); }

    const ColumnCacheConfig &config() const { return config_; }

    /** Serialize columns, victim cache, aggregate stats and the
     *  last-eviction flag. */
    void saveState(ckpt::Encoder &e) const;

    /** All-or-nothing restore; fails the decoder on mismatch. */
    void loadState(ckpt::Decoder &d);

  private:
    ColumnCacheConfig config_;
    Cache columns_;
    VictimCache victim_;
    AccessStats stats_;
    bool last_eviction_dirty_ = false;
};

} // namespace memwall

#endif // MEMWALL_MEM_COLUMN_CACHE_HH
