#include "mem/column_cache.hh"

#include "checkpoint/state_io.hh"
#include "common/logging.hh"

namespace memwall {

namespace {

CacheConfig
instrConfig(const ColumnCacheConfig &config)
{
    CacheConfig c;
    c.capacity = config.instrCapacity();
    c.line_size = config.column_bytes;
    c.assoc = 1;
    c.sub_block_size = 32;
    c.name = "column-icache";
    return c;
}

CacheConfig
dataConfig(const ColumnCacheConfig &config)
{
    CacheConfig c;
    c.capacity = config.dataCapacity();
    c.line_size = config.column_bytes;
    c.assoc = config.data_ways;
    c.sub_block_size = config.victim.line_size;
    c.name = "column-dcache";
    return c;
}

} // namespace

ColumnInstrCache::ColumnInstrCache(const ColumnCacheConfig &config)
    : cache_(instrConfig(config))
{
}

bool
ColumnInstrCache::fetch(Addr pc)
{
    return cache_.access(pc, false).hit;
}

bool
ColumnInstrCache::warmFetch(Addr pc)
{
    return cache_.warmAccess(pc, false).hit;
}

ColumnDataCache::ColumnDataCache(const ColumnCacheConfig &config)
    : config_(config),
      columns_(dataConfig(config)),
      victim_(config.victim)
{
}

DAccessOutcome
ColumnDataCache::access(Addr addr, bool store)
{
    // Column buffers and victim entries are searched in parallel; a
    // hit in either costs a single cycle. The victim cache is probed
    // (not charged a miss) when the buffers hit.
    if (columns_.probe(addr)) {
        columns_.touch(addr, store);
        if (store)
            stats_.store_hits.inc();
        else
            stats_.load_hits.inc();
        return DAccessOutcome::HitColumn;
    }

    if (config_.victim_enabled && victim_.access(addr, store)) {
        if (store)
            stats_.store_hits.inc();
        else
            stats_.load_hits.inc();
        return DAccessOutcome::HitVictim;
    }

    // Real miss: the column buffer reloads from the DRAM array. The
    // displaced column donates its most recently accessed sub-block
    // to the victim cache during the array access window.
    const AccessResult fill = columns_.access(addr, store);
    MW_ASSERT(!fill.hit, "probe said miss but access hit");
    last_eviction_dirty_ = fill.eviction && fill.eviction->dirty;
    if (config_.victim_enabled && fill.eviction)
        victim_.insert(fill.eviction->last_sub_block);

    if (store)
        stats_.store_misses.inc();
    else
        stats_.load_misses.inc();
    return DAccessOutcome::Miss;
}

DAccessOutcome
ColumnDataCache::warmAccess(Addr addr, bool store)
{
    if (columns_.probe(addr)) {
        columns_.touch(addr, store);
        return DAccessOutcome::HitColumn;
    }
    if (config_.victim_enabled && victim_.warmAccess(addr))
        return DAccessOutcome::HitVictim;
    const AccessResult fill = columns_.warmAccess(addr, store);
    MW_ASSERT(!fill.hit, "probe said miss but warm access hit");
    last_eviction_dirty_ = fill.eviction && fill.eviction->dirty;
    if (config_.victim_enabled && fill.eviction)
        victim_.insert(fill.eviction->last_sub_block);
    return DAccessOutcome::Miss;
}

DAccessOutcome
ColumnDataCache::accessNoFill(Addr addr, bool store)
{
    if (columns_.probe(addr)) {
        columns_.touch(addr, store);
        if (store)
            stats_.store_hits.inc();
        else
            stats_.load_hits.inc();
        return DAccessOutcome::HitColumn;
    }
    if (config_.victim_enabled && victim_.access(addr, store)) {
        if (store)
            stats_.store_hits.inc();
        else
            stats_.load_hits.inc();
        return DAccessOutcome::HitVictim;
    }
    if (store)
        stats_.store_misses.inc();
    else
        stats_.load_misses.inc();
    return DAccessOutcome::Miss;
}

bool
ColumnDataCache::probe(Addr addr) const
{
    if (columns_.probe(addr))
        return true;
    return config_.victim_enabled && victim_.probe(addr);
}

bool
ColumnDataCache::invalidateBlock(Addr addr)
{
    bool any = false;
    // Invalidate the whole column if it holds the block: a 512-byte
    // column cannot keep a 32-byte hole, so coherence invalidations
    // drop the full buffer (this is the cost of long lines under
    // sharing that Section 6.2 discusses).
    if (columns_.probe(addr)) {
        columns_.invalidate(addr);
        any = true;
    }
    if (config_.victim_enabled && victim_.invalidate(addr))
        any = true;
    return any;
}

void
ColumnDataCache::stageRemoteBlock(Addr addr)
{
    if (config_.victim_enabled)
        victim_.insert(addr);
}

void
ColumnDataCache::flush()
{
    columns_.flush();
    victim_.flush();
}

void
ColumnDataCache::resetStats()
{
    columns_.resetStats();
    victim_.resetStats();
    stats_.reset();
}

void
ColumnDataCache::saveState(ckpt::Encoder &e) const
{
    e.u8(config_.victim_enabled ? 1 : 0);
    columns_.saveState(e);
    if (config_.victim_enabled)
        victim_.saveState(e);
    ckpt::putAccessStats(e, stats_);
    e.u8(last_eviction_dirty_ ? 1 : 0);
}

void
ColumnDataCache::loadState(ckpt::Decoder &d)
{
    const std::uint8_t victim_enabled = d.u8();
    if (d.failed())
        return;
    if (victim_enabled != (config_.victim_enabled ? 1 : 0)) {
        d.fail("column dcache: victim-cache presence mismatch");
        return;
    }
    // Decode into copies so a corrupt tail cannot leave this cache
    // half-restored.
    Cache columns = columns_;
    VictimCache victim = victim_;
    columns.loadState(d);
    if (config_.victim_enabled)
        victim.loadState(d);
    AccessStats stats;
    ckpt::getAccessStats(d, stats);
    const std::uint8_t last = d.u8();
    if (d.failed())
        return;
    if (last > 1) {
        d.fail("column dcache: invalid eviction flag");
        return;
    }
    columns_ = std::move(columns);
    victim_ = std::move(victim);
    stats_ = stats;
    last_eviction_dirty_ = last != 0;
}

} // namespace memwall
