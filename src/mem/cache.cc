#include "mem/cache.hh"

#include <algorithm>

#include "checkpoint/state_io.hh"
#include "common/logging.hh"

namespace memwall {

std::uint32_t
CacheConfig::sets() const
{
    const std::uint64_t lines = capacity / line_size;
    const std::uint64_t ways = assoc == 0 ? lines : assoc;
    return static_cast<std::uint32_t>(lines / ways);
}

void
CacheConfig::validate() const
{
    if (!isPowerOfTwo(line_size))
        MW_FATAL(name, ": line size must be a power of two, got ",
                 line_size);
    if (capacity % line_size != 0)
        MW_FATAL(name, ": capacity not a multiple of the line size");
    const std::uint64_t lines = capacity / line_size;
    const std::uint64_t ways = assoc == 0 ? lines : assoc;
    if (ways == 0 || lines % ways != 0)
        MW_FATAL(name, ": associativity ", assoc,
                 " does not divide the ", lines, " lines");
    if (!isPowerOfTwo(lines / ways))
        MW_FATAL(name, ": set count must be a power of two, got ",
                 lines / ways);
    if (sub_block_size == 0 || line_size % sub_block_size != 0)
        MW_FATAL(name, ": sub-block size must divide the line size");
}

Cache::Cache(CacheConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      rng_state_(seed ? seed : 1)
{
    config_.validate();
    sets_ = config_.sets();
    assoc_ = config_.assoc == 0
        ? static_cast<std::uint32_t>(config_.capacity / config_.line_size)
        : config_.assoc;
    line_shift_ = floorLog2(config_.line_size);
    line_mask_ = config_.line_size - 1;
    tag_shift_ = line_shift_ + floorLog2(sets_);
    lines_.resize(sets_ * assoc_);
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr >> line_shift_) & (sets_ - 1);
}

Cache::Line &
Cache::victimLine(std::uint64_t set)
{
    Line *base = &lines_[set * assoc_];
    // Prefer an invalid way.
    for (std::uint32_t w = 0; w < assoc_; ++w)
        if (!base[w].valid)
            return base[w];
    if (config_.repl == ReplPolicy::Random) {
        // xorshift64 keeps this dependency-free and deterministic.
        rng_state_ ^= rng_state_ << 13;
        rng_state_ ^= rng_state_ >> 7;
        rng_state_ ^= rng_state_ << 17;
        return base[rng_state_ % assoc_];
    }
    Line *victim = &base[0];
    for (std::uint32_t w = 1; w < assoc_; ++w)
        if (base[w].lru < victim->lru)
            victim = &base[w];
    return *victim;
}

void
Cache::touchLine(Line &line, Addr addr, bool store)
{
    line.lru = ++lru_clock_;
    line.last_sub_block = static_cast<std::uint32_t>(
        (addr & line_mask_) / config_.sub_block_size);
    if (store)
        line.dirty = true;
}

AccessResult
Cache::access(Addr addr, bool store)
{
    // A single result object keeps NRVO: both the hit path and
    // fillAt() write straight into the caller's return slot instead
    // of a stack temporary copied out per access.
    AccessResult result;
    const std::uint64_t set = setIndex(addr);
    if (Line *line = findInSetOf(*this, set, tagOf(addr))) {
        result.hit = true;
        touchLine(*line, addr, store);
        if (store)
            stats_.store_hits.inc();
        else
            stats_.load_hits.inc();
        return result;
    }
    fillAt(result, set, addr, store);
    return result;
}

AccessResult
Cache::fill(Addr addr, bool store)
{
    AccessResult result;
    fillAt(result, setIndex(addr), addr, store);
    return result;
}

AccessResult
Cache::warmAccess(Addr addr, bool store)
{
    AccessResult result;
    const std::uint64_t set = setIndex(addr);
    if (Line *line = findInSetOf(*this, set, tagOf(addr))) {
        result.hit = true;
        touchLine(*line, addr, store);
        return result;
    }
    fillAtNoStats(result, set, addr, store);
    return result;
}

void
Cache::fillAt(AccessResult &result, std::uint64_t set, Addr addr,
              bool store)
{
    if (store)
        stats_.store_misses.inc();
    else
        stats_.load_misses.inc();
    fillAtNoStats(result, set, addr, store);
}

void
Cache::fillAtNoStats(AccessResult &result, std::uint64_t set,
                     Addr addr, bool store)
{
    Line &victim = victimLine(set);
    if (victim.valid) {
        // Reconstruct the evicted line's address from tag and set.
        const Addr old_line =
            (victim.tag << tag_shift_) | (set << line_shift_);
        Eviction ev;
        ev.line_addr = old_line;
        ev.last_sub_block =
            old_line + static_cast<Addr>(victim.last_sub_block) *
                           config_.sub_block_size;
        ev.dirty = victim.dirty;
        result.eviction = ev;
    }
    victim.valid = true;
    victim.tag = tagOf(addr);
    victim.dirty = false;
    touchLine(victim, addr, store);
}

bool
Cache::probe(Addr addr) const
{
    return findLine(addr) != nullptr;
}

bool
Cache::touch(Addr addr, bool store)
{
    if (Line *line = findLine(addr)) {
        touchLine(*line, addr, store);
        return true;
    }
    return false;
}

std::optional<Eviction>
Cache::invalidate(Addr addr)
{
    if (Line *line = findLine(addr)) {
        const std::uint64_t set = setIndex(addr);
        Eviction ev;
        const Addr old_line =
            (line->tag << tag_shift_) | (set << line_shift_);
        ev.line_addr = old_line;
        ev.last_sub_block =
            old_line + static_cast<Addr>(line->last_sub_block) *
                           config_.sub_block_size;
        ev.dirty = line->dirty;
        line->valid = false;
        line->dirty = false;
        return ev;
    }
    return std::nullopt;
}

void
Cache::flush()
{
    for (auto &line : lines_) {
        line.valid = false;
        line.dirty = false;
    }
}

std::uint64_t
Cache::residentLines() const
{
    std::uint64_t n = 0;
    for (const auto &line : lines_)
        n += line.valid ? 1 : 0;
    return n;
}

void
Cache::saveState(ckpt::Encoder &e) const
{
    e.varint(sets_);
    e.varint(assoc_);
    e.varint(config_.line_size);
    e.u8(config_.repl == ReplPolicy::Random ? 1 : 0);
    e.u64(rng_state_);
    ckpt::putAccessStats(e, stats_);

    // Rank the valid lines by recency so the serialized form is
    // independent of how large the LRU clock had grown.
    std::vector<std::uint32_t> by_recency;
    for (std::uint32_t i = 0; i < lines_.size(); ++i)
        if (lines_[i].valid)
            by_recency.push_back(i);
    std::sort(by_recency.begin(), by_recency.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                  return lines_[a].lru < lines_[b].lru;
              });
    std::vector<std::uint64_t> rank(lines_.size(), 0);
    for (std::uint32_t r = 0; r < by_recency.size(); ++r)
        rank[by_recency[r]] = r + 1;

    for (std::uint32_t i = 0; i < lines_.size(); ++i) {
        const Line &line = lines_[i];
        if (!line.valid) {
            e.u8(0);
            continue;
        }
        e.u8(1u | (line.dirty ? 2u : 0u));
        e.varint(line.tag);
        e.varint(line.last_sub_block);
        e.varint(rank[i]);
    }
}

void
Cache::loadState(ckpt::Decoder &d)
{
    const std::uint64_t sets = d.varint();
    const std::uint64_t assoc = d.varint();
    const std::uint64_t line_size = d.varint();
    const std::uint8_t repl = d.u8();
    if (d.failed())
        return;
    if (sets != sets_ || assoc != assoc_ ||
        line_size != config_.line_size ||
        repl != (config_.repl == ReplPolicy::Random ? 1 : 0)) {
        d.fail("cache '" + config_.name +
               "': checkpoint geometry mismatch");
        return;
    }

    const std::uint64_t rng = d.u64();
    AccessStats stats;
    ckpt::getAccessStats(d, stats);

    std::vector<Line> lines(lines_.size());
    std::uint64_t valid = 0;
    for (Line &line : lines) {
        const std::uint8_t flags = d.u8();
        if (d.failed())
            return;
        if (!(flags & 1u)) {
            if (flags != 0) {
                d.fail("cache '" + config_.name +
                       "': invalid way flags");
                return;
            }
            continue;
        }
        line.valid = true;
        line.dirty = (flags & 2u) != 0;
        line.tag = d.varint();
        line.last_sub_block =
            static_cast<std::uint32_t>(d.varint());
        line.lru = d.varint();
        if (line.lru == 0 || line.lru > lines_.size()) {
            d.fail("cache '" + config_.name +
                   "': recency rank out of range");
            return;
        }
        ++valid;
    }
    if (d.failed())
        return;

    lines_ = std::move(lines);
    lru_clock_ = valid;
    rng_state_ = rng ? rng : 1;
    stats_ = stats;
}

} // namespace memwall
