#include "mem/backing_store.hh"

#include <algorithm>
#include <cstring>

namespace memwall {

std::uint8_t *
BackingStore::pageFor(Addr addr)
{
    const std::uint64_t pn = addr / page_size;
    auto it = pages_.find(pn);
    if (it == pages_.end()) {
        auto page = std::make_unique<std::uint8_t[]>(page_size);
        std::memset(page.get(), 0, page_size);
        it = pages_.emplace(pn, std::move(page)).first;
    }
    return it->second.get();
}

const std::uint8_t *
BackingStore::pageForRead(Addr addr) const
{
    const std::uint64_t pn = addr / page_size;
    auto it = pages_.find(pn);
    if (it == pages_.end())
        return nullptr;  // unmaterialised pages read as zero
    return it->second.get();
}

namespace {

template <typename T>
T
readScalar(const BackingStore &store, Addr addr)
{
    std::uint8_t buf[sizeof(T)];
    store.readBlock(addr, std::span(buf, sizeof(T)));
    T v;
    std::memcpy(&v, buf, sizeof(T));
    return v;
}

template <typename T>
void
writeScalar(BackingStore &store, Addr addr, T v)
{
    std::uint8_t buf[sizeof(T)];
    std::memcpy(buf, &v, sizeof(T));
    store.writeBlock(addr, std::span<const std::uint8_t>(buf, sizeof(T)));
}

} // namespace

std::uint8_t
BackingStore::readU8(Addr addr) const
{
    const std::uint8_t *page = pageForRead(addr);
    return page ? page[addr % page_size] : 0;
}

std::uint16_t
BackingStore::readU16(Addr addr) const
{
    return readScalar<std::uint16_t>(*this, addr);
}

std::uint32_t
BackingStore::readU32(Addr addr) const
{
    return readScalar<std::uint32_t>(*this, addr);
}

std::uint64_t
BackingStore::readU64(Addr addr) const
{
    return readScalar<std::uint64_t>(*this, addr);
}

void
BackingStore::writeU8(Addr addr, std::uint8_t v)
{
    pageFor(addr)[addr % page_size] = v;
}

void
BackingStore::writeU16(Addr addr, std::uint16_t v)
{
    writeScalar(*this, addr, v);
}

void
BackingStore::writeU32(Addr addr, std::uint32_t v)
{
    writeScalar(*this, addr, v);
}

void
BackingStore::writeU64(Addr addr, std::uint64_t v)
{
    writeScalar(*this, addr, v);
}

void
BackingStore::readBlock(Addr addr, std::span<std::uint8_t> out) const
{
    std::size_t done = 0;
    while (done < out.size()) {
        const Addr cur = addr + done;
        const std::uint64_t off = cur % page_size;
        const std::size_t chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(page_size - off, out.size() - done));
        const std::uint8_t *page = pageForRead(cur);
        if (page)
            std::memcpy(out.data() + done, page + off, chunk);
        else
            std::memset(out.data() + done, 0, chunk);
        done += chunk;
    }
}

void
BackingStore::writeBlock(Addr addr, std::span<const std::uint8_t> in)
{
    std::size_t done = 0;
    while (done < in.size()) {
        const Addr cur = addr + done;
        const std::uint64_t off = cur % page_size;
        const std::size_t chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(page_size - off, in.size() - done));
        std::memcpy(pageFor(cur) + off, in.data() + done, chunk);
        done += chunk;
    }
}

} // namespace memwall
