#include "mem/victim_cache.hh"

#include "common/logging.hh"

namespace memwall {

VictimCache::VictimCache(VictimCacheConfig config)
    : config_(config), entries_(config.entries)
{
    if (config_.entries == 0)
        MW_FATAL("victim cache needs at least one entry");
    if (!isPowerOfTwo(config_.line_size))
        MW_FATAL("victim cache line size must be a power of two");
}

bool
VictimCache::access(Addr addr, bool store)
{
    const Addr block = blockAddr(addr);
    for (auto &entry : entries_) {
        if (entry.valid && entry.block == block) {
            entry.lru = ++lru_clock_;
            if (store)
                stats_.store_hits.inc();
            else
                stats_.load_hits.inc();
            return true;
        }
    }
    if (store)
        stats_.store_misses.inc();
    else
        stats_.load_misses.inc();
    return false;
}

bool
VictimCache::warmAccess(Addr addr)
{
    const Addr block = blockAddr(addr);
    for (auto &entry : entries_) {
        if (entry.valid && entry.block == block) {
            entry.lru = ++lru_clock_;
            return true;
        }
    }
    return false;
}

bool
VictimCache::probe(Addr addr) const
{
    const Addr block = blockAddr(addr);
    for (const auto &entry : entries_)
        if (entry.valid && entry.block == block)
            return true;
    return false;
}

void
VictimCache::insert(Addr addr)
{
    const Addr block = blockAddr(addr);
    Entry *victim = nullptr;
    for (auto &entry : entries_) {
        if (entry.valid && entry.block == block) {
            // Already present; treat the insert as a refresh.
            entry.lru = ++lru_clock_;
            return;
        }
        if (!entry.valid && !victim)
            victim = &entry;
    }
    if (!victim) {
        victim = &entries_[0];
        for (auto &entry : entries_)
            if (entry.lru < victim->lru)
                victim = &entry;
    }
    victim->valid = true;
    victim->block = block;
    victim->lru = ++lru_clock_;
}

bool
VictimCache::invalidate(Addr addr)
{
    const Addr block = blockAddr(addr);
    for (auto &entry : entries_) {
        if (entry.valid && entry.block == block) {
            entry.valid = false;
            return true;
        }
    }
    return false;
}

void
VictimCache::flush()
{
    for (auto &entry : entries_)
        entry.valid = false;
}

} // namespace memwall
