#include "mem/victim_cache.hh"

#include <algorithm>
#include <vector>

#include "checkpoint/state_io.hh"
#include "common/logging.hh"

namespace memwall {

VictimCache::VictimCache(VictimCacheConfig config)
    : config_(config), entries_(config.entries)
{
    if (config_.entries == 0)
        MW_FATAL("victim cache needs at least one entry");
    if (!isPowerOfTwo(config_.line_size))
        MW_FATAL("victim cache line size must be a power of two");
}

bool
VictimCache::access(Addr addr, bool store)
{
    const Addr block = blockAddr(addr);
    for (auto &entry : entries_) {
        if (entry.valid && entry.block == block) {
            entry.lru = ++lru_clock_;
            if (store)
                stats_.store_hits.inc();
            else
                stats_.load_hits.inc();
            return true;
        }
    }
    if (store)
        stats_.store_misses.inc();
    else
        stats_.load_misses.inc();
    return false;
}

bool
VictimCache::warmAccess(Addr addr)
{
    const Addr block = blockAddr(addr);
    for (auto &entry : entries_) {
        if (entry.valid && entry.block == block) {
            entry.lru = ++lru_clock_;
            return true;
        }
    }
    return false;
}

bool
VictimCache::probe(Addr addr) const
{
    const Addr block = blockAddr(addr);
    for (const auto &entry : entries_)
        if (entry.valid && entry.block == block)
            return true;
    return false;
}

void
VictimCache::insert(Addr addr)
{
    const Addr block = blockAddr(addr);
    Entry *victim = nullptr;
    for (auto &entry : entries_) {
        if (entry.valid && entry.block == block) {
            // Already present; treat the insert as a refresh.
            entry.lru = ++lru_clock_;
            return;
        }
        if (!entry.valid && !victim)
            victim = &entry;
    }
    if (!victim) {
        victim = &entries_[0];
        for (auto &entry : entries_)
            if (entry.lru < victim->lru)
                victim = &entry;
    }
    victim->valid = true;
    victim->block = block;
    victim->lru = ++lru_clock_;
}

bool
VictimCache::invalidate(Addr addr)
{
    const Addr block = blockAddr(addr);
    for (auto &entry : entries_) {
        if (entry.valid && entry.block == block) {
            entry.valid = false;
            return true;
        }
    }
    return false;
}

void
VictimCache::flush()
{
    for (auto &entry : entries_)
        entry.valid = false;
}

void
VictimCache::saveState(ckpt::Encoder &e) const
{
    e.varint(config_.entries);
    e.varint(config_.line_size);
    ckpt::putAccessStats(e, stats_);

    std::vector<std::uint32_t> by_recency;
    for (std::uint32_t i = 0; i < entries_.size(); ++i)
        if (entries_[i].valid)
            by_recency.push_back(i);
    std::sort(by_recency.begin(), by_recency.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                  return entries_[a].lru < entries_[b].lru;
              });
    std::vector<std::uint64_t> rank(entries_.size(), 0);
    for (std::uint32_t r = 0; r < by_recency.size(); ++r)
        rank[by_recency[r]] = r + 1;

    for (std::uint32_t i = 0; i < entries_.size(); ++i) {
        const Entry &entry = entries_[i];
        e.u8(entry.valid ? 1 : 0);
        if (entry.valid) {
            e.varint(entry.block);
            e.varint(rank[i]);
        }
    }
}

void
VictimCache::loadState(ckpt::Decoder &d)
{
    const std::uint64_t entries = d.varint();
    const std::uint64_t line_size = d.varint();
    if (d.failed())
        return;
    if (entries != config_.entries || line_size != config_.line_size) {
        d.fail("victim cache: checkpoint geometry mismatch");
        return;
    }

    AccessStats stats;
    ckpt::getAccessStats(d, stats);

    std::vector<Entry> loaded(entries_.size());
    std::uint64_t valid = 0;
    for (Entry &entry : loaded) {
        const std::uint8_t flag = d.u8();
        if (d.failed())
            return;
        if (flag == 0)
            continue;
        if (flag != 1) {
            d.fail("victim cache: invalid entry flags");
            return;
        }
        entry.valid = true;
        entry.block = d.varint();
        entry.lru = d.varint();
        if (entry.lru == 0 || entry.lru > entries_.size()) {
            d.fail("victim cache: recency rank out of range");
            return;
        }
        ++valid;
    }
    if (d.failed())
        return;

    entries_ = std::move(loaded);
    lru_clock_ = valid;
    stats_ = stats;
}

} // namespace memwall
