/**
 * @file
 * Sparse functional memory backing store.
 *
 * Holds the actual bytes behind the timing models: the MW32
 * interpreter's code and data, and the MP framework's shared arrays.
 * Pages are allocated lazily so a 32 MiB (256 Mbit) node or a multi-
 * gigabyte Synopsys-proxy footprint cost only what is touched.
 */

#ifndef MEMWALL_MEM_BACKING_STORE_HH
#define MEMWALL_MEM_BACKING_STORE_HH

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

#include "common/types.hh"

namespace memwall {

/** Lazily allocated paged memory image. */
class BackingStore
{
  public:
    static constexpr std::uint64_t page_size = 4 * KiB;

    BackingStore() = default;

    std::uint8_t readU8(Addr addr) const;
    std::uint16_t readU16(Addr addr) const;
    std::uint32_t readU32(Addr addr) const;
    std::uint64_t readU64(Addr addr) const;

    void writeU8(Addr addr, std::uint8_t v);
    void writeU16(Addr addr, std::uint16_t v);
    void writeU32(Addr addr, std::uint32_t v);
    void writeU64(Addr addr, std::uint64_t v);

    /** Copy @p bytes out of memory starting at @p addr. */
    void readBlock(Addr addr, std::span<std::uint8_t> out) const;

    /** Copy @p bytes into memory starting at @p addr. */
    void writeBlock(Addr addr, std::span<const std::uint8_t> in);

    /**
     * Writable page holding @p addr, materialising it on first
     * touch. Page storage is stable for the lifetime of the store —
     * pages are never freed or moved — so callers may cache the
     * pointer; the execution fast path keeps a one-entry TLB of it.
     */
    std::uint8_t *page(Addr addr) { return pageFor(addr); }

    /**
     * Read-only page holding @p addr, or nullptr when the page was
     * never written (such pages read as zero and must NOT be
     * materialised by a load — allocatedPages() is observable).
     */
    const std::uint8_t *
    pageIfPresent(Addr addr) const
    {
        return pageForRead(addr);
    }

    /** Number of pages materialised so far. */
    std::size_t allocatedPages() const { return pages_.size(); }

    /** Bytes of host memory used by materialised pages. */
    std::uint64_t footprintBytes() const
    {
        return static_cast<std::uint64_t>(pages_.size()) * page_size;
    }

  private:
    using Page = std::unique_ptr<std::uint8_t[]>;

    std::uint8_t *pageFor(Addr addr);
    const std::uint8_t *pageForRead(Addr addr) const;

    mutable std::unordered_map<std::uint64_t, Page> pages_;
};

} // namespace memwall

#endif // MEMWALL_MEM_BACKING_STORE_HH
