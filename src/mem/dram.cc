#include "mem/dram.hh"

#include <algorithm>

#include "checkpoint/state_io.hh"
#include "common/logging.hh"

namespace memwall {

void
DramConfig::validate() const
{
    if (banks == 0 || !isPowerOfTwo(banks))
        MW_FATAL(name, ": bank count must be a power of two, got ",
                 banks);
    if (!isPowerOfTwo(column_bytes))
        MW_FATAL(name, ": column size must be a power of two");
    if (capacity % (static_cast<std::uint64_t>(banks) * column_bytes))
        MW_FATAL(name, ": capacity must be a multiple of banks*column");
}

Dram::Dram(DramConfig config)
    : config_(config)
{
    config_.validate();
    column_shift_ = floorLog2(config_.column_bytes);
    ready_at_.assign(config_.banks, 0);
    busy_cycles_.assign(config_.banks, 0);
}

std::uint32_t
Dram::bankFor(Addr addr) const
{
    return static_cast<std::uint32_t>(
        (addr >> column_shift_) & (config_.banks - 1));
}

Addr
Dram::columnAddr(Addr addr) const
{
    return addr & ~static_cast<Addr>(config_.column_bytes - 1);
}

DramResult
Dram::access(Tick now, Addr addr)
{
    const std::uint32_t bank = bankFor(addr);
    DramResult result;
    result.bank = bank;

    const Tick start = std::max(now, ready_at_[bank]);
    result.queued = start - now;
    result.done = start + config_.access_cycles;
    // The bank is occupied for the access plus the precharge window.
    ready_at_[bank] = result.done + config_.precharge_cycles;
    busy_cycles_[bank] +=
        config_.access_cycles + config_.precharge_cycles;

    accesses_.inc();
    queued_.inc(result.queued);
    return result;
}

Tick
Dram::bankReadyAt(std::uint32_t bank) const
{
    MW_ASSERT(bank < config_.banks, "bank index out of range");
    return ready_at_[bank];
}

double
Dram::bankUtilisation(std::uint32_t bank, Tick window_end) const
{
    MW_ASSERT(bank < config_.banks, "bank index out of range");
    if (window_end == 0)
        return 0.0;
    return static_cast<double>(busy_cycles_[bank]) /
           static_cast<double>(window_end);
}

double
Dram::meanUtilisation(Tick window_end) const
{
    if (window_end == 0 || config_.banks == 0)
        return 0.0;
    std::uint64_t total = 0;
    for (auto busy : busy_cycles_)
        total += busy;
    return static_cast<double>(total) /
           (static_cast<double>(window_end) * config_.banks);
}

void
Dram::resetStats()
{
    std::fill(busy_cycles_.begin(), busy_cycles_.end(), 0);
    accesses_.reset();
    queued_.reset();
}

void
Dram::saveState(ckpt::Encoder &e) const
{
    e.varint(config_.banks);
    e.varint(config_.column_bytes);
    for (const Tick t : ready_at_)
        e.varint(t);
    for (const std::uint64_t busy : busy_cycles_)
        e.varint(busy);
    ckpt::putCounter(e, accesses_);
    ckpt::putCounter(e, queued_);
}

void
Dram::loadState(ckpt::Decoder &d)
{
    const std::uint64_t banks = d.varint();
    const std::uint64_t column_bytes = d.varint();
    if (d.failed())
        return;
    if (banks != config_.banks ||
        column_bytes != config_.column_bytes) {
        d.fail("dram '" + config_.name +
               "': checkpoint geometry mismatch");
        return;
    }
    std::vector<Tick> ready(ready_at_.size());
    std::vector<std::uint64_t> busy(busy_cycles_.size());
    for (Tick &t : ready)
        t = d.varint();
    for (std::uint64_t &b : busy)
        b = d.varint();
    Counter accesses;
    Counter queued;
    ckpt::getCounter(d, accesses);
    ckpt::getCounter(d, queued);
    if (d.failed())
        return;
    ready_at_ = std::move(ready);
    busy_cycles_ = std::move(busy);
    accesses_ = accesses;
    queued_ = queued;
}

} // namespace memwall
