/**
 * @file
 * Conventional multi-level memory-hierarchy timing model.
 *
 * Used three ways:
 *  - the SS-5 and SS-10/61 machine models behind Table 1 / Figure 2;
 *  - the "reference system" of Section 5.5 (16 KB split L1,
 *    256 KB unified L2, dual-banked main memory);
 *  - the conventional comparison caches in Figures 7 and 8.
 *
 * Each access walks L1 -> optional L2 -> memory and returns the
 * latency in CPU cycles. An optional linear-stride prefetcher models
 * the SS-10's prefetch unit (paper footnote 2), which hides the
 * memory access time for small linear strides.
 */

#ifndef MEMWALL_MEM_HIERARCHY_HH
#define MEMWALL_MEM_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/stats.hh"
#include "mem/cache.hh"

namespace memwall {

/** Kind of memory reference presented to a hierarchy. */
enum class RefKind { IFetch, Load, Store };

/** Full machine description for a conventional hierarchy. */
struct HierarchyConfig
{
    std::string name = "machine";
    /** Core clock, MHz (latencies are reported in this clock). */
    double freq_mhz = 200.0;
    /**
     * Mean instructions issued per cycle when nothing stalls
     * (superscalar factor; the SuperSparc of the SS-10 is a 3-issue
     * core that averages ~1.4 on integer code, the MicroSparc-II
     * and the proposed device are single-issue).
     */
    double issue_width = 1.0;

    CacheConfig l1i;
    CacheConfig l1d;
    Cycles l1_latency = 1;

    bool has_l2 = false;
    CacheConfig l2;
    Cycles l2_latency = 6;

    /** Main-memory access time in nanoseconds. */
    double memory_ns = 150.0;

    /**
     * Model a simple hardware prefetch unit that hides main-memory
     * latency for small, linear strides (the SS-10 behaviour in
     * Figure 2's footnote).
     */
    bool linear_prefetch = false;
    /** Largest stride (bytes) the prefetcher recognises. */
    std::uint32_t prefetch_max_stride = 64;

    /** @return main-memory latency in CPU cycles. */
    Cycles memoryCycles() const;

    /** SparcStation 5 (85 MHz MicroSparc-II, no L2, fast memory). */
    static HierarchyConfig ss5();
    /** SparcStation 10/61 (SuperSparc, 1 MB L2, slower memory). */
    static HierarchyConfig ss10();
    /**
     * The Section 5.5 reference system: 200 MHz, 16 KB split L1,
     * 256 KB unified L2, main memory @p memory_ns away.
     */
    static HierarchyConfig reference(double memory_ns = 150.0,
                                     Cycles l2_latency = 6);
};

/** Latency and service level of one hierarchy access. */
struct HierarchyResult
{
    Cycles latency = 0;
    /** 1 = L1, 2 = L2, 3 = memory, 0 = prefetched. */
    int level = 0;
};

/** Walking timing model over Cache tag arrays. */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(HierarchyConfig config);

    /** Simulate one reference; returns its latency. */
    HierarchyResult access(RefKind kind, Addr addr);

    const HierarchyConfig &config() const { return config_; }
    const AccessStats &l1iStats() const { return l1i_.stats(); }
    const AccessStats &l1dStats() const { return l1d_.stats(); }
    const AccessStats &l2Stats() const { return l2_->stats(); }
    bool hasL2() const { return l2_ != nullptr; }

    /** Total cycles accumulated over all accesses. */
    std::uint64_t totalCycles() const { return total_cycles_; }
    /** Number of accesses simulated. */
    std::uint64_t totalAccesses() const { return total_accesses_; }
    /** Mean access latency in cycles. */
    double meanLatency() const;
    /** Mean access latency in nanoseconds. */
    double meanLatencyNs() const;

    void resetStats();
    void flush();

  private:
    HierarchyConfig config_;
    Cache l1i_;
    Cache l1d_;
    std::unique_ptr<Cache> l2_;
    Cycles memory_cycles_;

    // Linear-prefetch stream detector state.
    Addr last_miss_addr_ = invalid_addr;
    std::int64_t last_stride_ = 0;

    std::uint64_t total_cycles_ = 0;
    std::uint64_t total_accesses_ = 0;
    Counter prefetch_hits_;
};

} // namespace memwall

#endif // MEMWALL_MEM_HIERARCHY_HH
