/**
 * @file
 * Generic set-associative cache model for miss-ratio studies.
 *
 * This is a tag-only (functional) model: it tracks which line
 * addresses are resident and reports hits/misses/evictions, exactly
 * what the paper's Shade-driven methodology measured (Sections 5.2
 * and 5.3). Timing is layered on top by the hierarchy and device
 * models.
 *
 * The same class models both conventional caches (32-byte lines,
 * 8 KB..256 KB) and the proposal's column-buffer caches (512-byte
 * lines, 16 sets) — the column-buffer organisation is just a
 * particular geometry plus DRAM-supplied fill timing.
 */

#ifndef MEMWALL_MEM_CACHE_HH
#define MEMWALL_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "checkpoint/codec.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace memwall {

/** Replacement policy for set-associative caches. */
enum class ReplPolicy { LRU, Random };

/** Geometry and policy of one cache. */
struct CacheConfig
{
    /** Total capacity in bytes; must be assoc * line_size * sets. */
    std::uint64_t capacity = 8 * KiB;
    /** Line (block) size in bytes; power of two. */
    std::uint32_t line_size = 32;
    /** Associativity; 0 means fully associative. */
    std::uint32_t assoc = 1;
    /** Replacement policy within a set. */
    ReplPolicy repl = ReplPolicy::LRU;
    /**
     * Sub-block granularity tracked for victim-cache hand-off
     * (Section 5.4: "the most recently accessed 32-Byte block").
     */
    std::uint32_t sub_block_size = 32;
    /** Name used in reports. */
    std::string name = "cache";

    /** @return number of sets implied by the other fields. */
    std::uint32_t sets() const;
    /** Validate the configuration; fatal on inconsistency. */
    void validate() const;
};

/** Information about a line displaced by a fill. */
struct Eviction
{
    /** Address of the first byte of the evicted line. */
    Addr line_addr = invalid_addr;
    /** Address of the most recently accessed sub-block in the line. */
    Addr last_sub_block = invalid_addr;
    /** Whether the line had been written. */
    bool dirty = false;
};

/** Result of a single cache access. */
struct AccessResult
{
    bool hit = false;
    /** Valid line displaced by the fill on a miss, if any. */
    std::optional<Eviction> eviction;
};

/**
 * Tag-array cache model.
 *
 * Misses allocate (fetch-on-write for stores, as a write-back
 * write-allocate cache); invalidations support the coherence layer.
 */
class Cache
{
  public:
    explicit Cache(CacheConfig config, std::uint64_t seed = 1);

    /**
     * Perform one access.
     *
     * @param addr   byte address accessed
     * @param store  true for a store, false for a load
     * @return hit/miss plus any eviction caused by the fill
     */
    AccessResult access(Addr addr, bool store);

    /**
     * Miss path of access(): allocate the line containing @p addr,
     * recording the miss and any eviction. The caller must know the
     * line is NOT resident (e.g. a touch() that just returned false);
     * this skips the tag walk access() would repeat.
     */
    AccessResult fill(Addr addr, bool store);

    /**
     * Functional-warming access: identical tag/LRU/dirty/fill state
     * transitions to access(), but records NO statistics. Sampled
     * simulation uses this between detail units so detail-unit miss
     * rates see warm tags without the warming traffic polluting the
     * measured counters.
     */
    AccessResult warmAccess(Addr addr, bool store);

    /** @return true iff the line containing @p addr is resident. */
    bool probe(Addr addr) const;

    /**
     * Touch without filling: updates LRU/sub-block bookkeeping if the
     * line is resident and reports whether it was. Used when another
     * structure (e.g. a victim cache) services the access.
     */
    bool touch(Addr addr, bool store);

    /**
     * Drop the line containing @p addr if resident.
     * @return the eviction record when a valid line was removed.
     */
    std::optional<Eviction> invalidate(Addr addr);

    /** Invalidate everything (keeps statistics). */
    void flush();

    /** Reset statistics only. */
    void resetStats() { stats_.reset(); }

    const CacheConfig &config() const { return config_; }
    const AccessStats &stats() const { return stats_; }

    /** Number of valid lines currently resident. */
    std::uint64_t residentLines() const;

    /**
     * Serialize a geometry guard, every way of every set in way
     * order (positions matter: Random replacement indexes ways
     * directly), the replacement RNG and the statistics. The raw LRU
     * clock is not stored; valid lines carry their global recency
     * rank instead, which loadState() replays — only the relative
     * order is ever compared, so victim choices are preserved while
     * the serialized form stays compact and canonical.
     */
    void saveState(ckpt::Encoder &e) const;

    /**
     * All-or-nothing restore: on any decode failure or geometry
     * mismatch the decoder is failed and the cache is left exactly
     * as it was.
     */
    void loadState(ckpt::Decoder &d);

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        bool dirty = false;
        std::uint64_t lru = 0;
        std::uint32_t last_sub_block = 0;
    };

    Addr lineAddr(Addr addr) const { return addr & ~line_mask_; }
    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const { return addr >> tag_shift_; }

    /**
     * Shared implementation of the const and non-const tag walks;
     * deduces constness from @p self instead of const_cast'ing. The
     * set base and tag are computed once, outside the per-way loop;
     * access() precomputes the set itself so the miss path can reuse
     * it without a second index computation.
     */
    template <typename Self>
    static auto *
    findInSetOf(Self &self, std::uint64_t set, Addr tag)
    {
        auto *base = &self.lines_[set * self.assoc_];
        for (std::uint32_t w = 0; w < self.assoc_; ++w) {
            if (base[w].valid && base[w].tag == tag)
                return &base[w];
        }
        return static_cast<decltype(&base[0])>(nullptr);
    }

    template <typename Self>
    static auto *
    findLineIn(Self &self, Addr addr)
    {
        return findInSetOf(self, self.setIndex(addr),
                           self.tagOf(addr));
    }

    Line *findLine(Addr addr) { return findLineIn(*this, addr); }
    const Line *
    findLine(Addr addr) const
    {
        return findLineIn(*this, addr);
    }
    /** Miss path shared by access() and fill(); writes @p result. */
    void fillAt(AccessResult &result, std::uint64_t set, Addr addr,
                bool store);
    /** fillAt() without the miss counters (warming path). */
    void fillAtNoStats(AccessResult &result, std::uint64_t set,
                       Addr addr, bool store);
    Line &victimLine(std::uint64_t set);
    void touchLine(Line &line, Addr addr, bool store);

    CacheConfig config_;
    std::uint64_t sets_;
    std::uint32_t assoc_;
    Addr line_mask_;
    unsigned line_shift_;
    unsigned tag_shift_;
    std::vector<Line> lines_;
    std::uint64_t lru_clock_ = 0;
    std::uint64_t rng_state_;
    AccessStats stats_;
};

} // namespace memwall

#endif // MEMWALL_MEM_CACHE_HH
