/**
 * @file
 * Multi-bank DRAM array timing model (Section 4.1).
 *
 * The proposed 256 Mbit device has sixteen independently controlled
 * banks. An array access moves an entire 4 Kbit (512-byte) column
 * between the sense amplifiers and a column buffer in one shot; the
 * access takes 30 ns (6 cycles at 200 MHz) and is followed by a
 * precharge window during which the bank cannot accept a new
 * transaction (Figure 9: transitions T1/T3 = access, T2 = precharge).
 *
 * The model tracks per-bank ready times and busy statistics; the
 * busy fractions reproduce the Section 5.6 observation that banks
 * are nearly always idle (gcc: 1.2% at 16 banks, 9.6% at 2 banks).
 */

#ifndef MEMWALL_MEM_DRAM_HH
#define MEMWALL_MEM_DRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "checkpoint/codec.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace memwall {

/** Geometry and timing of the on-chip DRAM array. */
struct DramConfig
{
    /** Number of independent banks. */
    std::uint32_t banks = 16;
    /** Bytes transferred per array access (one column buffer). */
    std::uint32_t column_bytes = 512;
    /** Array access time in CPU cycles (30 ns at 200 MHz). */
    Cycles access_cycles = 6;
    /** Precharge time before the bank accepts the next access. */
    Cycles precharge_cycles = 4;
    /** Total capacity in bytes (256 Mbit = 32 MiB). */
    std::uint64_t capacity = 32 * MiB;
    /** Name used in reports. */
    std::string name = "dram";

    void validate() const;
};

/** Completion information for one DRAM access. */
struct DramResult
{
    /** Tick at which the data is available in the column buffer. */
    Tick done = 0;
    /** Cycles the request waited for a busy bank. */
    Cycles queued = 0;
    /** Bank that served the request. */
    std::uint32_t bank = 0;
};

/**
 * Timing model of the banked DRAM array. Banks are interleaved at
 * column granularity, so consecutive 512-byte columns live in
 * consecutive banks — the mapping that makes the column buffers act
 * as cache sets.
 */
class Dram
{
  public:
    explicit Dram(DramConfig config = {});

    /** @return the bank holding the column that contains @p addr. */
    std::uint32_t bankFor(Addr addr) const;

    /** @return the first byte address of @p addr's column. */
    Addr columnAddr(Addr addr) const;

    /**
     * Issue an array access for @p addr's column at time @p now.
     * Accounts queueing if the bank is still busy or precharging.
     */
    DramResult access(Tick now, Addr addr);

    /** Tick at which @p bank can accept a new transaction. */
    Tick bankReadyAt(std::uint32_t bank) const;

    /**
     * Fraction of the observation window each bank spent busy
     * (access + precharge). @p window_end must be >= the last access.
     */
    double bankUtilisation(std::uint32_t bank, Tick window_end) const;

    /** Mean utilisation across banks. */
    double meanUtilisation(Tick window_end) const;

    std::uint64_t totalAccesses() const { return accesses_.value(); }
    std::uint64_t totalQueuedCycles() const { return queued_.value(); }

    const DramConfig &config() const { return config_; }

    void resetStats();

    /** Serialize per-bank ready/busy state and the counters. */
    void saveState(ckpt::Encoder &e) const;

    /** All-or-nothing restore; fails the decoder on mismatch. */
    void loadState(ckpt::Decoder &d);

  private:
    DramConfig config_;
    unsigned column_shift_;
    std::vector<Tick> ready_at_;
    std::vector<std::uint64_t> busy_cycles_;
    Counter accesses_;
    Counter queued_;
};

} // namespace memwall

#endif // MEMWALL_MEM_DRAM_HH
