#include "mem/ecc.hh"

#include "common/logging.hh"
#include "common/types.hh"

namespace memwall {

SecDedCode::SecDedCode(unsigned data_bits)
    : data_bits_(data_bits)
{
    MW_ASSERT(data_bits_ > 0 && data_bits_ <= 247,
              "unsupported SECDED data width ", data_bits_);
    // Find r such that 2^r >= data_bits + r + 1.
    unsigned r = 1;
    while ((1u << r) < data_bits_ + r + 1)
        ++r;
    hamming_bits_ = r;
    codeword_len_ = data_bits_ + r;

    pos_data_.fill(-1);
    unsigned data_index = 0;
    for (unsigned pos = 1; pos <= codeword_len_; ++pos) {
        if (isPowerOfTwo(pos))
            continue;  // check-bit position
        data_pos_[data_index] = static_cast<std::uint16_t>(pos);
        pos_data_[pos] = static_cast<std::int16_t>(data_index);
        ++data_index;
    }
    MW_ASSERT(data_index == data_bits_, "hamming layout bug");
}

bool
SecDedCode::dataBit(std::span<const std::uint64_t> data, unsigned i) const
{
    return (data[i / 64] >> (i % 64)) & 1;
}

void
SecDedCode::flipDataBit(std::span<std::uint64_t> data, unsigned i) const
{
    data[i / 64] ^= (std::uint64_t{1} << (i % 64));
}

std::uint32_t
SecDedCode::encode(std::span<const std::uint64_t> data) const
{
    // Hamming check bits: check bit k (at position 2^k) is the parity
    // of all data positions whose index has bit k set.
    std::uint32_t check = 0;
    for (unsigned k = 0; k < hamming_bits_; ++k) {
        unsigned parity = 0;
        for (unsigned i = 0; i < data_bits_; ++i) {
            if ((data_pos_[i] >> k) & 1)
                parity ^= dataBit(data, i) ? 1 : 0;
        }
        check |= parity << k;
    }
    // Overall parity over data bits and hamming check bits.
    unsigned overall = 0;
    for (unsigned i = 0; i < data_bits_; ++i)
        overall ^= dataBit(data, i) ? 1 : 0;
    for (unsigned k = 0; k < hamming_bits_; ++k)
        overall ^= (check >> k) & 1;
    check |= overall << hamming_bits_;
    return check;
}

EccDecodeResult
SecDedCode::decode(std::span<std::uint64_t> data,
                   std::uint32_t check) const
{
    const std::uint32_t hamming_mask = (1u << hamming_bits_) - 1;
    const std::uint32_t expected = encode(data);
    const std::uint32_t stored_hamming = check & hamming_mask;
    const std::uint32_t syndrome =
        (expected ^ stored_hamming) & hamming_mask;
    // The overall parity covers the codeword AS STORED: corrupted
    // data bits plus the stored check bits. Any single flipped bit
    // (data, hamming or parity) changes it by exactly one.
    unsigned overall = (check >> hamming_bits_) & 1;
    for (unsigned i = 0; i < data_bits_; ++i)
        overall ^= dataBit(data, i) ? 1 : 0;
    for (unsigned k = 0; k < hamming_bits_; ++k)
        overall ^= (stored_hamming >> k) & 1;
    const bool parity_mismatch = overall != 0;

    EccDecodeResult result;
    if (syndrome == 0 && !parity_mismatch) {
        result.status = EccStatus::Ok;
        return result;
    }
    if (!parity_mismatch) {
        // Syndrome non-zero but overall parity matches: two bits
        // flipped. Uncorrectable.
        result.status = EccStatus::DetectedDouble;
        return result;
    }
    // Single-bit error. If the syndrome names a data position,
    // correct it; otherwise the flipped bit was a check bit and the
    // data is already correct.
    result.status = EccStatus::CorrectedSingle;
    if (syndrome != 0 && syndrome <= codeword_len_ &&
        pos_data_[syndrome] >= 0) {
        const auto bit = static_cast<unsigned>(pos_data_[syndrome]);
        flipDataBit(data, bit);
        result.corrected_data_bit = static_cast<int>(bit);
    }
    return result;
}

DirectoryEccBlock::DirectoryEccBlock()
    : data_{}, check_{}, code_(128)
{
    check_[0] = code_.encode(std::span(data_.data(), 2));
    check_[1] = code_.encode(std::span(data_.data() + 2, 2));
}

void
DirectoryEccBlock::store(const std::array<std::uint64_t, data_words> &data,
                         std::uint16_t directory)
{
    data_ = data;
    check_[0] = code_.encode(std::span(data_.data(), 2));
    check_[1] = code_.encode(std::span(data_.data() + 2, 2));
    setDirectory(directory);
}

void
DirectoryEccBlock::setDirectory(std::uint16_t directory)
{
    MW_ASSERT((directory >> directory_bits) == 0,
              "directory field wider than 14 bits");
    directory_ = directory;
}

EccStatus
DirectoryEccBlock::load(std::array<std::uint64_t, data_words> &data) const
{
    data = data_;
    EccStatus worst = EccStatus::Ok;
    for (unsigned half = 0; half < 2; ++half) {
        const auto res =
            code_.decode(std::span(data.data() + 2 * half, 2),
                         check_[half]);
        if (res.status == EccStatus::DetectedDouble)
            return EccStatus::DetectedDouble;
        if (res.status == EccStatus::CorrectedSingle)
            worst = EccStatus::CorrectedSingle;
    }
    return worst;
}

EccStatus
DirectoryEccBlock::scrub()
{
    std::array<std::uint64_t, data_words> repaired = data_;
    EccStatus worst = EccStatus::Ok;
    for (unsigned half = 0; half < 2; ++half) {
        const auto res =
            code_.decode(std::span(repaired.data() + 2 * half, 2),
                         check_[half]);
        if (res.status == EccStatus::DetectedDouble)
            return EccStatus::DetectedDouble;
        if (res.status == EccStatus::CorrectedSingle)
            worst = EccStatus::CorrectedSingle;
    }
    if (worst == EccStatus::CorrectedSingle) {
        // Write back the corrected words and regenerate the check
        // bits; this also clears flipped check bits.
        data_ = repaired;
        check_[0] = code_.encode(std::span(data_.data(), 2));
        check_[1] = code_.encode(std::span(data_.data() + 2, 2));
    }
    return worst;
}

void
DirectoryEccBlock::injectDataError(unsigned bit)
{
    MW_ASSERT(bit < 64 * data_words, "data bit index out of range");
    data_[bit / 64] ^= (std::uint64_t{1} << (bit % 64));
}

void
DirectoryEccBlock::injectCheckError(unsigned bit)
{
    MW_ASSERT(bit < 18, "check bit index out of range");
    const unsigned half = bit / 9;
    check_[half] ^= (1u << (bit % 9));
}

} // namespace memwall
