#include "mem/hierarchy.hh"

#include <cmath>

#include "common/logging.hh"

namespace memwall {

Cycles
HierarchyConfig::memoryCycles() const
{
    ClockParams clock;
    clock.freq_mhz = freq_mhz;
    return clock.nsToCycles(memory_ns);
}

HierarchyConfig
HierarchyConfig::ss5()
{
    // SparcStation 5: 85 MHz MicroSparc-II, 16 KB I / 8 KB D on-chip
    // caches, memory controller on the CPU die, so main memory is
    // unusually close (~270 ns).
    HierarchyConfig c;
    c.name = "SS-5";
    c.freq_mhz = 85.0;
    c.l1i = {16 * KiB, 32, 1, ReplPolicy::LRU, 32, "ss5-l1i"};
    c.l1d = {8 * KiB, 16, 1, ReplPolicy::LRU, 16, "ss5-l1d"};
    c.l1_latency = 1;
    c.has_l2 = false;
    c.memory_ns = 270.0;
    return c;
}

HierarchyConfig
HierarchyConfig::ss10()
{
    // SparcStation 10/61: 60 MHz SuperSparc, 20 KB I / 16 KB D level-1
    // caches, 1 MB unified level-2 cache, main memory behind the MBus
    // (~480 ns), and a prefetch unit that hides memory latency on
    // small linear strides (Figure 2, footnote 2).
    HierarchyConfig c;
    c.name = "SS-10/61";
    c.freq_mhz = 60.0;
    c.issue_width = 1.4;  // 3-issue SuperSparc, realistic IPC
    // 20 KB L1I is 5-way 4 KB sets on real hardware; model the
    // nearest power-of-two organisation.
    c.l1i = {16 * KiB, 32, 4, ReplPolicy::LRU, 32, "ss10-l1i"};
    c.l1d = {16 * KiB, 32, 4, ReplPolicy::LRU, 32, "ss10-l1d"};
    c.l1_latency = 1;
    c.has_l2 = true;
    c.l2 = {1 * MiB, 64, 1, ReplPolicy::LRU, 64, "ss10-l2"};
    c.l2_latency = 5;
    c.memory_ns = 480.0;
    c.linear_prefetch = true;
    c.prefetch_max_stride = 64;
    return c;
}

HierarchyConfig
HierarchyConfig::reference(double memory_ns, Cycles l2_latency)
{
    HierarchyConfig c;
    c.name = "reference-cpu";
    c.freq_mhz = 200.0;
    c.l1i = {16 * KiB, 32, 1, ReplPolicy::LRU, 32, "ref-l1i"};
    c.l1d = {16 * KiB, 32, 1, ReplPolicy::LRU, 32, "ref-l1d"};
    c.l1_latency = 1;
    c.has_l2 = true;
    c.l2 = {256 * KiB, 32, 1, ReplPolicy::LRU, 32, "ref-l2"};
    c.l2_latency = l2_latency;
    c.memory_ns = memory_ns;
    return c;
}

MemoryHierarchy::MemoryHierarchy(HierarchyConfig config)
    : config_(std::move(config)),
      l1i_(config_.l1i),
      l1d_(config_.l1d),
      memory_cycles_(config_.memoryCycles())
{
    if (config_.has_l2)
        l2_ = std::make_unique<Cache>(config_.l2);
}

HierarchyResult
MemoryHierarchy::access(RefKind kind, Addr addr)
{
    const bool store = kind == RefKind::Store;
    Cache &l1 = kind == RefKind::IFetch ? l1i_ : l1d_;

    HierarchyResult result;
    ++total_accesses_;

    if (l1.access(addr, store).hit) {
        result.latency = config_.l1_latency;
        result.level = 1;
        total_cycles_ += result.latency;
        return result;
    }

    if (l2_) {
        if (l2_->access(addr, store).hit) {
            result.latency = config_.l1_latency + config_.l2_latency;
            result.level = 2;
            total_cycles_ += result.latency;
            return result;
        }
    }

    // Main-memory access; check the stream prefetcher first.
    bool prefetched = false;
    if (config_.linear_prefetch && kind != RefKind::IFetch) {
        if (last_miss_addr_ != invalid_addr) {
            const std::int64_t stride =
                static_cast<std::int64_t>(addr) -
                static_cast<std::int64_t>(last_miss_addr_);
            if (stride == last_stride_ && stride != 0 &&
                std::llabs(stride) <=
                    static_cast<std::int64_t>(config_.prefetch_max_stride))
                prefetched = true;
            last_stride_ = stride;
        }
        last_miss_addr_ = addr;
    }

    if (prefetched) {
        // The prefetch unit already fetched the line; pay only the
        // cache-fill pipeline cost.
        result.latency =
            config_.l1_latency + (l2_ ? config_.l2_latency : 0);
        result.level = 0;
        prefetch_hits_.inc();
    } else {
        result.latency = config_.l1_latency +
                         (l2_ ? config_.l2_latency : 0) + memory_cycles_;
        result.level = 3;
    }
    total_cycles_ += result.latency;
    return result;
}

double
MemoryHierarchy::meanLatency() const
{
    return total_accesses_
        ? static_cast<double>(total_cycles_) /
              static_cast<double>(total_accesses_)
        : 0.0;
}

double
MemoryHierarchy::meanLatencyNs() const
{
    return meanLatency() * 1000.0 / config_.freq_mhz;
}

void
MemoryHierarchy::resetStats()
{
    l1i_.resetStats();
    l1d_.resetStats();
    if (l2_)
        l2_->resetStats();
    total_cycles_ = 0;
    total_accesses_ = 0;
    prefetch_hits_.reset();
}

void
MemoryHierarchy::flush()
{
    l1i_.flush();
    l1d_.flush();
    if (l2_)
        l2_->flush();
    last_miss_addr_ = invalid_addr;
    last_stride_ = 0;
}

} // namespace memwall
