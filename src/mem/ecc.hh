/**
 * @file
 * SECDED error-correcting codes and the directory-in-ECC trick.
 *
 * Large DRAMs need single-error-correct / double-error-detect (SECDED)
 * protection. The industry standard computes ECC over 64-bit words
 * (8 check bits each). Section 4.2 of the paper frees up directory
 * storage by computing ECC over 128-bit words instead (9 check bits),
 * halving correction granularity: a 32-byte coherence block then needs
 * 2 x 9 = 18 instead of 4 x 8 = 32 check bits, leaving 14 bits for the
 * directory state and pointer.
 */

#ifndef MEMWALL_MEM_ECC_HH
#define MEMWALL_MEM_ECC_HH

#include <array>
#include <cstdint>
#include <span>

namespace memwall {

/** Outcome of decoding a SECDED codeword. */
enum class EccStatus {
    Ok,               ///< no error
    CorrectedSingle,  ///< single-bit error corrected
    DetectedDouble,   ///< uncorrectable double-bit error detected
};

/** Result of a decode: status plus position of a corrected bit. */
struct EccDecodeResult
{
    EccStatus status = EccStatus::Ok;
    /** Data-bit index of the corrected bit (when CorrectedSingle and
     * the flipped bit was a data bit rather than a check bit). */
    int corrected_data_bit = -1;
};

/**
 * Hamming SECDED code over an arbitrary number of data bits.
 *
 * Check bits live at power-of-two codeword positions, plus one
 * overall parity bit. For 64 data bits this yields the standard
 * 8 check bits; for 128 data bits, 9.
 */
class SecDedCode
{
  public:
    /** @param data_bits number of protected data bits (<= 247). */
    explicit SecDedCode(unsigned data_bits);

    unsigned dataBits() const { return data_bits_; }
    /** Number of check bits including the overall parity bit. */
    unsigned checkBits() const { return hamming_bits_ + 1; }

    /**
     * Compute the check word for @p data (little-endian packed,
     * data.size()*64 >= dataBits()).
     */
    std::uint32_t encode(std::span<const std::uint64_t> data) const;

    /**
     * Verify/correct @p data in place against @p check.
     * Single-bit errors (in data or check bits) are corrected;
     * double-bit errors are detected.
     */
    EccDecodeResult decode(std::span<std::uint64_t> data,
                           std::uint32_t check) const;

  private:
    bool dataBit(std::span<const std::uint64_t> data, unsigned i) const;
    void flipDataBit(std::span<std::uint64_t> data, unsigned i) const;

    unsigned data_bits_;
    unsigned hamming_bits_;
    unsigned codeword_len_;  ///< hamming codeword length (no parity)
    /** codeword position (1-based) of data bit i. */
    std::array<std::uint16_t, 256> data_pos_;
    /** data bit index at codeword position p, or -1 for check bits. */
    std::array<std::int16_t, 512> pos_data_;
};

/**
 * A 32-byte memory block protected the paper's way: two 128-bit
 * SECDED words (18 check bits) plus a 14-bit directory field that
 * reuses the freed check-bit storage.
 */
class DirectoryEccBlock
{
  public:
    static constexpr unsigned directory_bits = 14;
    static constexpr unsigned data_words = 4;  ///< 4 x 64-bit

    DirectoryEccBlock();

    /** Store data and directory, recomputing check bits. */
    void store(const std::array<std::uint64_t, data_words> &data,
               std::uint16_t directory);

    /** Update only the directory field (re-protected separately). */
    void setDirectory(std::uint16_t directory);

    /** @return the 14-bit directory field. */
    std::uint16_t directory() const { return directory_; }

    /**
     * Read the data back, correcting single-bit errors.
     * @param[out] data receives the (possibly corrected) words.
     */
    EccStatus load(std::array<std::uint64_t, data_words> &data) const;

    /**
     * Decode and repair the stored copy in place (memory scrubbing).
     * A corrected single-bit error — data or check bit — is written
     * back and the check bits are re-encoded, so the latent error
     * cannot later pair into an uncorrectable double. A
     * detected-uncorrectable block is left untouched for higher-level
     * recovery (row sparing / machine check).
     * @return the decode outcome.
     */
    EccStatus scrub();

    /** Flip bit @p bit (0..255) of the stored data — fault injection. */
    void injectDataError(unsigned bit);

    /** Flip check bit @p bit (0..17) — fault injection. */
    void injectCheckError(unsigned bit);

    /** Total stored ECC overhead in bits (18 + 14 reused). */
    static constexpr unsigned
    checkOverheadBits()
    {
        return 18;
    }

  private:
    std::array<std::uint64_t, data_words> data_;
    std::array<std::uint32_t, 2> check_;  ///< 9 bits each
    std::uint16_t directory_ = 0;
    mutable SecDedCode code_;
};

} // namespace memwall

#endif // MEMWALL_MEM_ECC_HH
