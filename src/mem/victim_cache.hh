/**
 * @file
 * The proposal's victim cache (Section 5.4).
 *
 * A single column buffer's worth of storage (512 bytes) organised as
 * sixteen fully-associative 32-byte lines with LRU replacement. It
 * receives a copy of the most recently accessed 32-byte sub-block of
 * a column buffer whenever that buffer is reloaded; the copy is free
 * because it overlaps the DRAM array access of the miss. Unlike
 * Jouppi's original victim cache, entries are never reloaded into the
 * main cache (the 512-byte line size makes that impossible), so it
 * behaves as a small, permanent side cache.
 */

#ifndef MEMWALL_MEM_VICTIM_CACHE_HH
#define MEMWALL_MEM_VICTIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "checkpoint/codec.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace memwall {

/** Victim-cache geometry; defaults match the paper. */
struct VictimCacheConfig
{
    /** Number of fully-associative entries. */
    std::uint32_t entries = 16;
    /** Bytes per entry (the coherence/sub-block unit). */
    std::uint32_t line_size = 32;
};

/**
 * Fully-associative LRU buffer of evicted sub-blocks. Also used as
 * the staging area for imported remote data in the MP model
 * (Section 4.1).
 */
class VictimCache
{
  public:
    explicit VictimCache(VictimCacheConfig config = {});

    /** @return true and refresh LRU if @p addr hits. */
    bool access(Addr addr, bool store);

    /** access() without statistics (functional-warming path). */
    bool warmAccess(Addr addr);

    /** @return true iff resident, without statistics or LRU update. */
    bool probe(Addr addr) const;

    /**
     * Insert the 32-byte block containing @p addr (evicted from the
     * main cache or imported from a remote node).
     */
    void insert(Addr addr);

    /** Remove the block containing @p addr if present. */
    bool invalidate(Addr addr);

    /** Drop all entries. */
    void flush();

    const VictimCacheConfig &config() const { return config_; }
    const AccessStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    /** Serialize entries (position order, recency as ranks) and
     *  statistics; see Cache::saveState for the rank rationale. */
    void saveState(ckpt::Encoder &e) const;

    /** All-or-nothing restore; fails the decoder on mismatch. */
    void loadState(ckpt::Decoder &d);

  private:
    struct Entry
    {
        bool valid = false;
        Addr block = 0;
        std::uint64_t lru = 0;
    };

    Addr blockAddr(Addr addr) const
    {
        return addr & ~static_cast<Addr>(config_.line_size - 1);
    }

    VictimCacheConfig config_;
    std::vector<Entry> entries_;
    std::uint64_t lru_clock_ = 0;
    AccessStats stats_;
};

} // namespace memwall

#endif // MEMWALL_MEM_VICTIM_CACHE_HH
