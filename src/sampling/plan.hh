/**
 * @file
 * Sampled-simulation plans (the SMARTS methodology).
 *
 * A run is divided into fixed-size units of U references (or data
 * accesses, for the execution-driven MP model). Under a plan, only a
 * small subset of units runs in full detail; the simulator interleaves
 * three modes:
 *
 *   FastForward  functional progress only — no cache/timing model
 *   Warm         functional warming: caches/directory/INC updated,
 *                no timing statistics
 *   Detail       full model + statistics; one sample per unit
 *
 * Two unit-selection schemes are supported:
 *
 *   Systematic   one detail unit every k units (period k*U), each
 *                preceded by W references of warming — the classic
 *                SMARTS schedule for a single sequential stream.
 *   Stratified   n independent units, each drawn from a fresh
 *                per-unit substream seeded via the splitmix64
 *                per-point scheme (pointSeed), so `--jobs N` sweeps
 *                stay byte-identical and units are statistically
 *                independent. Only meaningful for the synthetic
 *                (stationary, seed-parameterised) reference streams.
 */

#ifndef MEMWALL_SAMPLING_PLAN_HH
#define MEMWALL_SAMPLING_PLAN_HH

#include <cstdint>
#include <string>

#include "checkpoint/codec.hh"
#include "common/logging.hh"

namespace memwall {

/** What the simulator does with the current unit. */
enum class SampleMode : std::uint8_t { FastForward, Warm, Detail };

/** Unit-selection scheme. */
enum class SampleScheme : std::uint8_t { Systematic, Stratified };

/** Parameters of one sampled run. */
struct SamplingPlan
{
    SampleScheme scheme = SampleScheme::Systematic;
    /** Detail unit length U, in references/accesses. */
    std::uint64_t unit_refs = 1000;
    /** Functional-warming length W before each detail unit. */
    std::uint64_t warmup_refs = 2000;
    /** Systematic period: one detail unit every k units of U. */
    std::uint64_t period_units = 50;
    /** Stratified: number of units (also the adaptive minimum). */
    std::uint64_t units = 30;
    /**
     * Adaptive stopping: keep sampling until the relative confidence
     * half-width of every tracked metric is <= target_ci (0 = off,
     * fixed-size run). Bounded by max_units.
     */
    double target_ci = 0.0;
    std::uint64_t max_units = 1000;
    /** Confidence level for reported intervals and the stop rule. */
    double level = 0.95;
    /** Seed of the stratified per-unit substreams. */
    std::uint64_t seed = 42;

    bool adaptive() const { return target_ci > 0.0; }
    /** Validate; fatal on inconsistency (e.g. W does not fit k*U). */
    void validate() const;
    /**
     * Non-fatal validation: returns false with a reason in @p why.
     * The form servers use on untrusted request parameters, where a
     * bad plan must become an error response, not a process abort.
     */
    bool tryValidate(std::string *why) const;
    /** Human-readable one-line summary. */
    std::string describe() const;
};

/**
 * Parse a `--sample` flag value, e.g. "U=1000,W=2000,k=50",
 * "mode=strat,n=24,U=500,W=1000", "U=1000,W=2000,k=50,ci=0.05".
 * Keys: U (unit), W (warmup), k (period), n (stratified units),
 * mode (sys|strat), ci (target relative CI), level, seed, max.
 * Unknown keys or malformed values are fatal. Empty string = default
 * plan.
 */
SamplingPlan parseSamplingPlan(const std::string &text);

/**
 * Non-fatal variant of parseSamplingPlan for untrusted input (the
 * server's "sample" request field): returns false with a reason in
 * @p why instead of aborting, leaving @p plan validated on success.
 */
bool tryParseSamplingPlan(const std::string &text, SamplingPlan &plan,
                          std::string *why);

/**
 * FNV-1a hash over every plan parameter. Checkpoints taken under a
 * plan embed it, so state captured for one schedule is never applied
 * to a run using another.
 */
std::uint64_t samplingPlanHash(const SamplingPlan &plan);

/**
 * Streaming schedule for a systematic plan: reports the mode of the
 * next reference and how many references remain in the current
 * phase, so drivers can process whole phases at a time. The period
 * is laid out Warm -> Detail -> FastForward, which both warms caches
 * before the very first detail unit and guarantees at least one
 * completed detail unit before the first fast-forward stretch (the
 * MP sampler charges fast-forwarded accesses the running mean of the
 * detailed latencies).
 */
class SystematicCursor
{
  public:
    explicit SystematicCursor(const SamplingPlan &plan);

    /** Mode of the next reference. */
    SampleMode mode() const { return mode_; }

    /** References left in the current phase (>= 1). */
    std::uint64_t phaseRemaining() const { return remaining_; }

    /**
     * Consume @p n references of the current phase
     * (n <= phaseRemaining()); advances to the next phase when the
     * current one is exhausted. Inline: the MP sampler calls this
     * once per simulated access.
     */
    void
    advance(std::uint64_t n)
    {
        MW_ASSERT(n <= remaining_,
                  "cursor advanced past the phase end");
        unit_completed_ = false;
        remaining_ -= n;
        if (remaining_ == 0)
            nextPhase();
    }

    /** Detail units fully completed so far. */
    std::uint64_t unitsCompleted() const { return units_done_; }

    /**
     * True exactly once per completed detail unit: set when advance()
     * finishes a detail phase, cleared by the next advance().
     */
    bool unitJustCompleted() const { return unit_completed_; }

    /** Serialize the schedule position (phase lengths as a guard). */
    void saveState(ckpt::Encoder &e) const;

    /** All-or-nothing restore; fails the decoder on plan mismatch. */
    void loadState(ckpt::Decoder &d);

  private:
    void enterPhase(SampleMode mode, std::uint64_t len);
    /** Phase-transition tail of advance() (cold path). */
    void nextPhase();

    std::uint64_t unit_;
    std::uint64_t warm_;
    std::uint64_t ff_;  ///< fast-forward refs per period
    SampleMode mode_ = SampleMode::Warm;
    std::uint64_t remaining_ = 0;
    std::uint64_t units_done_ = 0;
    bool unit_completed_ = false;
};

/** Decoded mode name ("fast-forward", "warm", "detail"). */
const char *sampleModeName(SampleMode mode);

} // namespace memwall

#endif // MEMWALL_SAMPLING_PLAN_HH
