/**
 * @file
 * SMARTS-style sampling of the execution-driven CC-NUMA runs.
 *
 * The SPLASH kernels execute every instruction regardless (their
 * results are real), and on a coherent machine the protocol state
 * cannot be skipped either: a fast-forward gap that froze the caches
 * and directory would bias the next detail unit — sharing-heavy
 * kernels (lu's panel broadcasts) would re-pay remote fetches that
 * the full run amortised across the gap, and invalidation churn
 * would vanish from producer-consumer kernels (ocean). The sampler
 * therefore warms continuously: every access runs the full machine
 * model, in one of three modes.
 *
 *   Detail        exact scheduling; the per-access latency is
 *                 recorded, one mean per unit.
 *   Warm          exact scheduling, no statistics; restores faithful
 *                 CPU interleaving before a detail unit.
 *   Fast-forward  coarse scheduling, no statistics. The simulated
 *                 time of a batch of accesses is charged to the
 *                 scheduler in one advance, and the skew quantum is
 *                 moderately inflated, so token hand-offs — the
 *                 dominant host cost of the execution-driven model —
 *                 become rare.
 *
 * Coarse scheduling perturbs only the interleaving (every access
 * still reaches the caches, directory and INC), and the warm window
 * before each detail unit re-establishes exact interleaving, so the
 * sampled latencies track the full run closely. Makespans of sampled
 * runs are approximations; the sampled metric of record is the mean
 * data-access latency with its confidence interval.
 */

#ifndef MEMWALL_SAMPLING_SPLASH_SAMPLER_HH
#define MEMWALL_SAMPLING_SPLASH_SAMPLER_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "mp/shared.hh"
#include "sampling/confidence.hh"
#include "sampling/plan.hh"

namespace memwall {

/** AccessSampler implementing a systematic SamplingPlan. */
class SplashSampler : public AccessSampler
{
  public:
    /**
     * @param plan            systematic plan, in units of accesses
     * @param ncpus           simulated CPUs sharing this sampler
     * @param normal_quantum  the scheduler's configured quantum
     */
    SplashSampler(const SamplingPlan &plan, unsigned ncpus,
                  Tick normal_quantum);

    void access(NumaMachine &machine, SimContext &ctx, Addr addr,
                bool store) override;

    /** Per-unit mean latencies (one sample per detail unit). */
    const SampleStat &unitLatency() const { return unit_means_; }

    /** Interval over the unit means at the plan's level. */
    ConfidenceInterval
    latencyCi() const
    {
        return confidenceInterval(unit_means_, plan_.level);
    }

    /** Exact mean over all detailed accesses (all-detail plans make
     * this the full-run reference value). */
    double detailMeanLatency() const;

    std::uint64_t detailAccesses() const { return detail_; }
    std::uint64_t warmAccesses() const { return warm_; }
    std::uint64_t ffAccesses() const { return ff_; }

    /** True once the adaptive stop rule has fired. */
    bool stopped() const { return stopped_; }

    const SamplingPlan &plan() const { return plan_; }

    /**
     * Serialize the warming/measurement state (cursor position,
     * batched fast-forward cycles, unit accumulators, unit means)
     * behind a plan-hash guard. The scheduler quantum is NOT part of
     * the sampler; after a successful loadState() the caller must
     * re-apply the inflated quantum if quantum was inflated (the
     * sampler re-applies it lazily on the next mode change).
     */
    void saveState(ckpt::Encoder &e) const;

    /** All-or-nothing restore; fails the decoder on plan mismatch. */
    void loadState(ckpt::Decoder &d);

  private:
    /** Advance the schedule by one access from mode @p before. */
    void step(SimContext &ctx, SampleMode before);
    void setFastForwardQuantum(SimContext &ctx, bool ff);
    /** Charge this CPU's batched fast-forward cycles. */
    void
    flushPending(SimContext &ctx)
    {
        Pending &p = pending_[ctx.cpuId()];
        if (p.cycles == 0)
            return;
        ctx.advance(p.cycles);
        p.cycles = 0;
        p.accesses = 0;
    }

    SamplingPlan plan_;
    SystematicCursor cursor_;
    Tick normal_quantum_;
    bool stopped_ = false;
    bool quantum_inflated_ = false;

    /**
     * Fast-forwarded simulated time is charged to the scheduler in
     * batches: every scheduler advance takes the scheduler mutex and
     * scans for the minimum-time peer, which would otherwise be the
     * dominant host cost of a fast-forward stretch. The skew a batch
     * introduces is bounded (ff_flush_accesses * the access latency)
     * and fast-forward interleaving is coarse by design; detail and
     * warm accesses always flush first, so their machine timing sees
     * the exact clock.
     */
    struct Pending
    {
        std::uint64_t cycles = 0;
        std::uint32_t accesses = 0;
    };
    std::vector<Pending> pending_;

    // Current-unit accumulator.
    std::uint64_t unit_cycles_ = 0;
    std::uint64_t unit_count_ = 0;
    // Totals over all detailed accesses.
    std::uint64_t detail_cycles_ = 0;
    SampleStat unit_means_;

    std::uint64_t detail_ = 0;
    std::uint64_t warm_ = 0;
    std::uint64_t ff_ = 0;
};

} // namespace memwall

#endif // MEMWALL_SAMPLING_SPLASH_SAMPLER_HH
