/**
 * @file
 * Confidence intervals for sampled-simulation estimates.
 *
 * The SMARTS methodology reports every sampled metric as
 * mean +/- half-width at a chosen confidence level, computed from the
 * variance of the per-unit sample means. For the small unit counts a
 * quick run collects, the normal z-score understates the interval, so
 * the critical value comes from the Student-t distribution with n-1
 * degrees of freedom and converges to the normal quantile for large n.
 */

#ifndef MEMWALL_SAMPLING_CONFIDENCE_HH
#define MEMWALL_SAMPLING_CONFIDENCE_HH

#include <cstdint>

#include "common/stats.hh"

namespace memwall {

/**
 * Two-sided Student-t critical value for @p df degrees of freedom at
 * confidence @p level (supported levels: 0.90, 0.95, 0.99; other
 * levels fall back to the nearest supported one). df >= 1; large df
 * return the normal quantile.
 */
double tCritical(std::uint64_t df, double level = 0.95);

/**
 * A sampled estimate: mean +/- half_width at `level` confidence,
 * from n sample units. Degenerate samples (n < 2, where no variance
 * estimate exists) produce an interval with valid == false and an
 * infinite half-width — never a silent zero-width claim.
 */
struct ConfidenceInterval
{
    double mean = 0.0;
    double half_width = 0.0;
    double level = 0.95;
    std::uint64_t n = 0;
    /** False when n < 2 (no variance estimate exists). */
    bool valid = false;

    double lo() const { return mean - half_width; }
    double hi() const { return mean + half_width; }

    /** @return true iff @p value lies within [lo, hi]. */
    bool
    contains(double value) const
    {
        return valid && value >= lo() && value <= hi();
    }

    /**
     * Half-width relative to |mean| — the SMARTS stopping metric.
     * Infinite when the interval is degenerate or the mean is zero
     * with nonzero width.
     */
    double relative() const;
};

/**
 * Interval over the unit means accumulated in @p units:
 * mean +/- t * s / sqrt(n). Invalid (infinite width) when fewer than
 * two units have been recorded.
 */
ConfidenceInterval confidenceInterval(const SampleStat &units,
                                      double level = 0.95);

} // namespace memwall

#endif // MEMWALL_SAMPLING_CONFIDENCE_HH
