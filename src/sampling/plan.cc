#include "sampling/plan.hh"

#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

namespace memwall {

bool
SamplingPlan::tryValidate(std::string *why) const
{
    const auto fail = [&](const std::string &reason) {
        if (why != nullptr)
            *why = "sampling plan: " + reason;
        return false;
    };
    if (unit_refs == 0)
        return fail("unit length U must be positive");
    if (period_units == 0)
        return fail("period k must be positive");
    // k*U can overflow on hostile input; compare via division.
    const std::uint64_t warm_units =
        warmup_refs / unit_refs + (warmup_refs % unit_refs != 0);
    if (scheme == SampleScheme::Systematic &&
        warm_units > period_units - 1)
        return fail("period k*U cannot fit the detail unit plus W = " +
                    std::to_string(warmup_refs) + " warmup refs");
    if (scheme == SampleScheme::Stratified && units == 0)
        return fail("stratified mode needs n >= 1 units");
    if (!(level > 0.5) || !(level < 1.0))
        return fail("confidence level must be in (0.5, 1)");
    if (!(target_ci >= 0.0))
        return fail("target ci must be >= 0");
    if (max_units < units)
        return fail("max units below the minimum");
    return true;
}

void
SamplingPlan::validate() const
{
    std::string why;
    if (!tryValidate(&why))
        MW_FATAL(why);
}

std::string
SamplingPlan::describe() const
{
    std::ostringstream os;
    os << (scheme == SampleScheme::Systematic ? "systematic"
                                              : "stratified")
       << " U=" << unit_refs << " W=" << warmup_refs;
    if (scheme == SampleScheme::Systematic)
        os << " k=" << period_units;
    else
        os << " n=" << units;
    if (adaptive())
        os << " target-ci=" << target_ci << " max=" << max_units;
    os << " level=" << level;
    return os.str();
}

bool
tryParseSamplingPlan(const std::string &text, SamplingPlan &plan,
                     std::string *why)
{
    const auto fail = [&](const std::string &reason) {
        if (why != nullptr)
            *why = "--sample: " + reason;
        return false;
    };
    plan = SamplingPlan{};
    if (text.empty())
        return plan.tryValidate(why);

    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::string item =
            comma == std::string::npos
                ? text.substr(start)
                : text.substr(start, comma - start);
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 == item.size())
            return fail("malformed item '" + item +
                        "' (expected key=value)");
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);

        char *end = nullptr;
        bool bad_number = false;
        const auto u64 = [&]() -> std::uint64_t {
            const std::uint64_t v =
                std::strtoull(value.c_str(), &end, 0);
            if (end == value.c_str() || *end != '\0')
                bad_number = true;
            return v;
        };
        const auto f64 = [&]() -> double {
            const double v = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0')
                bad_number = true;
            return v;
        };

        if (key == "U")
            plan.unit_refs = u64();
        else if (key == "W")
            plan.warmup_refs = u64();
        else if (key == "k")
            plan.period_units = u64();
        else if (key == "n")
            plan.units = u64();
        else if (key == "max")
            plan.max_units = u64();
        else if (key == "seed")
            plan.seed = u64();
        else if (key == "ci")
            plan.target_ci = f64();
        else if (key == "level")
            plan.level = f64();
        else if (key == "mode") {
            if (value == "sys" || value == "systematic")
                plan.scheme = SampleScheme::Systematic;
            else if (value == "strat" || value == "stratified")
                plan.scheme = SampleScheme::Stratified;
            else
                return fail("unknown mode '" + value +
                            "' (want sys|strat)");
        } else {
            return fail("unknown key '" + key + "'");
        }
        if (bad_number)
            return fail("invalid number '" + value + "' for key '" +
                        key + "'");

        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (plan.max_units < plan.units)
        plan.max_units = plan.units;
    return plan.tryValidate(why);
}

SamplingPlan
parseSamplingPlan(const std::string &text)
{
    SamplingPlan plan;
    std::string why;
    if (!tryParseSamplingPlan(text, plan, &why))
        MW_FATAL(why);
    return plan;
}

SystematicCursor::SystematicCursor(const SamplingPlan &plan)
    : unit_(plan.unit_refs), warm_(plan.warmup_refs),
      ff_(plan.period_units * plan.unit_refs - plan.unit_refs -
          plan.warmup_refs)
{
    plan.validate();
    MW_ASSERT(plan.scheme == SampleScheme::Systematic,
              "systematic cursor on a stratified plan");
    if (warm_ > 0)
        enterPhase(SampleMode::Warm, warm_);
    else
        enterPhase(SampleMode::Detail, unit_);
}

void
SystematicCursor::enterPhase(SampleMode mode, std::uint64_t len)
{
    mode_ = mode;
    remaining_ = len;
}

void
SystematicCursor::nextPhase()
{
    switch (mode_) {
    case SampleMode::Warm:
        enterPhase(SampleMode::Detail, unit_);
        break;
    case SampleMode::Detail:
        ++units_done_;
        unit_completed_ = true;
        // Skip zero-length phases so mode() is always consumable.
        if (ff_ > 0)
            enterPhase(SampleMode::FastForward, ff_);
        else if (warm_ > 0)
            enterPhase(SampleMode::Warm, warm_);
        else
            enterPhase(SampleMode::Detail, unit_);
        break;
    case SampleMode::FastForward:
        if (warm_ > 0)
            enterPhase(SampleMode::Warm, warm_);
        else
            enterPhase(SampleMode::Detail, unit_);
        break;
    }
}

std::uint64_t
samplingPlanHash(const SamplingPlan &plan)
{
    using ckpt::fnvMix;
    auto mixDouble = [](std::uint64_t h, double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        return fnvMix(h, bits);
    };
    std::uint64_t h = ckpt::fnv_basis;
    h = fnvMix(h, static_cast<std::uint64_t>(plan.scheme));
    h = fnvMix(h, plan.unit_refs);
    h = fnvMix(h, plan.warmup_refs);
    h = fnvMix(h, plan.period_units);
    h = fnvMix(h, plan.units);
    h = mixDouble(h, plan.target_ci);
    h = fnvMix(h, plan.max_units);
    h = mixDouble(h, plan.level);
    h = fnvMix(h, plan.seed);
    return h;
}

void
SystematicCursor::saveState(ckpt::Encoder &e) const
{
    e.varint(unit_);
    e.varint(warm_);
    e.varint(ff_);
    e.u8(static_cast<std::uint8_t>(mode_));
    e.varint(remaining_);
    e.varint(units_done_);
    e.u8(unit_completed_ ? 1 : 0);
}

void
SystematicCursor::loadState(ckpt::Decoder &d)
{
    const std::uint64_t unit = d.varint();
    const std::uint64_t warm = d.varint();
    const std::uint64_t ff = d.varint();
    if (d.failed())
        return;
    if (unit != unit_ || warm != warm_ || ff != ff_) {
        d.fail("sampling cursor: plan phase lengths mismatch");
        return;
    }
    const std::uint8_t mode = d.u8();
    const std::uint64_t remaining = d.varint();
    const std::uint64_t units_done = d.varint();
    const std::uint8_t completed = d.u8();
    if (d.failed())
        return;
    if (mode > static_cast<std::uint8_t>(SampleMode::Detail) ||
        completed > 1) {
        d.fail("sampling cursor: invalid mode flags");
        return;
    }
    mode_ = static_cast<SampleMode>(mode);
    remaining_ = remaining;
    units_done_ = units_done;
    unit_completed_ = completed != 0;
}

const char *
sampleModeName(SampleMode mode)
{
    switch (mode) {
    case SampleMode::FastForward:
        return "fast-forward";
    case SampleMode::Warm:
        return "warm";
    case SampleMode::Detail:
        return "detail";
    }
    return "?";
}

} // namespace memwall
