#include "sampling/splash_sampler.hh"

#include <algorithm>

#include "checkpoint/state_io.hh"

namespace memwall {

namespace {

/**
 * Quantum multiplier during fast-forward. Larger values make token
 * hand-offs rarer but coarsen the CPU interleaving, which perturbs
 * the coherence traffic the warm window then has to re-establish; a
 * modest 16x keeps the distortion inside the sampling noise
 * (validated by bench/validation_sampling_crosscheck).
 */
constexpr Tick ff_quantum_scale = 16;

/** Fast-forward accesses batched per scheduler advance. */
constexpr std::uint32_t ff_flush_accesses = 512;

} // namespace

SplashSampler::SplashSampler(const SamplingPlan &plan, unsigned ncpus,
                             Tick normal_quantum)
    : plan_(plan), cursor_(plan), normal_quantum_(normal_quantum),
      pending_(ncpus)
{
    MW_ASSERT(plan_.scheme == SampleScheme::Systematic,
              "the MP sampler interleaves one access stream and "
              "supports systematic plans only");
}

void
SplashSampler::access(NumaMachine &machine, SimContext &ctx,
                      Addr addr, bool store)
{
    const SampleMode mode =
        stopped_ ? SampleMode::FastForward : cursor_.mode();
    switch (mode) {
    case SampleMode::Detail: {
        flushPending(ctx);
        const Cycles lat =
            machine.access(ctx.cpuId(), addr, store, ctx.now());
        ++detail_;
        detail_cycles_ += lat;
        unit_cycles_ += lat;
        ++unit_count_;
        ctx.advance(lat);
        break;
    }
    case SampleMode::Warm: {
        flushPending(ctx);
        ++warm_;
        ctx.advance(
            machine.access(ctx.cpuId(), addr, store, ctx.now()));
        break;
    }
    case SampleMode::FastForward: {
        // Full machine model (continuous functional warming), coarse
        // time accounting: the latency is banked and charged in one
        // batched advance.
        ++ff_;
        Pending &p = pending_[ctx.cpuId()];
        p.cycles +=
            machine.access(ctx.cpuId(), addr, store, ctx.now());
        if (++p.accesses >= ff_flush_accesses)
            flushPending(ctx);
        break;
    }
    }
    if (!stopped_)
        step(ctx, mode);
}

void
SplashSampler::step(SimContext &ctx, SampleMode before)
{
    cursor_.advance(1);
    if (cursor_.unitJustCompleted()) {
        // Zero-access detail units cannot happen: the cursor only
        // completes a unit after unit_refs accesses passed through
        // the Detail branch above.
        unit_means_.add(static_cast<double>(unit_cycles_) /
                        static_cast<double>(unit_count_));
        unit_cycles_ = 0;
        unit_count_ = 0;
        if (plan_.adaptive() &&
            unit_means_.count() >= plan_.units) {
            const ConfidenceInterval ci = latencyCi();
            if ((ci.valid && ci.relative() <= plan_.target_ci) ||
                unit_means_.count() >= plan_.max_units)
                stopped_ = true;  // fast-forward to the end
        }
    }
    const SampleMode after =
        stopped_ ? SampleMode::FastForward : cursor_.mode();
    if (after != before)
        setFastForwardQuantum(ctx,
                              after == SampleMode::FastForward);
}

void
SplashSampler::setFastForwardQuantum(SimContext &ctx, bool ff)
{
    if (ff == quantum_inflated_)
        return;
    quantum_inflated_ = ff;
    // max() keeps the inflation meaningful for quantum 0 (exact
    // lowest-time-first interleaving).
    ctx.scheduler().setQuantum(
        ff ? std::max<Tick>(normal_quantum_, 1) * ff_quantum_scale
           : normal_quantum_);
}

double
SplashSampler::detailMeanLatency() const
{
    if (detail_ == 0)
        return 0.0;
    return static_cast<double>(detail_cycles_) /
           static_cast<double>(detail_);
}

void
SplashSampler::saveState(ckpt::Encoder &e) const
{
    e.u64(samplingPlanHash(plan_));
    e.varint(pending_.size());
    e.varint(normal_quantum_);
    cursor_.saveState(e);
    e.u8((stopped_ ? 1u : 0u) | (quantum_inflated_ ? 2u : 0u));
    for (const Pending &p : pending_) {
        e.varint(p.cycles);
        e.varint(p.accesses);
    }
    e.varint(unit_cycles_);
    e.varint(unit_count_);
    e.varint(detail_cycles_);
    ckpt::putSampleStat(e, unit_means_);
    e.varint(detail_);
    e.varint(warm_);
    e.varint(ff_);
}

void
SplashSampler::loadState(ckpt::Decoder &d)
{
    const std::uint64_t hash = d.u64();
    const std::uint64_t ncpus = d.varint();
    const std::uint64_t quantum = d.varint();
    if (d.failed())
        return;
    if (hash != samplingPlanHash(plan_) ||
        ncpus != pending_.size() || quantum != normal_quantum_) {
        d.fail("splash sampler: checkpoint plan/topology mismatch");
        return;
    }

    SystematicCursor cursor = cursor_;
    cursor.loadState(d);
    const std::uint8_t flags = d.u8();
    if (d.failed())
        return;
    if (flags > 3) {
        d.fail("splash sampler: invalid flags");
        return;
    }
    std::vector<Pending> pending(pending_.size());
    for (Pending &p : pending) {
        p.cycles = d.varint();
        p.accesses = static_cast<std::uint32_t>(d.varint());
    }
    const std::uint64_t unit_cycles = d.varint();
    const std::uint64_t unit_count = d.varint();
    const std::uint64_t detail_cycles = d.varint();
    SampleStat unit_means;
    ckpt::getSampleStat(d, unit_means);
    const std::uint64_t detail = d.varint();
    const std::uint64_t warm = d.varint();
    const std::uint64_t ff = d.varint();
    if (d.failed())
        return;

    cursor_ = cursor;
    stopped_ = (flags & 1u) != 0;
    quantum_inflated_ = (flags & 2u) != 0;
    pending_ = std::move(pending);
    unit_cycles_ = unit_cycles;
    unit_count_ = unit_count;
    detail_cycles_ = detail_cycles;
    unit_means_ = unit_means;
    detail_ = detail;
    warm_ = warm;
    ff_ = ff;
}

} // namespace memwall
