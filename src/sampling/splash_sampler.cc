#include "sampling/splash_sampler.hh"

#include <algorithm>

namespace memwall {

namespace {

/**
 * Quantum multiplier during fast-forward. Larger values make token
 * hand-offs rarer but coarsen the CPU interleaving, which perturbs
 * the coherence traffic the warm window then has to re-establish; a
 * modest 16x keeps the distortion inside the sampling noise
 * (validated by bench/validation_sampling_crosscheck).
 */
constexpr Tick ff_quantum_scale = 16;

/** Fast-forward accesses batched per scheduler advance. */
constexpr std::uint32_t ff_flush_accesses = 512;

} // namespace

SplashSampler::SplashSampler(const SamplingPlan &plan, unsigned ncpus,
                             Tick normal_quantum)
    : plan_(plan), cursor_(plan), normal_quantum_(normal_quantum),
      pending_(ncpus)
{
    MW_ASSERT(plan_.scheme == SampleScheme::Systematic,
              "the MP sampler interleaves one access stream and "
              "supports systematic plans only");
}

void
SplashSampler::access(NumaMachine &machine, SimContext &ctx,
                      Addr addr, bool store)
{
    const SampleMode mode =
        stopped_ ? SampleMode::FastForward : cursor_.mode();
    switch (mode) {
    case SampleMode::Detail: {
        flushPending(ctx);
        const Cycles lat =
            machine.access(ctx.cpuId(), addr, store, ctx.now());
        ++detail_;
        detail_cycles_ += lat;
        unit_cycles_ += lat;
        ++unit_count_;
        ctx.advance(lat);
        break;
    }
    case SampleMode::Warm: {
        flushPending(ctx);
        ++warm_;
        ctx.advance(
            machine.access(ctx.cpuId(), addr, store, ctx.now()));
        break;
    }
    case SampleMode::FastForward: {
        // Full machine model (continuous functional warming), coarse
        // time accounting: the latency is banked and charged in one
        // batched advance.
        ++ff_;
        Pending &p = pending_[ctx.cpuId()];
        p.cycles +=
            machine.access(ctx.cpuId(), addr, store, ctx.now());
        if (++p.accesses >= ff_flush_accesses)
            flushPending(ctx);
        break;
    }
    }
    if (!stopped_)
        step(ctx, mode);
}

void
SplashSampler::step(SimContext &ctx, SampleMode before)
{
    cursor_.advance(1);
    if (cursor_.unitJustCompleted()) {
        // Zero-access detail units cannot happen: the cursor only
        // completes a unit after unit_refs accesses passed through
        // the Detail branch above.
        unit_means_.add(static_cast<double>(unit_cycles_) /
                        static_cast<double>(unit_count_));
        unit_cycles_ = 0;
        unit_count_ = 0;
        if (plan_.adaptive() &&
            unit_means_.count() >= plan_.units) {
            const ConfidenceInterval ci = latencyCi();
            if ((ci.valid && ci.relative() <= plan_.target_ci) ||
                unit_means_.count() >= plan_.max_units)
                stopped_ = true;  // fast-forward to the end
        }
    }
    const SampleMode after =
        stopped_ ? SampleMode::FastForward : cursor_.mode();
    if (after != before)
        setFastForwardQuantum(ctx,
                              after == SampleMode::FastForward);
}

void
SplashSampler::setFastForwardQuantum(SimContext &ctx, bool ff)
{
    if (ff == quantum_inflated_)
        return;
    quantum_inflated_ = ff;
    // max() keeps the inflation meaningful for quantum 0 (exact
    // lowest-time-first interleaving).
    ctx.scheduler().setQuantum(
        ff ? std::max<Tick>(normal_quantum_, 1) * ff_quantum_scale
           : normal_quantum_);
}

double
SplashSampler::detailMeanLatency() const
{
    if (detail_ == 0)
        return 0.0;
    return static_cast<double>(detail_cycles_) /
           static_cast<double>(detail_);
}

} // namespace memwall
