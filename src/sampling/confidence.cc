#include "sampling/confidence.hh"

#include <cmath>
#include <limits>

namespace memwall {

namespace {

/**
 * Two-sided critical values t_{df, alpha/2} for the three supported
 * confidence levels. Rows are df = 1..30; beyond the table the value
 * is interpolated toward the normal quantile via the standard
 * Cornish-Fisher-style 1/df correction, which is within 0.1% for
 * df > 30.
 */
constexpr double t90[30] = {
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833,
    1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734,
    1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703,
    1.701, 1.699, 1.697};
constexpr double t95[30] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
    2.048,  2.045, 2.042};
constexpr double t99[30] = {
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250,
    3.169,  3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878,
    2.861,  2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771,
    2.763,  2.756, 2.750};

struct Level
{
    const double *table;
    double z;  ///< normal quantile the tail converges to
};

Level
levelFor(double level)
{
    if (level < 0.925)
        return {t90, 1.645};
    if (level < 0.97)
        return {t95, 1.960};
    return {t99, 2.576};
}

} // namespace

double
tCritical(std::uint64_t df, double level)
{
    const Level l = levelFor(level);
    if (df == 0)
        return std::numeric_limits<double>::infinity();
    if (df <= 30)
        return l.table[df - 1];
    // Smooth tail: t approx z + (z + z^3) / (4 df).
    const double z = l.z;
    return z + (z + z * z * z) / (4.0 * static_cast<double>(df));
}

double
ConfidenceInterval::relative() const
{
    if (!valid)
        return std::numeric_limits<double>::infinity();
    if (mean == 0.0)
        return half_width == 0.0
                   ? 0.0
                   : std::numeric_limits<double>::infinity();
    return half_width / std::fabs(mean);
}

ConfidenceInterval
confidenceInterval(const SampleStat &units, double level)
{
    ConfidenceInterval ci;
    ci.level = level;
    ci.n = units.count();
    ci.mean = units.mean();
    if (!units.hasVariance()) {
        // One unit (or none) carries no information about spread;
        // report an explicitly infinite interval instead of the
        // zero-width one the old variance() == 0.0 behaviour implied.
        ci.valid = false;
        ci.half_width = std::numeric_limits<double>::infinity();
        return ci;
    }
    ci.valid = true;
    const double n = static_cast<double>(ci.n);
    ci.half_width =
        tCritical(ci.n - 1, level) * units.stddev() / std::sqrt(n);
    return ci;
}

} // namespace memwall
