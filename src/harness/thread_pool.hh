/**
 * @file
 * Work-stealing thread pool for the experiment harness.
 *
 * Each worker owns a deque: it pushes and pops its own work LIFO
 * (cache-warm) and steals FIFO from the other workers when its deque
 * runs dry, so a burst of tiny tasks submitted to one worker spreads
 * across the machine. External submissions are distributed
 * round-robin over the workers' deques.
 *
 * The pool executes opaque closures and makes NO ordering promises;
 * deterministic experiment output is the job of ParallelSweep, which
 * commits results in submission order regardless of which worker
 * finished first (see parallel_sweep.hh).
 */

#ifndef MEMWALL_HARNESS_THREAD_POOL_HH
#define MEMWALL_HARNESS_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace memwall {

/**
 * Fixed-size pool of worker threads with per-worker deques and work
 * stealing. Fire-and-forget: completion tracking belongs to the
 * caller (ParallelSweep keeps per-point done flags).
 */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** @param workers thread count; 0 = defaultWorkers(). */
    explicit ThreadPool(unsigned workers = 0);

    /** Waits for all submitted tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task; runs on some worker, in no promised order. */
    void submit(Task task);

    /** Block until every submitted task has finished executing. */
    void waitIdle();

    unsigned workers() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Number of times a worker stole from another's deque. */
    std::uint64_t steals() const;

    /**
     * Number of tasks that exited via an exception. A fire-and-forget
     * pool has nowhere to rethrow, so a throwing task must never take
     * the worker thread (and with it the whole process) down: the
     * exception is caught, counted and warned about, and the worker
     * moves on to the next task. Callers that care about per-task
     * failure (the experiment service) catch inside their own
     * closures; this is the backstop for the ones that forget.
     */
    std::uint64_t taskExceptions() const;

    /** Hardware concurrency with a floor of 1. */
    static unsigned defaultWorkers();

  private:
    struct Worker
    {
        std::deque<Task> tasks;  // guarded by the pool mutex
        std::thread thread;
    };

    void workerLoop(unsigned self);
    /** Pop own work (LIFO) or steal (FIFO); pool mutex must be held. */
    bool takeTask(unsigned self, Task &out);

    mutable std::mutex mu_;
    std::condition_variable work_cv_;
    std::condition_variable idle_cv_;
    std::vector<std::unique_ptr<Worker>> workers_;
    unsigned next_worker_ = 0;   // round-robin submission cursor
    std::uint64_t in_flight_ = 0;  // queued + executing tasks
    std::uint64_t steals_ = 0;
    std::uint64_t task_exceptions_ = 0;
    bool stopping_ = false;
};

} // namespace memwall

#endif // MEMWALL_HARNESS_THREAD_POOL_HH
