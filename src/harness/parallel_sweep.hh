/**
 * @file
 * Deterministic parallel experiment runner.
 *
 * Every table/figure binary is a sweep over independent
 * (workload x configuration x seed) simulation points. ParallelSweep
 * executes the points concurrently on a work-stealing ThreadPool but
 * COMMITS their results strictly in submission order on the caller's
 * thread, so the produced tables are byte-for-byte identical to a
 * serial run:
 *
 *   - each point receives its own RNG seed derived from
 *     (base seed, point index) via pointSeed(), never from a shared
 *     generator whose draw order would depend on scheduling;
 *   - point functions receive only their PointContext and must not
 *     touch shared mutable state;
 *   - commit functions run only on the thread calling submit()/
 *     finish(), one at a time, in index order.
 *
 * With jobs == 1 no threads are created and every point runs
 * inline at submit() — the serial reference behaviour the parallel
 * run must reproduce exactly.
 */

#ifndef MEMWALL_HARNESS_PARALLEL_SWEEP_HH
#define MEMWALL_HARNESS_PARALLEL_SWEEP_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "harness/thread_pool.hh"

namespace memwall {

/** Everything a simulation point may depend on besides its inputs. */
struct PointContext
{
    /** Submission index (0-based, canonical output order). */
    std::size_t index = 0;
    /** Per-point seed: splitmix64-style mix of (base seed, index). */
    std::uint64_t seed = 0;
};

/**
 * Derive the RNG seed of point @p index from @p base_seed. The mix is
 * a fixed function of both arguments, so any execution order — or a
 * rerun of a single point in isolation — sees the same stream.
 */
inline std::uint64_t
pointSeed(std::uint64_t base_seed, std::uint64_t index)
{
    std::uint64_t x =
        base_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Order-preserving parallel sweep producing @p Result per point.
 *
 * Usage:
 * @code
 *   ParallelSweep<Row> sweep(opt.jobs, opt.seed);
 *   for (const auto &w : specSuite())
 *       sweep.submit(
 *           [&w](const PointContext &ctx) { return simulate(w, ctx); },
 *           [&table](const PointContext &, Row row) {
 *               table.addRow(std::move(row));
 *           });
 *   sweep.finish();
 * @endcode
 */
template <typename Result>
class ParallelSweep
{
  public:
    using PointFn = std::function<Result(const PointContext &)>;
    using CommitFn = std::function<void(const PointContext &, Result)>;
    /** Memoization probe: fill @p out and return true to skip the
     * point function entirely (resume from a journal). */
    using MemoLookupFn = std::function<bool(std::size_t, Result &)>;
    /** Called on the commit thread, in submission order, for every
     * computed (non-memoized) result just before its commit. */
    using MemoStoreFn =
        std::function<void(std::size_t, const Result &)>;

    /**
     * @param jobs      worker count; 1 = run serially inline, 0 = one
     *                  per hardware thread
     * @param base_seed seed the per-point streams derive from
     */
    explicit ParallelSweep(unsigned jobs = 0, std::uint64_t base_seed = 42)
        : base_seed_(base_seed)
    {
        if (jobs == 0)
            jobs = ThreadPool::defaultWorkers();
        if (jobs > 1)
            pool_ = std::make_unique<ThreadPool>(jobs);
    }

    ~ParallelSweep() { finish(); }

    ParallelSweep(const ParallelSweep &) = delete;
    ParallelSweep &operator=(const ParallelSweep &) = delete;

    /**
     * Attach resume memoization. A lookup hit replaces running the
     * point (its commit still runs, in order, with the memoized
     * result); every computed result is handed to @p store on the
     * commit thread in submission order — the crash-safe place to
     * journal it. Must be set before the first submit().
     */
    void
    setMemo(MemoLookupFn lookup, MemoStoreFn store)
    {
        MW_ASSERT(next_index_ == 0,
                  "memo hooks must be set before the first point");
        memo_lookup_ = std::move(lookup);
        memo_store_ = std::move(store);
    }

    /**
     * Register point number index() and start it (or, serially, run
     * it to completion right here). Earlier points whose results have
     * arrived are committed before submit returns, so output streams
     * while later points still run.
     */
    void
    submit(PointFn fn, CommitFn commit)
    {
        PointContext ctx;
        ctx.index = next_index_++;
        ctx.seed = pointSeed(base_seed_, ctx.index);

        Result memoized{};
        const bool from_memo =
            memo_lookup_ && memo_lookup_(ctx.index, memoized);

        if (!pool_) {
            if (from_memo) {
                commit(ctx, std::move(memoized));
            } else {
                Result r = fn(ctx);
                if (memo_store_)
                    memo_store_(ctx.index, r);
                commit(ctx, std::move(r));
            }
            ++committed_;
            return;
        }

        auto slot = std::make_unique<Slot>();
        slot->ctx = ctx;
        slot->commit = std::move(commit);
        slot->from_memo = from_memo;
        if (from_memo) {
            slot->result = std::move(memoized);
            slot->done = true;
        }
        Slot *raw = slot.get();
        {
            std::lock_guard<std::mutex> lock(mu_);
            slots_.push_back(std::move(slot));
        }
        if (!from_memo) {
            pool_->submit([this, raw, fn = std::move(fn)] {
                Result r = fn(raw->ctx);
                std::lock_guard<std::mutex> lock(mu_);
                raw->result = std::move(r);
                raw->done = true;
                done_cv_.notify_all();
            });
        }
        drainReady(/*wait=*/false);
    }

    /** Points submitted so far. */
    std::size_t submitted() const { return next_index_; }

    /** Points whose commit function has run. */
    std::size_t committed() const { return committed_; }

    /**
     * Wait for every outstanding point and commit the remainder in
     * submission order. Idempotent; also called by the destructor.
     */
    void
    finish()
    {
        if (pool_)
            drainReady(/*wait=*/true);
    }

  private:
    struct Slot
    {
        PointContext ctx;
        CommitFn commit;
        Result result{};
        bool done = false;  // guarded by mu_
        bool from_memo = false;
    };

    /**
     * Commit the contiguous prefix of completed points; with
     * @p wait, block until everything submitted has committed.
     */
    void
    drainReady(bool wait)
    {
        for (;;) {
            Slot *slot = nullptr;
            {
                std::unique_lock<std::mutex> lock(mu_);
                const std::size_t i = committed_;
                if (i >= slots_.size())
                    return;
                if (!slots_[i]->done) {
                    if (!wait)
                        return;
                    done_cv_.wait(
                        lock, [&] { return slots_[i]->done; });
                }
                slot = slots_[i].get();
            }
            // Commit outside the lock: commit functions may be slow
            // (formatting) and must never deadlock against workers
            // finishing later points. The memo store runs here too,
            // so journal appends happen in submission order on the
            // caller's thread.
            if (!slot->from_memo && memo_store_)
                memo_store_(slot->ctx.index, slot->result);
            slot->commit(slot->ctx, std::move(slot->result));
            std::lock_guard<std::mutex> lock(mu_);
            ++committed_;
            slots_[committed_ - 1].reset();
        }
    }

    std::uint64_t base_seed_;
    MemoLookupFn memo_lookup_;
    MemoStoreFn memo_store_;
    std::size_t next_index_ = 0;
    std::size_t committed_ = 0;
    std::unique_ptr<ThreadPool> pool_;
    std::mutex mu_;
    std::condition_variable done_cv_;
    std::vector<std::unique_ptr<Slot>> slots_;
};

} // namespace memwall

#endif // MEMWALL_HARNESS_PARALLEL_SWEEP_HH
