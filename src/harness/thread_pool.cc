#include "harness/thread_pool.hh"

#include <exception>

#include "common/logging.hh"

namespace memwall {

unsigned
ThreadPool::defaultWorkers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = defaultWorkers();
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.push_back(std::make_unique<Worker>());
    // Start the threads only once every deque exists: a worker may
    // inspect any other worker's deque while stealing.
    for (unsigned i = 0; i < workers; ++i)
        workers_[i]->thread =
            std::thread([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    waitIdle();
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (auto &worker : workers_)
        worker->thread.join();
}

void
ThreadPool::submit(Task task)
{
    MW_ASSERT(task, "cannot submit an empty task");
    {
        std::lock_guard<std::mutex> lock(mu_);
        MW_ASSERT(!stopping_, "submit() on a stopping pool");
        workers_[next_worker_]->tasks.push_back(std::move(task));
        next_worker_ = (next_worker_ + 1) % workers();
        ++in_flight_;
    }
    work_cv_.notify_one();
}

bool
ThreadPool::takeTask(unsigned self, Task &out)
{
    auto &own = workers_[self]->tasks;
    if (!own.empty()) {
        out = std::move(own.back());
        own.pop_back();
        return true;
    }
    const unsigned n = workers();
    for (unsigned k = 1; k < n; ++k) {
        auto &victim = workers_[(self + k) % n]->tasks;
        if (!victim.empty()) {
            out = std::move(victim.front());
            victim.pop_front();
            ++steals_;
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned self)
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        Task task;
        if (takeTask(self, task)) {
            lock.unlock();
            bool threw = false;
            try {
                task();
            } catch (const std::exception &e) {
                threw = true;
                MW_WARN("thread pool task threw: ", e.what());
            } catch (...) {
                threw = true;
                MW_WARN("thread pool task threw a non-std exception");
            }
            // Release the closure before reporting completion so any
            // captured state dies before waitIdle() returns.
            task = nullptr;
            lock.lock();
            if (threw)
                ++task_exceptions_;
            if (--in_flight_ == 0)
                idle_cv_.notify_all();
            continue;
        }
        if (stopping_)
            return;
        work_cv_.wait(lock);
    }
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

std::uint64_t
ThreadPool::steals() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return steals_;
}

std::uint64_t
ThreadPool::taskExceptions() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return task_exceptions_;
}

} // namespace memwall
