/**
 * @file
 * Glue between ParallelSweep's memo hooks and the crash-safe
 * ckpt::SweepJournal: committed points are journaled in commit
 * order, and a resumed run replays journaled results instead of
 * recomputing them. Because the sweep commits strictly in
 * submission order and the journal fsyncs every record, a run
 * killed at any instant resumes to byte-identical output.
 */

#ifndef MEMWALL_HARNESS_SWEEP_RESUME_HH
#define MEMWALL_HARNESS_SWEEP_RESUME_HH

#include <cstddef>
#include <vector>

#include "checkpoint/codec.hh"
#include "checkpoint/journal.hh"
#include "common/logging.hh"
#include "harness/parallel_sweep.hh"

namespace memwall {

/**
 * Wire @p journal into @p sweep. @p encode is
 * void(ckpt::Encoder &, const Result &); @p decode is
 * bool(ckpt::Decoder &, Result &) returning false on malformed
 * payloads (the point is then recomputed — a bad record degrades,
 * never crashes). The journal must outlive the sweep.
 */
template <typename Result, typename Encode, typename Decode>
void
attachSweepJournal(ParallelSweep<Result> &sweep,
                   ckpt::SweepJournal &journal, Encode encode,
                   Decode decode)
{
    sweep.setMemo(
        [&journal, decode](std::size_t index, Result &out) {
            const std::vector<std::uint8_t> *bytes =
                journal.lookup(index);
            if (!bytes)
                return false;
            ckpt::Decoder d(*bytes);
            if (!decode(d, out)) {
                MW_WARN("resume journal: record ", index,
                        " does not decode; recomputing the point");
                return false;
            }
            return true;
        },
        [&journal, encode](std::size_t index, const Result &r) {
            ckpt::Encoder e;
            encode(e, r);
            std::string why;
            if (!journal.append(index, e.take(), &why))
                MW_WARN("resume journal: ", why);
        });
}

} // namespace memwall

#endif // MEMWALL_HARNESS_SWEEP_RESUME_HH
