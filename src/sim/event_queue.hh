/**
 * @file
 * Minimal discrete-event simulation kernel.
 *
 * The DRAM timing model, the interconnect fabric and the
 * multiprocessor machine all advance simulated time by scheduling
 * callbacks on an EventQueue. Events at the same tick fire in
 * (priority, insertion order), which keeps runs deterministic.
 */

#ifndef MEMWALL_SIM_EVENT_QUEUE_HH
#define MEMWALL_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace memwall {

/** Scheduling priority; lower values fire first within a tick. */
enum class EventPriority : int {
    High = 0,
    Default = 50,
    Low = 100,
};

/**
 * Time-ordered queue of callbacks.
 *
 * Not thread-safe; each simulated machine owns exactly one queue.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of events still pending. */
    std::size_t pending() const { return heap_.size(); }

    /**
     * Schedule @p cb at absolute time @p when (>= now).
     * @return a ticket usable with deschedule().
     */
    std::uint64_t schedule(Tick when, Callback cb,
                           EventPriority prio = EventPriority::Default);

    /** Schedule @p cb @p delta ticks from now. */
    std::uint64_t
    scheduleIn(Tick delta, Callback cb,
               EventPriority prio = EventPriority::Default)
    {
        return schedule(now_ + delta, std::move(cb), prio);
    }

    /** Cancel a pending event; returns false if already fired/unknown. */
    bool deschedule(std::uint64_t ticket);

    /** Run a single event; returns false if the queue is empty. */
    bool step();

    /** Run until the queue drains or @p limit is reached. */
    void run(Tick limit = max_tick);

    /**
     * Advance simulated time to @p when without running events
     * scheduled later; events up to @p when fire first.
     */
    void advanceTo(Tick when);

    /** Total number of events executed since construction. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        int prio;
        std::uint64_t seq;
        Callback cb;
        bool cancelled = false;
    };

    struct Order
    {
        bool
        operator()(const Entry *a, const Entry *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            if (a->prio != b->prio)
                return a->prio > b->prio;
            return a->seq > b->seq;
        }
    };

    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    std::priority_queue<Entry *, std::vector<Entry *>, Order> heap_;
    std::vector<Entry *> cancelled_;

  public:
    EventQueue() = default;
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
};

} // namespace memwall

#endif // MEMWALL_SIM_EVENT_QUEUE_HH
