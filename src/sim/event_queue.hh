/**
 * @file
 * Minimal discrete-event simulation kernel.
 *
 * The DRAM timing model, the interconnect fabric and the
 * multiprocessor machine all advance simulated time by scheduling
 * callbacks on an EventQueue. Events at the same tick fire in
 * (priority, insertion order), which keeps runs deterministic.
 *
 * The kernel is allocation-free in steady state: callbacks live in a
 * small-buffer-optimized InlineFunction (no malloc for captures up to
 * 48 bytes) and event records are pooled and recycled through a free
 * list, so schedule/dispatch never touches the heap once the pool has
 * warmed up. Tickets encode (pool slot, generation) for O(1)
 * deschedule instead of the previous full-heap rebuild.
 */

#ifndef MEMWALL_SIM_EVENT_QUEUE_HH
#define MEMWALL_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <vector>

#include "common/inline_function.hh"
#include "common/types.hh"

namespace memwall {

/** Scheduling priority; lower values fire first within a tick. */
enum class EventPriority : int {
    High = 0,
    Default = 50,
    Low = 100,
};

/**
 * Time-ordered queue of callbacks.
 *
 * Not thread-safe; each simulated machine owns exactly one queue.
 * (Parallel sweeps run one whole machine per worker, never one
 * machine on several workers.)
 */
class EventQueue
{
  public:
    using Callback = InlineFunction<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of events still pending (cancelled ones excluded). */
    std::size_t pending() const { return heap_.size() - cancelled_; }

    /**
     * Schedule @p cb at absolute time @p when (>= now).
     * @return a ticket usable with deschedule().
     */
    std::uint64_t schedule(Tick when, Callback cb,
                           EventPriority prio = EventPriority::Default);

    /** Schedule @p cb @p delta ticks from now. */
    std::uint64_t
    scheduleIn(Tick delta, Callback cb,
               EventPriority prio = EventPriority::Default)
    {
        return schedule(now_ + delta, std::move(cb), prio);
    }

    /**
     * Cancel a pending event; returns false if already fired/unknown.
     * Cancelling a periodic series' ticket stops the series; doing
     * so from inside its own callback is safe (the series does not
     * re-arm, the executing function is not destroyed mid-call, and
     * the ticket invalidates exactly once).
     */
    bool deschedule(std::uint64_t ticket);

    /**
     * Schedule @p fn to run every @p interval ticks, starting
     * @p interval from now. The event re-arms itself after each
     * firing for as long as @p fn returns true; returning false
     * stops the series and releases its state. Used by periodic
     * housekeeping such as the transaction-watchdog scan.
     * @return a ticket for the WHOLE series: it stays valid across
     *         re-arms, and deschedule() on it — from outside or
     *         from inside @p fn itself — stops the series.
     */
    std::uint64_t
    schedulePeriodic(Tick interval, std::function<bool()> fn,
                     EventPriority prio = EventPriority::Low);

    /** Run a single event; returns false if the queue is empty. */
    bool step();

    /** Run until the queue drains or @p limit is reached. */
    void run(Tick limit = max_tick);

    /**
     * Advance simulated time to @p when without running events
     * scheduled later; events up to @p when fire first.
     */
    void advanceTo(Tick when);

    /** Total number of events executed since construction. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        Tick when = 0;
        int prio = 0;
        std::uint64_t seq = 0;
        std::uint32_t slot = 0;
        std::uint32_t gen = 0;
        bool cancelled = false;
        Callback cb;
        /** Periodic series state; interval == 0 for one-shots. */
        Tick interval = 0;
        std::function<bool()> periodic;
    };

    struct Order
    {
        bool
        operator()(const Entry *a, const Entry *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            if (a->prio != b->prio)
                return a->prio > b->prio;
            return a->seq > b->seq;
        }
    };

    /** Drop cancelled entries sitting on top of the heap. */
    void purgeCancelledTop();
    void recycle(Entry *entry);

    Tick now_ = 0;
    /** Periodic entry whose callback is executing right now (null
     * otherwise): deschedule() must not reset a running function or
     * count an entry that is not in the heap. */
    Entry *in_flight_ = nullptr;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t cancelled_ = 0;
    std::priority_queue<Entry *, std::vector<Entry *>, Order> heap_;
    /** Entry pool; deque keeps addresses stable for the free list. */
    std::deque<Entry> pool_;
    std::vector<std::uint32_t> free_slots_;

  public:
    EventQueue() = default;
    ~EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
};

} // namespace memwall

#endif // MEMWALL_SIM_EVENT_QUEUE_HH
