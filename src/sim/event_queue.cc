#include "sim/event_queue.hh"

#include <unordered_map>

#include "common/logging.hh"

namespace memwall {

EventQueue::~EventQueue()
{
    while (!heap_.empty()) {
        delete heap_.top();
        heap_.pop();
    }
}

std::uint64_t
EventQueue::schedule(Tick when, Callback cb, EventPriority prio)
{
    MW_ASSERT(when >= now_, "cannot schedule event in the past (when=",
              when, " now=", now_, ")");
    auto *entry = new Entry{when, static_cast<int>(prio), next_seq_++,
                            std::move(cb)};
    heap_.push(entry);
    return entry->seq;
}

bool
EventQueue::deschedule(std::uint64_t ticket)
{
    // Lazy deletion: mark the entry cancelled; it is dropped when it
    // reaches the top of the heap. A linear scan of the heap's
    // container would break the heap property, so we track tickets.
    // The heap entries are owned by the queue; we find the entry by
    // scanning only when necessary — cheap because cancellations are
    // rare in our models.
    std::vector<Entry *> spill;
    bool found = false;
    while (!heap_.empty()) {
        Entry *top = heap_.top();
        heap_.pop();
        if (top->seq == ticket && !top->cancelled) {
            top->cancelled = true;
            found = true;
            spill.push_back(top);
            break;
        }
        spill.push_back(top);
    }
    for (auto *e : spill)
        heap_.push(e);
    return found;
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        Entry *top = heap_.top();
        heap_.pop();
        if (top->cancelled) {
            delete top;
            continue;
        }
        MW_ASSERT(top->when >= now_, "event queue time went backwards");
        now_ = top->when;
        ++executed_;
        Callback cb = std::move(top->cb);
        delete top;
        cb();
        return true;
    }
    return false;
}

void
EventQueue::run(Tick limit)
{
    while (!heap_.empty() && heap_.top()->when <= limit) {
        if (!step())
            break;
    }
}

void
EventQueue::advanceTo(Tick when)
{
    run(when);
    if (when > now_)
        now_ = when;
}

} // namespace memwall
