#include "sim/event_queue.hh"

#include <memory>

#include "common/logging.hh"

namespace memwall {

namespace {

std::uint64_t
makeTicket(std::uint32_t slot, std::uint32_t gen)
{
    return (static_cast<std::uint64_t>(slot) << 32) | gen;
}

} // namespace

std::uint64_t
EventQueue::schedule(Tick when, Callback cb, EventPriority prio)
{
    MW_ASSERT(when >= now_, "cannot schedule event in the past (when=",
              when, " now=", now_, ")");
    std::uint32_t slot;
    if (free_slots_.empty()) {
        slot = static_cast<std::uint32_t>(pool_.size());
        pool_.emplace_back();
        pool_.back().slot = slot;
    } else {
        slot = free_slots_.back();
        free_slots_.pop_back();
    }
    Entry &entry = pool_[slot];
    entry.when = when;
    entry.prio = static_cast<int>(prio);
    entry.seq = next_seq_++;
    entry.cancelled = false;
    entry.cb = std::move(cb);
    heap_.push(&entry);
    return makeTicket(slot, entry.gen);
}

std::uint64_t
EventQueue::schedulePeriodic(Tick interval, std::function<bool()> fn,
                             EventPriority prio)
{
    MW_ASSERT(interval >= 1, "periodic interval must be positive");
    // A periodic series lives in ONE pool entry for its whole life:
    // step() re-arms the same slot without bumping the generation,
    // so the returned ticket keeps identifying the series until it
    // stops (fn returns false) or is descheduled.
    const std::uint64_t ticket =
        schedule(now_ + interval, Callback(), prio);
    Entry &entry = pool_[static_cast<std::uint32_t>(ticket >> 32)];
    entry.interval = interval;
    entry.periodic = std::move(fn);
    return ticket;
}

bool
EventQueue::deschedule(std::uint64_t ticket)
{
    const std::uint32_t slot = static_cast<std::uint32_t>(ticket >> 32);
    const std::uint32_t gen = static_cast<std::uint32_t>(ticket);
    if (slot >= pool_.size())
        return false;
    Entry &entry = pool_[slot];
    // A fired or already-cancelled event bumped its generation, so a
    // stale ticket cannot match.
    if (entry.gen != gen || entry.cancelled)
        return false;
    if (&entry == in_flight_) {
        // A periodic series cancelling itself from inside its own
        // callback. The entry is not in the heap (step() popped it)
        // and its function is executing right now — just mark it;
        // step() skips the re-arm and releases the state after the
        // call returns.
        entry.cancelled = true;
        ++entry.gen;
        return true;
    }
    // Lazy deletion: the entry stays in the heap until it surfaces,
    // but its callback (and any resources it captured) dies now.
    entry.cancelled = true;
    ++entry.gen;
    entry.cb.reset();
    entry.periodic = nullptr;
    entry.interval = 0;
    ++cancelled_;
    return true;
}

void
EventQueue::recycle(Entry *entry)
{
    entry->cb.reset();
    entry->periodic = nullptr;
    entry->interval = 0;
    free_slots_.push_back(entry->slot);
}

void
EventQueue::purgeCancelledTop()
{
    while (!heap_.empty() && heap_.top()->cancelled) {
        Entry *top = heap_.top();
        heap_.pop();
        --cancelled_;
        recycle(top);
    }
}

bool
EventQueue::step()
{
    purgeCancelledTop();
    if (heap_.empty())
        return false;
    Entry *top = heap_.top();
    heap_.pop();
    MW_ASSERT(top->when >= now_, "event queue time went backwards");
    now_ = top->when;
    ++executed_;
    if (top->interval > 0) {
        // Periodic firing. The entry is re-armed in place (same
        // slot, same generation, fresh seq) unless the function
        // returns false or deschedules itself mid-call; the
        // function object is only destroyed after it has returned.
        in_flight_ = top;
        const bool again = top->periodic();
        in_flight_ = nullptr;
        if (again && !top->cancelled) {
            top->when = now_ + top->interval;
            top->seq = next_seq_++;
            heap_.push(top);
        } else {
            if (!top->cancelled)
                ++top->gen;  // self-deschedule already bumped it
            top->cancelled = false;
            recycle(top);
        }
        return true;
    }
    ++top->gen;  // invalidate outstanding tickets
    Callback cb = std::move(top->cb);
    recycle(top);
    cb();
    return true;
}

void
EventQueue::run(Tick limit)
{
    for (;;) {
        purgeCancelledTop();
        if (heap_.empty() || heap_.top()->when > limit)
            return;
        if (!step())
            return;
    }
}

void
EventQueue::advanceTo(Tick when)
{
    run(when);
    if (when > now_)
        now_ = when;
}

} // namespace memwall
