#include "gspn/simulator.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace memwall {

GspnSimulator::GspnSimulator(const PetriNet &net, std::uint64_t seed)
    : net_(net), rng_(seed), seed_(seed)
{
    marking_.resize(net_.numPlaces());
    timer_.resize(net_.numTransitions());
    firings_.resize(net_.numTransitions());
    token_time_.resize(net_.numPlaces());
    busy_time_.resize(net_.numPlaces());
    reset();
}

void
GspnSimulator::reset()
{
    now_ = 0.0;
    total_firings_ = 0;
    rng_ = Rng(seed_);
    for (std::size_t p = 0; p < net_.places_.size(); ++p)
        marking_[p] = net_.places_[p].initial;
    std::fill(timer_.begin(), timer_.end(), -1.0);
    std::fill(firings_.begin(), firings_.end(), 0);
    std::fill(token_time_.begin(), token_time_.end(), 0.0);
    std::fill(busy_time_.begin(), busy_time_.end(), 0.0);
    fireImmediates();
    refreshTimers();
}

std::uint32_t
GspnSimulator::marking(PlaceId place) const
{
    MW_ASSERT(place < marking_.size(), "bad place id");
    return marking_[place];
}

void
GspnSimulator::setMarking(PlaceId place, std::uint32_t tokens)
{
    MW_ASSERT(place < marking_.size(), "bad place id");
    marking_[place] = tokens;
    fireImmediates();
    refreshTimers();
}

bool
GspnSimulator::isEnabled(TransitionId t) const
{
    const auto &trans = net_.transitions_[t];
    for (const auto &arc : trans.inputs)
        if (marking_[arc.place] < arc.weight)
            return false;
    for (const auto &arc : trans.tests)
        if (marking_[arc.place] < arc.weight)
            return false;
    for (const auto &arc : trans.inhibitors)
        if (marking_[arc.place] >= arc.weight)
            return false;
    return true;
}

void
GspnSimulator::fire(TransitionId t)
{
    const auto &trans = net_.transitions_[t];
    for (const auto &arc : trans.inputs) {
        MW_ASSERT(marking_[arc.place] >= arc.weight,
                  "firing disabled transition ", trans.name);
        marking_[arc.place] -= arc.weight;
    }
    for (const auto &arc : trans.outputs)
        marking_[arc.place] += arc.weight;
    ++firings_[t];
    ++total_firings_;
}

void
GspnSimulator::fireImmediates()
{
    // Immediate transitions fire in priority order; ties are resolved
    // as a random switch weighted by the transition weights.
    constexpr std::uint64_t guard_limit = 100'000'000;
    std::uint64_t guard = 0;
    while (true) {
        int best_prio = std::numeric_limits<int>::min();
        double total_weight = 0.0;
        // Two passes: find the max priority, then weight-sum it.
        std::vector<TransitionId> candidates;
        for (TransitionId t = 0; t < net_.transitions_.size(); ++t) {
            const auto &trans = net_.transitions_[t];
            if (trans.kind != TransitionKind::Immediate)
                continue;
            if (!isEnabled(t))
                continue;
            if (trans.priority > best_prio) {
                best_prio = trans.priority;
                candidates.clear();
                total_weight = 0.0;
            }
            if (trans.priority == best_prio) {
                candidates.push_back(t);
                total_weight += trans.param;
            }
        }
        if (candidates.empty())
            return;
        TransitionId chosen = candidates.back();
        if (candidates.size() > 1) {
            double pick = rng_.uniformReal() * total_weight;
            for (TransitionId t : candidates) {
                pick -= net_.transitions_[t].param;
                if (pick <= 0.0) {
                    chosen = t;
                    break;
                }
            }
        }
        fire(chosen);
        if (++guard > guard_limit)
            MW_PANIC("immediate-transition livelock in GSPN");
    }
}

void
GspnSimulator::refreshTimers()
{
    for (TransitionId t = 0; t < net_.transitions_.size(); ++t) {
        const auto &trans = net_.transitions_[t];
        if (trans.kind == TransitionKind::Immediate)
            continue;
        const bool enabled = isEnabled(t);
        if (!enabled) {
            // Race with enabling-memory discard: drop the timer.
            timer_[t] = -1.0;
        } else if (timer_[t] < 0.0) {
            const double delay =
                trans.kind == TransitionKind::Deterministic
                    ? trans.param
                    : rng_.exponential(1.0 / trans.param);
            timer_[t] = now_ + delay;
        }
    }
}

void
GspnSimulator::advanceTime(double to)
{
    const double dt = to - now_;
    MW_ASSERT(dt >= 0.0, "GSPN time went backwards");
    if (dt > 0.0) {
        for (std::size_t p = 0; p < marking_.size(); ++p) {
            token_time_[p] += dt * marking_[p];
            if (marking_[p] > 0)
                busy_time_[p] += dt;
        }
    }
    now_ = to;
}

int
GspnSimulator::nextTimed() const
{
    int best = -1;
    for (TransitionId t = 0; t < net_.transitions_.size(); ++t) {
        if (timer_[t] < 0.0)
            continue;
        if (best < 0 || timer_[t] < timer_[best])
            best = static_cast<int>(t);
    }
    return best;
}

bool
GspnSimulator::run(double time_limit)
{
    while (true) {
        const int t = nextTimed();
        if (t < 0)
            return false;  // deadlock (only timed transitions advance)
        if (timer_[t] > time_limit) {
            advanceTime(time_limit);
            return true;
        }
        advanceTime(timer_[t]);
        timer_[t] = -1.0;
        fire(static_cast<TransitionId>(t));
        fireImmediates();
        refreshTimers();
    }
}

bool
GspnSimulator::runUntilFirings(TransitionId transition,
                               std::uint64_t count, double time_cap)
{
    const std::uint64_t target = firings_[transition] + count;
    while (firings_[transition] < target) {
        const int t = nextTimed();
        if (t < 0)
            return false;
        if (timer_[t] > time_cap)
            return false;
        advanceTime(timer_[t]);
        timer_[t] = -1.0;
        fire(static_cast<TransitionId>(t));
        fireImmediates();
        refreshTimers();
    }
    return true;
}

std::uint64_t
GspnSimulator::firings(TransitionId t) const
{
    MW_ASSERT(t < firings_.size(), "bad transition id");
    return firings_[t];
}

double
GspnSimulator::throughput(TransitionId t) const
{
    return now_ > 0.0
        ? static_cast<double>(firings(t)) / now_
        : 0.0;
}

double
GspnSimulator::meanTokens(PlaceId place) const
{
    MW_ASSERT(place < token_time_.size(), "bad place id");
    return now_ > 0.0 ? token_time_[place] / now_ : 0.0;
}

double
GspnSimulator::probNonEmpty(PlaceId place) const
{
    MW_ASSERT(place < busy_time_.size(), "bad place id");
    return now_ > 0.0 ? busy_time_[place] / now_ : 0.0;
}

} // namespace memwall
