/**
 * @file
 * Generalized Stochastic Petri Nets (GSPN).
 *
 * The paper evaluates processor throughput with GSPN models "that
 * take into account contention for shared resources (such as memory
 * banks) and event dependencies" (Section 5.5), citing Marsan &
 * Conti. This library implements the net structure:
 *
 *  - places holding non-negative token counts;
 *  - immediate transitions (zero firing time, priority + weight
 *    resolved random switches);
 *  - deterministically timed transitions (fixed delay);
 *  - exponentially timed transitions (rate lambda);
 *  - input, output, inhibitor and test (read) arcs with multiplicity.
 *
 * Timed transitions use single-server semantics with the race /
 * enabling-memory-discard policy: a timer is sampled when the
 * transition becomes enabled and discarded if it gets disabled.
 * The companion GspnSimulator runs the net by Monte-Carlo simulation
 * (the evaluation method named in the paper).
 */

#ifndef MEMWALL_GSPN_PETRI_NET_HH
#define MEMWALL_GSPN_PETRI_NET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace memwall {

/** Index of a place within its net. */
using PlaceId = std::uint32_t;
/** Index of a transition within its net. */
using TransitionId = std::uint32_t;

/** Firing-time distribution of a transition. */
enum class TransitionKind {
    Immediate,      ///< fires in zero time, by priority then weight
    Deterministic,  ///< fixed delay
    Exponential,    ///< Exp(rate) delay
};

/** How an arc constrains/affects its transition. */
enum class ArcKind {
    Input,      ///< requires and consumes tokens
    Output,     ///< produces tokens on firing
    Inhibitor,  ///< transition disabled while place holds >= weight
    Test,       ///< requires tokens but does not consume them
};

/**
 * Static structure of a GSPN. Build once, then hand to one or more
 * GspnSimulator instances (the net itself holds no marking).
 */
class PetriNet
{
  public:
    /** Add a place with @p initial tokens. @return its id. */
    PlaceId addPlace(std::string name, std::uint32_t initial = 0);

    /**
     * Add an immediate transition.
     * @param weight   relative probability among enabled immediate
     *                 transitions of the same priority
     * @param priority higher fires first
     */
    TransitionId addImmediate(std::string name, double weight = 1.0,
                              int priority = 0);

    /** Add a deterministic transition with fixed @p delay. */
    TransitionId addDeterministic(std::string name, double delay);

    /** Add an exponential transition with @p rate (mean 1/rate). */
    TransitionId addExponential(std::string name, double rate);

    /** Connect @p place to @p t with an arc of the given kind. */
    void addArc(TransitionId t, PlaceId place, ArcKind kind,
                std::uint32_t weight = 1);

    /** Shorthand: input arc. */
    void input(TransitionId t, PlaceId p, std::uint32_t w = 1)
    {
        addArc(t, p, ArcKind::Input, w);
    }
    /** Shorthand: output arc. */
    void output(TransitionId t, PlaceId p, std::uint32_t w = 1)
    {
        addArc(t, p, ArcKind::Output, w);
    }
    /** Shorthand: inhibitor arc. */
    void inhibitor(TransitionId t, PlaceId p, std::uint32_t w = 1)
    {
        addArc(t, p, ArcKind::Inhibitor, w);
    }
    /** Shorthand: test arc. */
    void test(TransitionId t, PlaceId p, std::uint32_t w = 1)
    {
        addArc(t, p, ArcKind::Test, w);
    }

    std::size_t numPlaces() const { return places_.size(); }
    std::size_t numTransitions() const { return transitions_.size(); }

    const std::string &placeName(PlaceId p) const;
    const std::string &transitionName(TransitionId t) const;
    TransitionKind transitionKind(TransitionId t) const;

    /** Sanity-check structural invariants; fatal on violation. */
    void validate() const;

  private:
    friend class GspnSimulator;

    struct Arc
    {
        PlaceId place;
        std::uint32_t weight;
    };

    struct Place
    {
        std::string name;
        std::uint32_t initial;
    };

    struct Transition
    {
        std::string name;
        TransitionKind kind;
        double param;  ///< weight / delay / rate
        int priority;
        std::vector<Arc> inputs;
        std::vector<Arc> outputs;
        std::vector<Arc> inhibitors;
        std::vector<Arc> tests;
    };

    std::vector<Place> places_;
    std::vector<Transition> transitions_;
};

} // namespace memwall

#endif // MEMWALL_GSPN_PETRI_NET_HH
