/**
 * @file
 * Monte-Carlo execution of a GSPN (the paper's evaluation method:
 * "The GSPNs were evaluated using a Monte-Carlo simulator",
 * Section 5.5).
 */

#ifndef MEMWALL_GSPN_SIMULATOR_HH
#define MEMWALL_GSPN_SIMULATOR_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "gspn/petri_net.hh"

namespace memwall {

/**
 * Simulates one PetriNet instance. Holds the marking, transition
 * timers and time-averaged statistics; the net itself is shared and
 * immutable.
 */
class GspnSimulator
{
  public:
    GspnSimulator(const PetriNet &net, std::uint64_t seed = 12345);

    /** Restore the initial marking and clear statistics. */
    void reset();

    /** @return current simulated time. */
    double now() const { return now_; }

    /** @return tokens currently in @p place. */
    std::uint32_t marking(PlaceId place) const;

    /** Force the marking of @p place (experiment setup). */
    void setMarking(PlaceId place, std::uint32_t tokens);

    /**
     * Run until simulated time reaches @p time_limit or the net
     * deadlocks (no enabled transitions).
     * @return false if the net deadlocked before the limit.
     */
    bool run(double time_limit);

    /**
     * Run until @p transition has fired @p count more times, the
     * optional @p time_cap is hit, or the net deadlocks.
     * @return true iff the firing target was reached.
     */
    bool runUntilFirings(TransitionId transition, std::uint64_t count,
                         double time_cap = 1e18);

    /** Total firings of @p t since reset. */
    std::uint64_t firings(TransitionId t) const;

    /** Firings of @p t per unit time. */
    double throughput(TransitionId t) const;

    /** Time-averaged token count of @p place. */
    double meanTokens(PlaceId place) const;

    /** Fraction of time @p place held at least one token. */
    double probNonEmpty(PlaceId place) const;

    /** Total transitions fired (immediate + timed). */
    std::uint64_t totalFirings() const { return total_firings_; }

  private:
    bool isEnabled(TransitionId t) const;
    void fire(TransitionId t);
    /** Fire enabled immediate transitions until none remain. */
    void fireImmediates();
    /** Sample/discard timers after a marking change. */
    void refreshTimers();
    /** Advance the clock, accumulating time-averaged statistics. */
    void advanceTime(double to);
    /** @return index of the timed transition that fires next, or -1. */
    int nextTimed() const;

    const PetriNet &net_;
    Rng rng_;
    double now_ = 0.0;
    std::vector<std::uint32_t> marking_;
    /** Absolute firing time per transition; <0 means no timer. */
    std::vector<double> timer_;
    std::vector<std::uint64_t> firings_;
    std::vector<double> token_time_;
    std::vector<double> busy_time_;
    std::uint64_t total_firings_ = 0;
    std::uint64_t seed_;
};

} // namespace memwall

#endif // MEMWALL_GSPN_SIMULATOR_HH
