/**
 * @file
 * The paper's GSPN performance models (Figures 9 and 10).
 *
 * Figure 9: one memory bank that serves either an instruction-cache
 * miss or a data-cache miss, with deterministic access transitions
 * (T1/T3) and a precharge transition (T2) that blocks the bank for a
 * while after each access.
 *
 * Figure 10: the processor model. An instruction-fetch unit issues
 * one instruction per cycle when nothing stalls; immediate random
 * switches route fetches and loads/stores to the first-level cache,
 * the optional second-level cache (the grey "reference system"
 * components) or a randomly chosen memory bank. The load/store unit
 * holds a single token (one outstanding operation); a store buffer
 * lets stores retire without stalling; an exponential transition T23
 * models how long issue continues past an incomplete load
 * (rate 1 = scoreboarding, rate -> infinity = stall immediately).
 *
 * The builder assembles both figures into one net parameterised by
 * the measured cache hit ratios, producing the CPI estimates of
 * Figures 11/12 and Tables 3/4.
 */

#ifndef MEMWALL_GSPN_MODELS_HH
#define MEMWALL_GSPN_MODELS_HH

#include <cstdint>
#include <vector>

#include "gspn/petri_net.hh"
#include "gspn/simulator.hh"

namespace memwall {

/**
 * Parameters of the combined processor/memory GSPN. Defaults are the
 * integrated device of Section 4.1 with perfect caches.
 */
struct ProcessorModelParams
{
    /** Fraction of instructions that are loads. */
    double p_load = 0.20;
    /** Fraction of instructions that are stores. */
    double p_store = 0.10;

    /** I-fetch first-level hit probability. */
    double icache_hit = 1.0;
    /**
     * Conditional probability that an I-fetch miss hits the L2
     * (ignored when has_l2 is false).
     */
    double icache_l2_hit = 0.9;

    /** Load first-level hit probability. */
    double load_hit = 1.0;
    /** Conditional L2 hit probability for load misses. */
    double load_l2_hit = 0.9;

    /** Store first-level hit probability. */
    double store_hit = 1.0;
    /** Conditional L2 hit probability for store misses. */
    double store_l2_hit = 0.9;

    /** Whether the grey reference-system L2 components are present. */
    bool has_l2 = false;
    /** L2 access latency in cycles (transitions T24/T25). */
    double l2_latency = 6.0;

    /** Number of independent memory banks. */
    unsigned banks = 16;
    /** Bank access time in cycles (transitions T1/T3). */
    double bank_access = 6.0;
    /** Bank precharge time in cycles (transition T2). */
    double bank_precharge = 4.0;

    /**
     * Scoreboarding: mean instructions issued past an incomplete
     * load before stalling (rate of T23). Set scoreboarding=false to
     * model an immediate stall.
     */
    bool scoreboarding = true;
    double scoreboard_rate = 1.0;
};

/**
 * A built processor/memory net plus the ids needed to read results
 * out of a simulation.
 */
struct ProcessorModel
{
    PetriNet net;
    /** Instruction-issue transition; CPI = time / firings. */
    TransitionId issue;
    /** One "bank free" place per bank, for utilisation statistics. */
    std::vector<PlaceId> bank_free;
    /** Place holding the issue-enable token (empty while stalled). */
    PlaceId issue_enable;
    /** Number of banks in the model. */
    unsigned banks;

    /** Build the net for @p params. */
    static ProcessorModel build(const ProcessorModelParams &params);
};

/** Result of evaluating a ProcessorModel by Monte-Carlo simulation. */
struct CpiEstimate
{
    /** Cycles per instruction including memory stalls. */
    double cpi = 0.0;
    /** The memory component: cpi - 1.0 (issue is 1 cycle). */
    double memory_cpi = 0.0;
    /** Mean bank busy probability (Section 5.6 statistic). */
    double bank_utilisation = 0.0;
    /** Instructions simulated. */
    std::uint64_t instructions = 0;
};

/**
 * Build and run the model for @p params.
 *
 * @param instructions Monte-Carlo length in instructions
 * @param seed         RNG seed
 */
CpiEstimate estimateCpi(const ProcessorModelParams &params,
                        std::uint64_t instructions = 200'000,
                        std::uint64_t seed = 42);

/**
 * Build the standalone Figure 9 bank net: two request sources
 * (I-fetch and data) competing for one bank.
 */
struct BankModel
{
    PetriNet net;
    PlaceId bank_free;
    TransitionId serve_instr;  ///< T1
    TransitionId serve_data;   ///< T3
    TransitionId precharge;    ///< T2

    static BankModel build(double access = 6.0, double precharge = 4.0,
                           double instr_rate = 0.02,
                           double data_rate = 0.02);
};

} // namespace memwall

#endif // MEMWALL_GSPN_MODELS_HH
