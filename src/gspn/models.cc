#include "gspn/models.hh"

#include <algorithm>
#include <string>

#include "common/logging.hh"

namespace memwall {

namespace {

/** Weighted immediate switch probabilities for one access class. */
struct SwitchProbs
{
    double hit;
    double l2;
    double mem;
};

SwitchProbs
splitProbs(double hit, double l2_cond, bool has_l2)
{
    SwitchProbs p;
    p.hit = hit;
    const double miss = 1.0 - hit;
    if (has_l2) {
        p.l2 = miss * l2_cond;
        p.mem = miss * (1.0 - l2_cond);
    } else {
        p.l2 = 0.0;
        p.mem = miss;
    }
    return p;
}

constexpr double min_weight = 1e-12;

} // namespace

ProcessorModel
ProcessorModel::build(const ProcessorModelParams &params)
{
    MW_ASSERT(params.banks >= 1, "need at least one memory bank");
    MW_ASSERT(params.p_load + params.p_store <= 1.0,
              "instruction mix probabilities exceed 1");

    ProcessorModel model;
    model.banks = params.banks;
    PetriNet &net = model.net;

    // ---- Core places -------------------------------------------------
    const PlaceId p_fetch_ready = net.addPlace("fetch_ready", 1);
    const PlaceId p_inst_ready = net.addPlace("inst_ready", 0);
    const PlaceId p_dispatch = net.addPlace("dispatch", 0);
    const PlaceId p_ie = net.addPlace("issue_enable", 1);
    const PlaceId p_stall = net.addPlace("stalled", 0);
    const PlaceId p_lsq = net.addPlace("lsq_free", 1);  // P10
    const PlaceId p_pending_load = net.addPlace("pending_load", 0);
    const PlaceId p_load_done = net.addPlace("load_done", 0);
    const PlaceId p_ld_fin = net.addPlace("load_fin", 0);
    const PlaceId p_ld_wait = net.addPlace("load_wait", 0);
    const PlaceId p_st_wait = net.addPlace("store_wait", 0);

    model.issue_enable = p_ie;

    // The L2 port (P6 in Figure 10) serialises instruction and data
    // traffic through the second-level cache and memory interface of
    // the conventional reference system.
    PlaceId p_l2_port = 0;
    if (params.has_l2)
        p_l2_port = net.addPlace("l2_port", 1);

    // ---- Memory banks (Figure 9, replicated per bank) ---------------
    std::vector<PlaceId> p_bank_free(params.banks);
    std::vector<PlaceId> p_bank_pre(params.banks);
    for (unsigned b = 0; b < params.banks; ++b) {
        p_bank_free[b] =
            net.addPlace("bank" + std::to_string(b) + "_free", 1);
        p_bank_pre[b] =
            net.addPlace("bank" + std::to_string(b) + "_pre", 0);
        // T2: precharge returns the bank to service.
        const TransitionId t_pre = net.addDeterministic(
            "T2_precharge" + std::to_string(b), params.bank_precharge);
        net.input(t_pre, p_bank_pre[b]);
        net.output(t_pre, p_bank_free[b]);
    }
    model.bank_free = p_bank_free;

    // Helper: build a "go to memory" subpath for one access class.
    // Routes a token from `from` through a uniformly selected bank
    // and delivers it to `to` after the access completes. The L2
    // lookup that precedes the memory access in the reference system
    // adds its latency and holds the port.
    auto memory_path = [&](const std::string &prefix, PlaceId from,
                           PlaceId to) {
        for (unsigned b = 0; b < params.banks; ++b) {
            const std::string suffix =
                prefix + "_bank" + std::to_string(b);
            const PlaceId p_req = net.addPlace("req_" + suffix, 0);
            // Uniform random bank selection (immediate switch).
            const TransitionId t_sel =
                net.addImmediate("sel_" + suffix, 1.0);
            net.input(t_sel, from);
            net.output(t_sel, p_req);
            // T1/T3: the array access itself.
            const double access = params.bank_access +
                (params.has_l2 ? params.l2_latency : 0.0);
            const TransitionId t_acc =
                net.addDeterministic("acc_" + suffix, access);
            net.input(t_acc, p_req);
            net.input(t_acc, p_bank_free[b]);
            net.output(t_acc, to);
            net.output(t_acc, p_bank_pre[b]);
            if (params.has_l2) {
                net.input(t_acc, p_l2_port);
                net.output(t_acc, p_l2_port);
            }
        }
    };

    // Helper: an L2 access subpath (deterministic T24/T25).
    auto l2_path = [&](const std::string &name, PlaceId from,
                       PlaceId to) {
        const TransitionId t =
            net.addDeterministic(name, params.l2_latency);
        net.input(t, from);
        net.input(t, p_l2_port);
        net.output(t, to);
        net.output(t, p_l2_port);
    };

    // ---- Instruction fetch -------------------------------------------
    const SwitchProbs ifp = splitProbs(params.icache_hit,
                                       params.icache_l2_hit,
                                       params.has_l2);
    // T2 (hit): instruction available immediately (the fetch pipeline
    // stage itself is part of the 1-cycle issue transition).
    if (ifp.hit > min_weight) {
        const TransitionId t = net.addImmediate("T2_ifetch_hit",
                                                ifp.hit);
        net.input(t, p_fetch_ready);
        net.output(t, p_inst_ready);
    }
    if (params.has_l2 && ifp.l2 > min_weight) {
        const PlaceId p = net.addPlace("ifetch_l2", 0);
        const TransitionId t = net.addImmediate("T3_ifetch_l2", ifp.l2);
        net.input(t, p_fetch_ready);
        net.output(t, p);
        l2_path("T24_ifetch_l2_acc", p, p_inst_ready);
    }
    if (ifp.mem > min_weight) {
        const PlaceId p = net.addPlace("ifetch_mem", 0);
        const TransitionId t = net.addImmediate("T4_ifetch_mem",
                                                ifp.mem);
        net.input(t, p_fetch_ready);
        net.output(t, p);
        memory_path("ifetch", p, p_inst_ready);
    }

    // ---- Issue (T1) ----------------------------------------------------
    // One instruction per cycle when an instruction is ready, the
    // scoreboard allows it, and no memory operation is blocked
    // waiting for the load/store unit.
    const TransitionId t_issue = net.addDeterministic("T1_issue", 1.0);
    net.input(t_issue, p_inst_ready);
    net.test(t_issue, p_ie);
    net.inhibitor(t_issue, p_ld_wait);
    net.inhibitor(t_issue, p_st_wait);
    net.output(t_issue, p_fetch_ready);
    net.output(t_issue, p_dispatch);
    model.issue = t_issue;

    // ---- Instruction-type switch (T7/T8/T9 from P7) ---------------------
    const double p_other = 1.0 - params.p_load - params.p_store;
    if (p_other > min_weight) {
        const TransitionId t = net.addImmediate("T7_other", p_other);
        net.input(t, p_dispatch);
    }
    if (params.p_load > min_weight) {
        const TransitionId t = net.addImmediate("T8_load",
                                                params.p_load);
        net.input(t, p_dispatch);
        net.output(t, p_ld_wait);
    }
    if (params.p_store > min_weight) {
        const TransitionId t = net.addImmediate("T9_store",
                                                params.p_store);
        net.input(t, p_dispatch);
        net.output(t, p_st_wait);
    }

    // ---- Load path -----------------------------------------------------
    const PlaceId p_ld_route = net.addPlace("load_route", 0);
    {
        // Claim the load/store unit (P10).
        const TransitionId t = net.addImmediate("load_claim_lsq", 1.0,
                                                /*priority=*/1);
        net.input(t, p_ld_wait);
        net.input(t, p_lsq);
        net.output(t, p_ld_route);
    }
    const SwitchProbs ldp = splitProbs(params.load_hit,
                                       params.load_l2_hit,
                                       params.has_l2);
    if (ldp.hit > min_weight) {
        // T14: first-level hit, 1 cycle, never stalls issue.
        const PlaceId p = net.addPlace("load_hit_busy", 0);
        const TransitionId t = net.addImmediate("T14_load_hit",
                                                ldp.hit);
        net.input(t, p_ld_route);
        net.output(t, p);
        const TransitionId t_done =
            net.addDeterministic("load_hit_done", 1.0);
        net.input(t_done, p);
        net.output(t_done, p_lsq);
    }
    if (params.has_l2 && ldp.l2 > min_weight) {
        const PlaceId p = net.addPlace("load_l2", 0);
        const TransitionId t = net.addImmediate("T15_load_l2", ldp.l2);
        net.input(t, p_ld_route);
        net.output(t, p);
        net.output(t, p_pending_load);
        l2_path("T25_load_l2_acc", p, p_load_done);
    }
    if (ldp.mem > min_weight) {
        const PlaceId p = net.addPlace("load_mem", 0);
        const TransitionId t = net.addImmediate("T12_load_mem",
                                                ldp.mem);
        net.input(t, p_ld_route);
        net.output(t, p);
        net.output(t, p_pending_load);
        memory_path("load", p, p_load_done);
    }
    {
        // Load completion: release the LSQ and clear the pending flag.
        const TransitionId t = net.addImmediate("load_complete", 1.0,
                                                /*priority=*/3);
        net.input(t, p_load_done);
        net.input(t, p_pending_load);
        net.output(t, p_lsq);
        net.output(t, p_ld_fin);
        // Un-stall the pipeline if the scoreboard had stopped it.
        const TransitionId t_restore =
            net.addImmediate("load_unstall", 1.0, /*priority=*/2);
        net.input(t_restore, p_ld_fin);
        net.input(t_restore, p_stall);
        net.output(t_restore, p_ie);
        const TransitionId t_nostall =
            net.addImmediate("load_fin_nostall", 1.0, /*priority=*/1);
        net.input(t_nostall, p_ld_fin);
        net.inhibitor(t_nostall, p_stall);
    }

    // ---- Scoreboard stall (T23) -----------------------------------------
    if (params.scoreboarding) {
        // On average `scoreboard_rate` cycles of useful work happen
        // before an incomplete load stalls the pipeline.
        const TransitionId t23 =
            net.addExponential("T23_scoreboard",
                               params.scoreboard_rate);
        net.input(t23, p_ie);
        net.test(t23, p_pending_load);
        net.output(t23, p_stall);
    } else {
        // No scoreboarding: an incomplete load stalls immediately
        // (the paper sets the rate of T23 to infinity).
        const TransitionId t23 = net.addImmediate("T23_stall_now", 1.0,
                                                  /*priority=*/2);
        net.input(t23, p_ie);
        net.test(t23, p_pending_load);
        net.output(t23, p_stall);
    }

    // ---- Store path ------------------------------------------------------
    const PlaceId p_st_route = net.addPlace("store_route", 0);
    {
        const TransitionId t = net.addImmediate("store_claim_lsq", 1.0,
                                                /*priority=*/1);
        net.input(t, p_st_wait);
        net.input(t, p_lsq);
        net.output(t, p_st_route);
    }
    const SwitchProbs stp = splitProbs(params.store_hit,
                                       params.store_l2_hit,
                                       params.has_l2);
    if (stp.hit > min_weight) {
        const PlaceId p = net.addPlace("store_hit_busy", 0);
        const TransitionId t = net.addImmediate("T13_store_hit",
                                                stp.hit);
        net.input(t, p_st_route);
        net.output(t, p);
        const TransitionId t_done =
            net.addDeterministic("store_hit_done", 1.0);
        net.input(t_done, p);
        net.output(t_done, p_lsq);
    }
    if (params.has_l2 && stp.l2 > min_weight) {
        const PlaceId p = net.addPlace("store_l2", 0);
        const TransitionId t = net.addImmediate("T16_store_l2",
                                                stp.l2);
        net.input(t, p_st_route);
        net.output(t, p);
        l2_path("store_l2_acc", p, p_lsq);
    }
    if (stp.mem > min_weight) {
        const PlaceId p = net.addPlace("store_mem", 0);
        const TransitionId t = net.addImmediate("T17_store_mem",
                                                stp.mem);
        net.input(t, p_st_route);
        net.output(t, p);
        memory_path("store", p, p_lsq);
    }

    net.validate();
    return model;
}

CpiEstimate
estimateCpi(const ProcessorModelParams &params,
            std::uint64_t instructions, std::uint64_t seed)
{
    ProcessorModel model = ProcessorModel::build(params);
    GspnSimulator sim(model.net, seed);

    // Warm-up: discard an initial transient.
    const std::uint64_t warmup = instructions / 20 + 100;
    sim.runUntilFirings(model.issue, warmup);
    const double t0 = sim.now();
    const std::uint64_t f0 = sim.firings(model.issue);

    const bool ok = sim.runUntilFirings(model.issue, instructions);
    if (!ok)
        MW_PANIC("processor GSPN deadlocked");

    CpiEstimate est;
    est.instructions = sim.firings(model.issue) - f0;
    est.cpi = (sim.now() - t0) / static_cast<double>(est.instructions);
    est.memory_cpi = est.cpi - 1.0;
    // The bank-free place is empty only during precharge (tokens
    // stay in their places while a timed transition counts down),
    // so scale the observed empty fraction up to the full
    // access+precharge service window.
    const double window = params.bank_access + params.bank_precharge;
    const double scale = params.bank_precharge > 0.0
        ? window / params.bank_precharge
        : 1.0;
    double busy = 0.0;
    for (const PlaceId p : model.bank_free)
        busy += (1.0 - sim.probNonEmpty(p)) * scale;
    est.bank_utilisation =
        std::min(1.0, busy / static_cast<double>(model.banks));
    return est;
}

BankModel
BankModel::build(double access, double precharge, double instr_rate,
                 double data_rate)
{
    BankModel model;
    PetriNet &net = model.net;

    const PlaceId p1 = net.addPlace("P1_instr_req", 0);
    const PlaceId p2 = net.addPlace("P2_data_req", 0);
    model.bank_free = net.addPlace("bank_free", 1);
    const PlaceId p_pre = net.addPlace("precharging", 0);

    // Poisson request sources standing in for the immediate
    // transitions from the fetch and load/store units.
    const TransitionId src_i = net.addExponential("instr_source",
                                                  instr_rate);
    net.output(src_i, p1);
    const TransitionId src_d = net.addExponential("data_source",
                                                  data_rate);
    net.output(src_d, p2);

    model.serve_instr = net.addDeterministic("T1_serve_instr", access);
    net.input(model.serve_instr, p1);
    net.input(model.serve_instr, model.bank_free);
    net.output(model.serve_instr, p_pre);

    model.serve_data = net.addDeterministic("T3_serve_data", access);
    net.input(model.serve_data, p2);
    net.input(model.serve_data, model.bank_free);
    net.output(model.serve_data, p_pre);

    model.precharge = net.addDeterministic("T2_precharge", precharge);
    net.input(model.precharge, p_pre);
    net.output(model.precharge, model.bank_free);

    return model;
}

} // namespace memwall
