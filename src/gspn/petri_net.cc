#include "gspn/petri_net.hh"

#include "common/logging.hh"

namespace memwall {

PlaceId
PetriNet::addPlace(std::string name, std::uint32_t initial)
{
    places_.push_back(Place{std::move(name), initial});
    return static_cast<PlaceId>(places_.size() - 1);
}

TransitionId
PetriNet::addImmediate(std::string name, double weight, int priority)
{
    MW_ASSERT(weight > 0.0, "immediate transition weight must be > 0");
    transitions_.push_back(Transition{std::move(name),
                                      TransitionKind::Immediate, weight,
                                      priority, {}, {}, {}, {}});
    return static_cast<TransitionId>(transitions_.size() - 1);
}

TransitionId
PetriNet::addDeterministic(std::string name, double delay)
{
    MW_ASSERT(delay >= 0.0, "deterministic delay must be >= 0");
    transitions_.push_back(Transition{std::move(name),
                                      TransitionKind::Deterministic,
                                      delay, 0, {}, {}, {}, {}});
    return static_cast<TransitionId>(transitions_.size() - 1);
}

TransitionId
PetriNet::addExponential(std::string name, double rate)
{
    MW_ASSERT(rate > 0.0, "exponential rate must be > 0");
    transitions_.push_back(Transition{std::move(name),
                                      TransitionKind::Exponential, rate,
                                      0, {}, {}, {}, {}});
    return static_cast<TransitionId>(transitions_.size() - 1);
}

void
PetriNet::addArc(TransitionId t, PlaceId place, ArcKind kind,
                 std::uint32_t weight)
{
    MW_ASSERT(t < transitions_.size(), "bad transition id");
    MW_ASSERT(place < places_.size(), "bad place id");
    MW_ASSERT(weight > 0, "arc weight must be positive");
    Transition &trans = transitions_[t];
    switch (kind) {
      case ArcKind::Input:
        trans.inputs.push_back(Arc{place, weight});
        break;
      case ArcKind::Output:
        trans.outputs.push_back(Arc{place, weight});
        break;
      case ArcKind::Inhibitor:
        trans.inhibitors.push_back(Arc{place, weight});
        break;
      case ArcKind::Test:
        trans.tests.push_back(Arc{place, weight});
        break;
    }
}

const std::string &
PetriNet::placeName(PlaceId p) const
{
    MW_ASSERT(p < places_.size(), "bad place id");
    return places_[p].name;
}

const std::string &
PetriNet::transitionName(TransitionId t) const
{
    MW_ASSERT(t < transitions_.size(), "bad transition id");
    return transitions_[t].name;
}

TransitionKind
PetriNet::transitionKind(TransitionId t) const
{
    MW_ASSERT(t < transitions_.size(), "bad transition id");
    return transitions_[t].kind;
}

void
PetriNet::validate() const
{
    for (const auto &t : transitions_) {
        if (t.inputs.empty() && t.tests.empty())
            MW_WARN("transition '", t.name,
                    "' has no input or test arcs; it can fire forever");
    }
}

} // namespace memwall
