/**
 * @file
 * Serial-link interconnect model (Section 4.2).
 *
 * Off-chip communication uses four 2.5 Gbit/s serial links per
 * device (the S-Connect fabric), giving 1.6 GB/s of I/O bandwidth
 * that matches the internal memory bandwidth. The model charges
 * serialisation time (message bits / link rate), a fixed
 * flight/router latency, and queueing when a link is busy.
 */

#ifndef MEMWALL_INTERCONNECT_LINK_HH
#define MEMWALL_INTERCONNECT_LINK_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"

namespace memwall {

/** Timing parameters of one serial link. */
struct LinkConfig
{
    /** Link signalling rate in Gbit/s. */
    double gbit_per_sec = 2.5;
    /** Core clock the returned latencies are expressed in (MHz). */
    double clock_mhz = 200.0;
    /** Fixed per-message flight + router latency in core cycles. */
    Cycles flight_cycles = 10;

    /** @return cycles to serialise @p bytes onto the link. */
    Cycles serialisationCycles(std::uint32_t bytes) const;
};

/**
 * One half-duplex serial link with FIFO queueing.
 */
class SerialLink
{
  public:
    explicit SerialLink(LinkConfig config = {});

    /**
     * Send @p bytes at time @p now.
     *
     * A zero-byte send is legal and models a doorbell/credit pulse:
     * it charges the fixed flight latency only, occupies the link
     * for zero cycles (the next message may start in the same
     * cycle), and still counts as one message. It does queue behind
     * earlier traffic like any other send.
     *
     * @return the arrival time at the far end.
     */
    Tick send(Tick now, std::uint32_t bytes);

    /** Earliest time a new message could start serialising. */
    Tick freeAt() const { return free_at_; }

    std::uint64_t messages() const { return messages_.value(); }
    std::uint64_t bytesSent() const { return bytes_.value(); }
    /** Cycles spent queueing behind earlier messages. */
    std::uint64_t queuedCycles() const { return queued_.value(); }

    const LinkConfig &config() const { return config_; }
    void resetStats();

  private:
    LinkConfig config_;
    Tick free_at_ = 0;
    Counter messages_;
    Counter bytes_;
    Counter queued_;
};

} // namespace memwall

#endif // MEMWALL_INTERCONNECT_LINK_HH
