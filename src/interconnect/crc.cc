#include "interconnect/crc.hh"

namespace memwall {

std::uint16_t
crc16(std::span<const std::uint8_t> bytes)
{
    std::uint16_t crc = 0xffff;
    for (std::uint8_t byte : bytes) {
        crc ^= static_cast<std::uint16_t>(byte) << 8;
        for (int bit = 0; bit < 8; ++bit) {
            if (crc & 0x8000)
                crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
            else
                crc = static_cast<std::uint16_t>(crc << 1);
        }
    }
    return crc;
}

std::vector<std::uint8_t>
encodeFrame(std::span<const std::uint8_t> payload)
{
    std::vector<std::uint8_t> frame(payload.begin(), payload.end());
    const std::uint16_t crc = crc16(payload);
    frame.push_back(static_cast<std::uint8_t>(crc >> 8));
    frame.push_back(static_cast<std::uint8_t>(crc & 0xff));
    return frame;
}

bool
verifyFrame(std::span<const std::uint8_t> frame)
{
    if (frame.size() < 2)
        return false;
    const auto payload = frame.first(frame.size() - 2);
    const std::uint16_t stored = static_cast<std::uint16_t>(
        (frame[frame.size() - 2] << 8) | frame[frame.size() - 1]);
    return crc16(payload) == stored;
}

} // namespace memwall
