#include "interconnect/reliable_link.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "interconnect/crc.hh"

namespace memwall {

ReliableLink::ReliableLink(LinkConfig link, LinkFaultConfig fault)
    : inner_(link), fault_(fault), rng_(fault.seed)
{
    MW_ASSERT(fault_.bit_error_rate >= 0.0 &&
                  fault_.bit_error_rate <= 1.0,
              "bit error rate out of range");
    MW_ASSERT(fault_.drop_rate >= 0.0 && fault_.drop_rate <= 1.0,
              "drop rate out of range");
    MW_ASSERT(fault_.backoff_base >= 1, "backoff base must be >= 1");
}

Cycles
ReliableLink::ackLatency() const
{
    return inner_.config().serialisationCycles(fault_.ack_bytes) +
           inner_.config().flight_cycles;
}

bool
ReliableLink::frameCorrupted(std::uint32_t bytes)
{
    // An error struck the wire: exercise the real detection path.
    // Build the frame the sender would emit (deterministic filler
    // payload keyed by the frame sequence number, CRC appended),
    // flip one uniformly chosen bit, and recheck at the receiver.
    std::vector<std::uint8_t> payload(std::max<std::uint32_t>(bytes,
                                                              1));
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(
            (frame_seq_ * 131 + i * 7) & 0xff);
    std::vector<std::uint8_t> frame = encodeFrame(payload);
    const std::uint64_t bit =
        rng_.uniformInt(frame.size() * 8);
    frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    if (verifyFrame(frame)) {
        // CRC-16 catches every single-bit error, so this cannot
        // happen; counted rather than asserted so a future weaker
        // code would surface as a statistic, not a crash.
        silent_frames_.inc();
        return false;
    }
    return true;
}

LinkSendOutcome
ReliableLink::sendReliable(Tick now, std::uint32_t bytes)
{
    LinkSendOutcome outcome;
    Tick attempt_start = now;
    Cycles backoff = fault_.backoff_base;
    unsigned attempt = 0;
    for (;;) {
        ++attempt;
        ++frame_seq_;
        const Tick arrival = inner_.send(attempt_start, bytes);

        bool dropped = false;
        bool corrupted = false;
        if (forced_ > 0) {
            --forced_;
            corrupted = frameCorrupted(bytes);
        } else if (fault_.enabled()) {
            dropped = rng_.bernoulli(fault_.drop_rate);
            if (!dropped && fault_.bit_error_rate > 0.0) {
                const double bits =
                    static_cast<double>(bytes) * 8.0;
                const double p_hit =
                    1.0 -
                    std::pow(1.0 - fault_.bit_error_rate, bits);
                if (rng_.bernoulli(p_hit))
                    corrupted = frameCorrupted(bytes);
            }
        }

        if (!dropped && !corrupted) {
            outcome.delivered = arrival;
            outcome.attempts = attempt;
            return outcome;
        }

        if (attempt > fault_.max_retries) {
            failures_.inc();
            outcome.delivered = arrival;
            outcome.attempts = attempt;
            outcome.failed = true;
            return outcome;
        }

        Tick retry_at;
        if (corrupted) {
            // Receiver saw a bad CRC and NACKed immediately; the
            // sender learns one reverse-channel latency later.
            crc_detected_.inc();
            retry_at = arrival + ackLatency();
        } else {
            // Frame lost: no ACK ever comes. The sender's timer
            // fires a margin after the ACK's expected arrival.
            timeouts_.inc();
            retry_at = arrival + ackLatency() + fault_.timeout_margin;
        }
        retransmissions_.inc();
        backoff_cycles_.inc(backoff);
        attempt_start = retry_at + backoff;
        backoff = std::min<Cycles>(backoff * 2, fault_.backoff_cap);
    }
}

Tick
ReliableLink::send(Tick now, std::uint32_t bytes)
{
    return sendReliable(now, bytes).delivered;
}

void
ReliableLink::resetStats()
{
    inner_.resetStats();
    retransmissions_.reset();
    crc_detected_.reset();
    timeouts_.reset();
    failures_.reset();
    backoff_cycles_.reset();
    silent_frames_.reset();
}

} // namespace memwall
