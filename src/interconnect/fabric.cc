#include "interconnect/fabric.hh"

#include "common/logging.hh"

namespace memwall {

std::uint32_t
messageBytes(MsgType type)
{
    // 8-byte header (routing, address, type) plus a 32-byte payload
    // for data-carrying messages.
    switch (type) {
      case MsgType::ReadReply:
      case MsgType::WritebackData:
        return 8 + 32;
      case MsgType::ReadRequest:
      case MsgType::Invalidate:
      case MsgType::InvalidateAck:
      case MsgType::UpgradeRequest:
      case MsgType::UpgradeReply:
        return 8;
    }
    return 8;
}

Fabric::Fabric(unsigned nodes, FabricConfig config)
    : nodes_(nodes), config_(config)
{
    MW_ASSERT(nodes_ >= 1, "fabric needs at least one node");
    MW_ASSERT(config_.links_per_node >= 1,
              "need at least one link per node");
    links_.resize(nodes_);
    for (unsigned node = 0; node < nodes_; ++node) {
        for (unsigned i = 0; i < config_.links_per_node; ++i) {
            // Each link gets an independent error stream so one
            // link's draws never perturb another's.
            LinkFaultConfig fault = config_.fault;
            fault.seed = config_.fault.seed +
                         0x9e3779b97f4a7c15ULL * (node + 1) +
                         0xbf58476d1ce4e5b9ULL * (i + 1);
            links_[node].emplace_back(config_.link, fault);
        }
    }
}

Tick
Fabric::send(Tick now, unsigned src, unsigned dst, MsgType type)
{
    MW_ASSERT(src < nodes_ && dst < nodes_, "bad fabric endpoint");
    if (src == dst)
        return now;  // local: never touches the fabric
    // Pick the sender's least-loaded outbound link.
    ReliableLink *best = &links_[src][0];
    for (auto &link : links_[src])
        if (link.freeAt() < best->freeAt())
            best = &link;
    const LinkSendOutcome out =
        best->sendReliable(now, messageBytes(type));
    if (hook_)
        hook_(out.delivered, src, dst, type, out);
    return out.delivered;
}

Cycles
Fabric::unloadedLatency(MsgType type) const
{
    return config_.link.serialisationCycles(messageBytes(type)) +
           config_.link.flight_cycles;
}

std::uint64_t
Fabric::totalMessages() const
{
    std::uint64_t n = 0;
    for (const auto &node_links : links_)
        for (const auto &link : node_links)
            n += link.messages();
    return n;
}

std::uint64_t
Fabric::totalBytes() const
{
    std::uint64_t n = 0;
    for (const auto &node_links : links_)
        for (const auto &link : node_links)
            n += link.bytesSent();
    return n;
}

std::uint64_t
Fabric::totalRetransmissions() const
{
    std::uint64_t n = 0;
    for (const auto &node_links : links_)
        for (const auto &link : node_links)
            n += link.retransmissions();
    return n;
}

std::uint64_t
Fabric::totalCrcErrors() const
{
    std::uint64_t n = 0;
    for (const auto &node_links : links_)
        for (const auto &link : node_links)
            n += link.crcErrorsDetected();
    return n;
}

std::uint64_t
Fabric::totalTimeouts() const
{
    std::uint64_t n = 0;
    for (const auto &node_links : links_)
        for (const auto &link : node_links)
            n += link.timeouts();
    return n;
}

std::uint64_t
Fabric::totalLinkFailures() const
{
    std::uint64_t n = 0;
    for (const auto &node_links : links_)
        for (const auto &link : node_links)
            n += link.failures();
    return n;
}

void
Fabric::resetStats()
{
    for (auto &node_links : links_)
        for (auto &link : node_links)
            link.resetStats();
}

} // namespace memwall
