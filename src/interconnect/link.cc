#include "interconnect/link.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace memwall {

Cycles
LinkConfig::serialisationCycles(std::uint32_t bytes) const
{
    // bits / (Gbit/s) = ns; ns * MHz / 1000 = cycles.
    const double ns =
        static_cast<double>(bytes) * 8.0 / gbit_per_sec;
    const double cycles = ns * clock_mhz / 1000.0;
    return static_cast<Cycles>(std::ceil(cycles));
}

SerialLink::SerialLink(LinkConfig config) : config_(config)
{
    if (config_.gbit_per_sec <= 0.0)
        MW_FATAL("link rate must be positive");
}

Tick
SerialLink::send(Tick now, std::uint32_t bytes)
{
    const Tick start = std::max(now, free_at_);
    queued_.inc(start - now);
    const Cycles ser = config_.serialisationCycles(bytes);
    free_at_ = start + ser;
    messages_.inc();
    bytes_.inc(bytes);
    return free_at_ + config_.flight_cycles;
}

void
SerialLink::resetStats()
{
    messages_.reset();
    bytes_.reset();
    queued_.reset();
}

} // namespace memwall
