/**
 * @file
 * Reliable serial link: CRC detection + ACK/NACK retransmission.
 *
 * The plain SerialLink charges serialisation, flight and queueing but
 * assumes a perfect wire. At 2.5 Gbit/s over board traces that is a
 * modelling fiction; this layer adds the link-level protocol a real
 * S-Connect port needs:
 *
 *  - every frame carries a CRC-16 (the 8-byte message header budget
 *    includes the CRC field, so clean-path timing is unchanged);
 *  - the receiver ACKs intact frames and NACKs CRC mismatches on the
 *    reverse channel;
 *  - a lost frame (or lost ACK) is caught by a sender-side timeout;
 *  - retransmissions pay real serialisation + queueing cycles on the
 *    wire plus an exponential backoff, and give up after a bounded
 *    number of retries (counted as a link failure for the machine-
 *    check path rather than hanging).
 *
 * With the fault model disabled (all rates zero) the link is
 * cycle-for-cycle identical to a plain SerialLink and draws nothing
 * from its RNG, so fault-free experiments reproduce bit-for-bit.
 */

#ifndef MEMWALL_INTERCONNECT_RELIABLE_LINK_HH
#define MEMWALL_INTERCONNECT_RELIABLE_LINK_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/stats.hh"
#include "interconnect/link.hh"

namespace memwall {

/** Error process and retry policy of one reliable link. */
struct LinkFaultConfig
{
    /** Probability an individual transmitted bit flips. */
    double bit_error_rate = 0.0;
    /** Probability a whole frame (or its ACK) is lost. */
    double drop_rate = 0.0;
    /** Seed of the link's private error stream. */
    std::uint64_t seed = 42;
    /** Retries before the sender declares the link failed. */
    unsigned max_retries = 8;
    /** Backoff before the first retry (doubles per retry). */
    Cycles backoff_base = 4;
    /** Upper bound on a single backoff interval. */
    Cycles backoff_cap = 512;
    /** ACK/NACK frame size on the reverse channel. */
    std::uint32_t ack_bytes = 4;
    /** Extra slack on the ACK timeout beyond the expected latency. */
    Cycles timeout_margin = 8;

    /** @return true iff any error process is active. */
    bool enabled() const
    {
        return bit_error_rate > 0.0 || drop_rate > 0.0;
    }
};

/** What happened to one reliable send. */
struct LinkSendOutcome
{
    /** Arrival time of the successfully delivered frame (or of the
     * final attempt when the link gave up). */
    Tick delivered = 0;
    /** Transmission attempts, including the first. */
    unsigned attempts = 1;
    /** True when max_retries was exhausted (counted as a failure). */
    bool failed = false;
};

/**
 * SerialLink wrapped with the CRC + ACK/NACK + timeout + backoff
 * protocol above.
 */
class ReliableLink
{
  public:
    explicit ReliableLink(LinkConfig link = {},
                          LinkFaultConfig fault = {});

    /** Reliable send; returns the delivery time only. */
    Tick send(Tick now, std::uint32_t bytes);

    /** Reliable send with the full outcome. */
    LinkSendOutcome sendReliable(Tick now, std::uint32_t bytes);

    /**
     * Test hook: corrupt the next @p n transmission attempts
     * regardless of the configured rates. Each forced error consumes
     * one attempt (a message retried once consumes one forced error
     * on its first attempt).
     */
    void forceErrorAttempts(unsigned n) { forced_ += n; }

    /** One-way ACK/NACK latency on the reverse channel. */
    Cycles ackLatency() const;

    /** Earliest time a new frame could start serialising. */
    Tick freeAt() const { return inner_.freeAt(); }

    // Wire-level stats (delegated to the underlying link).
    std::uint64_t messages() const { return inner_.messages(); }
    std::uint64_t bytesSent() const { return inner_.bytesSent(); }
    std::uint64_t queuedCycles() const
    {
        return inner_.queuedCycles();
    }

    // Protocol-level stats.
    std::uint64_t retransmissions() const
    {
        return retransmissions_.value();
    }
    std::uint64_t crcErrorsDetected() const
    {
        return crc_detected_.value();
    }
    std::uint64_t timeouts() const { return timeouts_.value(); }
    std::uint64_t failures() const { return failures_.value(); }
    std::uint64_t backoffCycles() const
    {
        return backoff_cycles_.value();
    }
    /** Corrupted frames the CRC failed to flag (expected: none). */
    std::uint64_t silentFrameErrors() const
    {
        return silent_frames_.value();
    }

    const LinkConfig &config() const { return inner_.config(); }
    const LinkFaultConfig &faultConfig() const { return fault_; }

    void resetStats();

  private:
    /**
     * Decide whether this attempt's frame reaches the receiver
     * corrupted: build the real frame (deterministic filler payload
     * + CRC-16), flip one random bit, and let the receiver's CRC
     * check make the call.
     */
    bool frameCorrupted(std::uint32_t bytes);

    SerialLink inner_;
    LinkFaultConfig fault_;
    Rng rng_;
    unsigned forced_ = 0;
    std::uint64_t frame_seq_ = 0;
    Counter retransmissions_;
    Counter crc_detected_;
    Counter timeouts_;
    Counter failures_;
    Counter backoff_cycles_;
    Counter silent_frames_;
};

} // namespace memwall

#endif // MEMWALL_INTERCONNECT_RELIABLE_LINK_HH
