/**
 * @file
 * CRC-16 frame protection for the serial links.
 *
 * Every serial-link frame carries a CRC so that bit errors on the
 * 2.5 Gbit/s wires are detected at the receiver and answered with a
 * NACK instead of silently corrupting a coherence transaction. The
 * code is CRC-16/CCITT-FALSE (polynomial 0x1021, init 0xFFFF), which
 * detects all single- and double-bit errors and any burst up to 16
 * bits — far beyond the error model of a short point-to-point link.
 */

#ifndef MEMWALL_INTERCONNECT_CRC_HH
#define MEMWALL_INTERCONNECT_CRC_HH

#include <cstdint>
#include <span>
#include <vector>

namespace memwall {

/** CRC-16/CCITT-FALSE over @p bytes. crc16("123456789") == 0x29B1. */
std::uint16_t crc16(std::span<const std::uint8_t> bytes);

/**
 * Frame @p payload for the wire: payload followed by its big-endian
 * CRC-16.
 */
std::vector<std::uint8_t> encodeFrame(
    std::span<const std::uint8_t> payload);

/**
 * Receiver-side check: recompute the CRC over the payload portion of
 * @p frame and compare with the trailing two bytes.
 * @return true iff the frame is intact. Frames shorter than the CRC
 * itself are never valid.
 */
bool verifyFrame(std::span<const std::uint8_t> frame);

} // namespace memwall

#endif // MEMWALL_INTERCONNECT_CRC_HH
