/**
 * @file
 * Point-to-point fabric of serial links (Figure 4).
 *
 * Every processing element drives four outbound serial links into a
 * delay-insensitive point-to-point fabric; I/O devices sit on the
 * same fabric and memory everywhere is one pool. The model routes a
 * message over the sender's least-loaded link and charges
 * serialisation + flight + queueing. Remote memory latency comes out
 * near the paper's "below 200 ns" claim for small messages.
 */

#ifndef MEMWALL_INTERCONNECT_FABRIC_HH
#define MEMWALL_INTERCONNECT_FABRIC_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "interconnect/reliable_link.hh"

namespace memwall {

/** Message classes carried by the coherence fabric. */
enum class MsgType : std::uint8_t {
    ReadRequest,     ///< fetch a 32-byte block
    ReadReply,       ///< block data
    Invalidate,      ///< invalidate a sharer
    InvalidateAck,   ///< sharer acknowledgement
    WritebackData,   ///< dirty block returning home
    UpgradeRequest,  ///< S -> M permission request
    UpgradeReply,
};

/** Wire size of one message (header + optional 32-byte payload). */
std::uint32_t messageBytes(MsgType type);

/** Fabric configuration. */
struct FabricConfig
{
    LinkConfig link = {};
    /** Outbound links per node (the device has four). */
    unsigned links_per_node = 4;
    /**
     * Link error process shared by every link (each link derives its
     * own independent RNG stream from fault.seed). Disabled by
     * default, in which case the fabric behaves cycle-for-cycle like
     * one built from plain SerialLinks.
     */
    LinkFaultConfig fault = {};
};

/**
 * N-node fabric. Stateless routing: a message occupies one of the
 * sender's outbound links; the receive path is assumed non-blocking
 * (the protocol engines drain at link rate).
 */
class Fabric
{
  public:
    /**
     * Observation hook invoked after every fabric send with the
     * delivery time, endpoints, message class and the link-level
     * outcome (attempts, failure). Used by the verification layer's
     * flight recorder; unset (the default) costs one branch per send.
     */
    using SendHook = std::function<void(Tick deliver, unsigned src,
                                        unsigned dst, MsgType type,
                                        const LinkSendOutcome &out)>;

    Fabric(unsigned nodes, FabricConfig config = {});

    /**
     * Send a message of @p type from @p src to @p dst at @p now.
     * @return the delivery time.
     */
    Tick send(Tick now, unsigned src, unsigned dst, MsgType type);

    /** Install (or clear, with an empty function) the send hook. */
    void setSendHook(SendHook hook) { hook_ = std::move(hook); }

    /** One-way latency of an unloaded @p type message. */
    Cycles unloadedLatency(MsgType type) const;

    unsigned nodes() const { return nodes_; }
    std::uint64_t totalMessages() const;
    std::uint64_t totalBytes() const;
    /** Frames resent after a CRC NACK or an ACK timeout. */
    std::uint64_t totalRetransmissions() const;
    /** Corrupted frames caught by the receiver's CRC check. */
    std::uint64_t totalCrcErrors() const;
    /** Lost frames recovered by the sender-side timeout. */
    std::uint64_t totalTimeouts() const;
    /** Sends that exhausted max_retries (machine-check material). */
    std::uint64_t totalLinkFailures() const;
    void resetStats();

  private:
    unsigned nodes_;
    FabricConfig config_;
    SendHook hook_;
    /** links_[node][i] = i-th outbound link of node. */
    std::vector<std::vector<ReliableLink>> links_;
};

} // namespace memwall

#endif // MEMWALL_INTERCONNECT_FABRIC_HH
