/**
 * @file
 * Umbrella header: the public API of the memwall library.
 *
 * memwall reproduces "Missing the Memory Wall: The Case for
 * Processor/Memory Integration" (Saulsbury, Pong & Nowatzyk,
 * ISCA 1996). The central abstraction is PimDevice — a simple CPU
 * integrated onto a multi-banked DRAM whose column buffers act as
 * caches — plus the evaluation machinery the paper used around it:
 * trace/execution-driven cache simulation, GSPN CPI models, and an
 * execution-driven CC-NUMA multiprocessor simulator.
 *
 * Quick start:
 * @code
 *   #include "core/memwall.hh"
 *   using namespace memwall;
 *
 *   PimDevice device;                       // the paper's design point
 *   SyntheticWorkload gcc(findWorkload("126.gcc").proxy);
 *   double cpi = device.runWorkload(gcc, 10'000'000);
 * @endcode
 */

#ifndef MEMWALL_CORE_MEMWALL_HH
#define MEMWALL_CORE_MEMWALL_HH

// Foundations
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"
#include "sim/event_queue.hh"

// Memory substrate
#include "mem/backing_store.hh"
#include "mem/cache.hh"
#include "mem/column_cache.hh"
#include "mem/dram.hh"
#include "mem/ecc.hh"
#include "mem/hierarchy.hh"
#include "mem/victim_cache.hh"

// Reference streams and workloads
#include "trace/ref.hh"
#include "trace/relayout.hh"
#include "trace/stride_walker.hh"
#include "trace/synthetic.hh"
#include "trace/trace_file.hh"
#include "workloads/missrate.hh"
#include "workloads/spec_eval.hh"
#include "workloads/spec_suite.hh"

// CPU and CPI models
#include "cpu/cpi_model.hh"
#include "cpu/pipeline.hh"
#include "gspn/models.hh"
#include "gspn/petri_net.hh"
#include "gspn/simulator.hh"

// The MW32 execution-driven front end
#include "isa/assembler.hh"
#include "isa/instruction.hh"
#include "isa/interpreter.hh"
#include "isa/opcodes.hh"

// I/O agents (Section 8)
#include "io/framebuffer.hh"
#include "io/refresh.hh"

// Interconnect, coherence and the multiprocessor runtime
#include "coherence/directory.hh"
#include "coherence/inc.hh"
#include "coherence/numa.hh"
#include "coherence/protocol.hh"
#include "interconnect/fabric.hh"
#include "interconnect/link.hh"
#include "mp/scheduler.hh"
#include "mp/shared.hh"
#include "mp/sync.hh"
#include "workloads/splash/splash.hh"

// The integrated device
#include "core/pim_device.hh"

// Parallel experiment harness
#include "harness/parallel_sweep.hh"
#include "harness/thread_pool.hh"

#endif // MEMWALL_CORE_MEMWALL_HH
