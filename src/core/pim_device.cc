#include "core/pim_device.hh"

#include "common/logging.hh"

namespace memwall {

void
PimDeviceConfig::validate() const
{
    dram.validate();
    if (caches.banks != dram.banks)
        MW_FATAL("cache sets (", caches.banks,
                 ") must equal DRAM banks (", dram.banks, ")");
    if (caches.column_bytes != dram.column_bytes)
        MW_FATAL("cache line size must equal the DRAM column size");
}

PimDevice::PimDevice(PimDeviceConfig config)
    : config_(config),
      dram_(config.dram),
      icache_(config.caches),
      dcache_(config.caches)
{
    config_.validate();
    if (config_.framebuffer_enabled)
        framebuffer_ =
            std::make_unique<FramebufferAgent>(config_.framebuffer);
    if (config_.refresh_enabled)
        refresh_ = std::make_unique<RefreshAgent>(config_.refresh,
                                                  config_.dram);
}

void
PimDevice::drainAgents(Tick now)
{
    // Background traffic due before `now` claims its bank slots
    // first; CPU requests then queue behind it naturally.
    if (refresh_)
        refresh_->drainUpTo(dram_, now);
    if (framebuffer_)
        framebuffer_->drainUpTo(dram_, now);
}

Cycles
PimDevice::fetchLatency(Addr pc, Tick now)
{
    drainAgents(now);
    if (icache_.fetch(pc))
        return 1;
    // Column reload: wait for the bank (access + any queueing); the
    // full 512-byte line lands in one cycle after the array access,
    // so the only cost is the array timing itself.
    const DramResult res = dram_.access(now, pc);
    return static_cast<Cycles>(res.done - now) + 1;
}

Cycles
PimDevice::dataLatency(Addr addr, bool store, Tick now)
{
    drainAgents(now);
    const DAccessOutcome outcome = dcache_.access(addr, store);
    switch (outcome) {
      case DAccessOutcome::HitColumn:
      case DAccessOutcome::HitVictim:
        // Both structures are searched in the same cycle
        // (Section 5.4).
        return 1;
      case DAccessOutcome::Miss: {
        // The victim-cache copy of the displaced sub-block happens
        // inside the array-access window: no extra cost. Dirty
        // column writebacks retire through a spare column buffer
        // and do not block the fill (Section 4.1: "speculative
        // writebacks, removing contention between cache misses and
        // dirty lines") — unless speculation is disabled, in which
        // case the writeback's array access goes first.
        Tick start = now;
        if (!config_.speculative_writeback &&
            dcache_.lastEvictionDirty()) {
            const DramResult wb = dram_.access(now, addr);
            start = wb.done;
        }
        const DramResult res = dram_.access(start, addr);
        return static_cast<Cycles>(res.done - now) + 1;
      }
    }
    return 1;
}

double
PimDevice::runWorkload(RefSource &source, std::uint64_t refs)
{
    PipelineSim pipeline(*this, config_.pipeline);
    source.generate(refs, pipeline.sink());
    pipeline.drain();
    return pipeline.cpi();
}

PimDeviceStats
PimDevice::stats() const
{
    PimDeviceStats s;
    s.icache = icache_.stats();
    s.dcache = dcache_.stats();
    s.victim = dcache_.victimStats();
    s.dram_accesses = dram_.totalAccesses();
    s.dram_queued_cycles = dram_.totalQueuedCycles();
    return s;
}

void
PimDevice::reset()
{
    icache_.flush();
    icache_.resetStats();
    dcache_.flush();
    dcache_.resetStats();
    dram_.resetStats();
}

} // namespace memwall
