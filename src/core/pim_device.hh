/**
 * @file
 * The paper's contribution as one object: the integrated
 * processor/memory device of Section 4 (Figure 3).
 *
 * A PimDevice bundles
 *  - a 16-bank 256 Mbit DRAM array (30 ns access),
 *  - the column-buffer instruction cache (16 x 512 B, direct
 *    mapped) and data cache (2-way, 32 x 512 B) with the 16 x 32 B
 *    victim cache,
 *  - a single-scalar 5-stage 200 MHz pipeline model,
 * and implements the MemorySystem timing interface so the pipeline
 * (or any other consumer) can charge accesses to it.
 *
 * Misses fill an entire 512-byte column in a single array access —
 * the "zero fill cost" property integration buys (Section 5.2); the
 * victim-cache copy happens during the array access and is free.
 */

#ifndef MEMWALL_CORE_PIM_DEVICE_HH
#define MEMWALL_CORE_PIM_DEVICE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "cpu/pipeline.hh"
#include "mem/column_cache.hh"
#include "io/framebuffer.hh"
#include "io/refresh.hh"
#include "mem/dram.hh"
#include "trace/ref.hh"

namespace memwall {

/** Full configuration of one integrated device. */
struct PimDeviceConfig
{
    /** Core clock (200 MHz). */
    ClockParams clock = {};
    /** DRAM array geometry/timing. */
    DramConfig dram = {};
    /** Column-buffer cache organisation (+ victim cache). */
    ColumnCacheConfig caches = {};
    /** Pipeline behaviour. */
    PipelineConfig pipeline = {};
    /** Scan a frame buffer out of main memory (Section 8). */
    bool framebuffer_enabled = false;
    FramebufferConfig framebuffer = {};
    /** Model distributed DRAM refresh stealing bank time. */
    bool refresh_enabled = false;
    RefreshConfig refresh = {};
    /**
     * Speculative writebacks (Section 4.1): the spare column buffer
     * retires dirty columns to the array off the critical path, so
     * a miss that displaces a dirty column costs nothing extra.
     * When false, the writeback's array access serialises with the
     * fill (the conventional behaviour the paper contrasts with).
     */
    bool speculative_writeback = true;

    /** Keep cache geometry consistent with the DRAM banking. */
    void validate() const;
};

/** Counters exposed by a device after a run. */
struct PimDeviceStats
{
    AccessStats icache;
    AccessStats dcache;
    AccessStats victim;
    std::uint64_t dram_accesses = 0;
    std::uint64_t dram_queued_cycles = 0;
};

/**
 * The integrated processor/memory building block.
 *
 * Use runWorkload() for a self-contained execution, or treat the
 * device as a MemorySystem and drive an external PipelineSim.
 */
class PimDevice : public MemorySystem
{
  public:
    explicit PimDevice(PimDeviceConfig config = {});

    // MemorySystem interface -------------------------------------------
    Cycles fetchLatency(Addr pc, Tick now) override;
    Cycles dataLatency(Addr addr, bool store, Tick now) override;

    /**
     * Run @p refs references of @p source through a fresh pipeline.
     * @return the pipeline CPI.
     */
    double runWorkload(RefSource &source, std::uint64_t refs);

    /** Aggregated statistics snapshot. */
    PimDeviceStats stats() const;

    /** Reset caches and statistics. */
    void reset();

    const PimDeviceConfig &config() const { return config_; }
    Dram &dram() { return dram_; }
    ColumnInstrCache &icache() { return icache_; }
    ColumnDataCache &dcache() { return dcache_; }
    /** Scan-out agent (null unless framebuffer_enabled). */
    const FramebufferAgent *framebuffer() const
    {
        return framebuffer_.get();
    }
    /** Refresh agent (null unless refresh_enabled). */
    const RefreshAgent *refreshAgent() const
    {
        return refresh_.get();
    }

  private:
    /** Let background agents issue traffic due before @p now. */
    void drainAgents(Tick now);

    PimDeviceConfig config_;
    Dram dram_;
    ColumnInstrCache icache_;
    ColumnDataCache dcache_;
    std::unique_ptr<FramebufferAgent> framebuffer_;
    std::unique_ptr<RefreshAgent> refresh_;
};

} // namespace memwall

#endif // MEMWALL_CORE_PIM_DEVICE_HH
