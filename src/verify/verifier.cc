#include "verify/verifier.hh"

#include <iostream>
#include <sstream>

#include "common/logging.hh"

namespace memwall {

CoherenceVerifier::CoherenceVerifier(NumaMachine &machine,
                                     VerifyConfig config)
    : machine_(machine), config_(config),
      recorder_(machine.config().nodes, config.recorder_events),
      shadow_(machine.config().nodes, config.check_data),
      watchdog_(config.watchdog, &recorder_),
      report_stream_(&std::cerr)
{
    MW_ASSERT(machine_.observer() == nullptr,
              "machine already has an observer attached");
    machine_.attachObserver(this);
}

CoherenceVerifier::~CoherenceVerifier()
{
    if (machine_.observer() == this)
        machine_.attachObserver(nullptr);
}

void
CoherenceVerifier::setReportStream(std::ostream &os)
{
    report_stream_ = &os;
    watchdog_.setDumpStream(os);
}

void
CoherenceVerifier::copyInvalidated(unsigned node, Addr block,
                                   Tick tick)
{
    shadow_.onInvalidate(node, block);
    recorder_.record(node, FlightKind::Invalidate, tick, block);
}

void
CoherenceVerifier::protocolNack(unsigned cpu, Addr block,
                                unsigned tries, Tick tick)
{
    recorder_.record(cpu, FlightKind::Nack, tick, block, tries);
}

void
CoherenceVerifier::protocolRetry(unsigned cpu, Addr block,
                                 unsigned tries, Cycles backoff,
                                 Tick tick)
{
    recorder_.record(cpu, FlightKind::Retry, tick, block, tries,
                     backoff);
    watchdog_.onRetry(cpu, block, tries);
}

void
CoherenceVerifier::protocolMachineCheck(unsigned cpu, Addr block,
                                        Tick tick)
{
    recorder_.record(cpu, FlightKind::MachineCheck, tick, block);
    if (dumps_emitted_ < config_.max_dumps) {
        ++dumps_emitted_;
        std::ostringstream why;
        why << "machine check: node " << cpu
            << " exhausted its retry budget on block 0x" << std::hex
            << block;
        recorder_.dump(*report_stream_, why.str());
    }
}

void
CoherenceVerifier::linkMessage(Tick deliver, unsigned src,
                               unsigned dst, unsigned attempts,
                               bool failed)
{
    if (attempts > 1)
        recorder_.record(src, FlightKind::LinkRetransmit, deliver,
                         dst, attempts);
    if (failed)
        recorder_.record(src, FlightKind::LinkFailure, deliver, dst,
                         attempts);
}

void
CoherenceVerifier::accessEnd(unsigned cpu, Addr block, bool store,
                             ServiceLevel service, Cycles latency,
                             Tick tick, std::uint16_t dir_before,
                             const DirEntry &entry)
{
    recorder_.record(cpu, FlightKind::AccessEnd, tick, block,
                     static_cast<std::uint64_t>(service), latency);
    const std::uint16_t dir_after = entry.encode();
    if (dir_before != dir_after)
        recorder_.record(cpu, FlightKind::DirTransition, tick, block,
                         dir_before, dir_after);

    for (const ShadowViolation &v :
         shadow_.onAccessEnd(cpu, block, store, service, entry))
        report(v, tick);

    watchdog_.onComplete(cpu, block, latency);
}

void
CoherenceVerifier::report(const ShadowViolation &violation,
                          Tick tick)
{
    ++violations_;
    recorder_.record(violation.node, FlightKind::Violation, tick,
                     violation.block);
    if (first_violations_.size() < config_.max_dumps)
        first_violations_.push_back(violation);
    if (dumps_emitted_ < config_.max_dumps) {
        ++dumps_emitted_;
        std::ostringstream why;
        why << "coherence violation on block 0x" << std::hex
            << violation.block << std::dec << " (node "
            << violation.node << "): " << violation.what;
        recorder_.dump(*report_stream_, why.str());
    }
    if (config_.policy == ViolationPolicy::Fatal)
        MW_FATAL("coherence violation on block 0x", violation.block,
                 " (node ", violation.node, "): ", violation.what);
}

} // namespace memwall
