#include "verify/watchdog.hh"

#include <iostream>
#include <sstream>

#include "common/logging.hh"
#include "sim/event_queue.hh"

namespace memwall {

TransactionWatchdog::TransactionWatchdog(WatchdogConfig config,
                                         FlightRecorder *recorder)
    : config_(config), recorder_(recorder),
      dump_stream_(&std::cerr)
{
}

void
TransactionWatchdog::escalate(Stage &stage, Stage target,
                              unsigned node, Addr block, Tick tick,
                              const std::string &why)
{
    // Fire every stage between the current one and the target, each
    // at most once per transaction.
    if (target >= Warned && stage < Warned) {
        stage = Warned;
        ++warnings_;
        // Warnings follow the dump stream (stderr by default) so a
        // harness that redirects diagnostics per sweep point keeps
        // its stdout/stderr deterministic under --jobs N.
        (*dump_stream_) << "warn: watchdog: " << why << "\n";
        if (recorder_)
            recorder_->record(node, FlightKind::WatchdogWarn, tick,
                              block, Warned);
    }
    if (target >= Dumped && stage < Dumped) {
        stage = Dumped;
        ++dumps_;
        if (recorder_) {
            recorder_->record(node, FlightKind::WatchdogWarn, tick,
                              block, Dumped);
            recorder_->dump(*dump_stream_, "watchdog: " + why);
        }
    }
    if (target >= Fataled && stage < Fataled) {
        stage = Fataled;
        ++fatals_;
        if (fatal_handler_)
            fatal_handler_(why);
        else
            MW_FATAL("watchdog: ", why);
    }
}

void
TransactionWatchdog::onRetry(unsigned cpu, Addr block,
                             unsigned tries)
{
    auto &[cur_block, stage] = sync_stage_[cpu];
    if (cur_block != block) {
        cur_block = block;
        stage = None;
    }
    Stage target = None;
    if (tries >= config_.fatal_retries)
        target = Fataled;
    else if (tries >= config_.dump_retries)
        target = Dumped;
    else if (tries >= config_.warn_retries)
        target = Warned;
    if (target == None)
        return;
    std::ostringstream os;
    os << "transaction by node " << cpu << " on block 0x"
       << std::hex << block << std::dec << " retried " << tries
       << " times (possible livelock)";
    escalate(stage, target, cpu, block, 0, os.str());
}

void
TransactionWatchdog::onComplete(unsigned cpu, Addr block,
                                Cycles latency)
{
    // A completed transaction resets the per-cpu livelock stage.
    auto it = sync_stage_.find(cpu);
    if (it != sync_stage_.end())
        sync_stage_.erase(it);
    Stage target = None;
    if (latency >= config_.fatal_latency)
        target = Fataled;
    else if (latency >= config_.warn_latency)
        target = Warned;
    if (target == None)
        return;
    Stage stage = None;
    std::ostringstream os;
    os << "access by node " << cpu << " on block 0x" << std::hex
       << block << std::dec << " took " << latency << " cycles";
    escalate(stage, target, cpu, block, 0, os.str());
}

std::uint64_t
TransactionWatchdog::beginTransaction(unsigned node, Addr block,
                                      Tick now)
{
    const std::uint64_t id = next_txn_++;
    open_.emplace(id, OpenTxn{node, block, now, None});
    if (recorder_)
        recorder_->record(node, FlightKind::TxnBegin, now, block,
                          id);
    return id;
}

void
TransactionWatchdog::endTransaction(std::uint64_t id, Tick now)
{
    auto it = open_.find(id);
    MW_ASSERT(it != open_.end(), "ending unknown transaction ", id);
    if (recorder_)
        recorder_->record(it->second.node, FlightKind::TxnEnd, now,
                          it->second.block, id);
    open_.erase(it);
}

void
TransactionWatchdog::scan(Tick now)
{
    for (auto &[id, txn] : open_) {
        const Tick age = now > txn.started ? now - txn.started : 0;
        Stage target = None;
        if (age >= config_.stall_fatal)
            target = Fataled;
        else if (age >= config_.stall_dump)
            target = Dumped;
        else if (age >= config_.stall_warn)
            target = Warned;
        if (target == None || txn.stage >= target)
            continue;
        std::ostringstream os;
        os << "transaction " << id << " by node " << txn.node
           << " on block 0x" << std::hex << txn.block << std::dec
           << " open for " << age << " cycles (started at "
           << txn.started << ", now " << now << ") -- stalled?";
        escalate(txn.stage, target, txn.node, txn.block, now,
                 os.str());
    }
}

void
TransactionWatchdog::armOn(EventQueue &queue)
{
    queue.schedulePeriodic(config_.scan_interval, [this, &queue] {
        scan(queue.now());
        return true;
    });
}

} // namespace memwall
