/**
 * @file
 * Per-transaction watchdogs: turn silent protocol hangs and
 * livelocks into staged, diagnosable escalations.
 *
 * Two failure shapes are covered:
 *
 *  - **Livelock** — a transaction keeps getting NACKed and retried.
 *    The watchdog counts retries per transaction and escalates when
 *    thresholds are crossed. Completed accesses whose total latency
 *    is pathological are reported the same way.
 *
 *  - **Stall** — a transaction opens and never completes (a lost
 *    reply, a wedged engine). Open transactions are registered with
 *    beginTransaction()/endTransaction(); a periodic scan event on
 *    the machine's EventQueue (armOn()) measures their age against
 *    sim-time thresholds.
 *
 * Escalation is staged per transaction: warn (a line on the dump
 * stream + recorder entry) -> dump (flight-recorder post-mortem) ->
 * fatal (handler;
 * default MW_FATAL). Each stage fires at most once per transaction,
 * so a wedged run produces one readable report, not a log flood.
 */

#ifndef MEMWALL_VERIFY_WATCHDOG_HH
#define MEMWALL_VERIFY_WATCHDOG_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <unordered_map>

#include "common/types.hh"
#include "verify/flight_recorder.hh"

namespace memwall {

class EventQueue;

/** Escalation thresholds. */
struct WatchdogConfig
{
    /** Retries of one transaction before a warning. */
    unsigned warn_retries = 4;
    /** Retries before a flight-recorder dump. */
    unsigned dump_retries = 6;
    /** Retries before the fatal handler runs. */
    unsigned fatal_retries = 32;
    /** Completed-access latency (cycles) that triggers a warning. */
    Cycles warn_latency = 100'000;
    /** Completed-access latency that triggers the fatal handler. */
    Cycles fatal_latency = 1'000'000;
    /** Period of the open-transaction scan event (armOn). */
    Tick scan_interval = 10'000;
    /** Open-transaction age at which to warn. */
    Tick stall_warn = 50'000;
    /** Age at which to dump the flight recorder. */
    Tick stall_dump = 100'000;
    /** Age at which to run the fatal handler. */
    Tick stall_fatal = 500'000;
};

/** Watchdog over protocol transactions. */
class TransactionWatchdog
{
  public:
    using FatalHandler = std::function<void(const std::string &)>;

    /**
     * @param config    thresholds
     * @param recorder  optional flight recorder dumped at the dump
     *                  stage (and fed warn events)
     */
    explicit TransactionWatchdog(WatchdogConfig config = {},
                                 FlightRecorder *recorder = nullptr);

    /** Where dump-stage post-mortems go (default: std::cerr). */
    void setDumpStream(std::ostream &os) { dump_stream_ = &os; }

    /** Replace the fatal action (default: MW_FATAL). */
    void setFatalHandler(FatalHandler handler)
    {
        fatal_handler_ = std::move(handler);
    }

    // ---- Livelock interest (synchronous transactions) -------------

    /** Report the @p tries-th retry of @p cpu's transaction. */
    void onRetry(unsigned cpu, Addr block, unsigned tries);

    /** Report a completed access and its total latency. */
    void onComplete(unsigned cpu, Addr block, Cycles latency);

    // ---- Stall interest (open transactions) -----------------------

    /**
     * Register an in-flight transaction; @return its id for
     * endTransaction(). Never-ended transactions are the hang case
     * the scan detects.
     */
    std::uint64_t beginTransaction(unsigned node, Addr block,
                                   Tick now);

    /** Complete a registered transaction. */
    void endTransaction(std::uint64_t id, Tick now);

    /** Open transactions currently tracked. */
    std::size_t openTransactions() const { return open_.size(); }

    /**
     * Scan open transactions at time @p now, escalating any whose
     * age crossed a threshold. Called by the armed event; callable
     * directly from tests.
     */
    void scan(Tick now);

    /**
     * Arm a periodic scan on @p queue (every scan_interval ticks).
     * The scan re-arms itself for as long as the queue runs.
     */
    void armOn(EventQueue &queue);

    // ---- Outcome counters -----------------------------------------
    std::uint64_t warnings() const { return warnings_; }
    std::uint64_t dumps() const { return dumps_; }
    std::uint64_t fatals() const { return fatals_; }

  private:
    /** Highest escalation stage already fired (0 = none). */
    enum Stage : std::uint8_t { None = 0, Warned, Dumped, Fataled };

    struct OpenTxn
    {
        unsigned node = 0;
        Addr block = 0;
        Tick started = 0;
        Stage stage = None;
    };

    /** Escalate to @p target if not already there. */
    void escalate(Stage &stage, Stage target, unsigned node,
                  Addr block, Tick tick, const std::string &why);

    WatchdogConfig config_;
    FlightRecorder *recorder_;
    std::ostream *dump_stream_;
    FatalHandler fatal_handler_;
    std::uint64_t next_txn_ = 1;
    std::unordered_map<std::uint64_t, OpenTxn> open_;
    /** Escalation stage of the current synchronous transaction per
     * (cpu, block); reset when a different block is reported. */
    std::unordered_map<unsigned, std::pair<Addr, Stage>> sync_stage_;
    std::uint64_t warnings_ = 0;
    std::uint64_t dumps_ = 0;
    std::uint64_t fatals_ = 0;
};

} // namespace memwall

#endif // MEMWALL_VERIFY_WATCHDOG_HH
