/**
 * @file
 * Shadow coherence checker: an independent mirror of the directory
 * protocol that re-derives what MUST be true after every protocol
 * action and flags any divergence.
 *
 * The checker maintains, per 32-byte coherence unit:
 *
 *  - the set of nodes holding a directory-visible copy (added when a
 *    node's access completes tracked by the directory, removed when
 *    the protocol invalidates it);
 *  - a shadow copy of the unit's contents, compressed to a version
 *    number that each store advances, plus the version each holder
 *    last observed.
 *
 * After every access it asserts:
 *
 *  1. **SWMR** — in Modified state exactly the owner holds a copy;
 *     a completed store always ends in Modified state owned by the
 *     writer.
 *  2. **Directory/presence agreement** — every holder is tracked by
 *     the directory entry, and every miss-path access leaves its
 *     requester tracked. (Cache hits may be served by spatially
 *     prefetched neighbour blocks the directory never saw — a column
 *     buffer holds the whole column — so untracked hits are legal.)
 *  3. **Data-value consistency** — a read served from a local copy
 *     (cache hit, INC hit, attraction-memory hit) observes the
 *     current version; a stale copy surviving a missed invalidation
 *     is reported the moment it is read.
 *
 * The checker is driven entirely through the ProtocolObserver hooks
 * of NumaMachine and keeps no reference to the machine, so it can be
 * unit-tested against hand-built histories.
 */

#ifndef MEMWALL_VERIFY_SHADOW_CHECKER_HH
#define MEMWALL_VERIFY_SHADOW_CHECKER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "coherence/directory.hh"
#include "coherence/protocol.hh"

namespace memwall {

/** One detected invariant violation. */
struct ShadowViolation
{
    Addr block = 0;
    unsigned node = 0;
    std::string what;
};

/** Shadow state and invariant checks for one machine. */
class ShadowChecker
{
  public:
    /**
     * @param nodes       machine size (<= DirEntry::max_nodes)
     * @param check_data  enable the shadow-copy freshness check
     */
    explicit ShadowChecker(unsigned nodes, bool check_data = true);

    /** Mirror of ProtocolObserver::copyInvalidated. */
    void onInvalidate(unsigned node, Addr block);

    /**
     * Verify and apply one completed access. @p entry is the
     * directory entry AFTER the machine's transition.
     * @return descriptions of every invariant violated (empty when
     *         the access is coherent).
     */
    std::vector<ShadowViolation>
    onAccessEnd(unsigned cpu, Addr block, bool store,
                ServiceLevel service, const DirEntry &entry);

    /** @return true iff the shadow state has @p node holding @p block. */
    bool holds(unsigned node, Addr block) const;

    /** Current shadow version (store count) of @p block. */
    std::uint64_t version(Addr block) const;

    /** Accesses checked so far. */
    std::uint64_t checked() const { return checked_; }

    /** Total violations detected so far. */
    std::uint64_t violations() const { return violations_; }

    unsigned nodes() const { return nodes_; }

  private:
    struct BlockShadow
    {
        /** Shadow copy of the unit, compressed to a store count. */
        std::uint64_t version = 0;
        /** Bit n set = node n holds a copy. */
        std::uint32_t holders = 0;
        /** Version each holder last observed. */
        std::uint64_t copy_version[DirEntry::max_nodes] = {};
    };

    unsigned nodes_;
    bool check_data_;
    std::uint64_t checked_ = 0;
    std::uint64_t violations_ = 0;
    std::unordered_map<Addr, BlockShadow> blocks_;
};

} // namespace memwall

#endif // MEMWALL_VERIFY_SHADOW_CHECKER_HH
