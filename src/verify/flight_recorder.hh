/**
 * @file
 * Bounded per-node flight recorder for protocol post-mortems.
 *
 * Silent protocol hangs are only diagnosable if the recent history
 * survives the crash. The recorder keeps a fixed-size ring of the
 * last K protocol/link/fault events per node; recording is a few
 * stores into preallocated storage, so it is cheap enough to leave
 * on whenever the shadow checker is attached. On a checker
 * violation, a watchdog trip or a machine check the ring is dumped
 * with every field decoded (event kind, directory state, service
 * level), turning a wedged bench into an actionable report.
 */

#ifndef MEMWALL_VERIFY_FLIGHT_RECORDER_HH
#define MEMWALL_VERIFY_FLIGHT_RECORDER_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/types.hh"

namespace memwall {

/** What one flight-recorder entry describes. */
enum class FlightKind : std::uint8_t {
    AccessEnd,      ///< completed access: a = service, b = latency
    Invalidate,     ///< copy invalidated at this node
    Nack,           ///< protocol engine NACKed an attempt; a = tries
    Retry,          ///< backoff retry; a = tries, b = backoff
    MachineCheck,   ///< retry budget exhausted
    DirTransition,  ///< a = old encoded entry, b = new encoded entry
    LinkRetransmit, ///< link-layer retransmission; a = attempts
    LinkFailure,    ///< link gave up after max retries
    FaultInjected,  ///< soft error landed; a = bit index
    Violation,      ///< shadow-checker invariant violation
    WatchdogWarn,   ///< watchdog escalation step
    TxnBegin,       ///< open-transaction tracking started
    TxnEnd,         ///< open transaction completed
};

/** Decoded name of @p kind ("access-end", "nack", ...). */
const char *flightKindName(FlightKind kind);

/** One recorded event (fixed size; meaning of a/b depends on kind). */
struct FlightEvent
{
    Tick tick = 0;
    Addr addr = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    FlightKind kind = FlightKind::AccessEnd;
};

/**
 * Per-node ring buffer of the last K events.
 *
 * Storage is allocated once at construction; record() never
 * allocates. Events older than the ring capacity are overwritten
 * oldest-first.
 */
class FlightRecorder
{
  public:
    /**
     * @param nodes     number of per-node rings
     * @param per_node  events retained per node (K)
     */
    explicit FlightRecorder(unsigned nodes, std::size_t per_node = 256);

    /** Append one event to @p node's ring. */
    void record(unsigned node, FlightKind kind, Tick tick, Addr addr,
                std::uint64_t a = 0, std::uint64_t b = 0);

    /** Total events ever recorded (including overwritten ones). */
    std::uint64_t recorded() const { return recorded_; }

    /** Events currently retained for @p node. */
    std::size_t retained(unsigned node) const;

    /** Ring capacity per node (K). */
    std::size_t capacity() const { return per_node_; }

    unsigned nodes() const
    {
        return static_cast<unsigned>(rings_.size());
    }

    /**
     * Snapshot of @p node's retained events, oldest first (for
     * tests and custom reporting).
     */
    std::vector<FlightEvent> events(unsigned node) const;

    /**
     * Dump every node's ring, oldest first, with all fields decoded.
     * @p reason is printed in the header so the dump records what
     * triggered it.
     */
    void dump(std::ostream &os, const std::string &reason) const;

    /** Drop all retained events (counters keep running). */
    void clear();

  private:
    struct Ring
    {
        std::vector<FlightEvent> events;
        std::size_t head = 0;   ///< next write position
        std::size_t count = 0;  ///< valid entries (<= capacity)
    };

    std::size_t per_node_;
    std::uint64_t recorded_ = 0;
    std::vector<Ring> rings_;
};

} // namespace memwall

#endif // MEMWALL_VERIFY_FLIGHT_RECORDER_HH
