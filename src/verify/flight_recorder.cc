#include "verify/flight_recorder.hh"

#include <ostream>

#include "coherence/directory.hh"
#include "coherence/protocol.hh"
#include "common/logging.hh"

namespace memwall {

namespace {

const char *
serviceName(ServiceLevel level)
{
    switch (level) {
      case ServiceLevel::CacheHit:
        return "cache-hit";
      case ServiceLevel::LocalMemory:
        return "local-memory";
      case ServiceLevel::IncHit:
        return "inc-hit";
      case ServiceLevel::Remote:
        return "remote";
      case ServiceLevel::Invalidation:
        return "invalidation";
    }
    return "?";
}

const char *
dirStateName(DirState state)
{
    switch (state) {
      case DirState::Uncached:
        return "I";
      case DirState::Shared:
        return "S";
      case DirState::Modified:
        return "M";
      case DirState::SharedBcast:
        return "S-bcast";
    }
    return "?";
}

/** Decode a 14-bit directory entry into "M(owner)" / "S{a,b}". */
void
printEntry(std::ostream &os, std::uint16_t bits)
{
    const DirEntry e = DirEntry::decode(bits);
    os << dirStateName(e.state());
    switch (e.state()) {
      case DirState::Modified:
        os << '(' << e.owner() << ')';
        break;
      case DirState::Shared: {
        os << '{';
        bool first = true;
        for (unsigned s : e.sharers()) {
            if (!first)
                os << ',';
            os << s;
            first = false;
        }
        os << '}';
        break;
      }
      case DirState::Uncached:
      case DirState::SharedBcast:
        break;
    }
}

} // namespace

const char *
flightKindName(FlightKind kind)
{
    switch (kind) {
      case FlightKind::AccessEnd:
        return "access-end";
      case FlightKind::Invalidate:
        return "invalidate";
      case FlightKind::Nack:
        return "nack";
      case FlightKind::Retry:
        return "retry";
      case FlightKind::MachineCheck:
        return "machine-check";
      case FlightKind::DirTransition:
        return "dir-transition";
      case FlightKind::LinkRetransmit:
        return "link-retransmit";
      case FlightKind::LinkFailure:
        return "link-failure";
      case FlightKind::FaultInjected:
        return "fault-injected";
      case FlightKind::Violation:
        return "VIOLATION";
      case FlightKind::WatchdogWarn:
        return "watchdog-warn";
      case FlightKind::TxnBegin:
        return "txn-begin";
      case FlightKind::TxnEnd:
        return "txn-end";
    }
    return "?";
}

FlightRecorder::FlightRecorder(unsigned nodes, std::size_t per_node)
    : per_node_(per_node)
{
    MW_ASSERT(nodes >= 1, "flight recorder needs at least one node");
    MW_ASSERT(per_node_ >= 1, "ring capacity must be positive");
    rings_.resize(nodes);
    for (auto &ring : rings_)
        ring.events.resize(per_node_);
}

void
FlightRecorder::record(unsigned node, FlightKind kind, Tick tick,
                       Addr addr, std::uint64_t a, std::uint64_t b)
{
    MW_ASSERT(node < rings_.size(), "bad recorder node ", node);
    Ring &ring = rings_[node];
    FlightEvent &ev = ring.events[ring.head];
    ev.tick = tick;
    ev.addr = addr;
    ev.a = a;
    ev.b = b;
    ev.kind = kind;
    ring.head = (ring.head + 1) % per_node_;
    if (ring.count < per_node_)
        ++ring.count;
    ++recorded_;
}

std::size_t
FlightRecorder::retained(unsigned node) const
{
    MW_ASSERT(node < rings_.size(), "bad recorder node ", node);
    return rings_[node].count;
}

std::vector<FlightEvent>
FlightRecorder::events(unsigned node) const
{
    MW_ASSERT(node < rings_.size(), "bad recorder node ", node);
    const Ring &ring = rings_[node];
    std::vector<FlightEvent> out;
    out.reserve(ring.count);
    const std::size_t start =
        (ring.head + per_node_ - ring.count) % per_node_;
    for (std::size_t i = 0; i < ring.count; ++i)
        out.push_back(ring.events[(start + i) % per_node_]);
    return out;
}

void
FlightRecorder::dump(std::ostream &os,
                     const std::string &reason) const
{
    os << "=== flight recorder dump: " << reason << " ===\n";
    for (unsigned node = 0; node < rings_.size(); ++node) {
        const auto evs = events(node);
        os << "--- node " << node << " (" << evs.size()
           << " of last " << per_node_ << " events) ---\n";
        for (const FlightEvent &ev : evs) {
            os << "  [" << ev.tick << "] "
               << flightKindName(ev.kind) << " block=0x" << std::hex
               << ev.addr << std::dec;
            switch (ev.kind) {
              case FlightKind::AccessEnd:
                os << " service="
                   << serviceName(
                          static_cast<ServiceLevel>(ev.a))
                   << " latency=" << ev.b;
                break;
              case FlightKind::DirTransition:
                os << " ";
                printEntry(os,
                           static_cast<std::uint16_t>(ev.a));
                os << " -> ";
                printEntry(os,
                           static_cast<std::uint16_t>(ev.b));
                break;
              case FlightKind::Nack:
                os << " tries=" << ev.a;
                break;
              case FlightKind::Retry:
                os << " tries=" << ev.a << " backoff=" << ev.b;
                break;
              case FlightKind::LinkRetransmit:
                os << " attempts=" << ev.a;
                break;
              case FlightKind::FaultInjected:
                os << " bit=" << ev.a;
                break;
              case FlightKind::WatchdogWarn:
                os << " stage=" << ev.a;
                break;
              case FlightKind::Invalidate:
              case FlightKind::MachineCheck:
              case FlightKind::LinkFailure:
              case FlightKind::Violation:
              case FlightKind::TxnBegin:
              case FlightKind::TxnEnd:
                break;
            }
            os << '\n';
        }
    }
    os << "=== end of dump ===\n";
}

void
FlightRecorder::clear()
{
    for (auto &ring : rings_) {
        ring.head = 0;
        ring.count = 0;
    }
}

} // namespace memwall
