#include "verify/shadow_checker.hh"

#include <sstream>

#include "common/logging.hh"

namespace memwall {

ShadowChecker::ShadowChecker(unsigned nodes, bool check_data)
    : nodes_(nodes), check_data_(check_data)
{
    MW_ASSERT(nodes_ >= 1 && nodes_ <= DirEntry::max_nodes,
              "shadow checker node count out of range");
}

void
ShadowChecker::onInvalidate(unsigned node, Addr block)
{
    MW_ASSERT(node < nodes_, "bad invalidation node");
    auto it = blocks_.find(block);
    if (it != blocks_.end())
        it->second.holders &= ~(std::uint32_t{1} << node);
}

bool
ShadowChecker::holds(unsigned node, Addr block) const
{
    auto it = blocks_.find(block);
    return it != blocks_.end() &&
           (it->second.holders >> node) & 1u;
}

std::uint64_t
ShadowChecker::version(Addr block) const
{
    auto it = blocks_.find(block);
    return it == blocks_.end() ? 0 : it->second.version;
}

std::vector<ShadowViolation>
ShadowChecker::onAccessEnd(unsigned cpu, Addr block, bool store,
                           ServiceLevel service,
                           const DirEntry &entry)
{
    MW_ASSERT(cpu < nodes_, "bad access cpu");
    ++checked_;
    std::vector<ShadowViolation> out;
    auto violate = [&](unsigned node, std::string what) {
        out.push_back(ShadowViolation{block, node, std::move(what)});
    };

    BlockShadow &shadow = blocks_[block];

    // --- 3. Data-value consistency (checked before this access's
    //        own effect is applied) ---------------------------------
    const bool had_copy = (shadow.holders >> cpu) & 1u;
    const bool from_local_copy =
        service == ServiceLevel::CacheHit ||
        service == ServiceLevel::IncHit ||
        service == ServiceLevel::LocalMemory;
    if (check_data_ && !store && had_copy && from_local_copy &&
        shadow.copy_version[cpu] != shadow.version) {
        std::ostringstream os;
        os << "stale data read: node " << cpu
           << " observed shadow version "
           << shadow.copy_version[cpu] << " of block, current is "
           << shadow.version
           << " (a missed invalidation left a stale copy)";
        violate(cpu, os.str());
    }

    // --- Apply this access's effect --------------------------------
    if (store)
        ++shadow.version;
    // The shadow holder set mirrors directory-visible copies. A
    // miss-path access must leave the requester tracked; a cache hit
    // may be served by a spatially prefetched neighbour block (a
    // column buffer holds the whole 512-byte column, a DRAM row
    // buffer the whole row) that the directory legitimately never
    // saw, so untracked hits are not added (nor flagged).
    if (entry.tracks(cpu)) {
        shadow.holders |= std::uint32_t{1} << cpu;
        shadow.copy_version[cpu] = shadow.version;
    } else if (service != ServiceLevel::CacheHit) {
        std::ostringstream os;
        os << "presence mismatch: the directory does not track node "
           << cpu << " after its own "
           << (store ? "store" : "load")
           << " completed (dropped sharer?)";
        violate(cpu, os.str());
    }

    // --- 1. SWMR ----------------------------------------------------
    if (store && (entry.state() != DirState::Modified ||
                  entry.owner() != cpu)) {
        std::ostringstream os;
        os << "store by node " << cpu
           << " did not end in Modified state owned by the writer "
              "(directory entry: state "
           << static_cast<unsigned>(entry.state()) << ", owner "
           << entry.owner() << ")";
        violate(cpu, os.str());
    }
    if (entry.state() == DirState::Modified) {
        const std::uint32_t owner_bit = std::uint32_t{1}
                                        << entry.owner();
        if (shadow.holders & ~owner_bit) {
            for (unsigned node = 0; node < nodes_; ++node) {
                if (node == entry.owner() ||
                    !((shadow.holders >> node) & 1u))
                    continue;
                std::ostringstream os;
                os << "SWMR violated: directory is Modified("
                   << entry.owner() << ") but node " << node
                   << " still holds a copy";
                violate(node, os.str());
            }
        }
    }

    // --- 2. Directory-presence agreement ----------------------------
    for (unsigned node = 0; node < nodes_; ++node) {
        if (!((shadow.holders >> node) & 1u))
            continue;
        if (!entry.tracks(node)) {
            std::ostringstream os;
            os << "presence mismatch: node " << node
               << " holds a copy the directory does not track "
                  "(state "
               << static_cast<unsigned>(entry.state()) << ")";
            violate(node, os.str());
        }
    }

    violations_ += out.size();
    return out;
}

} // namespace memwall
