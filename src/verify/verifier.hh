/**
 * @file
 * CoherenceVerifier: one-stop runtime verification harness for a
 * NumaMachine.
 *
 * Attaching a verifier plugs the shadow checker, the transaction
 * watchdog and the flight recorder into the machine's
 * ProtocolObserver hooks in one move:
 *
 *  - every completed access is mirrored into the ShadowChecker and
 *    its invariants (SWMR, directory presence, data freshness)
 *    re-verified;
 *  - NACKs, retries, machine checks, link retransmissions and
 *    directory transitions stream into the per-node flight recorder;
 *  - retry counts and access latencies feed the watchdog's livelock
 *    detection.
 *
 * On a violation the recorder is dumped (decoded, rate-limited) and
 * the configured policy applies: Count keeps going and accumulates
 * (torture testing), Fatal aborts (CI). Detaching — or never
 * attaching — leaves the machine on its observer-free fast path, so
 * verification is zero-cost when disabled.
 */

#ifndef MEMWALL_VERIFY_VERIFIER_HH
#define MEMWALL_VERIFY_VERIFIER_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "coherence/numa.hh"
#include "verify/flight_recorder.hh"
#include "verify/shadow_checker.hh"
#include "verify/watchdog.hh"

namespace memwall {

/** What the verifier does when an invariant breaks. */
enum class ViolationPolicy : std::uint8_t {
    Count,  ///< record, dump, keep simulating (torture tester)
    Fatal,  ///< record, dump, MW_FATAL (CI and debugging)
};

/** Verifier configuration. */
struct VerifyConfig
{
    /** Enable the shadow-copy data-freshness check. */
    bool check_data = true;
    /** Flight-recorder ring capacity per node (K). */
    std::size_t recorder_events = 256;
    /** Flight-recorder dumps emitted at most this many times. */
    unsigned max_dumps = 3;
    ViolationPolicy policy = ViolationPolicy::Count;
    WatchdogConfig watchdog = {};
};

/**
 * Observer wiring a machine to the verification subsystem.
 *
 * The verifier attaches itself on construction and detaches on
 * destruction; the machine must outlive it. One verifier per
 * machine.
 */
class CoherenceVerifier : public ProtocolObserver
{
  public:
    CoherenceVerifier(NumaMachine &machine, VerifyConfig config = {});
    ~CoherenceVerifier() override;

    CoherenceVerifier(const CoherenceVerifier &) = delete;
    CoherenceVerifier &operator=(const CoherenceVerifier &) = delete;

    /** Where violation reports and dumps go (default: std::cerr). */
    void setReportStream(std::ostream &os);

    // ---- ProtocolObserver ------------------------------------------
    void copyInvalidated(unsigned node, Addr block,
                         Tick tick) override;
    void protocolNack(unsigned cpu, Addr block, unsigned tries,
                      Tick tick) override;
    void protocolRetry(unsigned cpu, Addr block, unsigned tries,
                       Cycles backoff, Tick tick) override;
    void protocolMachineCheck(unsigned cpu, Addr block,
                              Tick tick) override;
    void linkMessage(Tick deliver, unsigned src, unsigned dst,
                     unsigned attempts, bool failed) override;
    void accessEnd(unsigned cpu, Addr block, bool store,
                   ServiceLevel service, Cycles latency, Tick tick,
                   std::uint16_t dir_before,
                   const DirEntry &entry) override;

    // ---- Results ----------------------------------------------------
    /** Total invariant violations seen (shadow + cache audit). */
    std::uint64_t violations() const { return violations_; }

    /** Accesses verified. */
    std::uint64_t checked() const { return shadow_.checked(); }

    /** Up to the first max_dumps violation descriptions. */
    const std::vector<ShadowViolation> &firstViolations() const
    {
        return first_violations_;
    }

    ShadowChecker &checker() { return shadow_; }
    FlightRecorder &recorder() { return recorder_; }
    TransactionWatchdog &watchdog() { return watchdog_; }

  private:
    /** Report one violation: record, maybe dump, apply the policy. */
    void report(const ShadowViolation &violation, Tick tick);

    NumaMachine &machine_;
    VerifyConfig config_;
    FlightRecorder recorder_;
    ShadowChecker shadow_;
    TransactionWatchdog watchdog_;
    std::ostream *report_stream_;
    std::uint64_t violations_ = 0;
    unsigned dumps_emitted_ = 0;
    std::vector<ShadowViolation> first_violations_;
};

} // namespace memwall

#endif // MEMWALL_VERIFY_VERIFIER_HH
