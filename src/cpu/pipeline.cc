#include "cpu/pipeline.hh"

#include <algorithm>

#include "common/logging.hh"

namespace memwall {

PipelineSim::PipelineSim(MemorySystem &mem, PipelineConfig config)
    : mem_(mem), config_(config)
{
}

void
PipelineSim::stallUntil(Tick when, std::uint64_t &bucket)
{
    if (when > now_) {
        bucket += when - now_;
        now_ = when;
    }
}

void
PipelineSim::consume(const MemRef &ref)
{
    switch (ref.type) {
      case RefType::IFetch: {
        // Scoreboard: if a load is still pending and the window is
        // exhausted, the next instruction cannot issue until the
        // load completes.
        if (pending_load_done_ != 0) {
            if (pending_load_done_ <= now_) {
                pending_load_done_ = 0;
            } else if (issued_past_load_ >= config_.scoreboard_window) {
                stallUntil(pending_load_done_, data_stalls_);
                pending_load_done_ = 0;
            } else {
                ++issued_past_load_;
            }
        }
        const Cycles lat = mem_.fetchLatency(ref.pc, now_);
        MW_ASSERT(lat >= 1, "fetch latency below one cycle");
        // One cycle to issue; any extra latency is a front-end stall.
        now_ += 1;
        if (lat > 1)
            stallUntil(now_ + (lat - 1), fetch_stalls_);
        ++instructions_;
        break;
      }

      case RefType::Load: {
        // Structural hazard: a single outstanding memory operation.
        stallUntil(std::max(lsq_busy_until_, pending_load_done_),
                   data_stalls_);
        pending_load_done_ = 0;
        const Cycles lat = mem_.dataLatency(ref.addr, false, now_);
        MW_ASSERT(lat >= 1, "load latency below one cycle");
        lsq_busy_until_ = now_ + lat;
        if (lat > 1) {
            // Incomplete load: issue may run ahead a bounded amount.
            pending_load_done_ = lsq_busy_until_;
            issued_past_load_ = 0;
        }
        break;
      }

      case RefType::Store: {
        // The store buffer hides store latency from issue, but the
        // load/store unit stays busy while the store drains.
        stallUntil(std::max(lsq_busy_until_, pending_load_done_),
                   data_stalls_);
        pending_load_done_ = 0;
        const Cycles lat = mem_.dataLatency(ref.addr, true, now_);
        lsq_busy_until_ = now_ + lat;
        break;
      }
    }
}

void
PipelineSim::drain()
{
    stallUntil(std::max(lsq_busy_until_, pending_load_done_),
               data_stalls_);
    pending_load_done_ = 0;
}

double
PipelineSim::cpi() const
{
    return instructions_
        ? static_cast<double>(now_) /
              static_cast<double>(instructions_)
        : 0.0;
}

} // namespace memwall
