/**
 * @file
 * In-order single-scalar pipeline timing model.
 *
 * Models the paper's 5-stage R4300i/MicroSparc-II-class core
 * (Section 4.1) at the level that matters for the memory study:
 *
 *  - one instruction issues per cycle when nothing stalls;
 *  - instruction-fetch misses stall the front end for the miss
 *    latency;
 *  - the load/store unit allows ONE outstanding operation (the P10
 *    token of Figure 10);
 *  - a store buffer lets stores retire without stalling issue;
 *  - scoreboarding lets issue continue for a bounded number of
 *    instructions past an incomplete load before stalling (the T23
 *    behaviour; window 0 = no scoreboarding).
 *
 * The pipeline is driven by a MemRef stream (from a workload proxy
 * or the MW32 interpreter) and charges memory latencies through a
 * MemorySystem interface, so the same pipeline runs against the
 * integrated device or any conventional hierarchy.
 */

#ifndef MEMWALL_CPU_PIPELINE_HH
#define MEMWALL_CPU_PIPELINE_HH

#include <cstdint>

#include "common/types.hh"
#include "trace/ref.hh"

namespace memwall {

/** Timing interface the pipeline charges its memory accesses to. */
class MemorySystem
{
  public:
    virtual ~MemorySystem() = default;

    /**
     * Latency of an instruction fetch issued at @p now.
     * A return of 1 means "streamed, no stall".
     */
    virtual Cycles fetchLatency(Addr pc, Tick now) = 0;

    /** Latency of a data access issued at @p now. */
    virtual Cycles dataLatency(Addr addr, bool store, Tick now) = 0;
};

/** Pipeline configuration. */
struct PipelineConfig
{
    /**
     * Instructions that may issue past an incomplete load before
     * the pipeline stalls. The paper's scoreboarded core averages 1;
     * 0 models no scoreboarding (stall immediately).
     */
    unsigned scoreboard_window = 1;
};

/** Cycle-accounting pipeline simulator. */
class PipelineSim
{
  public:
    PipelineSim(MemorySystem &mem, PipelineConfig config = {});

    /** Feed one reference from the instruction/data stream. */
    void consume(const MemRef &ref);

    /** @return a sink feeding consume(). */
    RefSink sink()
    {
        return [this](const MemRef &r) { consume(r); };
    }

    /** Drain outstanding memory operations (end of run). */
    void drain();

    std::uint64_t instructions() const { return instructions_; }
    Tick cycles() const { return now_; }
    double cpi() const;

    /** Cycles lost to instruction-fetch stalls. */
    std::uint64_t fetchStallCycles() const { return fetch_stalls_; }
    /** Cycles lost to load-use and LSQ-structural stalls. */
    std::uint64_t dataStallCycles() const { return data_stalls_; }

  private:
    void stallUntil(Tick when, std::uint64_t &bucket);

    MemorySystem &mem_;
    PipelineConfig config_;
    Tick now_ = 0;
    std::uint64_t instructions_ = 0;

    /** Completion time of the single in-flight memory operation. */
    Tick lsq_busy_until_ = 0;
    /** Completion time of an incomplete load, or 0 when none. */
    Tick pending_load_done_ = 0;
    /** Instructions issued since the pending load started. */
    unsigned issued_past_load_ = 0;

    std::uint64_t fetch_stalls_ = 0;
    std::uint64_t data_stalls_ = 0;
};

} // namespace memwall

#endif // MEMWALL_CPU_PIPELINE_HH
