/**
 * @file
 * CPI composition — the paper's Table 3/4 method.
 *
 * Section 5.5: "a cycle accurate MicroSparc-II simulator (with a
 * zero-latency memory system) was used to calculate a base CPI
 * component due to functional unit dependencies within the CPU ...
 * These results were then combined with the additional CPI component
 * derived from the Petri-Net models."
 *
 * The base component is a property of the fixed CPU core; this repo
 * records the paper's per-benchmark base CPI as workload metadata
 * (see DESIGN.md, "Substitutions") and adds the memory component
 * measured by our own cache + GSPN models.
 */

#ifndef MEMWALL_CPU_CPI_MODEL_HH
#define MEMWALL_CPU_CPI_MODEL_HH

#include <string>

namespace memwall {

/** The two additive CPI components of Tables 3 and 4. */
struct CpiBreakdown
{
    /** Functional-unit component ("cpu" column of Table 3). */
    double base = 1.0;
    /** Memory-stall component ("memory" column of Table 3). */
    double memory = 0.0;

    double total() const { return base + memory; }
};

/**
 * SPEC-ratio estimation.
 *
 * SPECratio = reference_time / run_time and run_time is
 * instructions * CPI / frequency, so for a fixed benchmark and
 * frequency the ratio is k / CPI. The constant k is calibrated once
 * per benchmark from the paper's own (CPI, ratio) pair — Table 3
 * and Table 4 are mutually consistent under this model — and lets
 * us translate our measured CPI back into the paper's metric.
 */
struct SpecCalibration
{
    /** k = paper_ratio * paper_total_cpi. */
    double k = 0.0;

    /** @return the estimated SPEC ratio for @p total_cpi. */
    double
    ratio(double total_cpi) const
    {
        return total_cpi > 0.0 ? k / total_cpi : 0.0;
    }

    /** Build from a published (total CPI, ratio) operating point. */
    static SpecCalibration
    fromPaper(double paper_total_cpi, double paper_ratio)
    {
        return SpecCalibration{paper_ratio * paper_total_cpi};
    }
};

} // namespace memwall

#endif // MEMWALL_CPU_CPI_MODEL_HH
