#include "exec/fast_executor.hh"

#include <cstdlib>

namespace memwall {

namespace {

/** Fast path defaults on; MEMWALL_FASTPATH=0 disables it globally
 * (the A/B switch used by CI's byte-identical-output diffs). */
bool
fastPathDefault()
{
    const char *env = std::getenv("MEMWALL_FASTPATH");
    return !(env && env[0] == '0' && env[1] == '\0');
}

} // namespace

FastExecutor::FastExecutor(BackingStore &mem,
                           const AssembledProgram &prog)
    : FastExecutor(mem, ExecPlan::build(prog))
{
}

FastExecutor::FastExecutor(BackingStore &mem, ExecPlan plan)
    : mem_(mem), interp_(mem), plan_(std::move(plan)),
      fast_on_(fastPathDefault())
{
}

} // namespace memwall
