/**
 * @file
 * MW32 execution fast path: threaded-code trace execution over the
 * analysis-lowered ExecPlan.
 *
 * FastExecutor wraps the functional Interpreter and shares its
 * architectural state (registers, pc, stats, stop reason), so fast
 * traces and interpreter fallback steps read and write a single
 * source of truth and can interleave freely. The dispatch loop:
 *
 *  1. looks the pc up in the plan's dense table. Misses (pc outside
 *     the decoded range — e.g. a jump-table target past the code) and
 *     ineligible instructions (unknown indirect successors,
 *     irreducible regions) execute ONE Interpreter::step and retry —
 *     coverage degrades, correctness never does;
 *  2. otherwise executes the straight-line trace containing the pc
 *     via computed-goto threaded dispatch (GNU C; a switch loop on
 *     other compilers), with the per-instruction costs hoisted out
 *     of the run: no fetch memory read (pre-decoded MicroOps), no
 *     immediate massaging (pre-folded), pc materialised only at
 *     trace exits, stats flushed once per trace, and data accesses
 *     served through a one-entry page TLB over BackingStore's
 *     stable page pointers;
 *  3. side-exits preserve exact interpreter semantics: an
 *     instruction budget landing mid-trace cuts the trace short
 *     (StopReason::InstrLimit with the pc after the last retired
 *     instruction), a misaligned access warns, records faultAddr()
 *     and stops with AlignmentFault without retiring, a zero
 *     divisor warns and stops with DivideByZero without retiring, an
 *     undecodable word stops with BadInstruction after emitting its
 *     fetch ref, and halt retires with the pc left on the halt.
 *
 * Invariant: guest code is READ-ONLY. The pre-decoded plan can never
 * go stale because every store — fast path and fallback alike — is
 * checked against the plan's code range and aborts the simulation
 * (MW_FATAL) on a hit. Data writes adjacent to or interleaved with
 * code words are fine: the check is per byte against actual
 * instruction words, not a coarse range.
 *
 * Reference streams are bit-identical to the interpreter's: a fetch
 * ref per attempted instruction, then the load/store ref once the
 * alignment check passed. runInto() accepts any callable and is the
 * batch-sink analogue of trace/synthetic.hh's generateInto — no
 * std::function indirection on the hot path.
 *
 * The fast path defaults on; MEMWALL_FASTPATH=0 in the environment
 * or setFastPath(false) routes run()/runInto() through the plain
 * interpreter (byte-identical baseline for A/B diffs).
 */

#ifndef MEMWALL_EXEC_FAST_EXECUTOR_HH
#define MEMWALL_EXEC_FAST_EXECUTOR_HH

#include <cstdint>
#include <cstring>
#include <utility>

#include "analysis/lowering.hh"
#include "common/logging.hh"
#include "isa/interpreter.hh"
#include "mem/backing_store.hh"
#include "trace/ref.hh"

// Threaded dispatch needs GNU C's labels-as-values; elsewhere the
// trace loop degrades to a switch with identical semantics.
#if defined(__GNUC__) && !defined(MEMWALL_NO_COMPUTED_GOTO)
#define MEMWALL_EXEC_THREADED 1
#else
#define MEMWALL_EXEC_THREADED 0
#endif

namespace memwall {

/** Fast-path coverage counters (introspection, not architecture). */
struct FastPathStats
{
    /** Instructions retired inside fast traces. */
    std::uint64_t fast_instructions = 0;
    /** Interpreter fallback steps (attempted). */
    std::uint64_t fallback_steps = 0;
    /** Trace executions (including budget-cut partial traces). */
    std::uint64_t traces = 0;
};

/** Trace-executing MW32 CPU; drop-in for Interpreter. */
class FastExecutor
{
  public:
    /** Pre-decode @p prog (which the caller loads into @p mem as
     * usual via AssembledProgram::loadInto). */
    FastExecutor(BackingStore &mem, const AssembledProgram &prog);

    /** Adopt an already-lowered plan. */
    FastExecutor(BackingStore &mem, ExecPlan plan);

    CpuState &state() { return interp_.state(); }
    const CpuState &state() const { return interp_.state(); }
    void setPc(Addr pc) { interp_.setPc(pc); }

    void setAlignmentTrap(bool on) { interp_.setAlignmentTrap(on); }
    bool alignmentTrap() const { return interp_.alignmentTrap(); }
    Addr faultAddr() const { return interp_.faultAddr(); }

    const ExecStats &stats() const { return interp_.stats(); }
    StopReason lastStop() const { return interp_.lastStop(); }

    /** Toggle the fast path (default: on unless MEMWALL_FASTPATH=0
     * in the environment). Off delegates to the interpreter. */
    void setFastPath(bool on) { fast_on_ = on; }
    bool fastPath() const { return fast_on_; }

    const ExecPlan &plan() const { return plan_; }
    const FastPathStats &fastStats() const { return fstats_; }

    /**
     * Run until halt, fault, or @p max_instructions attempted.
     * Same contract as Interpreter::run, including run(0) leaving
     * lastStop() untouched.
     */
    StopReason
    run(std::uint64_t max_instructions, const RefSink *sink = nullptr)
    {
        if (!fast_on_)
            return interp_.run(max_instructions, sink);
        if (sink) {
            auto fwd = [sink](const MemRef &ref) { (*sink)(ref); };
            return dispatch<true>(max_instructions, fwd);
        }
        auto none = [](const MemRef &) {};
        return dispatch<false>(max_instructions, none);
    }

    /**
     * Typed-sink variant: @p sink is any callable taking
     * `const MemRef &`, invoked directly (devirtualised batch-sink
     * idiom, cf. generateInto). Semantics identical to run().
     */
    template <typename Sink>
    StopReason
    runInto(std::uint64_t max_instructions, Sink &&sink)
    {
        if (!fast_on_) {
            const RefSink fn = [&sink](const MemRef &ref) {
                sink(ref);
            };
            return interp_.run(max_instructions, &fn);
        }
        return dispatch<true>(max_instructions, sink);
    }

  private:
    template <bool kEmit, typename Sink>
    StopReason
    dispatch(std::uint64_t max, Sink &sink)
    {
        if (interp_.trap_misaligned_)
            return runLoop<true, kEmit>(max, sink);
        return runLoop<false, kEmit>(max, sink);
    }

    /** Abort on the read-only-code invariant: a store touching any
     * decoded instruction word would stale the pre-decoded plan. */
    void
    storeGuard(Addr pc, Addr ea, unsigned size) const
    {
        if (plan_.isCode(ea) || plan_.isCode(ea + size - 1)) {
            MW_FATAL("store into guest code at ea 0x", std::hex, ea,
                     " (pc 0x", pc, std::dec,
                     "): guest code is read-only, the fast path's "
                     "decode cache would go stale");
        }
    }

    /** One-entry read TLB. Page pointers are stable (BackingStore
     * never frees or moves pages); absent pages are NOT cached so a
     * later store materialising one is seen immediately. */
    const std::uint8_t *
    readPage(Addr ea)
    {
        const std::uint64_t pn = ea / BackingStore::page_size;
        if (pn == rtlb_pn_)
            return rtlb_page_;
        const std::uint8_t *page = mem_.pageIfPresent(ea);
        if (page) {
            rtlb_pn_ = pn;
            rtlb_page_ = page;
        }
        return page;
    }

    /** One-entry write TLB; materialises the page on first touch. */
    std::uint8_t *
    writePage(Addr ea)
    {
        const std::uint64_t pn = ea / BackingStore::page_size;
        if (pn == wtlb_pn_)
            return wtlb_page_;
        std::uint8_t *page = mem_.page(ea);
        wtlb_pn_ = pn;
        wtlb_page_ = page;
        return page;
    }

    template <bool kTrap, bool kEmit, typename Sink>
    StopReason runLoop(std::uint64_t max, Sink &sink);

    BackingStore &mem_;
    Interpreter interp_;
    ExecPlan plan_;
    FastPathStats fstats_;
    std::uint64_t rtlb_pn_ = static_cast<std::uint64_t>(-1);
    std::uint64_t wtlb_pn_ = static_cast<std::uint64_t>(-1);
    const std::uint8_t *rtlb_page_ = nullptr;
    std::uint8_t *wtlb_page_ = nullptr;
    bool fast_on_ = true;
};

// The trace loop. Macro-structured so the threaded (computed-goto)
// and portable (switch) dispatchers share one set of handlers; every
// handler replicates the corresponding Interpreter::step case
// bit-for-bit (values, stats, refs, warnings, stop reasons).

#if MEMWALL_EXEC_THREADED
#define MW_EXEC_DISPATCH() \
    goto *jump_table[static_cast<unsigned>(op->kind)]
#else
#define MW_EXEC_DISPATCH() goto dispatch_switch
#endif

// Advance within a straight-line trace.
#define MW_EXEC_NEXT()            \
    do {                          \
        if (op == last)           \
            goto straight_done;   \
        ++op;                     \
        MW_EXEC_DISPATCH();       \
    } while (0)

// The interpreter emits a fetch ref for every attempted instruction
// before executing it.
#define MW_EXEC_FETCH()                      \
    do {                                     \
        if constexpr (kEmit)                 \
            sink(MemRef::fetch(op->pc));     \
    } while (0)

// Alignment side exit: warn exactly like Interpreter::step, record
// the fault, do not retire the faulting op, stop at its pc.
#define MW_EXEC_ALIGN_CHECK(ea, size)                                 \
    do {                                                              \
        if constexpr (kTrap) {                                        \
            if (((ea) & ((size)-1)) != 0) {                           \
                MW_WARN("misaligned ", (size),                        \
                        "-byte access at ea 0x", std::hex, (ea),      \
                        " (pc 0x", op->pc, std::dec, ")");            \
                interp_.fault_addr_ = (ea);                           \
                interp_.last_stop_ = StopReason::AlignmentFault;      \
                interp_.state_.pc = op->pc;                           \
                goto flush_and_stop;                                  \
            }                                                         \
        }                                                             \
    } while (0)

// Divide-by-zero side exit: warn exactly like Interpreter::step, do
// not retire the faulting op, stop at its pc.
#define MW_EXEC_DIVZERO_CHECK(sb)                                     \
    do {                                                              \
        if ((sb) == 0) {                                              \
            MW_WARN("divide by zero at pc 0x", std::hex, op->pc,      \
                    std::dec);                                        \
            interp_.last_stop_ = StopReason::DivideByZero;            \
            interp_.state_.pc = op->pc;                               \
            goto flush_and_stop;                                      \
        }                                                             \
    } while (0)

template <bool kTrap, bool kEmit, typename Sink>
StopReason
FastExecutor::runLoop(std::uint64_t max, Sink &sink)
{
    CpuState &st = interp_.state_;
    ExecStats &stats = interp_.stats_;
    std::uint32_t *const r = st.regs.data();
    const MicroOp *const ops = plan_.ops();
    std::uint64_t remaining = max;

    // Fallback steps go through the classic interpreter with a
    // wrapper sink that enforces the read-only-code invariant (the
    // ref is emitted before the memory write, so the guard fires
    // before any corruption) and forwards to the caller's sink.
    const RefSink fallback_sink = [&](const MemRef &ref) {
        if (ref.type == RefType::Store)
            storeGuard(ref.pc, ref.addr, ref.size);
        if constexpr (kEmit)
            sink(ref);
    };

    while (remaining > 0) {
        const std::size_t idx = plan_.indexAt(st.pc);
        if (idx == ExecPlan::npos || !plan_.eligible(idx)) {
            ++fstats_.fallback_steps;
            if (!interp_.step(&fallback_sink))
                return interp_.last_stop_;
            --remaining;
            continue;
        }

        // The budget counts attempted instructions: a limit landing
        // mid-trace cuts the trace at exactly that many ops.
        std::size_t end_i = plan_.traceEnd(idx);
        if (static_cast<std::uint64_t>(end_i - idx) >= remaining)
            end_i = idx + static_cast<std::size_t>(remaining) - 1;

        const MicroOp *op = ops + idx;
        const MicroOp *const last = ops + end_i;
        std::uint64_t n_ret = 0;
        std::uint64_t n_loads = 0, n_stores = 0;
        std::uint64_t n_branches = 0, n_taken = 0;
        Addr next_pc = 0;

#if MEMWALL_EXEC_THREADED
        static const void *const jump_table[] = {
            &&H_Nop, &&H_LoadConst, &&H_Add, &&H_Sub, &&H_And,
            &&H_Or, &&H_Xor, &&H_Sll, &&H_Srl, &&H_Sra, &&H_Slt,
            &&H_Sltu, &&H_Mul, &&H_Div, &&H_Rem, &&H_Addi, &&H_Andi,
            &&H_Ori, &&H_Xori, &&H_Slli, &&H_Srli, &&H_Srai,
            &&H_Slti, &&H_Lb, &&H_Lbu, &&H_Lh, &&H_Lhu, &&H_Lw,
            &&H_Sb, &&H_Sh, &&H_Sw, &&H_Beq, &&H_Bne, &&H_Blt,
            &&H_Bge, &&H_Bltu, &&H_Bgeu, &&H_Jal, &&H_Jalr,
            &&H_Halt, &&H_BadWord};
        static_assert(sizeof(jump_table) / sizeof(jump_table[0]) ==
                      micro_kind_count);
#endif
        MW_EXEC_DISPATCH();

#if !MEMWALL_EXEC_THREADED
      dispatch_switch:
        switch (op->kind) {
          case MicroKind::Nop: goto H_Nop;
          case MicroKind::LoadConst: goto H_LoadConst;
          case MicroKind::Add: goto H_Add;
          case MicroKind::Sub: goto H_Sub;
          case MicroKind::And: goto H_And;
          case MicroKind::Or: goto H_Or;
          case MicroKind::Xor: goto H_Xor;
          case MicroKind::Sll: goto H_Sll;
          case MicroKind::Srl: goto H_Srl;
          case MicroKind::Sra: goto H_Sra;
          case MicroKind::Slt: goto H_Slt;
          case MicroKind::Sltu: goto H_Sltu;
          case MicroKind::Mul: goto H_Mul;
          case MicroKind::Div: goto H_Div;
          case MicroKind::Rem: goto H_Rem;
          case MicroKind::Addi: goto H_Addi;
          case MicroKind::Andi: goto H_Andi;
          case MicroKind::Ori: goto H_Ori;
          case MicroKind::Xori: goto H_Xori;
          case MicroKind::Slli: goto H_Slli;
          case MicroKind::Srli: goto H_Srli;
          case MicroKind::Srai: goto H_Srai;
          case MicroKind::Slti: goto H_Slti;
          case MicroKind::Lb: goto H_Lb;
          case MicroKind::Lbu: goto H_Lbu;
          case MicroKind::Lh: goto H_Lh;
          case MicroKind::Lhu: goto H_Lhu;
          case MicroKind::Lw: goto H_Lw;
          case MicroKind::Sb: goto H_Sb;
          case MicroKind::Sh: goto H_Sh;
          case MicroKind::Sw: goto H_Sw;
          case MicroKind::Beq: goto H_Beq;
          case MicroKind::Bne: goto H_Bne;
          case MicroKind::Blt: goto H_Blt;
          case MicroKind::Bge: goto H_Bge;
          case MicroKind::Bltu: goto H_Bltu;
          case MicroKind::Bgeu: goto H_Bgeu;
          case MicroKind::Jal: goto H_Jal;
          case MicroKind::Jalr: goto H_Jalr;
          case MicroKind::Halt: goto H_Halt;
          case MicroKind::BadWord: goto H_BadWord;
        }
        goto H_Nop;  // unreachable; silences fall-off warnings
#endif

      H_Nop:
        MW_EXEC_FETCH();
        ++n_ret;
        MW_EXEC_NEXT();
      H_LoadConst:
        MW_EXEC_FETCH();
        r[op->rd] = static_cast<std::uint32_t>(op->imm);
        ++n_ret;
        MW_EXEC_NEXT();
      H_Add:
        MW_EXEC_FETCH();
        r[op->rd] = r[op->rs1] + r[op->rs2];
        ++n_ret;
        MW_EXEC_NEXT();
      H_Sub:
        MW_EXEC_FETCH();
        r[op->rd] = r[op->rs1] - r[op->rs2];
        ++n_ret;
        MW_EXEC_NEXT();
      H_And:
        MW_EXEC_FETCH();
        r[op->rd] = r[op->rs1] & r[op->rs2];
        ++n_ret;
        MW_EXEC_NEXT();
      H_Or:
        MW_EXEC_FETCH();
        r[op->rd] = r[op->rs1] | r[op->rs2];
        ++n_ret;
        MW_EXEC_NEXT();
      H_Xor:
        MW_EXEC_FETCH();
        r[op->rd] = r[op->rs1] ^ r[op->rs2];
        ++n_ret;
        MW_EXEC_NEXT();
      H_Sll:
        MW_EXEC_FETCH();
        r[op->rd] = r[op->rs1] << (r[op->rs2] & 31);
        ++n_ret;
        MW_EXEC_NEXT();
      H_Srl:
        MW_EXEC_FETCH();
        r[op->rd] = r[op->rs1] >> (r[op->rs2] & 31);
        ++n_ret;
        MW_EXEC_NEXT();
      H_Sra:
        MW_EXEC_FETCH();
        r[op->rd] = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(r[op->rs1]) >>
            (r[op->rs2] & 31));
        ++n_ret;
        MW_EXEC_NEXT();
      H_Slt:
        MW_EXEC_FETCH();
        r[op->rd] = static_cast<std::int32_t>(r[op->rs1]) <
                            static_cast<std::int32_t>(r[op->rs2])
                        ? 1
                        : 0;
        ++n_ret;
        MW_EXEC_NEXT();
      H_Sltu:
        MW_EXEC_FETCH();
        r[op->rd] = r[op->rs1] < r[op->rs2] ? 1 : 0;
        ++n_ret;
        MW_EXEC_NEXT();
      H_Mul:
        MW_EXEC_FETCH();
        r[op->rd] = r[op->rs1] * r[op->rs2];
        ++n_ret;
        MW_EXEC_NEXT();
      H_Div:
        MW_EXEC_FETCH();
        {
            const auto sa = static_cast<std::int32_t>(r[op->rs1]);
            const auto sb = static_cast<std::int32_t>(r[op->rs2]);
            MW_EXEC_DIVZERO_CHECK(sb);
            if (op->rd != 0)
                r[op->rd] = sb == -1
                                ? std::uint32_t{0} - r[op->rs1]
                                : static_cast<std::uint32_t>(sa / sb);
        }
        ++n_ret;
        MW_EXEC_NEXT();
      H_Rem:
        MW_EXEC_FETCH();
        {
            const auto sa = static_cast<std::int32_t>(r[op->rs1]);
            const auto sb = static_cast<std::int32_t>(r[op->rs2]);
            MW_EXEC_DIVZERO_CHECK(sb);
            if (op->rd != 0)
                r[op->rd] = sb == -1
                                ? 0
                                : static_cast<std::uint32_t>(sa % sb);
        }
        ++n_ret;
        MW_EXEC_NEXT();
      H_Addi:
        MW_EXEC_FETCH();
        r[op->rd] =
            r[op->rs1] + static_cast<std::uint32_t>(op->imm);
        ++n_ret;
        MW_EXEC_NEXT();
      H_Andi:
        MW_EXEC_FETCH();
        r[op->rd] =
            r[op->rs1] & static_cast<std::uint32_t>(op->imm);
        ++n_ret;
        MW_EXEC_NEXT();
      H_Ori:
        MW_EXEC_FETCH();
        r[op->rd] =
            r[op->rs1] | static_cast<std::uint32_t>(op->imm);
        ++n_ret;
        MW_EXEC_NEXT();
      H_Xori:
        MW_EXEC_FETCH();
        r[op->rd] =
            r[op->rs1] ^ static_cast<std::uint32_t>(op->imm);
        ++n_ret;
        MW_EXEC_NEXT();
      H_Slli:
        MW_EXEC_FETCH();
        r[op->rd] = r[op->rs1] << op->imm;
        ++n_ret;
        MW_EXEC_NEXT();
      H_Srli:
        MW_EXEC_FETCH();
        r[op->rd] = r[op->rs1] >> op->imm;
        ++n_ret;
        MW_EXEC_NEXT();
      H_Srai:
        MW_EXEC_FETCH();
        r[op->rd] = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(r[op->rs1]) >> op->imm);
        ++n_ret;
        MW_EXEC_NEXT();
      H_Slti:
        MW_EXEC_FETCH();
        r[op->rd] =
            static_cast<std::int32_t>(r[op->rs1]) < op->imm ? 1 : 0;
        ++n_ret;
        MW_EXEC_NEXT();

      H_Lb:
        MW_EXEC_FETCH();
        {
            const Addr ea = static_cast<Addr>(
                r[op->rs1] + static_cast<std::uint32_t>(op->imm));
            if constexpr (kEmit)
                sink(MemRef::load(op->pc, ea, 1));
            ++n_loads;
            ++n_ret;
            const std::uint8_t *page = readPage(ea);
            const std::uint8_t byte =
                page ? page[ea % BackingStore::page_size] : 0;
            if (op->rd != 0)
                r[op->rd] = static_cast<std::uint32_t>(
                    static_cast<std::int32_t>(
                        static_cast<std::int8_t>(byte)));
        }
        MW_EXEC_NEXT();
      H_Lbu:
        MW_EXEC_FETCH();
        {
            const Addr ea = static_cast<Addr>(
                r[op->rs1] + static_cast<std::uint32_t>(op->imm));
            if constexpr (kEmit)
                sink(MemRef::load(op->pc, ea, 1));
            ++n_loads;
            ++n_ret;
            const std::uint8_t *page = readPage(ea);
            if (op->rd != 0)
                r[op->rd] =
                    page ? page[ea % BackingStore::page_size] : 0;
        }
        MW_EXEC_NEXT();
      H_Lh:
        MW_EXEC_FETCH();
        {
            const Addr ea = static_cast<Addr>(
                r[op->rs1] + static_cast<std::uint32_t>(op->imm));
            MW_EXEC_ALIGN_CHECK(ea, 2u);
            if constexpr (kEmit)
                sink(MemRef::load(op->pc, ea, 2));
            ++n_loads;
            ++n_ret;
            std::uint16_t v = 0;
            if constexpr (kTrap) {
                if (const std::uint8_t *page = readPage(ea))
                    std::memcpy(&v,
                                page + ea % BackingStore::page_size,
                                2);
            } else {
                v = mem_.readU16(ea);
            }
            if (op->rd != 0)
                r[op->rd] = static_cast<std::uint32_t>(
                    static_cast<std::int32_t>(
                        static_cast<std::int16_t>(v)));
        }
        MW_EXEC_NEXT();
      H_Lhu:
        MW_EXEC_FETCH();
        {
            const Addr ea = static_cast<Addr>(
                r[op->rs1] + static_cast<std::uint32_t>(op->imm));
            MW_EXEC_ALIGN_CHECK(ea, 2u);
            if constexpr (kEmit)
                sink(MemRef::load(op->pc, ea, 2));
            ++n_loads;
            ++n_ret;
            std::uint16_t v = 0;
            if constexpr (kTrap) {
                if (const std::uint8_t *page = readPage(ea))
                    std::memcpy(&v,
                                page + ea % BackingStore::page_size,
                                2);
            } else {
                v = mem_.readU16(ea);
            }
            if (op->rd != 0)
                r[op->rd] = v;
        }
        MW_EXEC_NEXT();
      H_Lw:
        MW_EXEC_FETCH();
        {
            const Addr ea = static_cast<Addr>(
                r[op->rs1] + static_cast<std::uint32_t>(op->imm));
            MW_EXEC_ALIGN_CHECK(ea, 4u);
            if constexpr (kEmit)
                sink(MemRef::load(op->pc, ea, 4));
            ++n_loads;
            ++n_ret;
            std::uint32_t v = 0;
            if constexpr (kTrap) {
                if (const std::uint8_t *page = readPage(ea))
                    std::memcpy(&v,
                                page + ea % BackingStore::page_size,
                                4);
            } else {
                v = mem_.readU32(ea);
            }
            if (op->rd != 0)
                r[op->rd] = v;
        }
        MW_EXEC_NEXT();

      H_Sb:
        MW_EXEC_FETCH();
        {
            const Addr ea = static_cast<Addr>(
                r[op->rs1] + static_cast<std::uint32_t>(op->imm));
            storeGuard(op->pc, ea, 1);
            if constexpr (kEmit)
                sink(MemRef::store(op->pc, ea, 1));
            ++n_stores;
            ++n_ret;
            writePage(ea)[ea % BackingStore::page_size] =
                static_cast<std::uint8_t>(r[op->rd]);
        }
        MW_EXEC_NEXT();
      H_Sh:
        MW_EXEC_FETCH();
        {
            const Addr ea = static_cast<Addr>(
                r[op->rs1] + static_cast<std::uint32_t>(op->imm));
            MW_EXEC_ALIGN_CHECK(ea, 2u);
            storeGuard(op->pc, ea, 2);
            if constexpr (kEmit)
                sink(MemRef::store(op->pc, ea, 2));
            ++n_stores;
            ++n_ret;
            const auto v = static_cast<std::uint16_t>(r[op->rd]);
            if constexpr (kTrap) {
                std::memcpy(writePage(ea) +
                                ea % BackingStore::page_size,
                            &v, 2);
            } else {
                mem_.writeU16(ea, v);
            }
        }
        MW_EXEC_NEXT();
      H_Sw:
        MW_EXEC_FETCH();
        {
            const Addr ea = static_cast<Addr>(
                r[op->rs1] + static_cast<std::uint32_t>(op->imm));
            MW_EXEC_ALIGN_CHECK(ea, 4u);
            storeGuard(op->pc, ea, 4);
            if constexpr (kEmit)
                sink(MemRef::store(op->pc, ea, 4));
            ++n_stores;
            ++n_ret;
            const std::uint32_t v = r[op->rd];
            if constexpr (kTrap) {
                std::memcpy(writePage(ea) +
                                ea % BackingStore::page_size,
                            &v, 4);
            } else {
                mem_.writeU32(ea, v);
            }
        }
        MW_EXEC_NEXT();

      H_Beq:
        MW_EXEC_FETCH();
        ++n_ret;
        ++n_branches;
        if (r[op->rs1] == r[op->rs2]) {
            ++n_taken;
            next_pc = op->pc + static_cast<Addr>(
                                   static_cast<std::int64_t>(op->imm));
        } else {
            next_pc = op->pc + 4;
        }
        goto trace_done;
      H_Bne:
        MW_EXEC_FETCH();
        ++n_ret;
        ++n_branches;
        if (r[op->rs1] != r[op->rs2]) {
            ++n_taken;
            next_pc = op->pc + static_cast<Addr>(
                                   static_cast<std::int64_t>(op->imm));
        } else {
            next_pc = op->pc + 4;
        }
        goto trace_done;
      H_Blt:
        MW_EXEC_FETCH();
        ++n_ret;
        ++n_branches;
        if (static_cast<std::int32_t>(r[op->rs1]) <
            static_cast<std::int32_t>(r[op->rs2])) {
            ++n_taken;
            next_pc = op->pc + static_cast<Addr>(
                                   static_cast<std::int64_t>(op->imm));
        } else {
            next_pc = op->pc + 4;
        }
        goto trace_done;
      H_Bge:
        MW_EXEC_FETCH();
        ++n_ret;
        ++n_branches;
        if (static_cast<std::int32_t>(r[op->rs1]) >=
            static_cast<std::int32_t>(r[op->rs2])) {
            ++n_taken;
            next_pc = op->pc + static_cast<Addr>(
                                   static_cast<std::int64_t>(op->imm));
        } else {
            next_pc = op->pc + 4;
        }
        goto trace_done;
      H_Bltu:
        MW_EXEC_FETCH();
        ++n_ret;
        ++n_branches;
        if (r[op->rs1] < r[op->rs2]) {
            ++n_taken;
            next_pc = op->pc + static_cast<Addr>(
                                   static_cast<std::int64_t>(op->imm));
        } else {
            next_pc = op->pc + 4;
        }
        goto trace_done;
      H_Bgeu:
        MW_EXEC_FETCH();
        ++n_ret;
        ++n_branches;
        if (r[op->rs1] >= r[op->rs2]) {
            ++n_taken;
            next_pc = op->pc + static_cast<Addr>(
                                   static_cast<std::int64_t>(op->imm));
        } else {
            next_pc = op->pc + 4;
        }
        goto trace_done;

      H_Jal:
        MW_EXEC_FETCH();
        ++n_ret;
        if (op->rd != 0)
            r[op->rd] = static_cast<std::uint32_t>(op->pc + 4);
        next_pc = op->pc +
                  static_cast<Addr>(static_cast<std::int64_t>(op->imm));
        goto trace_done;
      H_Jalr:
        MW_EXEC_FETCH();
        ++n_ret;
        {
            // Destination uses the pre-link rs1 (rd may alias rs1).
            const Addr dest =
                static_cast<Addr>(
                    r[op->rs1] +
                    static_cast<std::uint32_t>(op->imm)) &
                ~Addr{3};
            if (op->rd != 0)
                r[op->rd] = static_cast<std::uint32_t>(op->pc + 4);
            next_pc = dest;
        }
        goto trace_done;

      H_Halt:
        MW_EXEC_FETCH();
        ++n_ret;  // halt retires; pc stays on the halt instruction
        interp_.last_stop_ = StopReason::Halted;
        interp_.state_.pc = op->pc;
        goto flush_and_stop;
      H_BadWord:
        MW_EXEC_FETCH();  // the fetch ref precedes the decode
        MW_WARN("invalid instruction 0x", std::hex,
                static_cast<std::uint32_t>(op->imm), std::dec,
                " at pc 0x", std::hex, op->pc, std::dec);
        interp_.last_stop_ = StopReason::BadInstruction;
        interp_.state_.pc = op->pc;
        goto flush_and_stop;

      straight_done:
        next_pc = last->pc + 4;
      trace_done:
        st.pc = next_pc;
        stats.instructions += n_ret;
        stats.loads += n_loads;
        stats.stores += n_stores;
        stats.branches += n_branches;
        stats.taken_branches += n_taken;
        fstats_.fast_instructions += n_ret;
        ++fstats_.traces;
        remaining -= n_ret;
        continue;

      flush_and_stop:
        stats.instructions += n_ret;
        stats.loads += n_loads;
        stats.stores += n_stores;
        stats.branches += n_branches;
        stats.taken_branches += n_taken;
        fstats_.fast_instructions += n_ret;
        ++fstats_.traces;
        return interp_.last_stop_;
    }

    // Budget exhausted; run(0) leaves lastStop() untouched, like a
    // zero-iteration step() loop (see Interpreter::run).
    if (max > 0)
        interp_.last_stop_ = StopReason::InstrLimit;
    return StopReason::InstrLimit;
}

#undef MW_EXEC_DISPATCH
#undef MW_EXEC_NEXT
#undef MW_EXEC_FETCH
#undef MW_EXEC_ALIGN_CHECK
#undef MW_EXEC_DIVZERO_CHECK

} // namespace memwall

#endif // MEMWALL_EXEC_FAST_EXECUTOR_HH
