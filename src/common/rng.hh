/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the library (GSPN races, workload
 * proxies, replacement tie-breaks, the MP scheduler's arbitration)
 * draws from an explicitly seeded Rng so that all experiments are
 * bit-reproducible. The generator is xoshiro256++, which is small,
 * fast and has no observable bias for our purposes.
 */

#ifndef MEMWALL_COMMON_RNG_HH
#define MEMWALL_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace memwall {

/**
 * xoshiro256++ generator with convenience distributions.
 *
 * Satisfies the essentials of UniformRandomBitGenerator so it can be
 * handed to standard algorithms when needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** @return the next raw 64-bit value. */
    result_type operator()() { return next(); }

    /** @return a uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** @return a uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformRange(std::uint64_t lo, std::uint64_t hi);

    /** @return a uniform double in [0, 1). */
    double uniformReal();

    /** @return true with probability @p p (clamped to [0,1]). */
    bool bernoulli(double p);

    /** @return an Exp(1/mean)-distributed double; mean must be > 0. */
    double exponential(double mean);

    /** @return a geometrically distributed count with success prob p. */
    std::uint64_t geometric(double p);

    /**
     * Derive an independent child generator. Used to hand each
     * component its own stream so adding a component does not perturb
     * the draws of the others.
     */
    Rng split();

    /**
     * Raw generator state, exposed so checkpoints can round-trip
     * the stream position exactly. setState() with all-zero words
     * would wedge xoshiro; restore code must only feed back what
     * state() produced.
     */
    const std::array<std::uint64_t, 4> &state() const { return s_; }
    void setState(const std::array<std::uint64_t, 4> &s) { s_ = s; }

  private:
    std::uint64_t next();

    std::array<std::uint64_t, 4> s_;
};

} // namespace memwall

#endif // MEMWALL_COMMON_RNG_HH
