/**
 * @file
 * Status and error reporting in the gem5 tradition.
 *
 * - panic():  an internal invariant was violated (a bug in this library);
 *             aborts so a debugger/core dump catches it.
 * - fatal():  the user asked for something unsatisfiable (bad config);
 *             exits with status 1.
 * - warn():   something works but is suspicious or approximate.
 * - inform(): progress/status notes.
 */

#ifndef MEMWALL_COMMON_LOGGING_HH
#define MEMWALL_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace memwall {

/** Verbosity filter for inform(); warnings and errors always print. */
enum class LogLevel { Quiet, Normal, Verbose };

/** Set the global verbosity for inform()/verbose(). */
void setLogLevel(LogLevel level);

/** @return the current global verbosity. */
LogLevel logLevel();

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void verboseImpl(const std::string &msg);

/** Fold a variadic pack into one string via operator<<. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail
} // namespace memwall

/** Abort on an internal invariant violation (library bug). */
#define MW_PANIC(...)                                                      \
    ::memwall::detail::panicImpl(__FILE__, __LINE__,                       \
                                 ::memwall::detail::format(__VA_ARGS__))

/** Exit on an unsatisfiable user request (configuration error). */
#define MW_FATAL(...)                                                      \
    ::memwall::detail::fatalImpl(__FILE__, __LINE__,                       \
                                 ::memwall::detail::format(__VA_ARGS__))

/** Report a suspicious-but-survivable condition. */
#define MW_WARN(...)                                                       \
    ::memwall::detail::warnImpl(::memwall::detail::format(__VA_ARGS__))

/** Report normal progress (suppressed at LogLevel::Quiet). */
#define MW_INFORM(...)                                                     \
    ::memwall::detail::informImpl(::memwall::detail::format(__VA_ARGS__))

/** Report detail (printed only at LogLevel::Verbose). */
#define MW_VERBOSE(...)                                                    \
    ::memwall::detail::verboseImpl(::memwall::detail::format(__VA_ARGS__))

/** panic() unless @p cond holds. */
#define MW_ASSERT(cond, ...)                                               \
    do {                                                                   \
        if (!(cond)) {                                                     \
            MW_PANIC("assertion failed: " #cond " ",                       \
                     ::memwall::detail::format(__VA_ARGS__));              \
        }                                                                  \
    } while (0)

#endif // MEMWALL_COMMON_LOGGING_HH
