/**
 * @file
 * Small-buffer-optimized move-only callable wrapper.
 *
 * std::function heap-allocates once its capture exceeds the
 * implementation's tiny internal buffer (two pointers on libstdc++),
 * which makes every EventQueue::schedule() of a lambda capturing more
 * than `this` a malloc/free pair on the simulator's hottest path.
 * InlineFunction stores callables up to `BufBytes` inline and only
 * falls back to the heap beyond that, so the discrete-event kernel
 * schedules without touching the allocator.
 */

#ifndef MEMWALL_COMMON_INLINE_FUNCTION_HH
#define MEMWALL_COMMON_INLINE_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace memwall {

template <typename Signature, std::size_t BufBytes = 48>
class InlineFunction;

/**
 * Move-only type-erased callable with an inline buffer of
 * @p BufBytes bytes. Callables that fit (and are nothrow move
 * constructible) are stored in place; larger ones are heap-allocated.
 */
template <typename R, typename... Args, std::size_t BufBytes>
class InlineFunction<R(Args...), BufBytes>
{
  public:
    InlineFunction() = default;

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineFunction> &&
                  std::is_invocable_r_v<R, D &, Args...>>>
    InlineFunction(F &&f)  // NOLINT: implicit like std::function
    {
        construct<D>(std::forward<F>(f));
    }

    InlineFunction(InlineFunction &&other) noexcept
    {
        moveFrom(other);
    }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    explicit operator bool() const { return invoke_ != nullptr; }

    R
    operator()(Args... args)
    {
        return invoke_(&storage_, std::forward<Args>(args)...);
    }

    /** Drop the stored callable (no-op when empty). */
    void
    reset()
    {
        if (manage_) {
            manage_(&storage_, nullptr);
            manage_ = nullptr;
            invoke_ = nullptr;
        }
    }

    /** @return true when the callable lives in the inline buffer. */
    bool inlineStored() const { return invoke_ && inline_; }

  private:
    union Storage
    {
        alignas(std::max_align_t) unsigned char buf[BufBytes];
        void *ptr;
    };

    using InvokeFn = R (*)(Storage *, Args &&...);
    /** dst <- move(src) when src != nullptr, else destroy dst. */
    using ManageFn = void (*)(Storage *, Storage *);

    template <typename D>
    static constexpr bool fits_inline =
        sizeof(D) <= BufBytes &&
        alignof(D) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<D>;

    template <typename D, typename F>
    void
    construct(F &&f)
    {
        if constexpr (fits_inline<D>) {
            ::new (static_cast<void *>(storage_.buf))
                D(std::forward<F>(f));
            invoke_ = [](Storage *s, Args &&...args) -> R {
                return (*std::launder(
                    reinterpret_cast<D *>(s->buf)))(
                    std::forward<Args>(args)...);
            };
            manage_ = [](Storage *dst, Storage *src) {
                if (src) {
                    ::new (static_cast<void *>(dst->buf)) D(
                        std::move(*std::launder(
                            reinterpret_cast<D *>(src->buf))));
                    std::launder(reinterpret_cast<D *>(src->buf))
                        ->~D();
                } else {
                    std::launder(reinterpret_cast<D *>(dst->buf))
                        ->~D();
                }
            };
            inline_ = true;
        } else {
            storage_.ptr = new D(std::forward<F>(f));
            invoke_ = [](Storage *s, Args &&...args) -> R {
                return (*static_cast<D *>(s->ptr))(
                    std::forward<Args>(args)...);
            };
            manage_ = [](Storage *dst, Storage *src) {
                if (src) {
                    dst->ptr = src->ptr;
                    src->ptr = nullptr;
                } else {
                    delete static_cast<D *>(dst->ptr);
                }
            };
            inline_ = false;
        }
    }

    void
    moveFrom(InlineFunction &other) noexcept
    {
        if (!other.invoke_)
            return;
        other.manage_(&storage_, &other.storage_);
        invoke_ = other.invoke_;
        manage_ = other.manage_;
        inline_ = other.inline_;
        other.invoke_ = nullptr;
        other.manage_ = nullptr;
    }

    Storage storage_;
    InvokeFn invoke_ = nullptr;
    ManageFn manage_ = nullptr;
    bool inline_ = false;
};

} // namespace memwall

#endif // MEMWALL_COMMON_INLINE_FUNCTION_HH
