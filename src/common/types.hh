/**
 * @file
 * Fundamental scalar types and unit helpers shared by every module.
 *
 * The conventions follow the paper's machine model: a 200 MHz clock
 * (5 ns cycle), byte-granular 64-bit physical addresses, and cache
 * geometry expressed in bytes.
 */

#ifndef MEMWALL_COMMON_TYPES_HH
#define MEMWALL_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace memwall {

/** Physical/virtual byte address. */
using Addr = std::uint64_t;

/** A duration or timestamp measured in CPU clock cycles. */
using Cycles = std::uint64_t;

/** Event-queue timestamp (same unit as Cycles in this code base). */
using Tick = std::uint64_t;

/** Sentinel for "no address". */
inline constexpr Addr invalid_addr = std::numeric_limits<Addr>::max();

/** Sentinel for "never" / unscheduled. */
inline constexpr Tick max_tick = std::numeric_limits<Tick>::max();

/** Byte-quantity literals used throughout the cache geometry code. */
inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * KiB;
inline constexpr std::uint64_t GiB = 1024 * MiB;

/** @return true iff @p v is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)); v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** @return the smallest power of two >= v (v must be non-zero). */
constexpr std::uint64_t
ceilPowerOfTwo(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/**
 * Clock parameters of the proposed device (Section 4.1): 200 MHz core,
 * 30 ns DRAM array access (6 cycles).
 */
struct ClockParams
{
    /** Core frequency in MHz. */
    double freq_mhz = 200.0;

    /** @return the cycle time in nanoseconds. */
    double cycleNs() const { return 1000.0 / freq_mhz; }

    /** @return @p ns converted to whole cycles, rounding up. */
    Cycles
    nsToCycles(double ns) const
    {
        const double cycles = ns / cycleNs();
        const auto whole = static_cast<Cycles>(cycles);
        return (cycles > static_cast<double>(whole)) ? whole + 1 : whole;
    }

    /** @return @p cycles converted to nanoseconds. */
    double cyclesToNs(Cycles cycles) const
    {
        return static_cast<double>(cycles) * cycleNs();
    }
};

} // namespace memwall

#endif // MEMWALL_COMMON_TYPES_HH
