#include "common/table.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace memwall {

TextTable::TextTable(std::string title) : title_(std::move(title))
{
}

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (!header_.empty())
        cells.resize(header_.size());
    rows_.push_back(Row{std::move(cells), false});
}

void
TextTable::addRule()
{
    rows_.push_back(Row{{}, true});
}

void
TextTable::print(std::ostream &os) const
{
    // Compute column widths over header and all rows.
    std::size_t cols = header_.size();
    for (const auto &row : rows_)
        cols = std::max(cols, row.cells.size());
    std::vector<std::size_t> widths(cols, 0);
    auto scan = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    scan(header_);
    for (const auto &row : rows_)
        if (!row.rule)
            scan(row.cells);

    std::size_t total = cols ? (cols - 1) * 3 : 0;
    for (auto w : widths)
        total += w;

    auto print_cells = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cols; ++i) {
            const std::string &cell =
                i < cells.size() ? cells[i] : std::string{};
            os << std::left << std::setw(static_cast<int>(widths[i]))
               << cell;
            if (i + 1 < cols)
                os << " | ";
        }
        os << '\n';
    };

    if (!title_.empty()) {
        os << title_ << '\n';
        os << std::string(std::max(total, title_.size()), '=') << '\n';
    }
    if (!header_.empty()) {
        print_cells(header_);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_) {
        if (row.rule)
            os << std::string(total, '-') << '\n';
        else
            print_cells(row.cells);
    }
}

std::string
TextTable::str() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

std::string
TextTable::num(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
TextTable::intWithCommas(std::uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

BarChart::BarChart(std::string title, std::string unit)
    : title_(std::move(title)), unit_(std::move(unit))
{
}

void
BarChart::add(const std::string &group, const std::string &label,
              double value)
{
    bars_.push_back(Bar{group, label, value});
}

void
BarChart::print(std::ostream &os) const
{
    if (!title_.empty()) {
        os << title_ << '\n'
           << std::string(title_.size(), '=') << '\n';
    }
    double max_value = 0.0;
    std::size_t label_width = 0;
    for (const auto &bar : bars_) {
        max_value = std::max(max_value, bar.value);
        label_width = std::max(label_width, bar.label.size());
    }
    const double scale =
        max_value > 0.0 ? static_cast<double>(width_) / max_value : 0.0;

    std::string last_group;
    for (const auto &bar : bars_) {
        if (bar.group != last_group) {
            os << bar.group << '\n';
            last_group = bar.group;
        }
        const auto len =
            static_cast<unsigned>(std::lround(bar.value * scale));
        os << "  " << std::left
           << std::setw(static_cast<int>(label_width)) << bar.label
           << " |" << std::string(len, '#')
           << std::string(width_ - std::min(len, width_), ' ') << "| "
           << TextTable::num(bar.value, 4);
        if (!unit_.empty())
            os << ' ' << unit_;
        os << '\n';
    }
}

std::string
BarChart::str() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

SeriesChart::SeriesChart(std::string title, std::string x_label,
                         std::string y_label)
    : title_(std::move(title)), x_label_(std::move(x_label)),
      y_label_(std::move(y_label))
{
}

void
SeriesChart::addSeries(const std::string &name)
{
    if (!find(name))
        series_.push_back(Series{name, {}});
}

void
SeriesChart::addPoint(const std::string &name, double x, double y)
{
    Series *s = find(name);
    if (!s) {
        addSeries(name);
        s = find(name);
    }
    s->points.emplace_back(x, y);
}

const SeriesChart::Series *
SeriesChart::find(const std::string &name) const
{
    for (const auto &s : series_)
        if (s.name == name)
            return &s;
    return nullptr;
}

SeriesChart::Series *
SeriesChart::find(const std::string &name)
{
    return const_cast<Series *>(
        static_cast<const SeriesChart *>(this)->find(name));
}

void
SeriesChart::print(std::ostream &os) const
{
    // Collect the union of x values, sorted, then print one row per x
    // with one column per series.
    std::map<double, std::vector<double>> grid;
    for (std::size_t si = 0; si < series_.size(); ++si) {
        for (const auto &[x, y] : series_[si].points) {
            auto &row = grid[x];
            row.resize(series_.size(),
                       std::numeric_limits<double>::quiet_NaN());
            row[si] = y;
        }
    }
    for (auto &[x, row] : grid)
        row.resize(series_.size(),
                   std::numeric_limits<double>::quiet_NaN());

    TextTable table(title_ + "   [y: " + y_label_ + "]");
    std::vector<std::string> header{x_label_};
    for (const auto &s : series_)
        header.push_back(s.name);
    table.setHeader(std::move(header));
    for (const auto &[x, row] : grid) {
        std::vector<std::string> cells{TextTable::num(x, 3)};
        for (double y : row)
            cells.push_back(std::isnan(y) ? "-" : TextTable::num(y, 4));
        table.addRow(std::move(cells));
    }
    table.print(os);
}

std::string
SeriesChart::str() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

} // namespace memwall
