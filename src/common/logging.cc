#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace memwall {

namespace {

/** Atomic so sweep workers may adjust/read verbosity without a race. */
std::atomic<LogLevel> g_level{LogLevel::Normal};

/**
 * Emit one complete record with a single write so records from
 * concurrent sweep workers never interleave mid-line. POSIX requires
 * stderr to be unbuffered, and fwrite of the whole formatted record
 * reaches the kernel as one write(2); interleaving could otherwise
 * split a record between the prefix and the message.
 */
void
emit(const char *prefix, const std::string &msg,
     const std::string &suffix = {})
{
    std::string record;
    record.reserve(std::char_traits<char>::length(prefix) +
                   msg.size() + suffix.size() + 1);
    record += prefix;
    record += msg;
    record += suffix;
    record += '\n';
    std::fwrite(record.data(), 1, record.size(), stderr);
}

std::string
location(const char *file, int line)
{
    return std::string(" (") + file + ":" + std::to_string(line) +
           ")";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    emit("panic: ", msg, location(file, line));
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    emit("fatal: ", msg, location(file, line));
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    emit("warn: ", msg);
}

void
informImpl(const std::string &msg)
{
    if (logLevel() != LogLevel::Quiet)
        emit("info: ", msg);
}

void
verboseImpl(const std::string &msg)
{
    if (logLevel() == LogLevel::Verbose)
        emit("debug: ", msg);
}

} // namespace detail
} // namespace memwall
