#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace memwall {

namespace {

/** splitmix64 step used for seeding. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
    // A zero state would lock the generator at zero; splitmix64 cannot
    // produce four zero outputs from any seed, but be defensive.
    if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    MW_ASSERT(bound > 0, "uniformInt bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % bound;
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % bound;
}

std::uint64_t
Rng::uniformRange(std::uint64_t lo, std::uint64_t hi)
{
    MW_ASSERT(lo <= hi, "uniformRange requires lo <= hi");
    if (lo == 0 && hi == max())
        return next();
    return lo + uniformInt(hi - lo + 1);
}

double
Rng::uniformReal()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniformReal() < p;
}

double
Rng::exponential(double mean)
{
    MW_ASSERT(mean > 0.0, "exponential mean must be positive");
    double u;
    do {
        u = uniformReal();
    } while (u == 0.0);
    return -mean * std::log(u);
}

std::uint64_t
Rng::geometric(double p)
{
    MW_ASSERT(p > 0.0 && p <= 1.0, "geometric probability out of range");
    if (p == 1.0)
        return 0;
    double u;
    do {
        u = uniformReal();
    } while (u == 0.0);
    return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

Rng
Rng::split()
{
    // Mix two successive outputs into a fresh seed; streams derived
    // this way are independent for all practical purposes.
    const std::uint64_t a = next();
    const std::uint64_t b = next();
    return Rng(a ^ rotl(b, 32) ^ 0xd1b54a32d192ed03ULL);
}

} // namespace memwall
