/**
 * @file
 * ASCII rendering of tables and simple charts.
 *
 * Every bench binary regenerates one of the paper's tables or figures
 * on stdout. Tables render with aligned columns; "figures" render as
 * labelled horizontal bar charts or x/y series listings, which is the
 * closest faithful representation in a terminal.
 */

#ifndef MEMWALL_COMMON_TABLE_HH
#define MEMWALL_COMMON_TABLE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace memwall {

/** Column-aligned text table with an optional title and rules. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "");

    /** Set the header row; defines the column count. */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row (padded/truncated to the column count). */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addRule();

    /** Render to @p os. */
    void print(std::ostream &os) const;

    /** Render to a string. */
    std::string str() const;

    /** Helper: fixed-precision number formatting. */
    static std::string num(double v, int digits = 2);
    /** Helper: integer with thousands separators. */
    static std::string intWithCommas(std::uint64_t v);

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool rule = false;
    };

    std::string title_;
    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

/**
 * Horizontal bar chart: one labelled bar per entry, scaled to a
 * shared maximum so relative magnitude is visible at a glance. Used
 * to render the miss-rate "figures" (Figures 7 and 8).
 */
class BarChart
{
  public:
    explicit BarChart(std::string title, std::string unit = "");

    /** Add a bar. @p group labels cluster bars visually. */
    void add(const std::string &group, const std::string &label,
             double value);

    /** Set the character width of the longest bar (default 50). */
    void setWidth(unsigned width) { width_ = width; }

    void print(std::ostream &os) const;
    std::string str() const;

  private:
    struct Bar
    {
        std::string group;
        std::string label;
        double value;
    };

    std::string title_;
    std::string unit_;
    unsigned width_ = 50;
    std::vector<Bar> bars_;
};

/**
 * x/y series printout for line-plot figures (Figures 2, 11-17): each
 * series is listed as aligned columns so it can be eyeballed or piped
 * into a plotting tool.
 */
class SeriesChart
{
  public:
    SeriesChart(std::string title, std::string x_label,
                std::string y_label);

    /** Add a named series; all series should share x values. */
    void addSeries(const std::string &name);

    /** Append a point to series @p name. */
    void addPoint(const std::string &name, double x, double y);

    void print(std::ostream &os) const;
    std::string str() const;

  private:
    struct Series
    {
        std::string name;
        std::vector<std::pair<double, double>> points;
    };

    const Series *find(const std::string &name) const;
    Series *find(const std::string &name);

    std::string title_;
    std::string x_label_;
    std::string y_label_;
    std::vector<Series> series_;
};

} // namespace memwall

#endif // MEMWALL_COMMON_TABLE_HH
