#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/logging.hh"

namespace memwall {

void
SampleStat::add(double x)
{
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
SampleStat::reset()
{
    *this = SampleStat{};
}

double
SampleStat::variance() const
{
    if (!hasVariance())
        return std::numeric_limits<double>::quiet_NaN();
    return m2_ / static_cast<double>(n_ - 1);
}

double
SampleStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, unsigned buckets)
    : lo_(lo), hi_(hi),
      width_((hi - lo) / std::max(1u, buckets)),
      buckets_(std::max(1u, buckets), 0)
{
    MW_ASSERT(hi > lo, "histogram range must be non-empty");
}

void
Histogram::add(double x, std::uint64_t weight)
{
    count_ += weight;
    if (x < lo_) {
        underflow_ += weight;
    } else if (x >= hi_) {
        overflow_ += weight;
    } else {
        auto idx = static_cast<std::size_t>((x - lo_) / width_);
        idx = std::min(idx, buckets_.size() - 1);
        buckets_[idx] += weight;
    }
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    count_ = 0;
}

double
Histogram::bucketLow(unsigned i) const
{
    return lo_ + width_ * i;
}

double
Histogram::bucketHigh(unsigned i) const
{
    return lo_ + width_ * (i + 1);
}

double
Histogram::quantile(double p) const
{
    MW_ASSERT(p >= 0.0 && p <= 1.0, "quantile fraction out of range");
    if (count_ == 0)
        return lo_;

    // p = 0 is the infimum of the recorded mass: the low edge of the
    // first occupied bin (clamped to the histogram range for the
    // open-ended underflow/overflow bins).
    if (p <= 0.0) {
        if (underflow_)
            return lo_;
        for (unsigned i = 0; i < buckets_.size(); ++i)
            if (buckets_[i])
                return bucketLow(i);
        return hi_;  // all mass in overflow
    }

    // quantile(p) = inf{x : mass(<= x) >= p * count}. The target
    // stays real-valued: truncating it to an integer shifted every
    // quantile of an odd-count histogram down by up to one sample,
    // and the old strict '>' comparison walked past the last
    // occupied bucket for p = 1.0, returning hi_ no matter where the
    // mass actually was.
    const double target = p * static_cast<double>(count_);
    double seen = static_cast<double>(underflow_);
    if (seen >= target)
        return lo_;  // quantile lies below the range: clamp to lo_
    for (unsigned i = 0; i < buckets_.size(); ++i) {
        if (!buckets_[i])
            continue;
        const double before = seen;
        seen += static_cast<double>(buckets_[i]);
        if (seen >= target) {
            // Linear interpolation within the bucket; frac is in
            // (0, 1], so p = 1.0 lands on the bucket's high edge.
            const double frac = (target - before) /
                                static_cast<double>(buckets_[i]);
            return bucketLow(i) + frac * width_;
        }
    }
    return hi_;  // remaining mass sits in the overflow bin
}

double
AccessStats::missRate() const
{
    const auto total = accesses();
    return total ? static_cast<double>(misses()) /
                       static_cast<double>(total)
                 : 0.0;
}

double
AccessStats::loadMissRate() const
{
    const auto total = accesses();
    return total ? static_cast<double>(load_misses.value()) /
                       static_cast<double>(total)
                 : 0.0;
}

double
AccessStats::storeMissRate() const
{
    const auto total = accesses();
    return total ? static_cast<double>(store_misses.value()) /
                       static_cast<double>(total)
                 : 0.0;
}

void
AccessStats::reset()
{
    load_hits.reset();
    load_misses.reset();
    store_hits.reset();
    store_misses.reset();
}

std::string
percentString(double fraction, int digits)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
    return buf;
}

} // namespace memwall
