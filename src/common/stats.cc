#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace memwall {

void
SampleStat::add(double x)
{
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
SampleStat::reset()
{
    *this = SampleStat{};
}

double
SampleStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
SampleStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, unsigned buckets)
    : lo_(lo), hi_(hi),
      width_((hi - lo) / std::max(1u, buckets)),
      buckets_(std::max(1u, buckets), 0)
{
    MW_ASSERT(hi > lo, "histogram range must be non-empty");
}

void
Histogram::add(double x, std::uint64_t weight)
{
    count_ += weight;
    if (x < lo_) {
        underflow_ += weight;
    } else if (x >= hi_) {
        overflow_ += weight;
    } else {
        auto idx = static_cast<std::size_t>((x - lo_) / width_);
        idx = std::min(idx, buckets_.size() - 1);
        buckets_[idx] += weight;
    }
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    count_ = 0;
}

double
Histogram::bucketLow(unsigned i) const
{
    return lo_ + width_ * i;
}

double
Histogram::bucketHigh(unsigned i) const
{
    return lo_ + width_ * (i + 1);
}

double
Histogram::quantile(double p) const
{
    MW_ASSERT(p >= 0.0 && p <= 1.0, "quantile fraction out of range");
    if (count_ == 0)
        return lo_;
    const auto target = static_cast<std::uint64_t>(
        p * static_cast<double>(count_));
    std::uint64_t seen = underflow_;
    if (seen > target)
        return lo_;
    for (unsigned i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen > target) {
            // Linear interpolation within the bucket.
            const auto before = seen - buckets_[i];
            const double frac = buckets_[i]
                ? static_cast<double>(target - before) /
                      static_cast<double>(buckets_[i])
                : 0.0;
            return bucketLow(i) + frac * width_;
        }
    }
    return hi_;
}

double
AccessStats::missRate() const
{
    const auto total = accesses();
    return total ? static_cast<double>(misses()) /
                       static_cast<double>(total)
                 : 0.0;
}

double
AccessStats::loadMissRate() const
{
    const auto total = accesses();
    return total ? static_cast<double>(load_misses.value()) /
                       static_cast<double>(total)
                 : 0.0;
}

double
AccessStats::storeMissRate() const
{
    const auto total = accesses();
    return total ? static_cast<double>(store_misses.value()) /
                       static_cast<double>(total)
                 : 0.0;
}

void
AccessStats::reset()
{
    load_hits.reset();
    load_misses.reset();
    store_hits.reset();
    store_misses.reset();
}

std::string
percentString(double fraction, int digits)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
    return buf;
}

} // namespace memwall
