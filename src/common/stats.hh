/**
 * @file
 * Lightweight statistics primitives used by every timing model.
 *
 * The design borrows gem5's idea of named, self-describing statistics
 * grouped per component, but stays deliberately small: counters,
 * ratios (formulas over two counters), scalar samples with
 * mean/stddev, and fixed-bucket histograms.
 */

#ifndef MEMWALL_COMMON_STATS_HH
#define MEMWALL_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace memwall {

/** Monotonic event counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    /** Overwrite the count; for checkpoint restore only. */
    void set(std::uint64_t v) { value_ = v; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Accumulates scalar samples and reports mean / variance / extrema.
 * Uses Welford's algorithm so long runs stay numerically stable.
 */
class SampleStat
{
  public:
    void add(double x);
    void reset();

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /**
     * Whether a sample variance exists at all: the n-1 denominator
     * needs at least two samples. Confidence-interval code must check
     * this instead of treating the degenerate case as "no spread" —
     * a single observation says nothing about the width of the
     * distribution, and reporting 0.0 here once made a 1-unit
     * sampled run claim a zero-width confidence interval.
     */
    bool hasVariance() const { return n_ >= 2; }
    /** Sample variance (n-1 denominator); NaN when !hasVariance(). */
    double variance() const;
    /** Sample standard deviation; NaN when !hasVariance(). */
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double total() const { return sum_; }

    /** Full accumulator state, for checkpoint round-trips. */
    struct Snapshot
    {
        std::uint64_t n = 0;
        double mean = 0.0;
        double m2 = 0.0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
    };

    Snapshot snapshot() const
    {
        return Snapshot{n_, mean_, m2_, sum_, min_, max_};
    }

    void restore(const Snapshot &s)
    {
        n_ = s.n;
        mean_ = s.mean;
        m2_ = s.m2;
        sum_ = s.sum;
        min_ = s.min;
        max_ = s.max;
    }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Histogram over [lo, hi) with equal-width buckets plus underflow and
 * overflow bins.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, unsigned buckets);

    void add(double x, std::uint64_t weight = 1);
    void reset();

    std::uint64_t count() const { return count_; }
    std::uint64_t bucket(unsigned i) const { return buckets_.at(i); }
    unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets_.size());
    }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    double bucketLow(unsigned i) const;
    double bucketHigh(unsigned i) const;

    /** @return the p-quantile (0 <= p <= 1) estimated from buckets. */
    double quantile(double p) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
};

/**
 * The miss-rate bookkeeping every cache model exposes, split by
 * access type exactly as Figure 8 of the paper plots it (load misses
 * and store misses stack into the total miss fraction).
 */
struct AccessStats
{
    Counter load_hits;
    Counter load_misses;
    Counter store_hits;
    Counter store_misses;

    std::uint64_t loads() const
    {
        return load_hits.value() + load_misses.value();
    }
    std::uint64_t stores() const
    {
        return store_hits.value() + store_misses.value();
    }
    std::uint64_t accesses() const { return loads() + stores(); }
    std::uint64_t misses() const
    {
        return load_misses.value() + store_misses.value();
    }

    /** Total miss fraction over all accesses (0 when idle). */
    double missRate() const;
    /** Load-miss fraction over all accesses (Figure 8's lower bar). */
    double loadMissRate() const;
    /** Store-miss fraction over all accesses (Figure 8's upper bar). */
    double storeMissRate() const;

    void reset();
};

/** Render a rate as a percentage string with @p digits decimals. */
std::string percentString(double fraction, int digits = 2);

} // namespace memwall

#endif // MEMWALL_COMMON_STATS_HH
