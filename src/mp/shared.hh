/**
 * @file
 * Shared-memory runtime for the SPLASH kernels.
 *
 * MpRuntime bundles a NumaMachine (timing + coherence), an
 * MpScheduler (virtual time) and a bump allocator over the machine's
 * shared address space. SharedArray<T> stores real values in host
 * memory — the kernels compute real results — while every element
 * access charges the machine's latency for the corresponding
 * simulated address (execution-driven simulation of data references
 * only, exactly the paper's methodology in Section 6.1).
 */

#ifndef MEMWALL_MP_SHARED_HH
#define MEMWALL_MP_SHARED_HH

#include <cstdint>
#include <string>
#include <vector>

#include "coherence/numa.hh"
#include "mp/scheduler.hh"
#include "mp/sync.hh"

namespace memwall {

/**
 * Per-access interposer for sampled simulation. When attached to an
 * MpRuntime it replaces the default "run the protocol, charge the
 * latency" step of every SharedArray access and decides — per the
 * active sampling plan — whether the access runs the full machine
 * model, warms it without statistics, or is fast-forwarded past it.
 * The implementation lives in src/sampling/ (SplashSampler); the
 * interface lives here so mw_mp does not depend on mw_sampling.
 */
class AccessSampler
{
  public:
    virtual ~AccessSampler() = default;

    /**
     * Handle one simulated access by the CPU behind @p ctx. The
     * implementation must charge virtual time via ctx.advance().
     */
    virtual void access(NumaMachine &machine, SimContext &ctx,
                        Addr addr, bool store) = 0;
};

/** Scheduler + machine + allocator bundle. */
class MpRuntime
{
  public:
    MpRuntime(unsigned ncpus, NumaConfig machine_config);

    MpScheduler &scheduler() { return sched_; }
    NumaMachine &machine() { return machine_; }
    unsigned ncpus() const { return sched_.ncpus(); }

    /**
     * Reserve @p bytes of simulated shared address space.
     * Allocations are page-aligned so home-node interleaving is
     * predictable.
     */
    Addr allocate(std::uint64_t bytes, const std::string &name = "");

    /** Run @p body on every CPU; @return the makespan in cycles. */
    Tick run(const std::function<void(SimContext &)> &body)
    {
        return sched_.run(body);
    }

    /** Charge one simulated access and advance the caller's clock. */
    void
    access(SimContext &ctx, Addr addr, bool store)
    {
        if (sampler_) {
            sampler_->access(machine_, ctx, addr, store);
            return;
        }
        ctx.advance(
            machine_.access(ctx.cpuId(), addr, store, ctx.now()));
    }

    /**
     * Attach (or with nullptr detach) a sampled-simulation
     * interposer. At most one; it must outlive the runtime or be
     * detached first. With none attached (the default) the access
     * path is exactly the unsampled one.
     */
    void attachSampler(AccessSampler *sampler) { sampler_ = sampler; }

    /** The attached sampler (null when sampling is off). */
    AccessSampler *sampler() const { return sampler_; }

  private:
    MpScheduler sched_;
    NumaMachine machine_;
    AccessSampler *sampler_ = nullptr;
    Addr next_addr_ = 0x10000000;
};

/**
 * Typed shared array: real data, simulated timing.
 */
template <typename T>
class SharedArray
{
  public:
    SharedArray(MpRuntime &rt, std::size_t n,
                const std::string &name = "array")
        : rt_(&rt), base_(rt.allocate(n * sizeof(T), name)),
          data_(n)
    {
    }

    std::size_t size() const { return data_.size(); }
    Addr addrOf(std::size_t i) const { return base_ + i * sizeof(T); }

    /** Simulated read of element @p i. */
    T
    read(SimContext &ctx, std::size_t i) const
    {
        rt_->access(ctx, addrOf(i), false);
        return data_[i];
    }

    /** Simulated write of element @p i. */
    void
    write(SimContext &ctx, std::size_t i, T value)
    {
        rt_->access(ctx, addrOf(i), true);
        data_[i] = value;
    }

    /** Read-modify-write helper. */
    template <typename Fn>
    void
    update(SimContext &ctx, std::size_t i, Fn &&fn)
    {
        T v = read(ctx, i);
        write(ctx, i, fn(v));
    }

    /** Host-side access WITHOUT timing (initialisation only). */
    T &raw(std::size_t i) { return data_[i]; }
    const T &raw(std::size_t i) const { return data_[i]; }

  private:
    MpRuntime *rt_;
    Addr base_;
    std::vector<T> data_;
};

} // namespace memwall

#endif // MEMWALL_MP_SHARED_HH
