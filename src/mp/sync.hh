/**
 * @file
 * Simulated synchronisation primitives.
 *
 * Deterministic barrier and FIFO lock over the virtual-time
 * scheduler. Costs are explicit parameters: synchronisation in the
 * modelled machine rides the same fabric as coherence traffic, so
 * the defaults charge one invalidation-class round trip (Table 6)
 * per operation.
 */

#ifndef MEMWALL_MP_SYNC_HH
#define MEMWALL_MP_SYNC_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "mp/scheduler.hh"

namespace memwall {

/** Cost knobs for the simulated primitives. */
struct SyncCosts
{
    /** Cycles charged to each participant of a barrier episode. */
    Cycles barrier = 80;
    /** Cycles to acquire an uncontended lock. */
    Cycles lock_acquire = 80;
    /** Cycles to hand a contended lock to the next waiter. */
    Cycles lock_handoff = 80;
    /** Cycles to release a lock. */
    Cycles lock_release = 1;
};

/**
 * All-arrive / all-leave barrier: every participant leaves at
 * max(arrival times) + cost.
 */
class SimBarrier
{
  public:
    SimBarrier(unsigned parties, SyncCosts costs = {});

    /** Enter the barrier; returns when all parties have arrived. */
    void wait(SimContext &ctx);

    /** Completed barrier episodes. */
    std::uint64_t episodes() const { return episodes_; }

  private:
    unsigned parties_;
    SyncCosts costs_;
    unsigned arrived_ = 0;
    Tick max_arrival_ = 0;
    std::vector<unsigned> waiters_;
    std::uint64_t episodes_ = 0;
};

/**
 * FIFO mutex in virtual time. The queue order is the order of
 * acquire() calls in the deterministic schedule.
 */
class SimLock
{
  public:
    explicit SimLock(SyncCosts costs = {});

    void acquire(SimContext &ctx);
    void release(SimContext &ctx);

    std::uint64_t acquisitions() const { return acquisitions_; }
    std::uint64_t contended() const { return contended_; }

  private:
    SyncCosts costs_;
    bool held_ = false;
    int holder_ = -1;
    Tick release_time_ = 0;
    std::deque<unsigned> queue_;
    std::uint64_t acquisitions_ = 0;
    std::uint64_t contended_ = 0;
};

} // namespace memwall

#endif // MEMWALL_MP_SYNC_HH
