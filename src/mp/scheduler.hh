/**
 * @file
 * Deterministic execution-driven multiprocessor scheduler.
 *
 * The CacheMire-replacement (see DESIGN.md): SPLASH kernels run as
 * real C++ code on one host thread per simulated CPU, but exactly
 * ONE simulated CPU executes at any instant — an explicit ownership
 * token is handed from CPU to CPU, so simulated machine state needs
 * no locking. Every simulated memory access charges its latency via
 * advance(); when a CPU runs more than a bounded quantum ahead of
 * the slowest runnable CPU, the token moves on. Scheduling is a
 * pure function of the virtual timeline, so runs are deterministic
 * regardless of host thread scheduling; the quantum bounds the
 * timing skew between interacting CPUs (quantum 0 = exact
 * lowest-time-first interleaving).
 */

#ifndef MEMWALL_MP_SCHEDULER_HH
#define MEMWALL_MP_SCHEDULER_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hh"

namespace memwall {

class MpScheduler;

/** Handle the workload body uses to interact with simulated time. */
class SimContext
{
  public:
    SimContext(MpScheduler &sched, unsigned cpu)
        : sched_(&sched), cpu_(cpu)
    {
    }

    /** Simulated CPU id (0-based). */
    unsigned cpuId() const { return cpu_; }

    /** Charge @p cycles of virtual time (may switch CPUs). */
    void advance(Cycles cycles);

    /** Current virtual time of this CPU. */
    Tick now() const;

    MpScheduler &scheduler() { return *sched_; }

  private:
    MpScheduler *sched_;
    unsigned cpu_;
};

/**
 * Lowest-virtual-time-first scheduler over real threads with a
 * bounded-skew quantum.
 */
class MpScheduler
{
  public:
    /**
     * @param ncpus   simulated processors
     * @param quantum cycles a CPU may run ahead of the slowest
     *                runnable CPU before yielding (0 = exact)
     */
    explicit MpScheduler(unsigned ncpus, Tick quantum = 64);
    ~MpScheduler();

    MpScheduler(const MpScheduler &) = delete;
    MpScheduler &operator=(const MpScheduler &) = delete;

    /**
     * Run @p body once per CPU to completion.
     * @return the makespan (max final virtual time).
     */
    Tick run(const std::function<void(SimContext &)> &body);

    unsigned ncpus() const { return ncpus_; }
    Tick quantum() const;

    /**
     * Change the skew quantum mid-run. The sampled-simulation layer
     * inflates the quantum during fast-forward stretches (token
     * hand-offs dominate fast-forward cost, and timing fidelity is
     * not being measured there) and restores it for warming/detail
     * units. Scheduling remains a pure function of the virtual
     * timeline — the quantum switch itself happens at deterministic
     * points of that timeline — so runs stay reproducible. Must be
     * called from the token-holding CPU's thread (or before run()).
     */
    void setQuantum(Tick quantum);

    /** Final virtual time of @p cpu after run(). */
    Tick cpuTime(unsigned cpu) const;

    // --- Interface for SimContext and the sync primitives ----------

    /** Charge time to @p cpu; yields when too far ahead. */
    void advance(unsigned cpu, Cycles cycles);

    /** Current virtual time of @p cpu. */
    Tick timeOf(unsigned cpu) const;

    /**
     * Block the calling CPU until another CPU calls unblock() on
     * it. Must be called from @p cpu's own thread while it holds
     * the execution token.
     */
    void block(unsigned cpu);

    /**
     * Mark @p cpu runnable again with its clock advanced to at
     * least @p at. The caller KEEPS the execution token; the woken
     * CPU runs when the token next reaches it.
     */
    void unblock(unsigned cpu, Tick at);

  private:
    enum class State { Runnable, Blocked, Finished };

    /** Index of the minimum-time runnable CPU, or -1. */
    int minRunnable() const;
    /** Hand the token to the minimum-time runnable CPU. */
    void transferToken();
    void waitForToken(std::unique_lock<std::mutex> &lock,
                      unsigned cpu);

    unsigned ncpus_;
    Tick quantum_;
    mutable std::mutex mutex_;
    std::vector<std::condition_variable> cvs_;
    std::vector<Tick> time_;
    std::vector<State> state_;
    /** CPU currently holding the execution token, or -1. */
    int running_cpu_ = -1;
    bool running_ = false;
};

} // namespace memwall

#endif // MEMWALL_MP_SCHEDULER_HH
