#include "mp/scheduler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace memwall {

void
SimContext::advance(Cycles cycles)
{
    sched_->advance(cpu_, cycles);
}

Tick
SimContext::now() const
{
    return sched_->timeOf(cpu_);
}

MpScheduler::MpScheduler(unsigned ncpus, Tick quantum)
    : ncpus_(ncpus), quantum_(quantum), cvs_(ncpus),
      time_(ncpus, 0), state_(ncpus, State::Finished)
{
    MW_ASSERT(ncpus_ >= 1, "need at least one cpu");
}

MpScheduler::~MpScheduler() = default;

int
MpScheduler::minRunnable() const
{
    int best = -1;
    for (unsigned i = 0; i < ncpus_; ++i) {
        if (state_[i] != State::Runnable)
            continue;
        if (best < 0 || time_[i] < time_[best])
            best = static_cast<int>(i);
    }
    return best;
}

void
MpScheduler::transferToken()
{
    const int next = minRunnable();
    running_cpu_ = next;
    if (next >= 0)
        cvs_[next].notify_one();
}

void
MpScheduler::waitForToken(std::unique_lock<std::mutex> &lock,
                          unsigned cpu)
{
    cvs_[cpu].wait(lock, [&] {
        return running_cpu_ == static_cast<int>(cpu);
    });
}

void
MpScheduler::advance(unsigned cpu, Cycles cycles)
{
    std::unique_lock<std::mutex> lock(mutex_);
    MW_ASSERT(cpu < ncpus_, "bad cpu id");
    MW_ASSERT(running_cpu_ == static_cast<int>(cpu),
              "advance without the execution token");
    time_[cpu] += cycles;

    // Keep the token while within the skew quantum of the slowest
    // runnable peer.
    const int min = minRunnable();
    if (min < 0 || min == static_cast<int>(cpu) ||
        time_[cpu] <= time_[min] + quantum_)
        return;
    transferToken();
    waitForToken(lock, cpu);
}

Tick
MpScheduler::quantum() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return quantum_;
}

void
MpScheduler::setQuantum(Tick quantum)
{
    std::unique_lock<std::mutex> lock(mutex_);
    quantum_ = quantum;
}

Tick
MpScheduler::timeOf(unsigned cpu) const
{
    std::unique_lock<std::mutex> lock(mutex_);
    MW_ASSERT(cpu < ncpus_, "bad cpu id");
    return time_[cpu];
}

void
MpScheduler::block(unsigned cpu)
{
    std::unique_lock<std::mutex> lock(mutex_);
    MW_ASSERT(running_cpu_ == static_cast<int>(cpu),
              "block without the execution token");
    state_[cpu] = State::Blocked;
    if (minRunnable() < 0)
        MW_PANIC("MP workload deadlock: cpu ", cpu,
                 " blocked and no peer is runnable");
    transferToken();
    // Wait until someone unblocks us AND the token reaches us.
    cvs_[cpu].wait(lock, [&] {
        return running_cpu_ == static_cast<int>(cpu) &&
               state_[cpu] == State::Runnable;
    });
}

void
MpScheduler::unblock(unsigned cpu, Tick at)
{
    std::unique_lock<std::mutex> lock(mutex_);
    MW_ASSERT(state_[cpu] == State::Blocked,
              "unblocking a cpu that is not blocked");
    time_[cpu] = std::max(time_[cpu], at);
    state_[cpu] = State::Runnable;
    // No token transfer: the caller continues; the woken CPU gets
    // the token at the caller's next yield point.
}

Tick
MpScheduler::run(const std::function<void(SimContext &)> &body)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        MW_ASSERT(!running_, "scheduler already running");
        running_ = true;
        std::fill(time_.begin(), time_.end(), 0);
        std::fill(state_.begin(), state_.end(), State::Runnable);
        running_cpu_ = -1;
    }

    std::vector<std::thread> threads;
    threads.reserve(ncpus_);
    for (unsigned cpu = 0; cpu < ncpus_; ++cpu) {
        threads.emplace_back([this, cpu, &body] {
            {
                std::unique_lock<std::mutex> lock(mutex_);
                waitForToken(lock, cpu);
            }
            SimContext ctx(*this, cpu);
            body(ctx);
            {
                std::unique_lock<std::mutex> lock(mutex_);
                state_[cpu] = State::Finished;
                transferToken();
            }
        });
    }
    // Hand the token to the first CPU.
    {
        std::unique_lock<std::mutex> lock(mutex_);
        transferToken();
    }
    for (auto &t : threads)
        t.join();

    Tick makespan = 0;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        running_ = false;
        for (unsigned i = 0; i < ncpus_; ++i) {
            MW_ASSERT(state_[i] == State::Finished,
                      "cpu ", i, " did not finish");
            makespan = std::max(makespan, time_[i]);
        }
    }
    return makespan;
}

Tick
MpScheduler::cpuTime(unsigned cpu) const
{
    std::unique_lock<std::mutex> lock(mutex_);
    MW_ASSERT(cpu < ncpus_, "bad cpu id");
    return time_[cpu];
}

} // namespace memwall
