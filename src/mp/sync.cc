#include "mp/sync.hh"

#include <algorithm>

#include "common/logging.hh"

namespace memwall {

SimBarrier::SimBarrier(unsigned parties, SyncCosts costs)
    : parties_(parties), costs_(costs)
{
    MW_ASSERT(parties_ >= 1, "barrier needs at least one party");
}

void
SimBarrier::wait(SimContext &ctx)
{
    MpScheduler &sched = ctx.scheduler();
    const unsigned cpu = ctx.cpuId();

    // Note: the scheduler serialises simulated CPUs, so this state
    // is only ever touched by one thread at a time.
    max_arrival_ = std::max(max_arrival_, ctx.now());
    ++arrived_;
    if (arrived_ < parties_) {
        waiters_.push_back(cpu);
        sched.block(cpu);
        return;  // released by the last arriver, clock already set
    }
    // Last arriver: release everyone at the common leave time.
    const Tick leave = max_arrival_ + costs_.barrier;
    for (unsigned waiter : waiters_)
        sched.unblock(waiter, leave);
    waiters_.clear();
    arrived_ = 0;
    max_arrival_ = 0;
    ++episodes_;
    // Charge the last arriver up to the leave time as well.
    const Tick now = ctx.now();
    ctx.advance(leave > now ? leave - now : 0);
}

SimLock::SimLock(SyncCosts costs) : costs_(costs)
{
}

void
SimLock::acquire(SimContext &ctx)
{
    MpScheduler &sched = ctx.scheduler();
    const unsigned cpu = ctx.cpuId();
    ++acquisitions_;

    if (!held_) {
        held_ = true;
        holder_ = static_cast<int>(cpu);
        ctx.advance(costs_.lock_acquire);
        return;
    }
    // Contended: queue in deterministic arrival order.
    ++contended_;
    queue_.push_back(cpu);
    sched.block(cpu);
    // When unblocked we own the lock and the clock has been set by
    // release().
}

void
SimLock::release(SimContext &ctx)
{
    MW_ASSERT(held_ && holder_ == static_cast<int>(ctx.cpuId()),
              "release by non-holder cpu ", ctx.cpuId());
    ctx.advance(costs_.lock_release);
    release_time_ = ctx.now();
    if (queue_.empty()) {
        held_ = false;
        holder_ = -1;
        return;
    }
    const unsigned next = queue_.front();
    queue_.pop_front();
    holder_ = static_cast<int>(next);
    ctx.scheduler().unblock(next,
                            release_time_ + costs_.lock_handoff);
}

} // namespace memwall
