#include "mp/shared.hh"

#include "common/logging.hh"

namespace memwall {

MpRuntime::MpRuntime(unsigned ncpus, NumaConfig machine_config)
    : sched_(ncpus), machine_(machine_config)
{
    MW_ASSERT(ncpus <= machine_config.nodes,
              "more cpus than machine nodes");
}

Addr
MpRuntime::allocate(std::uint64_t bytes, const std::string &name)
{
    const std::uint64_t page = machine_.config().page_bytes;
    const Addr base = next_addr_;
    next_addr_ += (bytes + page - 1) / page * page;
    MW_VERBOSE("alloc ", name, ": ", bytes, " bytes at 0x", std::hex,
               base, std::dec);
    return base;
}

} // namespace memwall
