#include "analysis/lint.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "isa/opcodes.hh"

namespace memwall {

namespace {

const std::vector<std::string> kIds = {
    "use-undef",   "dead-store",   "unreachable", "uninit-load",
    "misaligned",  "call-clobber", "no-exit-loop", "div-by-zero",
    "oob-access",  "jump-oob",
};

std::string
regName(unsigned r)
{
    std::string n = "r";
    n += std::to_string(r);
    return n;
}

std::string
hexAddr(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

/** Name of the symbol at @p addr, or its hex form. */
std::string
symbolAt(const Program &prog, Addr addr)
{
    for (const auto &[name, a] : prog.assembled().symbols)
        if (a == addr)
            return name;
    return hexAddr(addr);
}

bool
isCallInstr(const Instruction &inst)
{
    return (inst.op == Opcode::Jal || inst.op == Opcode::Jalr) &&
           inst.rd != 0;
}

struct Linter
{
    const Program &prog;
    const Cfg &cfg;
    const Dataflow &df;
    const StaticCharacterization &chr;
    const AbsInt &ai;
    std::vector<Diagnostic> out;
    /** Instructions the charact-based memory checks already
     * reported, so the range-strengthened variants don't repeat
     * them under the same ID. */
    std::set<std::size_t> mis_reported;
    std::set<std::size_t> uninit_reported;

    void
    report(const char *id, std::size_t instr, std::string msg)
    {
        Diagnostic d;
        d.id = id;
        d.line = prog.line(instr);
        d.addr = prog.instr(instr).addr;
        d.message = std::move(msg);
        out.push_back(std::move(d));
    }

    bool
    reachableInstr(std::size_t i) const
    {
        return cfg.reachable()[cfg.blockOf(i)];
    }

    void checkUnreachable();
    void checkUseUndef();
    void checkDeadStore();
    void checkMemory();   // uninit-load + misaligned
    void checkCallClobber();
    void checkNoExitLoop();
    // Range-driven checks (AbsInt): provable violations only.
    void checkDivByZero();
    void checkOob();
    void checkJumpOob();
    void checkRangeMemory();  // strengthened misaligned/uninit-load
};

void
Linter::checkUnreachable()
{
    for (const BasicBlock &bb : cfg.blocks()) {
        if (cfg.reachable()[bb.id])
            continue;
        report("unreachable", bb.first,
               "code is unreachable from the entry point");
    }
}

void
Linter::checkUseUndef()
{
    for (std::size_t i = 0; i < prog.size(); ++i) {
        const InstrRecord &rec = prog.instr(i);
        if (!rec.decoded || !reachableInstr(i))
            continue;
        // A call's conservative all-registers use is a modelling
        // convention, not a source-level read.
        if (isCallInstr(rec.inst))
            continue;
        std::uint32_t undef = usesOf(rec.inst) & ~df.mayDefIn(i);
        for (unsigned r = 1; r < 32; ++r)
            if (undef & (1u << r))
                report("use-undef", i,
                       "use of " + regName(r) +
                           " which is never defined on any path");
    }
}

void
Linter::checkDeadStore()
{
    for (std::size_t i = 0; i < prog.size(); ++i) {
        const InstrRecord &rec = prog.instr(i);
        if (!rec.decoded || !reachableInstr(i))
            continue;
        // A call's link-register write is part of the calling
        // convention even when the callee is a leaf's caller that
        // never returns through it.
        if (isCallInstr(rec.inst))
            continue;
        unsigned d = defOf(rec.inst);
        if (d == 0 || (df.liveOut(i) & (1u << d)))
            continue;
        report("dead-store", i,
               "value written to " + regName(d) +
                   " is overwritten before it is ever read");
    }
}

void
Linter::checkMemory()
{
    // If any store's touched region is unknown, it may initialise
    // anything — the uninit-load check stands down entirely.
    bool stores_known = true;
    for (const MemOpChar &m : chr.memops)
        if (m.is_store && !m.region_known)
            stores_known = false;
    // An unresolved call target can hide stores the same way.
    for (const CallSite &cs : cfg.calls())
        if (!cs.known)
            stores_known = false;

    for (const MemOpChar &m : chr.memops) {
        // misaligned: provable either from a constant address or
        // from a strided chain whose every access is offset.
        bool mis = false;
        if (m.size > 1 && m.region_known) {
            if (m.kind == MemOpChar::Kind::Constant)
                mis = m.region_begin % m.size != 0;
            else if (m.kind == MemOpChar::Kind::Strided)
                mis = m.region_begin % m.size != 0 &&
                      m.stride % static_cast<std::int64_t>(m.size) ==
                          0;
        }
        if (mis) {
            report("misaligned", m.instr,
                   "misaligned " + std::to_string(m.size) +
                       "-byte access at " + hexAddr(m.region_begin) +
                       " (traps at runtime by default)");
            mis_reported.insert(m.instr);
        }

        if (m.is_store || !stores_known || !m.region_known)
            continue;
        if (!prog.inSpace(m.region_begin) ||
            !prog.inSpace(m.region_end - 1))
            continue;
        bool covered = false;
        for (const MemOpChar &s : chr.memops)
            if (s.is_store && s.region_known &&
                s.region_begin < m.region_end &&
                m.region_begin < s.region_end)
                covered = true;
        if (!covered) {
            report("uninit-load", m.instr,
                   "load from .space region at " +
                       hexAddr(m.region_begin) +
                       " which no store ever initialises");
            uninit_reported.insert(m.instr);
        }
    }
}

void
Linter::checkCallClobber()
{
    for (const CallSite &cs : cfg.calls()) {
        if (!cs.known || !reachableInstr(cs.instr))
            continue;
        const Instruction &inst = prog.instr(cs.instr).inst;
        // A register is damaged only when (a) the caller defined it
        // before the call, (b) still reads it after, and (c) the
        // callee clobbers it without restoring. Return values fail
        // (a) and save/restore idioms fail (c).
        std::uint32_t bad = df.calleeClobbers(cs.target) &
                            df.liveOut(cs.instr) &
                            df.mayDefIn(cs.instr) & ~1u;
        bad &= ~(1u << inst.rd);
        for (unsigned r = 1; r < 32; ++r)
            if (bad & (1u << r))
                report("call-clobber", cs.instr,
                       "call to " + symbolAt(prog, cs.target) +
                           " clobbers " + regName(r) +
                           " which is still live in the caller");
    }
}

void
Linter::checkNoExitLoop()
{
    for (const Loop &loop : cfg.loops()) {
        if (!loop.exit_blocks.empty())
            continue;
        bool escapes = false;
        for (unsigned b : loop.blocks) {
            const BasicBlock &bb = cfg.block(b);
            if (bb.is_exit || bb.has_unknown_succ)
                escapes = true;
            for (std::size_t i = bb.first; i <= bb.last; ++i)
                if (prog.instr(i).decoded &&
                    isCallInstr(prog.instr(i).inst))
                    escapes = true;  // the callee might halt
        }
        if (escapes)
            continue;
        const BasicBlock &hb = cfg.block(loop.header);
        report("no-exit-loop", hb.first,
               "loop can never exit: no edge leaves it and no "
               "instruction inside can halt");
    }
}

void
Linter::checkDivByZero()
{
    for (std::size_t i = 0; i < prog.size(); ++i) {
        const InstrRecord &rec = prog.instr(i);
        if (!rec.decoded || !reachableInstr(i))
            continue;
        if (rec.inst.op != Opcode::Div && rec.inst.op != Opcode::Rem)
            continue;
        const VRange &d = ai.before(i, rec.inst.rs2);
        if (d.isEmpty())
            continue;  // point provably never executes
        if (d.isConstant() && d.lo == 0)
            report("div-by-zero", i,
                   "divisor " + regName(rec.inst.rs2) +
                       " is provably zero (traps at runtime)");
    }
}

void
Linter::checkOob()
{
    const SourceMap &sm = prog.assembled().source_map;
    // Without declared data the program is address soup (or built
    // programmatically); any address is as good as another.
    if (sm.data_lines.empty() && sm.space_regions.empty())
        return;
    // The assembled footprint: every emitted word plus every .space
    // reservation, as a sorted merged interval set.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> sect;
    for (const auto &[a, w] : prog.assembled().words) {
        (void)w;
        sect.emplace_back(a, a + 4);
    }
    for (const auto &[b, e] : sm.space_regions)
        sect.emplace_back(b, e);
    std::sort(sect.begin(), sect.end());

    for (const MemOpChar &m : chr.memops) {
        if (!reachableInstr(m.instr))
            continue;
        const InstrRecord &rec = prog.instr(m.instr);
        // Stack traffic through r30 addresses memory the program
        // never declares; that is the calling convention, not a bug.
        if (rec.inst.rs1 == 30)
            continue;
        const VRange ea = ai.addressRange(m.instr);
        if (ea.isEmpty() || ea.isTop())
            continue;
        const std::uint64_t b = ea.lo;
        const std::uint64_t e =
            static_cast<std::uint64_t>(ea.hi) + m.size;
        bool hits = false;
        for (const auto &[sb, se] : sect)
            if (sb < e && b < se) {
                hits = true;
                break;
            }
        if (!hits)
            report("oob-access", m.instr,
                   std::string(m.is_store ? "store" : "load") +
                       " provably outside every assembled section "
                       "(address in [" +
                       hexAddr(ea.lo) + ", " + hexAddr(ea.hi) + "])");
    }
}

void
Linter::checkJumpOob()
{
    for (const JumpTable &jt : cfg.jumpTables()) {
        if (!reachableInstr(jt.jump_instr))
            continue;
        const VRange *ea = nullptr;
        for (const auto &[li, r] : ai.tableEas())
            if (li == jt.load_instr)
                ea = &r;
        if (ea == nullptr || ea->isEmpty() || ea->isTop())
            continue;
        const std::uint64_t b = ea->lo;
        const std::uint64_t e = static_cast<std::uint64_t>(ea->hi) + 4;
        if (e <= jt.begin || b >= jt.end)
            report("jump-oob", jt.load_instr,
                   "jump-table index load provably outside the "
                   "table at [" +
                       hexAddr(jt.begin) + ", " + hexAddr(jt.end) +
                       ")");
    }
}

void
Linter::checkRangeMemory()
{
    // Strengthened misaligned: the known low bits of the effective
    // address prove every execution breaks alignment, even when no
    // affine region was recovered.
    for (const MemOpChar &m : chr.memops) {
        if (m.size <= 1 || mis_reported.contains(m.instr) ||
            !reachableInstr(m.instr))
            continue;
        const VRange ea = ai.addressRange(m.instr);
        if (ea.isEmpty())
            continue;
        const std::uint32_t low = m.size - 1;
        if ((ea.known_mask & low) == low &&
            (ea.known_val & low) != 0)
            report("misaligned", m.instr,
                   "misaligned " + std::to_string(m.size) +
                       "-byte access (address is provably " +
                       std::to_string(ea.known_val & low) + " mod " +
                       std::to_string(m.size) +
                       "; traps at runtime by default)");
    }

    // Strengthened uninit-load: the load's address range sits
    // entirely in .space and every store's (sound) address range
    // misses it — so no execution can have initialised any byte the
    // load might read. Needs every store bounded.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> stores;
    for (const MemOpChar &s : chr.memops) {
        if (!s.is_store)
            continue;
        if (!s.range_known)
            return;  // an unbounded store may initialise anything
        stores.emplace_back(s.range_begin, s.range_end);
    }
    for (const MemOpChar &m : chr.memops) {
        if (m.is_store || uninit_reported.contains(m.instr) ||
            !m.range_known || !reachableInstr(m.instr))
            continue;
        const std::uint64_t b = m.range_begin, e = m.range_end;
        if (e - b > 4096)
            continue;  // keep the byte scan cheap
        bool in_space = true;
        for (std::uint64_t a = b; a < e; ++a)
            if (!prog.inSpace(a))
                in_space = false;
        if (!in_space)
            continue;
        bool covered = false;
        for (const auto &[sb, se] : stores)
            if (sb < e && b < se)
                covered = true;
        if (!covered)
            report("uninit-load", m.instr,
                   "load from .space bytes in [" + hexAddr(b) + ", " +
                       hexAddr(e) +
                       ") which no store ever initialises");
    }
}

} // namespace

std::string
Diagnostic::format(const std::string &file) const
{
    std::ostringstream os;
    os << file << ":" << line << ": "
       << (severity == Severity::Error ? "error" : "warning") << ": "
       << message << " [" << id << "]";
    return os.str();
}

std::vector<Diagnostic>
lint(const Program &prog, const Cfg &cfg, const Dataflow &df,
     const StaticCharacterization &chr, const AbsInt &ai)
{
    Linter l{prog, cfg, df, chr, ai, {}, {}, {}};
    if (prog.size() != 0) {
        l.checkUnreachable();
        l.checkUseUndef();
        l.checkDeadStore();
        l.checkMemory();
        l.checkCallClobber();
        l.checkNoExitLoop();
        l.checkDivByZero();
        l.checkOob();
        l.checkJumpOob();
        l.checkRangeMemory();
    }
    std::stable_sort(l.out.begin(), l.out.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         return a.line < b.line;
                     });
    return std::move(l.out);
}

std::vector<Diagnostic>
lintProgram(const AssembledProgram &asmprog)
{
    Program prog = Program::build(asmprog);
    Cfg cfg = Cfg::build(prog);
    Dataflow df = Dataflow::build(prog, cfg);
    StaticCharacterization chr = characterize(prog, cfg, df);
    AbsInt ai = AbsInt::build(prog, cfg, df, chr);
    annotateRanges(prog, chr, ai);
    return lint(prog, cfg, df, chr, ai);
}

bool
promoteErrors(std::vector<Diagnostic> &diags, const std::string &ids)
{
    if (ids.empty())
        return true;
    std::vector<std::string> want;
    std::string cur;
    for (char c : ids + ",") {
        if (c == ',') {
            if (!cur.empty())
                want.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    for (const std::string &w : want) {
        if (w == "all") {
            for (Diagnostic &d : diags)
                d.severity = Severity::Error;
            continue;
        }
        if (std::find(kIds.begin(), kIds.end(), w) == kIds.end())
            return false;
        for (Diagnostic &d : diags)
            if (d.id == w)
                d.severity = Severity::Error;
    }
    return true;
}

const std::vector<std::string> &
lintIds()
{
    return kIds;
}

} // namespace memwall
