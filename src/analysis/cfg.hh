/**
 * @file
 * Control-flow graph over the analysis IR.
 *
 * Basic blocks are discovered from branch/jump targets and
 * terminators; `jal rd!=r0` is treated as a call (fall-through
 * successor, callee recorded as a CallSite rather than a CFG edge).
 * Indirect jumps (`jalr r0`) are resolved where possible:
 *
 *  - a register that constant-folds (lui/ori/addi/add/sll chains)
 *    gives a single known target;
 *  - the jump-table idiom — a load whose base address chain reaches
 *    a constant pointing into .word data — yields the decoded
 *    target set of that table;
 *  - `jalr r0, ra` is a return (exit block);
 *  - anything else gets a conservative "unknown" edge to every
 *    address-taken block (or is an exit when none exist).
 *
 * On top of the graph: immediate dominators (iterative
 * Cooper/Harvey/Kennedy over RPO with a virtual root covering call
 * entries), natural loops with nesting depth and exit edges, and an
 * irreducibility flag (retreating edges whose target does not
 * dominate the source trigger the conservative fallback: no loop is
 * recorded for that region).
 */

#ifndef MEMWALL_ANALYSIS_CFG_HH
#define MEMWALL_ANALYSIS_CFG_HH

#include <cstdint>
#include <vector>

#include "analysis/program.hh"

namespace memwall {

/** A maximal straight-line run of instructions. */
struct BasicBlock
{
    unsigned id = 0;
    /** Inclusive instruction-index range [first, last]. */
    std::size_t first = 0, last = 0;
    std::vector<unsigned> succs;
    std::vector<unsigned> preds;
    /** Terminates in halt, return, or an undecodable word. */
    bool is_exit = false;
    /** Ends in an indirect jump whose targets were not recovered. */
    bool has_unknown_succ = false;
};

/** One `jal`/`jalr` call instruction. */
struct CallSite
{
    std::size_t instr = 0;  ///< instruction index of the call
    unsigned block = 0;     ///< enclosing block id
    Addr target = invalid_addr;
    bool known = false;     ///< target resolved statically
};

/** A recovered jump table: `jump_instr` is an indirect jump whose
 * target register was loaded (by `load_instr`) from the decoded
 * .word table at [begin, end). The recovered successor set of the
 * jump is exhaustive only for loads that stay inside the table —
 * mw32-lint's jump-oob check and the abstract interpreter's
 * containment validation both key off these bounds. */
struct JumpTable
{
    std::size_t jump_instr = 0;  ///< the `jalr r0` instruction
    std::size_t load_instr = 0;  ///< the `lw` feeding its target
    Addr begin = 0, end = 0;     ///< table bytes [begin, end)
};

/** A natural loop. */
struct Loop
{
    unsigned header = 0;
    /** Member block ids, sorted, including the header. */
    std::vector<unsigned> blocks;
    /** Blocks with at least one successor outside the loop. */
    std::vector<unsigned> exit_blocks;
    /** Nesting depth: 1 = outermost. */
    unsigned depth = 1;
    /** Index of the innermost enclosing loop, or -1. */
    int parent = -1;

    bool
    contains(unsigned block) const
    {
        for (unsigned b : blocks)
            if (b == block)
                return true;
        return false;
    }
};

class Cfg
{
  public:
    static Cfg build(const Program &prog);

    const std::vector<BasicBlock> &blocks() const { return blocks_; }
    const BasicBlock &block(unsigned id) const { return blocks_[id]; }
    std::size_t size() const { return blocks_.size(); }

    /** Block containing instruction @p instr. */
    unsigned blockOf(std::size_t instr) const { return block_of_[instr]; }

    /** Entry block id (the program entry point). */
    unsigned entry() const { return entry_; }

    const std::vector<CallSite> &calls() const { return calls_; }

    /**
     * Per-block reachability from the entry, following CFG edges,
     * call edges, and unknown-indirect edges to address-taken
     * blocks.
     */
    const std::vector<bool> &reachable() const { return reachable_; }

    /** Immediate dominator of each block (entry maps to itself;
     * unreachable blocks map to themselves). */
    const std::vector<unsigned> &idom() const { return idom_; }

    /** @return true iff @p a dominates @p b. */
    bool dominates(unsigned a, unsigned b) const;

    const std::vector<Loop> &loops() const { return loops_; }

    /** Innermost loop containing @p block, or -1. */
    int innermostLoop(unsigned block) const;

    /** A retreating edge with a non-dominating target was found. */
    bool irreducible() const { return irreducible_; }

    /** Reverse post-order over CFG edges (reachable blocks only). */
    const std::vector<unsigned> &rpo() const { return rpo_; }

    /** Instruction addresses referenced from .word data (potential
     * indirect-jump targets). */
    const std::vector<Addr> &addressTaken() const
    {
        return address_taken_;
    }

    /** Jump tables recovered while resolving indirect jumps. */
    const std::vector<JumpTable> &jumpTables() const
    {
        return jump_tables_;
    }

  private:
    std::vector<BasicBlock> blocks_;
    std::vector<unsigned> block_of_;
    std::vector<CallSite> calls_;
    std::vector<bool> reachable_;
    std::vector<unsigned> idom_;
    std::vector<unsigned> rpo_;
    std::vector<Loop> loops_;
    std::vector<Addr> address_taken_;
    std::vector<JumpTable> jump_tables_;
    std::vector<unsigned> rpo_num_;
    std::vector<unsigned> rootsuccs_;
    unsigned entry_ = 0;
    bool irreducible_ = false;

    void computeDominators(const std::vector<unsigned> &roots);
    void computeLoops();
};

} // namespace memwall

#endif // MEMWALL_ANALYSIS_CFG_HH
