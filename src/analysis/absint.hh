/**
 * @file
 * AbsInt — a forward abstract interpreter over the MW32 CFG with the
 * VRange (interval x known-bits) domain, computing a sound register
 * state for every program point.
 *
 * Fixpoint structure:
 *  - reverse-post-order worklist over reachable blocks;
 *  - widening at retreating-edge targets (loop headers) once a block
 *    has been revisited, followed by two narrowing sweeps;
 *  - per-edge refinement out of conditional branches (unsigned
 *    compares refine exactly; signed compares refine only when both
 *    operands provably sit in a half where signed and unsigned order
 *    agree);
 *  - loop headers with a charact-certified trip count
 *    (LoopChar::trip_sound) additionally clamp each recovered
 *    induction variable to [init, init + step*trip] (wrap-checked);
 *  - calls kill the callee's transitive write set and define the
 *    link register; callee entries and address-taken blocks start
 *    from top.
 *
 * Soundness contract (enforced by validation_absint_crosscheck):
 * for every execution that (a) starts at the program entry with
 * arbitrary register values, (b) runs with misaligned-access
 * trapping enabled (the default), and (c) returns only to the
 * continuation of the matching dynamic call (no wild `jalr r0, ra`
 * through a clobbered link register), every register value observed
 * immediately before an instruction executes is contained in
 * before(instr, reg).
 *
 * When any reachable control transfer cannot be bounded statically —
 * an unresolved indirect jump, a call with unknown target, or a
 * recovered jump table whose index load is not provably contained in
 * the table — the analysis degrades to TOP for every point
 * (topMode()): trivially sound, never silently wrong.
 */

#ifndef MEMWALL_ANALYSIS_ABSINT_HH
#define MEMWALL_ANALYSIS_ABSINT_HH

#include <array>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/charact.hh"
#include "analysis/dataflow.hh"
#include "analysis/program.hh"
#include "analysis/vrange.hh"

namespace memwall {

class AbsInt
{
  public:
    static AbsInt build(const Program &prog, const Cfg &cfg,
                        const Dataflow &df,
                        const StaticCharacterization &chr);

    /** Range of @p reg immediately before instruction @p instr
     * executes. r0 is always the constant 0. */
    const VRange &before(std::size_t instr, unsigned reg) const;

    /** Range of the effective address rs1 + imm of the load/store
     * (or jump-table load) at @p instr. Top when not a memory op. */
    VRange addressRange(std::size_t instr) const;

    /** The analysis degraded to top everywhere (unbounded control
     * flow); all queries return trivial answers. */
    bool topMode() const { return top_mode_; }

    /** Effective-address ranges of jump-table index loads, keyed by
     * load instruction index, captured *before* any containment
     * failure degrades the analysis to top. Sound for every
     * execution up to its first out-of-table jump, which makes them
     * usable evidence for the jump-oob diagnostic even in topMode().
     */
    const std::vector<std::pair<std::size_t, VRange>> &
    tableEas() const
    {
        return table_eas_;
    }

  private:
    const Program *prog_ = nullptr;
    std::vector<std::array<VRange, 32>> before_;
    std::vector<std::pair<std::size_t, VRange>> table_eas_;
    bool top_mode_ = false;
};

/**
 * Fold the abstract interpreter's results back into the
 * characterization: fill MemOpChar::range_* for every reference the
 * affine analysis could not bound, and compute the footprint upper
 * bound (exact regions where known, address ranges elsewhere).
 */
void annotateRanges(const Program &prog,
                    StaticCharacterization &chr, const AbsInt &ai);

} // namespace memwall

#endif // MEMWALL_ANALYSIS_ABSINT_HH
