#include "analysis/cfg.hh"

#include <algorithm>
#include <map>
#include <set>

namespace memwall {

namespace {

/** Result of the local backward address-chain resolver. */
struct AddrVal
{
    enum class Kind {
        Unknown,
        Const,     ///< register folds to a compile-time constant
        TableLoad  ///< register was loaded from .word data at `value`
    } kind = Kind::Unknown;
    std::uint32_t value = 0;
    /** For TableLoad: index of the `lw` that read the table. */
    std::size_t load_instr = Program::npos;

    static AddrVal none() { return {}; }
    static AddrVal constant(std::uint32_t v)
    {
        return {Kind::Const, v};
    }
};

/** True for instructions that end a basic block. */
bool
isTerminator(const InstrRecord &rec)
{
    if (!rec.decoded)
        return true;
    const Opcode op = rec.inst.op;
    if (isBranch(op) || op == Opcode::Halt)
        return true;
    // jal/jalr with rd == r0 are jumps; with a link register they
    // are calls and fall through.
    if (op == Opcode::Jal || op == Opcode::Jalr)
        return rec.inst.rd == 0;
    return false;
}

/** Static target of a direct branch/jump at @p rec. */
Addr
directTarget(const InstrRecord &rec)
{
    if (rec.inst.op == Opcode::Jal)
        return rec.addr + 4 +
               static_cast<Addr>(
                   static_cast<std::int64_t>(rec.inst.target) * 4);
    return rec.addr + 4 +
           static_cast<Addr>(
               static_cast<std::int64_t>(rec.inst.imm) * 4);
}

/**
 * Fold the value of @p reg just before instruction @p at by walking
 * the straight-line run backwards. The scan stops at terminators
 * and at branch targets (where values may merge from elsewhere), so
 * it only trusts facts established on the single fall-through path.
 */
class ChainResolver
{
  public:
    ChainResolver(const Program &prog,
                  const std::set<Addr> &labels)
        : prog_(prog), labels_(labels)
    {
    }

    AddrVal
    resolve(unsigned reg, std::size_t at, unsigned depth = 0) const
    {
        if (reg == 0)
            return AddrVal::constant(0);
        if (depth > 16)
            return AddrVal::none();
        for (std::size_t j = at; j-- > 0;) {
            const InstrRecord &rec = prog_.instr(j);
            // The run must be contiguous in memory.
            if (prog_.instr(j + 1).addr != rec.addr + 4)
                return AddrVal::none();
            if (isTerminator(rec))
                return AddrVal::none();
            if (rec.decoded && defOf(rec.inst) == reg)
                return eval(rec.inst, j, depth);
            if (labels_.contains(rec.addr))
                return AddrVal::none();
        }
        return AddrVal::none();
    }

  private:
    AddrVal
    eval(const Instruction &inst, std::size_t at,
         unsigned depth) const
    {
        auto sub = [&](unsigned r) {
            return resolve(r, at, depth + 1);
        };
        const auto uimm = static_cast<std::uint32_t>(inst.imm);
        switch (inst.op) {
          case Opcode::Lui:
            return AddrVal::constant(uimm << 16);
          case Opcode::Ori: {
            const AddrVal a = sub(inst.rs1);
            if (a.kind == AddrVal::Kind::Const)
                return AddrVal::constant(a.value | (uimm & 0xffffu));
            return AddrVal::none();
          }
          case Opcode::Addi: {
            const AddrVal a = sub(inst.rs1);
            if (a.kind == AddrVal::Kind::Const)
                return AddrVal::constant(a.value + uimm);
            return AddrVal::none();
          }
          case Opcode::Add: {
            const AddrVal a = sub(inst.rs1);
            const AddrVal b = sub(inst.rs2);
            if (a.kind == AddrVal::Kind::Const &&
                b.kind == AddrVal::Kind::Const)
                return AddrVal::constant(a.value + b.value);
            // base + variable index: keep the constant side when it
            // points at data (a jump-table base).
            for (const AddrVal &v : {a, b})
                if (v.kind == AddrVal::Kind::Const &&
                    prog_.isDataWord(v.value))
                    return v;
            return AddrVal::none();
          }
          case Opcode::Slli: {
            const AddrVal a = sub(inst.rs1);
            if (a.kind == AddrVal::Kind::Const)
                return AddrVal::constant(a.value << (uimm & 31));
            return AddrVal::none();
          }
          case Opcode::Lw: {
            const AddrVal base = sub(inst.rs1);
            if (base.kind == AddrVal::Kind::Const)
                return AddrVal{AddrVal::Kind::TableLoad,
                               base.value + uimm, at};
            return AddrVal::none();
          }
          default:
            return AddrVal::none();
        }
    }

    const Program &prog_;
    const std::set<Addr> &labels_;
};

} // namespace

Cfg
Cfg::build(const Program &prog)
{
    Cfg cfg;
    const std::size_t n = prog.size();
    if (n == 0)
        return cfg;

    // Instruction addresses referenced from data words: potential
    // indirect-jump targets (jump tables, function-pointer tables).
    std::set<Addr> taken;
    for (const auto &[addr, line] :
         prog.assembled().source_map.data_lines) {
        (void)line;
        const auto it = prog.assembled().words.find(addr);
        if (it != prog.assembled().words.end() &&
            prog.indexOf(it->second) != Program::npos)
            taken.insert(it->second);
    }
    cfg.address_taken_.assign(taken.begin(), taken.end());

    // Pass 1: static labels (direct branch/jump targets).
    std::set<Addr> labels;
    for (std::size_t i = 0; i < n; ++i) {
        const InstrRecord &rec = prog.instr(i);
        if (!rec.decoded)
            continue;
        if (isBranch(rec.inst.op) || rec.inst.op == Opcode::Jal)
            labels.insert(directTarget(rec));
    }
    for (Addr a : taken)
        labels.insert(a);

    // Pass 2: resolve indirect jumps (jalr r0) so their recovered
    // targets become leaders too.
    ChainResolver resolver(prog, labels);
    // Per-instruction recovered target lists for jalr r0.
    std::vector<std::vector<Addr>> indirect_targets(n);
    std::vector<bool> indirect_unknown(n, false);
    for (std::size_t i = 0; i < n; ++i) {
        const InstrRecord &rec = prog.instr(i);
        if (!rec.decoded || rec.inst.op != Opcode::Jalr ||
            rec.inst.rd != 0)
            continue;
        if (rec.inst.rs1 == 31) {
            // jalr r0, ra: a return; successors live in the caller.
            continue;
        }
        const AddrVal v = resolver.resolve(rec.inst.rs1, i);
        if (v.kind == AddrVal::Kind::Const) {
            const Addr dest =
                (static_cast<Addr>(v.value) +
                 static_cast<std::uint32_t>(rec.inst.imm)) &
                ~Addr{3};
            if (prog.indexOf(dest) != Program::npos)
                indirect_targets[i].push_back(dest);
            else
                indirect_unknown[i] = true;
        } else if (v.kind == AddrVal::Kind::TableLoad) {
            // Decode the jump table: consecutive data words whose
            // values are instruction addresses.
            Addr slot = v.value;
            for (; prog.isDataWord(slot); slot += 4) {
                const auto it = prog.assembled().words.find(slot);
                if (it == prog.assembled().words.end() ||
                    prog.indexOf(it->second) == Program::npos)
                    break;
                indirect_targets[i].push_back(it->second);
            }
            if (indirect_targets[i].empty())
                indirect_unknown[i] = true;
            else
                cfg.jump_tables_.push_back(
                    {i, v.load_instr, v.value, slot});
        } else {
            indirect_unknown[i] = true;
        }
        for (Addr t : indirect_targets[i])
            labels.insert(t);
    }

    // Pass 3: leaders -> blocks.
    std::vector<bool> leader(n, false);
    if (prog.entryIndex() != Program::npos)
        leader[prog.entryIndex()] = true;
    leader[0] = true;
    for (Addr a : labels) {
        const std::size_t i = prog.indexOf(a);
        if (i != Program::npos)
            leader[i] = true;
    }
    for (std::size_t i = 0; i + 1 < n; ++i) {
        if (isTerminator(prog.instr(i)) ||
            prog.instr(i + 1).addr != prog.instr(i).addr + 4)
            leader[i + 1] = true;
    }

    cfg.block_of_.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        if (leader[i]) {
            BasicBlock bb;
            bb.id = static_cast<unsigned>(cfg.blocks_.size());
            bb.first = bb.last = i;
            cfg.blocks_.push_back(bb);
        } else {
            cfg.blocks_.back().last = i;
        }
        cfg.block_of_[i] = cfg.blocks_.back().id;
    }
    if (prog.entryIndex() != Program::npos)
        cfg.entry_ = cfg.block_of_[prog.entryIndex()];

    // Pass 4: edges and call sites.
    auto blockAt = [&](Addr a) -> int {
        const std::size_t i = prog.indexOf(a);
        return i == Program::npos ? -1
                                  : static_cast<int>(cfg.block_of_[i]);
    };
    for (BasicBlock &bb : cfg.blocks_) {
        // Calls anywhere in the block.
        for (std::size_t i = bb.first; i <= bb.last; ++i) {
            const InstrRecord &rec = prog.instr(i);
            if (!rec.decoded || rec.inst.rd == 0)
                continue;
            if (rec.inst.op == Opcode::Jal) {
                const Addr t = directTarget(rec);
                cfg.calls_.push_back(
                    {i, bb.id, t, prog.indexOf(t) != Program::npos});
            } else if (rec.inst.op == Opcode::Jalr) {
                const AddrVal v = resolver.resolve(rec.inst.rs1, i);
                if (v.kind == AddrVal::Kind::Const) {
                    const Addr dest =
                        (static_cast<Addr>(v.value) +
                         static_cast<std::uint32_t>(rec.inst.imm)) &
                        ~Addr{3};
                    cfg.calls_.push_back(
                        {i, bb.id, dest,
                         prog.indexOf(dest) != Program::npos});
                } else {
                    cfg.calls_.push_back(
                        {i, bb.id, invalid_addr, false});
                }
            }
        }

        const std::size_t t = bb.last;
        const InstrRecord &term = prog.instr(t);
        auto addSucc = [&](int id) {
            if (id >= 0)
                bb.succs.push_back(static_cast<unsigned>(id));
        };
        const bool contiguous =
            t + 1 < n && prog.instr(t + 1).addr == term.addr + 4;

        if (!term.decoded) {
            bb.is_exit = true;
        } else if (isBranch(term.inst.op)) {
            const int target = blockAt(directTarget(term));
            if (target < 0)
                bb.has_unknown_succ = true;
            addSucc(target);
            if (contiguous)
                addSucc(static_cast<int>(cfg.block_of_[t + 1]));
        } else if (term.inst.op == Opcode::Jal &&
                   term.inst.rd == 0) {
            const int target = blockAt(directTarget(term));
            if (target < 0)
                bb.has_unknown_succ = true;
            addSucc(target);
        } else if (term.inst.op == Opcode::Jalr &&
                   term.inst.rd == 0) {
            if (!indirect_targets[t].empty()) {
                for (Addr a : indirect_targets[t])
                    addSucc(blockAt(a));
            } else if (term.inst.rs1 == 31) {
                bb.is_exit = true;  // return
            } else if (indirect_unknown[t]) {
                // Conservative fallback: any address-taken block.
                bb.has_unknown_succ = true;
                for (Addr a : taken)
                    addSucc(blockAt(a));
                if (bb.succs.empty())
                    bb.is_exit = true;
            }
        } else if (term.inst.op == Opcode::Halt) {
            bb.is_exit = true;
        } else {
            // Fell off the end of the block (next is a leader) or
            // a call's fall-through.
            if (contiguous)
                addSucc(static_cast<int>(cfg.block_of_[t + 1]));
            else
                bb.is_exit = true;
        }

        // Dedup successors (a branch whose target is the
        // fall-through produces one edge).
        std::sort(bb.succs.begin(), bb.succs.end());
        bb.succs.erase(
            std::unique(bb.succs.begin(), bb.succs.end()),
            bb.succs.end());
    }
    for (const BasicBlock &bb : cfg.blocks_)
        for (unsigned s : bb.succs)
            cfg.blocks_[s].preds.push_back(bb.id);

    // Pass 5: reachability over CFG edges + call edges.
    std::vector<unsigned> roots{cfg.entry_};
    for (const CallSite &c : cfg.calls_)
        if (c.known) {
            const std::size_t i = prog.indexOf(c.target);
            if (i != Program::npos)
                roots.push_back(cfg.block_of_[i]);
        }
    cfg.reachable_.assign(cfg.blocks_.size(), false);
    {
        std::vector<unsigned> stack{cfg.entry_};
        cfg.reachable_[cfg.entry_] = true;
        while (!stack.empty()) {
            const unsigned b = stack.back();
            stack.pop_back();
            auto visit = [&](unsigned s) {
                if (!cfg.reachable_[s]) {
                    cfg.reachable_[s] = true;
                    stack.push_back(s);
                }
            };
            for (unsigned s : cfg.blocks_[b].succs)
                visit(s);
            for (const CallSite &c : cfg.calls_)
                if (c.block == b && c.known) {
                    const std::size_t i = prog.indexOf(c.target);
                    if (i != Program::npos)
                        visit(cfg.block_of_[i]);
                }
        }
    }

    cfg.computeDominators(roots);
    cfg.computeLoops();
    return cfg;
}

void
Cfg::computeDominators(const std::vector<unsigned> &roots)
{
    const std::size_t n = blocks_.size();
    const unsigned vroot = static_cast<unsigned>(n);

    // RPO over CFG edges from a virtual root that covers the entry
    // and every known callee entry.
    std::vector<int> state(n + 1, 0);  // 0 new, 1 open, 2 done
    std::vector<unsigned> postorder;
    postorder.reserve(n + 1);
    // Iterative DFS.
    struct Frame
    {
        unsigned block;
        std::size_t next_succ;
    };
    std::vector<Frame> stack;
    rootsuccs_ = roots;
    auto succsOf = [&](unsigned b) -> const std::vector<unsigned> & {
        return b == vroot ? rootsuccs_ : blocks_[b].succs;
    };
    stack.push_back({vroot, 0});
    state[vroot] = 1;
    while (!stack.empty()) {
        Frame &f = stack.back();
        const auto &succs = succsOf(f.block);
        if (f.next_succ < succs.size()) {
            const unsigned s = succs[f.next_succ++];
            if (state[s] == 0) {
                state[s] = 1;
                stack.push_back({s, 0});
            }
        } else {
            state[f.block] = 2;
            postorder.push_back(f.block);
            stack.pop_back();
        }
    }
    std::vector<unsigned> rpo(postorder.rbegin(), postorder.rend());

    std::vector<unsigned> rpo_num(n + 1, 0);
    for (std::size_t i = 0; i < rpo.size(); ++i)
        rpo_num[rpo[i]] = static_cast<unsigned>(i);
    rpo_.clear();
    for (unsigned b : rpo)
        if (b != vroot)
            rpo_.push_back(b);

    // Cooper/Harvey/Kennedy iterative dominators.
    std::vector<unsigned> idom(n + 1, vroot + 1);  // undefined marker
    idom[vroot] = vroot;
    auto intersect = [&](unsigned a, unsigned b) {
        while (a != b) {
            while (rpo_num[a] > rpo_num[b])
                a = idom[a];
            while (rpo_num[b] > rpo_num[a])
                b = idom[b];
        }
        return a;
    };
    bool changed = true;
    while (changed) {
        changed = false;
        for (unsigned b : rpo) {
            if (b == vroot)
                continue;
            unsigned new_idom = vroot + 1;
            // Preds over the same augmented edge set.
            std::vector<unsigned> preds = blocks_[b].preds;
            for (unsigned r : roots)
                if (r == b)
                    preds.push_back(vroot);
            for (unsigned p : preds) {
                if (idom[p] == vroot + 1)
                    continue;  // not processed yet
                new_idom = new_idom == vroot + 1
                               ? p
                               : intersect(p, new_idom);
            }
            if (new_idom != vroot + 1 && idom[b] != new_idom) {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }

    idom_.assign(n, 0);
    for (std::size_t b = 0; b < n; ++b) {
        if (idom[b] >= vroot)
            idom_[b] = static_cast<unsigned>(b);  // root/unreachable
        else
            idom_[b] = idom[b];
    }
    rpo_num_ = rpo_num;
    rpo_num_.resize(n);
}

bool
Cfg::dominates(unsigned a, unsigned b) const
{
    while (true) {
        if (a == b)
            return true;
        const unsigned up = idom_[b];
        if (up == b)
            return a == b;
        b = up;
    }
}

void
Cfg::computeLoops()
{
    const std::size_t n = blocks_.size();
    // Back edges: target dominates source. Retreating edges that
    // are not back edges flag irreducibility (conservative
    // fallback: the region gets no loop info).
    std::map<unsigned, std::vector<unsigned>> latches;  // header -> srcs
    for (const BasicBlock &bb : blocks_) {
        if (!reachable_[bb.id])
            continue;
        for (unsigned s : bb.succs) {
            if (rpo_num_[s] > rpo_num_[bb.id])
                continue;  // forward edge
            if (dominates(s, bb.id))
                latches[s].push_back(bb.id);
            else if (s != bb.id)
                irreducible_ = true;
        }
    }

    for (const auto &[header, srcs] : latches) {
        Loop loop;
        loop.header = header;
        std::set<unsigned> body{header};
        std::vector<unsigned> work(srcs.begin(), srcs.end());
        while (!work.empty()) {
            const unsigned b = work.back();
            work.pop_back();
            if (!body.insert(b).second)
                continue;
            for (unsigned p : blocks_[b].preds)
                if (reachable_[p])
                    work.push_back(p);
        }
        loop.blocks.assign(body.begin(), body.end());
        for (unsigned b : body) {
            bool exits = blocks_[b].has_unknown_succ;
            for (unsigned s : blocks_[b].succs)
                if (!body.contains(s))
                    exits = true;
            if (exits)
                loop.exit_blocks.push_back(b);
        }
        loops_.push_back(std::move(loop));
    }

    // Nesting: parent = smallest strictly-containing loop.
    for (std::size_t i = 0; i < loops_.size(); ++i) {
        std::size_t best = loops_.size();
        for (std::size_t j = 0; j < loops_.size(); ++j) {
            if (i == j || !loops_[j].contains(loops_[i].header) ||
                loops_[j].header == loops_[i].header)
                continue;
            if (best == loops_.size() ||
                loops_[j].blocks.size() < loops_[best].blocks.size())
                best = j;
        }
        loops_[i].parent =
            best == loops_.size() ? -1 : static_cast<int>(best);
    }
    for (Loop &loop : loops_) {
        unsigned depth = 1;
        for (int p = loop.parent; p != -1; p = loops_[p].parent)
            ++depth;
        loop.depth = depth;
    }
    (void)n;
}

int
Cfg::innermostLoop(unsigned block) const
{
    int best = -1;
    for (std::size_t i = 0; i < loops_.size(); ++i) {
        if (!loops_[i].contains(block))
            continue;
        if (best == -1 || loops_[i].depth > loops_[best].depth)
            best = static_cast<int>(i);
    }
    return best;
}

} // namespace memwall
