#include "analysis/absint.hh"

#include <algorithm>
#include <bit>
#include <map>
#include <set>

namespace memwall {

namespace {

using State = std::array<VRange, 32>;

State
topState()
{
    State st;
    st.fill(VRange::top());
    st[0] = VRange::constant(0);
    return st;
}

State
emptyState()
{
    State st;
    st.fill(VRange::empty());
    return st;
}

bool
anyEmpty(const State &st)
{
    for (const VRange &r : st)
        if (r.isEmpty())
            return true;
    return false;
}

State
joinStates(const State &a, const State &b)
{
    State r;
    for (unsigned i = 0; i < 32; ++i)
        r[i] = VRange::join(a[i], b[i]);
    return r;
}

/** Remove the single value @p c from @p x when it sits on a bound. */
VRange
excludeConst(const VRange &x, const VRange &c)
{
    if (x.isEmpty() || !c.isConstant())
        return x;
    if (x.isConstant())
        return x.lo == c.lo ? VRange::empty() : x;
    VRange r = x;
    if (r.lo == c.lo)
        r.lo += 1;
    if (r.hi == c.lo)
        r.hi -= 1;
    return r.reduced();
}

/**
 * Refine the operand ranges of conditional branch @p in along one
 * outgoing edge. Unsigned compares refine exactly; signed compares
 * only when both operands provably sit in one half of the unsigned
 * line, where signed and unsigned order coincide.
 */
void
applyBranchRefine(State &st, const Instruction &in, bool taken)
{
    const VRange a = st[in.rs1];
    const VRange b = st[in.rs2];
    VRange na = a, nb = b;

    auto below = [](const VRange &x, const VRange &y, VRange &nx,
                    VRange &ny) {
        // x < y (unsigned)
        nx = y.hi == 0 ? VRange::empty()
                       : VRange::meet(x, VRange::interval(0, y.hi - 1));
        ny = x.lo == 0xffffffffu
                 ? VRange::empty()
                 : VRange::meet(y, VRange::interval(x.lo + 1,
                                                    0xffffffffu));
    };
    auto atLeast = [](const VRange &x, const VRange &y, VRange &nx,
                      VRange &ny) {
        // x >= y (unsigned)
        nx = VRange::meet(x, VRange::interval(y.lo, 0xffffffffu));
        ny = VRange::meet(y, VRange::interval(0, x.hi));
    };
    const bool signed_ok =
        (!a.isEmpty() && !b.isEmpty()) &&
        ((a.hi < 0x80000000u && b.hi < 0x80000000u) ||
         (a.lo >= 0x80000000u && b.lo >= 0x80000000u));

    switch (in.op) {
      case Opcode::Beq:
        if (taken) {
            na = nb = VRange::meet(a, b);
        } else {
            na = excludeConst(a, b);
            nb = excludeConst(b, a);
        }
        break;
      case Opcode::Bne:
        if (!taken) {
            na = nb = VRange::meet(a, b);
        } else {
            na = excludeConst(a, b);
            nb = excludeConst(b, a);
        }
        break;
      case Opcode::Bltu:
        taken ? below(a, b, na, nb) : atLeast(a, b, na, nb);
        break;
      case Opcode::Bgeu:
        taken ? atLeast(a, b, na, nb) : below(a, b, na, nb);
        break;
      case Opcode::Blt:
        if (signed_ok)
            taken ? below(a, b, na, nb) : atLeast(a, b, na, nb);
        break;
      case Opcode::Bge:
        if (signed_ok)
            taken ? atLeast(a, b, na, nb) : below(a, b, na, nb);
        break;
      default:
        break;
    }
    if (in.rs1 != 0)
        st[in.rs1] = na;
    if (in.rs2 != 0)
        st[in.rs2] = nb;
}

class Builder
{
  public:
    Builder(const Program &prog, const Cfg &cfg, const Dataflow &df,
            const StaticCharacterization &chr)
        : prog_(prog), cfg_(cfg), df_(df), chr_(chr)
    {
        for (const CallSite &c : cfg.calls())
            call_at_[c.instr] = &c;
    }

    const Program &prog_;
    const Cfg &cfg_;
    const Dataflow &df_;
    const StaticCharacterization &chr_;
    std::map<std::size_t, const CallSite *> call_at_;
    std::set<unsigned> boundary_;
    /** Loop-header clamps from certified trip counts. */
    std::map<unsigned, std::vector<std::pair<unsigned, VRange>>>
        tighten_;
    std::vector<State> bin_, bout_;

    /** One instruction's abstract semantics (interpreter.cc rules).
     * Accesses that can trap (misaligned EA, zero divisor) also
     * refine their operands: only non-trapping executions continue
     * past the instruction. */
    void
    transferInstr(const InstrRecord &rec, State &st) const
    {
        if (!rec.decoded)
            return;  // execution stops here; no successor state
        const Instruction &in = rec.inst;
        const auto uimm = static_cast<std::uint32_t>(in.imm);
        auto setRd = [&](unsigned rd, const VRange &v) {
            if (rd != 0)
                st[rd] = v;
        };
        const VRange &a = st[in.rs1];
        const VRange &b = st[in.rs2];

        auto alignRefine = [&](unsigned size) {
            if (size <= 1 || in.rs1 == 0)
                return;
            // Misaligned accesses trap (the default execution
            // mode), so surviving paths have rs1 == -imm (mod size).
            st[in.rs1] = VRange::meet(
                st[in.rs1],
                VRange::bits(size - 1, (0u - uimm) & (size - 1)));
        };
        auto divRefine = [&]() {
            // A zero divisor traps: survivors have rs2 != 0.
            if (in.rs2 == 0) {
                st = emptyState();  // div by r0 always traps
                return;
            }
            if (st[in.rs2].lo == 0)
                st[in.rs2] = VRange::meet(
                    st[in.rs2], VRange::interval(1, 0xffffffffu));
        };

        switch (in.op) {
          case Opcode::Add: setRd(in.rd, VRange::add(a, b)); break;
          case Opcode::Sub: setRd(in.rd, VRange::sub(a, b)); break;
          case Opcode::And: setRd(in.rd, VRange::and_(a, b)); break;
          case Opcode::Or: setRd(in.rd, VRange::or_(a, b)); break;
          case Opcode::Xor: setRd(in.rd, VRange::xor_(a, b)); break;
          case Opcode::Sll: setRd(in.rd, VRange::shl(a, b)); break;
          case Opcode::Srl: setRd(in.rd, VRange::shr(a, b)); break;
          case Opcode::Sra: setRd(in.rd, VRange::sar(a, b)); break;
          case Opcode::Slt: setRd(in.rd, VRange::slt(a, b)); break;
          case Opcode::Sltu: setRd(in.rd, VRange::sltu(a, b)); break;
          case Opcode::Mul: setRd(in.rd, VRange::mul(a, b)); break;
          case Opcode::Div: {
            const VRange res = VRange::div(a, b);
            divRefine();
            setRd(in.rd, res);
            break;
          }
          case Opcode::Rem: {
            const VRange res = VRange::rem(a, b);
            divRefine();
            setRd(in.rd, res);
            break;
          }

          case Opcode::Addi:
            setRd(in.rd, VRange::add(a, VRange::constant(uimm)));
            break;
          case Opcode::Andi:
            setRd(in.rd,
                  VRange::and_(a, VRange::constant(uimm & 0xffffu)));
            break;
          case Opcode::Ori:
            setRd(in.rd,
                  VRange::or_(a, VRange::constant(uimm & 0xffffu)));
            break;
          case Opcode::Xori:
            setRd(in.rd,
                  VRange::xor_(a, VRange::constant(uimm & 0xffffu)));
            break;
          case Opcode::Slli:
            setRd(in.rd, VRange::shl(a, VRange::constant(uimm & 31)));
            break;
          case Opcode::Srli:
            setRd(in.rd, VRange::shr(a, VRange::constant(uimm & 31)));
            break;
          case Opcode::Srai:
            setRd(in.rd, VRange::sar(a, VRange::constant(uimm & 31)));
            break;
          case Opcode::Slti:
            setRd(in.rd, VRange::slt(a, VRange::constant(uimm)));
            break;
          case Opcode::Lui:
            setRd(in.rd, VRange::constant(uimm << 16));
            break;

          case Opcode::Lb:
            setRd(in.rd, VRange::top());
            break;
          case Opcode::Lbu:
            setRd(in.rd, VRange::interval(0, 0xff));
            break;
          case Opcode::Lh:
            alignRefine(2);
            setRd(in.rd, VRange::top());
            break;
          case Opcode::Lhu:
            alignRefine(2);
            setRd(in.rd, VRange::interval(0, 0xffff));
            break;
          case Opcode::Lw:
            alignRefine(4);
            setRd(in.rd, VRange::top());
            break;
          case Opcode::Sb:
            break;
          case Opcode::Sh:
            alignRefine(2);
            break;
          case Opcode::Sw:
            alignRefine(4);
            break;

          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
          case Opcode::Bge:
          case Opcode::Bltu:
          case Opcode::Bgeu:
            break;

          case Opcode::Jal:
          case Opcode::Jalr:
            if (in.rd != 0) {
                // A call: the callee may rewrite its transitive
                // write set (including registers it restores — a
                // "restore" is only a restore when the callee really
                // saved the caller's value first, which we do not
                // prove here).
                std::uint32_t writes = 0xfffffffeu;
                auto it = call_at_.find(
                    prog_.indexOf(rec.addr));
                if (it != call_at_.end() && it->second->known)
                    writes = df_.calleeWrites(it->second->target);
                for (unsigned r = 1; r < 32; ++r)
                    if (writes & (1u << r))
                        st[r] = VRange::top();
                setRd(in.rd,
                      VRange::constant(static_cast<std::uint32_t>(
                          rec.addr + 4)));
            }
            break;

          case Opcode::Halt:
          case Opcode::Sync:
            break;
        }
    }

    /** Run @p block from @p in; optionally record per-instruction
     * before-states. Returns the block's out-state. */
    State
    walkBlock(unsigned block, const State &in,
              std::vector<State> *record) const
    {
        const BasicBlock &bb = cfg_.block(block);
        State st = in;
        for (std::size_t i = bb.first; i <= bb.last; ++i) {
            if (anyEmpty(st))
                st = emptyState();  // point is unreachable
            if (record)
                (*record)[i] = st;
            transferInstr(prog_.instr(i), st);
        }
        return st;
    }

    /** State flowing along the edge @p p -> @p b. */
    State
    edgeState(unsigned p, unsigned b) const
    {
        State out = bout_[p];
        const std::size_t t = cfg_.block(p).last;
        const InstrRecord &term = prog_.instr(t);
        if (!term.decoded || !isBranch(term.inst.op))
            return out;
        const Addr taddr =
            term.addr + 4 +
            static_cast<Addr>(
                static_cast<std::int64_t>(term.inst.imm) * 4);
        const std::size_t ti = prog_.indexOf(taddr);
        const bool contiguous =
            t + 1 < prog_.size() &&
            prog_.instr(t + 1).addr == term.addr + 4;
        const bool is_taken =
            ti != Program::npos && cfg_.blockOf(ti) == b;
        const bool is_fall =
            contiguous && cfg_.blockOf(t + 1) == b;
        if (is_taken == is_fall)
            return out;  // same block on both edges: no refinement
        applyBranchRefine(out, term.inst, is_taken);
        return out;
    }

    void
    applyTighten(unsigned b, State &in) const
    {
        auto it = tighten_.find(b);
        if (it == tighten_.end())
            return;
        for (const auto &[reg, vr] : it->second)
            in[reg] = VRange::meet(in[reg], vr);
    }

    State
    computeIn(unsigned b) const
    {
        if (boundary_.contains(b))
            return topState();
        State in = emptyState();
        for (unsigned p : cfg_.block(b).preds)
            if (cfg_.reachable()[p])
                in = joinStates(in, edgeState(p, b));
        return in;
    }
};

} // namespace

AbsInt
AbsInt::build(const Program &prog, const Cfg &cfg,
              const Dataflow &df, const StaticCharacterization &chr)
{
    AbsInt ai;
    ai.prog_ = &prog;
    const std::size_t n = prog.size();
    ai.before_.assign(n, topState());
    if (n == 0)
        return ai;

    // Degrade to top when any reachable control transfer is
    // unbounded: an unresolved indirect jump can land anywhere, and
    // a call into the unknown can come back with anything.
    for (const BasicBlock &bb : cfg.blocks())
        if (cfg.reachable()[bb.id] && bb.has_unknown_succ)
            ai.top_mode_ = true;
    for (const CallSite &c : cfg.calls())
        if (cfg.reachable()[c.block] && !c.known)
            ai.top_mode_ = true;
    if (ai.top_mode_)
        return ai;

    Builder bld(prog, cfg, df, chr);

    // Boundary blocks start from top: the entry (registers are
    // runtime-seeded), callee entries (arbitrary call sites), and
    // address-taken blocks (indirect-jump landing pads).
    bld.boundary_.insert(cfg.entry());
    for (const CallSite &c : cfg.calls())
        if (c.known) {
            const std::size_t i = prog.indexOf(c.target);
            if (i != Program::npos)
                bld.boundary_.insert(cfg.blockOf(i));
        }
    for (Addr a : cfg.addressTaken()) {
        const std::size_t i = prog.indexOf(a);
        if (i != Program::npos)
            bld.boundary_.insert(cfg.blockOf(i));
    }

    // Certified loop-trip clamps: at the k-th header visit each
    // recovered IV holds init + k*step with k <= trip, so (wrap
    // permitting) it stays inside [init, init + step*trip] and
    // keeps init's low bits below the step's trailing zeros.
    for (const LoopChar &lc : chr.loops) {
        if (!lc.trip_sound || lc.loop < 0)
            continue;
        const unsigned header = cfg.loops()[lc.loop].header;
        if (bld.boundary_.contains(header))
            continue;  // enterable around the preheader: unsound
        for (const LoopIv &iv : lc.ivs) {
            if (iv.reg == 0 || iv.step == 0)
                continue;
            const std::int64_t a = iv.init;
            const std::int64_t b =
                iv.init +
                iv.step * static_cast<std::int64_t>(lc.trip);
            const std::int64_t lo64 = std::min(a, b);
            const std::int64_t hi64 = std::max(a, b);
            if (lo64 < 0 || hi64 >= (std::int64_t{1} << 32))
                continue;  // would wrap: no clamp
            VRange clamp = VRange::interval(
                static_cast<std::uint32_t>(lo64),
                static_cast<std::uint32_t>(hi64));
            const auto step_u =
                static_cast<std::uint32_t>(iv.step);
            const unsigned tz = static_cast<unsigned>(
                std::countr_zero(step_u));
            if (tz > 0 && tz < 32)
                clamp = VRange::meet(
                    clamp,
                    VRange::bits(
                        (std::uint32_t{1} << tz) - 1,
                        static_cast<std::uint32_t>(iv.init)));
            bld.tighten_[header].emplace_back(iv.reg, clamp);
        }
    }

    // Fixpoint over reachable blocks in RPO, widening at
    // retreating-edge targets from the third visit on.
    std::vector<unsigned> order;
    std::map<unsigned, std::size_t> pos;
    for (unsigned b : cfg.rpo())
        if (cfg.reachable()[b]) {
            pos[b] = order.size();
            order.push_back(b);
        }
    const std::size_t nb = cfg.size();
    bld.bin_.assign(nb, emptyState());
    bld.bout_.assign(nb, emptyState());
    std::vector<bool> widen_at(nb, false);
    for (unsigned b : order)
        for (unsigned p : cfg.block(b).preds)
            if (cfg.reachable()[p] && pos.contains(p) &&
                pos[p] >= pos[b])
                widen_at[b] = true;

    std::vector<int> visits(nb, 0);
    bool stable = false;
    for (int pass = 0; pass < 64 && !stable; ++pass) {
        stable = true;
        for (unsigned b : order) {
            State in = bld.computeIn(b);
            ++visits[b];
            if (widen_at[b] && visits[b] > 2)
                for (unsigned r = 0; r < 32; ++r)
                    in[r] = VRange::widen(bld.bin_[b][r], in[r]);
            bld.applyTighten(b, in);
            if (!(in == bld.bin_[b])) {
                bld.bin_[b] = in;
                bld.bout_[b] = bld.walkBlock(b, in, nullptr);
                stable = false;
            }
        }
    }
    if (!stable) {
        // Safety valve: no convergence within the pass budget.
        ai.top_mode_ = true;
        return ai;
    }

    // Two narrowing sweeps claw back precision the widening threw
    // away: re-applying the (sound) transfer to a post-fixpoint
    // stays sound, and intersecting two sound states stays sound.
    for (int k = 0; k < 2; ++k) {
        for (unsigned b : order) {
            State in = bld.computeIn(b);
            bld.applyTighten(b, in);
            for (unsigned r = 0; r < 32; ++r)
                in[r] = VRange::meet(bld.bin_[b][r], in[r]);
            bld.bin_[b] = in;
            bld.bout_[b] = bld.walkBlock(b, in, nullptr);
        }
    }

    for (unsigned b : order)
        bld.walkBlock(b, bld.bin_[b], &ai.before_);

    // A-posteriori validation of recovered jump tables: the decoded
    // successor set is exhaustive only if the table load provably
    // stays inside the table. (Checking with the computed states is
    // sound by induction on execution steps: a first out-of-range
    // table jump would need an earlier state violation.)
    bool contained = true;
    for (const JumpTable &jt : cfg.jumpTables()) {
        if (!cfg.reachable()[cfg.blockOf(jt.jump_instr)])
            continue;
        const VRange ea = ai.addressRange(jt.load_instr);
        ai.table_eas_.emplace_back(jt.load_instr, ea);
        if (ea.isEmpty())
            continue;  // load provably never executes
        if (!(ea.lo >= jt.begin && ea.hi < jt.end))
            contained = false;
    }
    if (!contained) {
        ai.top_mode_ = true;
        ai.before_.assign(n, topState());
    }
    return ai;
}

const VRange &
AbsInt::before(std::size_t instr, unsigned reg) const
{
    return before_[instr][reg];
}

VRange
AbsInt::addressRange(std::size_t instr) const
{
    const InstrRecord &rec = prog_->instr(instr);
    if (!rec.decoded)
        return VRange::top();
    const Opcode op = rec.inst.op;
    if (!isLoad(op) && !isStore(op))
        return VRange::top();
    return VRange::add(
        before_[instr][rec.inst.rs1],
        VRange::constant(static_cast<std::uint32_t>(rec.inst.imm)));
}

void
annotateRanges(const Program &prog, StaticCharacterization &chr,
               const AbsInt &ai)
{
    (void)prog;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> regions;
    bool bounded = true;
    for (MemOpChar &m : chr.memops) {
        const VRange ea = ai.addressRange(m.instr);
        if (ea.isEmpty())
            continue;  // provably never executes: no bytes
        if (!(ea.lo == 0 && ea.hi == 0xffffffffu)) {
            m.range_known = true;
            m.range_begin = ea.lo;
            m.range_end = static_cast<Addr>(ea.hi) + m.size;
        }
        // The footprint bound prefers the affine region (exact,
        // hole-aware upstream) over the interval hull.
        if (m.region_known)
            regions.emplace_back(m.region_begin, m.region_end);
        else if (m.range_known)
            regions.emplace_back(m.range_begin, m.range_end);
        else
            bounded = false;
    }
    std::sort(regions.begin(), regions.end());
    std::uint64_t bytes = 0, cur_b = 0, cur_e = 0;
    bool open = false;
    for (const auto &[b, e] : regions) {
        if (open && b <= cur_e) {
            cur_e = std::max(cur_e, e);
        } else {
            if (open)
                bytes += cur_e - cur_b;
            cur_b = b;
            cur_e = e;
            open = true;
        }
    }
    if (open)
        bytes += cur_e - cur_b;
    chr.footprint_bounded = bounded;
    chr.footprint_bound_bytes = bounded ? bytes : 0;
}

} // namespace memwall
