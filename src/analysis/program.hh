/**
 * @file
 * Analysis IR over an assembled MW32 program.
 *
 * The assembler's SourceMap separates emitted instruction words from
 * data words, so the analyser never has to guess whether a word is
 * code. Program flattens the instruction words into an indexed
 * vector (the unit every later pass works in), keeps the
 * address <-> index mapping, and answers data-region queries
 * (initialised .word/.byte data vs reserved-but-uninitialised
 * .space) for the lint's uninitialised-load check.
 */

#ifndef MEMWALL_ANALYSIS_PROGRAM_HH
#define MEMWALL_ANALYSIS_PROGRAM_HH

#include <cstdint>
#include <map>
#include <vector>

#include "isa/assembler.hh"
#include "isa/instruction.hh"

namespace memwall {

/** One instruction with its provenance. */
struct InstrRecord
{
    Addr addr = 0;
    Instruction inst;
    /** Source line (0 when the program has no source map). */
    unsigned line = 0;
    /** False when the word failed to decode (data reached by code). */
    bool decoded = true;
};

/** Flattened, indexed view of an assembled program. */
class Program
{
  public:
    /** Sentinel index for "address is not an instruction". */
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /**
     * Build the IR from @p prog. Instruction words are identified
     * through the source map; when the map is empty (programmatic
     * construction), every decodable word is treated as code.
     */
    static Program build(const AssembledProgram &prog);

    const std::vector<InstrRecord> &instrs() const { return instrs_; }
    const InstrRecord &instr(std::size_t i) const { return instrs_[i]; }
    std::size_t size() const { return instrs_.size(); }

    /** Index of the instruction at @p addr, or npos. */
    std::size_t indexOf(Addr addr) const;

    /** Entry-point instruction index (npos for an empty program). */
    std::size_t entryIndex() const { return entry_index_; }

    Addr entry() const { return assembled_.entry; }
    const AssembledProgram &assembled() const { return assembled_; }

    /** @return true iff @p addr holds an emitted .word/.byte datum. */
    bool
    isDataWord(Addr addr) const
    {
        return assembled_.source_map.data_lines.contains(addr);
    }

    /** @return true iff @p addr lies in a .space region. */
    bool
    inSpace(Addr addr) const
    {
        return assembled_.source_map.inSpace(addr);
    }

    /** Source line of instruction @p i (0 if unknown). */
    unsigned line(std::size_t i) const { return instrs_[i].line; }

  private:
    AssembledProgram assembled_;
    std::vector<InstrRecord> instrs_;
    std::map<Addr, std::size_t> index_of_;
    std::size_t entry_index_ = npos;
};

/**
 * Register defined by @p inst, or 0 when it defines none (writes to
 * r0 are discarded by the hardware and count as no definition).
 */
unsigned defOf(const Instruction &inst);

/** Bitmask of registers read by @p inst (bit i = ri; bit 0 never
 * set — r0 is a constant, not a dependency). */
std::uint32_t usesOf(const Instruction &inst);

/** @return true iff @p op is a load. */
bool isLoad(Opcode op);
/** @return true iff @p op is a store. */
bool isStore(Opcode op);
/** @return true iff @p op is a conditional branch. */
bool isBranch(Opcode op);

} // namespace memwall

#endif // MEMWALL_ANALYSIS_PROGRAM_HH
