/**
 * @file
 * The mw32-lint diagnostics pass.
 *
 * Ten checks over the CFG/dataflow/characterization/abstract-
 * interpretation results, each with a stable ID that `--error-on`
 * can promote to an error:
 *
 *   use-undef     read of a register no path ever defines
 *   dead-store    definition overwritten before any read
 *   unreachable   code no path from the entry reaches
 *   uninit-load   load from a provably never-stored .space region
 *   misaligned    access whose provable address breaks alignment
 *   call-clobber  caller value live across a call that clobbers it
 *   no-exit-loop  natural loop with no exit edge and no way to halt
 *   div-by-zero   div/rem whose divisor is provably zero (traps)
 *   oob-access    access provably outside every assembled section
 *   jump-oob      jump-table index load provably outside the table
 *
 * All checks run on reachable code only (except `unreachable`
 * itself) and are tuned to be quiet on the idioms the corpus
 * actually uses: calls conservatively use/define everything, exits
 * keep every register live, and callee save/restore through the
 * stack is recognised — see dataflow.hh for the conventions.
 *
 * The last three checks (and the range-strengthened variants of
 * `misaligned` and `uninit-load`) consume AbsInt value ranges and
 * fire only on *provable* violations — a diagnostic is emitted only
 * when every execution reaching the instruction exhibits the
 * behaviour, so they have zero false positives by construction.
 * validation_absint_crosscheck enforces this dynamically.
 */

#ifndef MEMWALL_ANALYSIS_LINT_HH
#define MEMWALL_ANALYSIS_LINT_HH

#include <string>
#include <vector>

#include "analysis/absint.hh"
#include "analysis/cfg.hh"
#include "analysis/charact.hh"
#include "analysis/dataflow.hh"
#include "analysis/program.hh"

namespace memwall {

enum class Severity { Warning, Error };

struct Diagnostic
{
    std::string id;
    Severity severity = Severity::Warning;
    unsigned line = 0;      ///< source line (0 = unknown)
    Addr addr = 0;          ///< instruction address
    std::string message;

    /** "file:line: warning: message [id]" */
    std::string format(const std::string &file) const;
};

/** Run every check. Diagnostics are sorted by source line. */
std::vector<Diagnostic> lint(const Program &prog, const Cfg &cfg,
                             const Dataflow &df,
                             const StaticCharacterization &chr,
                             const AbsInt &ai);

/** Convenience wrapper: build the whole pipeline and lint. */
std::vector<Diagnostic> lintProgram(const AssembledProgram &prog);

/**
 * Promote diagnostics whose ID is in @p ids (comma-separated list,
 * or "all") to Severity::Error. @return false if @p ids names an
 * unknown diagnostic ID.
 */
bool promoteErrors(std::vector<Diagnostic> &diags,
                   const std::string &ids);

/** All valid diagnostic IDs. */
const std::vector<std::string> &lintIds();

} // namespace memwall

#endif // MEMWALL_ANALYSIS_LINT_HH
