/**
 * @file
 * Register dataflow over the CFG: liveness, may-be-defined, sparse
 * constant propagation, and interprocedural callee-clobber
 * summaries.
 *
 * Conventions (documented in DESIGN.md):
 *  - r0 is a constant, never a definition or dependency;
 *  - exit blocks (halt, return, unknown indirect) treat every
 *    register as live — results are left in registers by
 *    convention, so "dead store" means *overwritten before read*,
 *    never "live at exit";
 *  - call instructions conservatively use all registers (the
 *    argument-passing convention is the guest program's business)
 *    and may define the callee's write set;
 *  - a callee "clobbers" the registers it may write, transitively
 *    through nested calls, minus those it reloads from its stack
 *    frame (`lw r, imm(sp)`) and minus sp itself.
 */

#ifndef MEMWALL_ANALYSIS_DATAFLOW_HH
#define MEMWALL_ANALYSIS_DATAFLOW_HH

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/program.hh"

namespace memwall {

/** Constant-propagation lattice for the 32 registers. */
struct ConstState
{
    /** Bit i set = value of ri is the compile-time constant val[i]. */
    std::uint32_t known = 1;  // r0 == 0 always
    std::array<std::uint32_t, 32> val{};

    std::optional<std::uint32_t>
    get(unsigned reg) const
    {
        if (reg == 0)
            return 0u;
        if (known & (1u << reg))
            return val[reg];
        return std::nullopt;
    }

    void
    set(unsigned reg, std::uint32_t v)
    {
        if (reg == 0)
            return;
        known |= 1u << reg;
        val[reg] = v;
    }

    void
    kill(unsigned reg)
    {
        if (reg != 0)
            known &= ~(1u << reg);
    }

    /** Lattice meet: keep only agreeing constants. */
    void meet(const ConstState &other);
};

class Dataflow
{
  public:
    static Dataflow build(const Program &prog, const Cfg &cfg);

    /** Registers live immediately after instruction @p i. */
    std::uint32_t liveOut(std::size_t i) const { return live_out_[i]; }

    /** Registers live immediately before instruction @p i. */
    std::uint32_t liveIn(std::size_t i) const { return live_in_[i]; }

    /** Registers that may have been defined on some path from the
     * entry to just before instruction @p i (bit 0 = r0, always
     * set). */
    std::uint32_t mayDefIn(std::size_t i) const
    {
        return may_def_in_[i];
    }

    /** Constant value of @p reg just before instruction @p i. */
    std::optional<std::uint32_t>
    constBefore(std::size_t i, unsigned reg) const
    {
        return const_before_[i].get(reg);
    }

    /** Full constant state just before instruction @p i. */
    const ConstState &stateBefore(std::size_t i) const
    {
        return const_before_[i];
    }

    /** Clobber summary of the function entered at @p entry; all
     * registers for unknown functions. */
    std::uint32_t calleeClobbers(Addr entry) const;

    /** Registers possibly written by the function at @p entry
     * (including ones it restores before returning). */
    std::uint32_t calleeWrites(Addr entry) const;

    /**
     * Apply one instruction's transfer function to @p state,
     * mirroring the interpreter's ALU semantics. Exposed so the
     * characterizer can fold addresses with the same rules.
     */
    static void transfer(const Program &prog, const Dataflow *df,
                         std::size_t i, ConstState &state);

  private:
    std::vector<std::uint32_t> live_in_, live_out_, may_def_in_;
    std::vector<ConstState> const_before_;
    std::map<Addr, std::uint32_t> clobbers_, writes_;
};

} // namespace memwall

#endif // MEMWALL_ANALYSIS_DATAFLOW_HH
