/**
 * @file
 * Static workload characterization: predict, ahead of execution,
 * the numbers the paper's cache studies are built on — dynamic
 * instruction mix, per-reference stride, and working-set footprint.
 *
 * Machinery:
 *  - per-loop affine analysis: registers are tracked as affine
 *    expressions over their values at the loop header, walking
 *    add/sub/shift/mul-by-constant chains; a register whose
 *    round-trip expression is <r> + s is an induction variable with
 *    step s;
 *  - trip counts: the loop's controlling branch is matched against
 *    the induction variable and a loop-invariant constant bound
 *    (bottom-test `bne/blt/...` idioms, top-test recognised with
 *    one fewer body run);
 *  - block frequencies: entry = 1, loop headers multiply by trip,
 *    loop exit edges divide by trip, other conditional branches
 *    split 50/50 (heuristic — flagged);
 *  - strides: the effective-address expression's per-iteration
 *    delta, lifted outward through the loop nest by substituting
 *    each level's header state into the enclosing level;
 *  - footprint: per-reference touched region from the base address
 *    (constants folded at the outermost preheader) plus
 *    stride x trip extents, unioned across references.
 *
 * Everything degrades gracefully: unknown trips, irreducible
 * regions, or unresolvable chains flag the affected result as
 * inexact/unknown instead of guessing. validation_static_crosscheck
 * holds these predictions to declared tolerances against the
 * interpreter.
 */

#ifndef MEMWALL_ANALYSIS_CHARACT_HH
#define MEMWALL_ANALYSIS_CHARACT_HH

#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "analysis/program.hh"

namespace memwall {

/** Predicted dynamic instruction counts by class. */
struct MixCounts
{
    double alu = 0, load = 0, store = 0, branch = 0, jump = 0,
           other = 0;

    double
    total() const
    {
        return alu + load + store + branch + jump + other;
    }
};

/** An induction variable recovered for one loop: at the k-th visit
 * of the loop header the register holds init + k*step (as exact
 * integers — callers must check for 32-bit wrap themselves). */
struct LoopIv
{
    unsigned reg = 0;
    std::int64_t init = 0;  ///< value on entry through the preheader
    std::int64_t step = 0;  ///< per-round-trip delta (non-zero)
};

/** Static summary of one natural loop. */
struct LoopChar
{
    int loop = -1;           ///< index into Cfg::loops()
    unsigned header_line = 0;
    unsigned depth = 1;
    std::uint64_t trip = 0;  ///< 0 = unknown
    std::uint64_t body_instrs = 0;  ///< static instruction count

    /** The trip count is a PROVEN upper bound on header visits for
     * any execution entering through the preheader: the loop is
     * innermost, has a unique controlling test, and the affine
     * model provably agrees with the machine comparison (no 32-bit
     * wrap, operands inside the signedness-agreeing domain). Only a
     * sound trip may strengthen the abstract interpreter; the plain
     * `trip` stays a best-effort prediction for the mix model. */
    bool trip_sound = false;
    /** Induction variables with known entry value and step; only
     * populated when trip_sound (the two are consumed together). */
    std::vector<LoopIv> ivs;
};

/** Static classification of one load/store site. */
struct MemOpChar
{
    std::size_t instr = 0;
    unsigned line = 0;
    bool is_store = false;
    unsigned size = 4;

    enum class Kind {
        Constant,  ///< scalar: effective address folds to a constant
        Strided,   ///< base + k*step chain over an induction variable
        Unknown    ///< data-dependent or unresolvable
    } kind = Kind::Unknown;

    /** Byte stride per iteration of the innermost enclosing loop
     * (Strided only). */
    std::int64_t stride = 0;
    /** Innermost enclosing loop index (-1 when not in a loop). */
    int loop = -1;
    /** Inside a loop but not executed on every iteration (its block
     * does not dominate the loop's latches), so consecutive
     * references can skip stride multiples. */
    bool conditional = false;

    /** Touched byte region [begin, end), when provable. This is the
     * bounding box; the footprint sum uses the exact per-level
     * interval sets, which exclude inter-row holes. */
    bool region_known = false;
    Addr region_begin = 0, region_end = 0;

    /** Sound effective-address bound [range_begin, range_end) from
     * the abstract interpreter (annotateRanges in absint.hh): every
     * dynamic access of this site falls inside it. Coarser than
     * region_* but available for data-dependent addresses the
     * affine analysis gives up on. */
    bool range_known = false;
    Addr range_begin = 0, range_end = 0;
};

/** Whole-program static characterization. */
struct StaticCharacterization
{
    /** Predicted dynamic counts. Exact only when counts_exact. */
    MixCounts counts;
    /** Every loop trip count was recovered; no unknown edges. */
    bool counts_exact = true;
    /** A 50/50 branch-probability heuristic was applied. */
    bool heuristic_branches = false;

    std::vector<LoopChar> loops;
    std::vector<MemOpChar> memops;

    /** Union of touched regions over all data references. */
    std::uint64_t footprint_bytes = 0;
    /** Every reference's region was provable. */
    bool footprint_known = true;

    /** Upper bound on the footprint: exact regions where known,
     * abstract-interpreter address ranges elsewhere (annotateRanges
     * fills these in). Always >= the true dynamic footprint when
     * footprint_bounded. */
    std::uint64_t footprint_bound_bytes = 0;
    /** Every reference has at least a bounded address range. */
    bool footprint_bounded = false;
};

/** Run the characterizer. */
StaticCharacterization characterize(const Program &prog,
                                    const Cfg &cfg,
                                    const Dataflow &df);

} // namespace memwall

#endif // MEMWALL_ANALYSIS_CHARACT_HH
