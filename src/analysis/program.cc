#include "analysis/program.hh"

namespace memwall {

Program
Program::build(const AssembledProgram &prog)
{
    Program out;
    out.assembled_ = prog;

    const auto &map = prog.source_map;
    for (const auto &[addr, word] : prog.words) {
        const bool from_map = map.instr_lines.contains(addr);
        if (!map.instr_lines.empty() && !from_map)
            continue;  // data word
        InstrRecord rec;
        rec.addr = addr;
        rec.line = map.lineOf(addr);
        rec.inst = Instruction::decode(word, &rec.decoded);
        if (map.instr_lines.empty() && !rec.decoded)
            continue;  // no map: keep only decodable words
        out.index_of_[addr] = out.instrs_.size();
        out.instrs_.push_back(rec);
    }
    out.entry_index_ = out.indexOf(prog.entry);
    return out;
}

std::size_t
Program::indexOf(Addr addr) const
{
    auto it = index_of_.find(addr);
    return it != index_of_.end() ? it->second : npos;
}

bool
isLoad(Opcode op)
{
    return op == Opcode::Lb || op == Opcode::Lbu ||
           op == Opcode::Lh || op == Opcode::Lhu || op == Opcode::Lw;
}

bool
isStore(Opcode op)
{
    return op == Opcode::Sb || op == Opcode::Sh || op == Opcode::Sw;
}

bool
isBranch(Opcode op)
{
    return opcodeFormat(op) == InstrFormat::Branch;
}

unsigned
defOf(const Instruction &inst)
{
    switch (opcodeFormat(inst.op)) {
      case InstrFormat::R:
      case InstrFormat::I:
      case InstrFormat::LuiI:
      case InstrFormat::LoadI:
      case InstrFormat::Jump:  // jal/jalr link register
        return inst.rd;
      case InstrFormat::StoreI:
      case InstrFormat::Branch:
      case InstrFormat::None:
        return 0;
    }
    return 0;
}

std::uint32_t
usesOf(const Instruction &inst)
{
    std::uint32_t mask = 0;
    auto add = [&](unsigned r) { mask |= 1u << (r & 31); };
    switch (opcodeFormat(inst.op)) {
      case InstrFormat::R:
        add(inst.rs1);
        add(inst.rs2);
        break;
      case InstrFormat::I:
      case InstrFormat::LoadI:
        add(inst.rs1);
        break;
      case InstrFormat::StoreI:
        add(inst.rd);   // value register
        add(inst.rs1);  // base
        break;
      case InstrFormat::Branch:
        add(inst.rs1);
        add(inst.rs2);
        break;
      case InstrFormat::Jump:
        if (inst.op == Opcode::Jalr)
            add(inst.rs1);
        break;
      case InstrFormat::LuiI:
      case InstrFormat::None:
        break;
    }
    return mask & ~1u;  // r0 is a constant
}

} // namespace memwall
