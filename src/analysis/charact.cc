#include "analysis/charact.hh"

#include <algorithm>
#include <array>
#include <map>
#include <optional>
#include <set>

namespace memwall {

namespace {

/**
 * Affine expression c + sum(coeff[r] * <r>) over register values at
 * a loop header ("symbols"). The invalid state is the lattice
 * bottom: anything the walk cannot express affinely.
 */
struct AffExpr
{
    bool valid = false;
    std::int64_t c = 0;
    std::map<unsigned, std::int64_t> coeff;

    static AffExpr
    constant(std::int64_t v)
    {
        AffExpr e;
        e.valid = true;
        e.c = v;
        return e;
    }

    static AffExpr
    symbol(unsigned reg)
    {
        AffExpr e;
        e.valid = true;
        e.coeff[reg] = 1;
        return e;
    }

    bool
    isConst() const
    {
        return valid && coeff.empty();
    }

    bool
    operator==(const AffExpr &o) const
    {
        return valid == o.valid && c == o.c && coeff == o.coeff;
    }
};

AffExpr
affAdd(const AffExpr &a, const AffExpr &b, std::int64_t sign = 1)
{
    if (!a.valid || !b.valid)
        return {};
    AffExpr r = a;
    r.c += sign * b.c;
    for (auto &[reg, k] : b.coeff) {
        r.coeff[reg] += sign * k;
        if (r.coeff[reg] == 0)
            r.coeff.erase(reg);
    }
    return r;
}

AffExpr
affScale(const AffExpr &a, std::int64_t k)
{
    if (!a.valid)
        return {};
    if (k == 0)
        return AffExpr::constant(0);
    AffExpr r = a;
    r.c *= k;
    for (auto &[reg, co] : r.coeff)
        co *= k;
    return r;
}

using AffState = std::array<AffExpr, 32>;

AffState
initialState()
{
    AffState st;
    st[0] = AffExpr::constant(0);
    for (unsigned r = 1; r < 32; ++r)
        st[r] = AffExpr::symbol(r);
    return st;
}

/** Pointwise merge: keep only agreeing expressions. */
void
mergeState(AffState &a, const AffState &b)
{
    for (unsigned r = 0; r < 32; ++r)
        if (!(a[r] == b[r]))
            a[r] = {};
}

bool
isCallInstr(const Instruction &inst)
{
    return (inst.op == Opcode::Jal || inst.op == Opcode::Jalr) &&
           inst.rd != 0;
}

/** One instruction of the affine walk. */
void
affTransfer(const InstrRecord &rec, const Dataflow &df,
            const std::vector<CallSite> &calls, std::size_t idx,
            AffState &st)
{
    const Instruction &inst = rec.inst;
    if (!rec.decoded)
        return;

    auto setd = [&](const AffExpr &e) {
        if (inst.rd != 0)
            st[inst.rd] = e;
    };
    auto invalidate = [&](unsigned r) {
        if (r != 0)
            st[r] = {};
    };

    if (isCallInstr(inst)) {
        std::uint32_t clob = ~1u;
        for (const CallSite &cs : calls)
            if (cs.instr == idx && cs.known)
                clob = df.calleeClobbers(cs.target);
        for (unsigned r = 1; r < 32; ++r)
            if (clob & (1u << r))
                invalidate(r);
        invalidate(inst.rd);
        return;
    }

    switch (inst.op) {
      case Opcode::Addi:
        setd(affAdd(st[inst.rs1], AffExpr::constant(inst.imm)));
        break;
      case Opcode::Add:
        setd(affAdd(st[inst.rs1], st[inst.rs2]));
        break;
      case Opcode::Sub:
        setd(affAdd(st[inst.rs1], st[inst.rs2], -1));
        break;
      case Opcode::Slli:
        setd(affScale(st[inst.rs1],
                      std::int64_t{1} << (inst.imm & 31)));
        break;
      case Opcode::Sll:
        if (st[inst.rs2].isConst() && st[inst.rs2].c >= 0 &&
            st[inst.rs2].c < 32)
            setd(affScale(st[inst.rs1],
                          std::int64_t{1} << st[inst.rs2].c));
        else
            invalidate(inst.rd);
        break;
      case Opcode::Mul:
        if (st[inst.rs1].isConst())
            setd(affScale(st[inst.rs2], st[inst.rs1].c));
        else if (st[inst.rs2].isConst())
            setd(affScale(st[inst.rs1], st[inst.rs2].c));
        else
            invalidate(inst.rd);
        break;
      case Opcode::Lui:
        setd(AffExpr::constant(
            static_cast<std::uint32_t>(inst.imm & 0xffff) << 16));
        break;
      case Opcode::Ori:
        if (st[inst.rs1].isConst())
            setd(AffExpr::constant(st[inst.rs1].c |
                                   (inst.imm & 0xffff)));
        else
            invalidate(inst.rd);
        break;
      default: {
        unsigned d = defOf(inst);
        if (d != 0)
            invalidate(d);
        break;
      }
    }
}

/** Per-loop analysis results, indexed like Cfg::loops(). */
struct LoopScope
{
    std::map<unsigned, AffState> in;  ///< block id -> entry state
    std::array<std::optional<std::int64_t>, 32> delta;
    std::optional<std::uint64_t> trip;
    bool top_test = false;
    bool trip_sound = false;  ///< see LoopChar::trip_sound
};

/** Normalised continue-condition comparators (IV on the left). */
enum class Cmp { Eq, Ne, Lt, Le, Gt, Ge };

std::optional<Cmp>
cmpOf(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
        return Cmp::Eq;
      case Opcode::Bne:
        return Cmp::Ne;
      case Opcode::Blt:
      case Opcode::Bltu:
        return Cmp::Lt;
      case Opcode::Bge:
      case Opcode::Bgeu:
        return Cmp::Ge;
      default:
        return std::nullopt;
    }
}

Cmp
cmpSwap(Cmp c)
{
    switch (c) {
      case Cmp::Lt:
        return Cmp::Gt;
      case Cmp::Gt:
        return Cmp::Lt;
      case Cmp::Le:
        return Cmp::Ge;
      case Cmp::Ge:
        return Cmp::Le;
      default:
        return c;
    }
}

Cmp
cmpNegate(Cmp c)
{
    switch (c) {
      case Cmp::Eq:
        return Cmp::Ne;
      case Cmp::Ne:
        return Cmp::Eq;
      case Cmp::Lt:
        return Cmp::Ge;
      case Cmp::Ge:
        return Cmp::Lt;
      case Cmp::Gt:
        return Cmp::Le;
      case Cmp::Le:
        return Cmp::Gt;
    }
    return c;
}

std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;  // requires a >= 0, b > 0
}

/**
 * First failing test index for value(i) = x0 + i*s against bound B
 * under continue-condition @p cmp. Unsigned compares are treated as
 * signed (counted loops stay well inside 2^31 by construction).
 */
std::optional<std::int64_t>
firstFail(Cmp cmp, std::int64_t x0, std::int64_t s, std::int64_t B)
{
    switch (cmp) {
      case Cmp::Ne: {
        if (s == 0)
            return x0 == B ? std::optional<std::int64_t>(0)
                           : std::nullopt;
        std::int64_t d = B - x0;
        if (d % s != 0 || d / s < 0)
            return std::nullopt;
        return d / s;
      }
      case Cmp::Eq:
        if (x0 != B)
            return 0;
        return s != 0 ? std::optional<std::int64_t>(1) : std::nullopt;
      case Cmp::Lt:
        if (x0 >= B)
            return 0;
        return s > 0 ? std::optional<std::int64_t>(ceilDiv(B - x0, s))
                     : std::nullopt;
      case Cmp::Le:
        if (x0 > B)
            return 0;
        return s > 0
                   ? std::optional<std::int64_t>(ceilDiv(B - x0 + 1, s))
                   : std::nullopt;
      case Cmp::Gt:
        if (x0 <= B)
            return 0;
        return s < 0 ? std::optional<std::int64_t>(ceilDiv(x0 - B, -s))
                     : std::nullopt;
      case Cmp::Ge:
        if (x0 < B)
            return 0;
        return s < 0
                   ? std::optional<std::int64_t>(
                         ceilDiv(x0 - B + 1, -s))
                   : std::nullopt;
    }
    return std::nullopt;
}

class Characterizer
{
  public:
    Characterizer(const Program &prog, const Cfg &cfg,
                  const Dataflow &df)
        : prog_(prog), cfg_(cfg), df_(df)
    {
    }

    StaticCharacterization run();

  private:
    const Program &prog_;
    const Cfg &cfg_;
    const Dataflow &df_;
    std::vector<LoopScope> scopes_;
    StaticCharacterization out_;

    /** Loop directly nested in @p li containing @p block, or -1 when
     * the block sits at level @p li itself. */
    int childOf(int li, unsigned block) const;

    void analyzeLoop(int li);
    AffState outStateAtLevel(int li, unsigned block) const;
    AffState stateAtInstr(int li, std::size_t i) const;
    void findTrip(int li);
    std::optional<std::uint64_t> tripFromBranch(int li,
                                                std::size_t j,
                                                bool bottom_test,
                                                bool &sound);
    std::optional<std::int64_t> preheaderConst(int li,
                                               unsigned reg) const;
    std::optional<std::int64_t> strideAt(int li,
                                         const AffExpr &e) const;

    void characterizeMemops();
    void computeFrequencies();
};

int
Characterizer::childOf(int li, unsigned block) const
{
    int l = cfg_.innermostLoop(block);
    if (l == li)
        return -1;
    while (l != -1 && cfg_.loops()[l].parent != li)
        l = cfg_.loops()[l].parent;
    return l;  // -1 only if block is not (transitively) inside li
}

void
Characterizer::analyzeLoop(int li)
{
    const Loop &loop = cfg_.loops()[li];
    std::set<unsigned> body(loop.blocks.begin(), loop.blocks.end());
    LoopScope &sc = scopes_[li];

    for (unsigned b : cfg_.rpo()) {
        if (!body.contains(b))
            continue;
        int cl = childOf(li, b);
        if (cl != -1 && b != cfg_.loops()[cl].header)
            continue;  // interior of an inner loop

        AffState in;
        if (b == loop.header) {
            in = initialState();
        } else {
            bool first = true;
            for (unsigned p : cfg_.block(b).preds) {
                if (!body.contains(p))
                    continue;
                // Skip the inner loop's own back edges when b is
                // that loop's header.
                if (cl != -1 && cfg_.loops()[cl].contains(p))
                    continue;
                AffState s = outStateAtLevel(li, p);
                if (first) {
                    in = s;
                    first = false;
                } else {
                    mergeState(in, s);
                }
            }
            if (first)
                in.fill(AffExpr{});
        }
        sc.in[b] = in;
    }

    // Per-iteration delta: merge latch out-states; a register whose
    // round trip is <r> + d is an induction variable with step d.
    bool first = true;
    AffState latch;
    for (unsigned p : cfg_.block(loop.header).preds) {
        if (!body.contains(p))
            continue;
        AffState s = outStateAtLevel(li, p);
        if (first) {
            latch = s;
            first = false;
        } else {
            mergeState(latch, s);
        }
    }
    for (unsigned r = 1; r < 32; ++r) {
        const AffExpr &e = latch[r];
        if (!first && e.valid && e.coeff.size() == 1 &&
            e.coeff.contains(r) && e.coeff.at(r) == 1)
            sc.delta[r] = e.c;
    }
    sc.delta[0] = 0;

    findTrip(li);
}

AffState
Characterizer::outStateAtLevel(int li, unsigned block) const
{
    const LoopScope &sc = scopes_[li];
    int cl = childOf(li, block);
    if (cl == -1) {
        auto it = sc.in.find(block);
        AffState st;
        if (it == sc.in.end()) {
            st.fill(AffExpr{});
            return st;
        }
        st = it->second;
        const BasicBlock &bb = cfg_.block(block);
        for (std::size_t i = bb.first; i <= bb.last; ++i)
            affTransfer(prog_.instr(i), df_, cfg_.calls(), i, st);
        return st;
    }

    // Block inside inner loop cl: its out-state is the state into
    // cl's header advanced by trip(cl) full iterations.
    const LoopScope &inner = scopes_[cl];
    AffState st;
    auto it = sc.in.find(cfg_.loops()[cl].header);
    if (it == sc.in.end()) {
        st.fill(AffExpr{});
        return st;
    }
    st = it->second;
    for (unsigned r = 1; r < 32; ++r) {
        if (!st[r].valid)
            continue;
        if (!inner.delta[r]) {
            st[r] = {};
        } else if (*inner.delta[r] != 0) {
            if (inner.trip)
                st[r].c += *inner.delta[r] *
                           static_cast<std::int64_t>(*inner.trip);
            else
                st[r] = {};
        }
    }
    return st;
}

AffState
Characterizer::stateAtInstr(int li, std::size_t i) const
{
    unsigned b = cfg_.blockOf(i);
    const LoopScope &sc = scopes_[li];
    AffState st;
    auto it = sc.in.find(b);
    if (it == sc.in.end()) {
        st.fill(AffExpr{});
        return st;
    }
    st = it->second;
    const BasicBlock &bb = cfg_.block(b);
    for (std::size_t k = bb.first; k < i; ++k)
        affTransfer(prog_.instr(k), df_, cfg_.calls(), k, st);
    return st;
}

std::optional<std::int64_t>
Characterizer::preheaderConst(int li, unsigned reg) const
{
    if (reg == 0)
        return 0;
    const Loop &loop = cfg_.loops()[li];
    std::optional<std::int64_t> v;
    bool any = false;
    for (unsigned p : cfg_.block(loop.header).preds) {
        if (loop.contains(p))
            continue;
        const BasicBlock &bb = cfg_.block(p);
        ConstState st = df_.stateBefore(bb.last);
        Dataflow::transfer(prog_, &df_, bb.last, st);
        auto c = st.get(reg);
        if (!c)
            return std::nullopt;
        if (any && *v != static_cast<std::int64_t>(*c))
            return std::nullopt;
        v = static_cast<std::int64_t>(*c);
        any = true;
    }
    return any ? v : std::nullopt;
}

std::optional<std::int64_t>
Characterizer::strideAt(int li, const AffExpr &e) const
{
    if (!e.valid)
        return std::nullopt;
    const LoopScope &sc = scopes_[li];
    std::int64_t s = 0;
    for (auto &[reg, k] : e.coeff) {
        if (!sc.delta[reg])
            return std::nullopt;
        s += k * *sc.delta[reg];
    }
    return s;
}

void
Characterizer::findTrip(int li)
{
    const Loop &loop = cfg_.loops()[li];
    LoopScope &sc = scopes_[li];

    // Bottom-test: a latch at this level ending in a conditional
    // branch whose other edge leaves the loop.
    for (unsigned p : cfg_.block(loop.header).preds) {
        if (!loop.contains(p) || childOf(li, p) != -1)
            continue;
        const BasicBlock &bb = cfg_.block(p);
        if (!isBranch(prog_.instr(bb.last).inst.op))
            continue;
        bool exits = false;
        for (unsigned s : bb.succs)
            if (!loop.contains(s))
                exits = true;
        if (!exits)
            continue;
        bool sound = false;
        if (auto t = tripFromBranch(li, bb.last, true, sound)) {
            sc.trip = t;
            sc.trip_sound = sound;
            return;
        }
    }

    // Top-test: the header itself tests and exits.
    const BasicBlock &hb = cfg_.block(loop.header);
    if (isBranch(prog_.instr(hb.last).inst.op)) {
        bool exits = false;
        for (unsigned s : hb.succs)
            if (!loop.contains(s))
                exits = true;
        if (exits) {
            bool sound = false;
            if (auto t = tripFromBranch(li, hb.last, false, sound)) {
                sc.trip = t;
                sc.top_test = true;
                sc.trip_sound = sound;
            }
        }
    }
}

std::optional<std::uint64_t>
Characterizer::tripFromBranch(int li, std::size_t j, bool bottom_test,
                              bool &sound)
{
    sound = false;
    const Loop &loop = cfg_.loops()[li];
    const InstrRecord &rec = prog_.instr(j);
    auto cmp = cmpOf(rec.inst.op);
    if (!cmp)
        return std::nullopt;

    // Taken target from the encoding, not edge order.
    Addr taddr = rec.addr + 4 +
                 static_cast<Addr>(rec.inst.imm) * 4;
    std::size_t tidx = prog_.indexOf(taddr);
    if (tidx == Program::npos)
        return std::nullopt;
    unsigned taken = cfg_.blockOf(tidx);
    bool continue_if_taken = bottom_test
                                 ? taken == loop.header
                                 : loop.contains(taken);
    Cmp cond = continue_if_taken ? *cmp : cmpNegate(*cmp);

    AffState st = stateAtInstr(li, j);
    AffExpr e1 = st[rec.inst.rs1];
    AffExpr e2 = st[rec.inst.rs2];

    // Identify the induction-variable side and the invariant bound.
    for (int side = 0; side < 2; ++side) {
        const AffExpr &iv = side == 0 ? e1 : e2;
        const AffExpr &bd = side == 0 ? e2 : e1;
        Cmp c = side == 0 ? cond : cmpSwap(cond);

        if (!iv.valid || iv.coeff.size() != 1)
            continue;
        unsigned ivreg = iv.coeff.begin()->first;
        if (iv.coeff.begin()->second != 1)
            continue;
        auto step = scopes_[li].delta[ivreg];
        if (!step)
            continue;

        auto v0 = preheaderConst(li, ivreg);
        if (!v0)
            continue;
        std::int64_t x0 = *v0 + iv.c;

        std::optional<std::int64_t> bval;
        if (bd.isConst()) {
            bval = bd.c;
        } else if (bd.valid && bd.coeff.size() == 1 &&
                   bd.coeff.begin()->second == 1) {
            unsigned breg = bd.coeff.begin()->first;
            auto bdelta = scopes_[li].delta[breg];
            if (!bdelta || *bdelta != 0)
                continue;  // bound not loop-invariant
            auto bc = preheaderConst(li, breg);
            if (!bc)
                continue;
            bval = *bc + bd.c;
        }
        if (!bval)
            continue;

        auto fail = firstFail(c, x0, *step, *bval);
        if (!fail)
            continue;
        std::int64_t trips = bottom_test ? *fail + 1 : *fail;
        if (trips < 0)
            continue;

        // Certify the count as a sound upper bound on header visits
        // (the abstract interpreter may then clamp the IVs with it).
        // The mathematical model above must provably agree with the
        // machine: every tested value and the bound stay inside the
        // domain where the 32-bit compare matches the exact-integer
        // compare — [0, 2^31) for signed Blt/Bge (where signed and
        // unsigned readings coincide), [0, 2^32) for the rest — and
        // no intermediate value wraps. Structurally, the test must
        // run on every round trip: the latch carrying a bottom test
        // must be the loop's only latch, and inner loops would make
        // the affine round-trip model depend on their own (possibly
        // early-exiting) trip counts, so only innermost loops
        // qualify.
        bool ok = true;
        const std::int64_t dom_hi =
            (rec.inst.op == Opcode::Blt ||
             rec.inst.op == Opcode::Bge)
                ? (std::int64_t{1} << 31)
                : (std::int64_t{1} << 32);
        const std::int64_t xT = x0 + *step * trips;
        for (std::int64_t v : {x0, xT, *bval})
            if (v < 0 || v >= dom_hi)
                ok = false;
        if (bottom_test) {
            unsigned latches = 0;
            for (unsigned p : cfg_.block(loop.header).preds)
                if (loop.contains(p))
                    ++latches;
            if (latches != 1)
                ok = false;
        }
        for (std::size_t other = 0; other < cfg_.loops().size();
             ++other)
            if (cfg_.loops()[other].parent == li)
                ok = false;
        sound = ok;
        return static_cast<std::uint64_t>(trips);
    }
    return std::nullopt;
}

namespace {

/** Sort and coalesce overlapping/adjacent intervals in place. */
void
mergeIntervals(std::vector<std::pair<std::int64_t, std::int64_t>> &v)
{
    std::sort(v.begin(), v.end());
    std::size_t out = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (out > 0 && v[i].first <= v[out - 1].second)
            v[out - 1].second =
                std::max(v[out - 1].second, v[i].second);
        else
            v[out++] = v[i];
    }
    v.resize(out);
}

} // namespace

void
Characterizer::characterizeMemops()
{
    std::vector<std::pair<Addr, Addr>> regions;

    for (std::size_t i = 0; i < prog_.size(); ++i) {
        const InstrRecord &rec = prog_.instr(i);
        if (!rec.decoded)
            continue;
        bool ld = isLoad(rec.inst.op), stq = isStore(rec.inst.op);
        if (!ld && !stq)
            continue;
        unsigned b = cfg_.blockOf(i);
        if (!cfg_.reachable()[b])
            continue;

        MemOpChar m;
        m.instr = i;
        m.line = rec.line;
        m.is_store = stq;
        m.size = accessSize(rec.inst.op);
        m.loop = cfg_.innermostLoop(b);

        if (m.loop != -1) {
            const Loop &lp = cfg_.loops()[m.loop];
            for (unsigned p : cfg_.block(lp.header).preds)
                if (lp.contains(p) && !cfg_.dominates(b, p))
                    m.conditional = true;
        }

        // Exact relative byte intervals touched by this site,
        // lifted level by level; collapses to a bounding box only
        // past the replication cap.
        std::vector<std::pair<std::int64_t, std::int64_t>> ivs;

        auto base = df_.constBefore(i, rec.inst.rs1);
        if (base) {
            m.kind = MemOpChar::Kind::Constant;
            m.region_known = true;
            m.region_begin =
                static_cast<Addr>(*base + rec.inst.imm);
            m.region_end = m.region_begin + m.size;
            ivs.emplace_back(0, m.size);
        } else if (m.loop != -1) {
            int li = m.loop;
            AffState st = stateAtInstr(li, i);
            AffExpr ea = affAdd(st[rec.inst.rs1],
                                AffExpr::constant(rec.inst.imm));
            auto s = strideAt(li, ea);
            if (s) {
                m.kind = MemOpChar::Kind::Strided;
                m.stride = *s;

                // Lift the address expression outward through the
                // nest, replicating the interval set per iteration.
                ivs.emplace_back(0, m.size);
                AffExpr cur = ea;
                int level = li;
                bool ok = true;
                while (ok) {
                    auto sl = strideAt(level, cur);
                    auto tl = scopes_[level].trip;
                    if (!sl || !tl || *tl == 0) {
                        ok = false;
                        break;
                    }
                    const std::int64_t trips =
                        static_cast<std::int64_t>(*tl);
                    if (*sl != 0 && trips > 1) {
                        if (ivs.size() *
                                static_cast<std::size_t>(trips) <=
                            4096) {
                            const std::size_t n = ivs.size();
                            for (std::int64_t k = 1; k < trips; ++k)
                                for (std::size_t v = 0; v < n; ++v)
                                    ivs.emplace_back(
                                        ivs[v].first + k * *sl,
                                        ivs[v].second + k * *sl);
                        } else {
                            // Bounding box past the cap.
                            std::int64_t span = *sl * (trips - 1);
                            for (auto &iv : ivs) {
                                if (span >= 0)
                                    iv.second += span;
                                else
                                    iv.first += span;
                            }
                        }
                        mergeIntervals(ivs);
                    }

                    int parent = cfg_.loops()[level].parent;
                    // Re-express cur in the enclosing level's
                    // symbols (or fold to a constant base).
                    AffExpr next = AffExpr::constant(cur.c);
                    for (auto &[reg, k] : cur.coeff) {
                        AffExpr sub;
                        if (parent == -1) {
                            auto v = preheaderConst(level, reg);
                            if (!v) {
                                ok = false;
                                break;
                            }
                            sub = AffExpr::constant(*v);
                        } else {
                            auto it = scopes_[parent].in.find(
                                cfg_.loops()[level].header);
                            if (it == scopes_[parent].in.end() ||
                                !it->second[reg].valid) {
                                ok = false;
                                break;
                            }
                            sub = it->second[reg];
                        }
                        next = affAdd(next, affScale(sub, k));
                        if (!next.valid) {
                            ok = false;
                            break;
                        }
                    }
                    if (!ok)
                        break;
                    if (parent == -1) {
                        m.region_known = true;
                        m.region_begin = static_cast<Addr>(
                            next.c + ivs.front().first);
                        m.region_end = static_cast<Addr>(
                            next.c + ivs.back().second);
                        for (auto &iv : ivs) {
                            iv.first += next.c;
                            iv.second += next.c;
                        }
                        break;
                    }
                    cur = next;
                    level = parent;
                }
            }
        }

        if (!m.region_known) {
            out_.footprint_known = false;
        } else if (m.kind == MemOpChar::Kind::Constant) {
            regions.emplace_back(m.region_begin, m.region_end);
        } else {
            for (auto &iv : ivs)
                regions.emplace_back(static_cast<Addr>(iv.first),
                                     static_cast<Addr>(iv.second));
        }
        out_.memops.push_back(m);
    }

    // Footprint: measure of the union of touched intervals.
    std::sort(regions.begin(), regions.end());
    Addr cur_b = 0, cur_e = 0;
    bool open = false;
    std::uint64_t bytes = 0;
    for (auto &[b, e] : regions) {
        if (open && b <= cur_e) {
            cur_e = std::max(cur_e, e);
        } else {
            if (open)
                bytes += cur_e - cur_b;
            cur_b = b;
            cur_e = e;
            open = true;
        }
    }
    if (open)
        bytes += cur_e - cur_b;
    out_.footprint_bytes = bytes;
}

void
Characterizer::computeFrequencies()
{
    const std::size_t n = cfg_.size();
    std::vector<double> freq(n, 0);
    std::map<unsigned, double> call_seed;

    if (cfg_.irreducible())
        out_.counts_exact = false;

    auto tripOf = [&](int li) -> double {
        if (li != -1 && scopes_[li].trip)
            return static_cast<double>(
                std::max<std::uint64_t>(*scopes_[li].trip, 1));
        out_.counts_exact = false;
        return 1.0;
    };

    for (int pass = 0; pass < 5; ++pass) {
        std::fill(freq.begin(), freq.end(), 0.0);
        if (cfg_.entry() < n)
            freq[cfg_.entry()] = 1.0;
        for (auto &[b, f] : call_seed)
            freq[b] += f;

        for (unsigned b : cfg_.rpo()) {
            const BasicBlock &bb = cfg_.block(b);
            double f = freq[b];

            int hl = -1;  // loop headed by b
            for (std::size_t li = 0; li < cfg_.loops().size(); ++li)
                if (cfg_.loops()[li].header == b)
                    hl = static_cast<int>(li);
            if (hl != -1 && !scopes_[hl].top_test) {
                f *= tripOf(hl);
                freq[b] = f;
            }

            if (bb.has_unknown_succ)
                out_.counts_exact = false;

            // Classify successor edges.
            std::vector<unsigned> fwd;
            int back_loop = -1;
            for (unsigned s : bb.succs) {
                int li = cfg_.innermostLoop(s);
                bool is_back = false;
                while (li != -1) {
                    if (cfg_.loops()[li].header == s &&
                        cfg_.loops()[li].contains(b)) {
                        is_back = true;
                        back_loop = li;
                        break;
                    }
                    li = cfg_.loops()[li].parent;
                }
                if (!is_back)
                    fwd.push_back(s);
            }

            if (hl != -1 && scopes_[hl].top_test) {
                // Exact top-test model: the header runs trip+1
                // times; the in-loop edge carries trip entries.
                double t = tripOf(hl);
                freq[b] = f * (t + 1);
                for (unsigned s : fwd) {
                    if (cfg_.loops()[hl].contains(s))
                        freq[s] += f * t;
                    else
                        freq[s] += f;
                }
            } else if (back_loop != -1) {
                // Latch: the exit edge fires once per loop entry.
                double t = tripOf(back_loop);
                for (unsigned s : fwd)
                    freq[s] += f / t;
            } else if (fwd.size() == 1) {
                freq[fwd[0]] += f;
            } else if (fwd.size() >= 2) {
                out_.heuristic_branches = true;
                for (unsigned s : fwd)
                    freq[s] += f / fwd.size();
            }
        }

        std::map<unsigned, double> next_seed;
        for (const CallSite &cs : cfg_.calls()) {
            if (!cs.known) {
                out_.counts_exact = false;
                continue;
            }
            std::size_t t = prog_.indexOf(cs.target);
            if (t == Program::npos)
                continue;
            next_seed[cfg_.blockOf(t)] += freq[cs.block];
        }
        if (next_seed == call_seed)
            break;
        call_seed = next_seed;
        if (pass == 4)
            out_.counts_exact = false;
    }

    for (unsigned b = 0; b < n; ++b) {
        if (freq[b] == 0)
            continue;
        const BasicBlock &bb = cfg_.block(b);
        for (std::size_t i = bb.first; i <= bb.last; ++i) {
            const InstrRecord &rec = prog_.instr(i);
            double f = freq[b];
            if (!rec.decoded) {
                out_.counts.other += f;
            } else if (isLoad(rec.inst.op)) {
                out_.counts.load += f;
            } else if (isStore(rec.inst.op)) {
                out_.counts.store += f;
            } else if (isBranch(rec.inst.op)) {
                out_.counts.branch += f;
            } else if (rec.inst.op == Opcode::Jal ||
                       rec.inst.op == Opcode::Jalr) {
                out_.counts.jump += f;
            } else if (rec.inst.op == Opcode::Halt ||
                       rec.inst.op == Opcode::Sync) {
                out_.counts.other += f;
            } else {
                out_.counts.alu += f;
            }
        }
    }
}

StaticCharacterization
Characterizer::run()
{
    scopes_.resize(cfg_.loops().size());

    // Innermost first: outer levels consume inner summaries.
    std::vector<int> order(cfg_.loops().size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return cfg_.loops()[a].depth > cfg_.loops()[b].depth;
    });
    for (int li : order)
        analyzeLoop(li);

    for (std::size_t li = 0; li < cfg_.loops().size(); ++li) {
        const Loop &loop = cfg_.loops()[li];
        LoopChar lc;
        lc.loop = static_cast<int>(li);
        lc.header_line = prog_.line(cfg_.block(loop.header).first);
        lc.depth = loop.depth;
        lc.trip = scopes_[li].trip.value_or(0);
        lc.trip_sound = scopes_[li].trip_sound && lc.trip != 0;
        for (unsigned b : loop.blocks) {
            const BasicBlock &bb = cfg_.block(b);
            lc.body_instrs += bb.last - bb.first + 1;
        }
        if (lc.trip_sound) {
            // Round-trip deltas merge over every latch path, so a
            // recovered (init, step) pair holds on all executions
            // entering through the preheader.
            for (unsigned r = 1; r < 32; ++r) {
                auto d = scopes_[li].delta[r];
                if (!d || *d == 0)
                    continue;
                auto v0 = preheaderConst(static_cast<int>(li), r);
                if (!v0)
                    continue;
                lc.ivs.push_back(LoopIv{r, *v0, *d});
            }
        }
        out_.loops.push_back(lc);
    }

    characterizeMemops();
    computeFrequencies();
    return out_;
}

} // namespace

StaticCharacterization
characterize(const Program &prog, const Cfg &cfg, const Dataflow &df)
{
    if (prog.size() == 0)
        return {};
    Characterizer c(prog, cfg, df);
    return c.run();
}

} // namespace memwall
