/**
 * @file
 * Block-trace lowering: from the analysis CFG to an executable plan.
 *
 * An ExecPlan is the bridge between static analysis (PR 4) and the
 * execution fast path (src/exec/): every instruction of a Program is
 * pre-decoded into a MicroOp (see isa/micro_op.hh), and each one is
 * annotated with
 *
 *  - the inclusive end of its straight-line TRACE: the maximal run
 *    of contiguous, fast-eligible instructions up to and including
 *    the first control transfer (branch, jal/jalr — calls included,
 *    unlike CFG blocks, because execution follows them — halt, or an
 *    undecodable word). The executor hoists pc bookkeeping, budget
 *    checks and dispatch overhead out of such runs;
 *  - a fast-path ELIGIBILITY flag. Ineligible instructions are
 *    executed by the classic Interpreter::step path, so coverage
 *    degrades but correctness never does. A block is ineligible when
 *      (a) it ends in an indirect jump whose target set could not be
 *          recovered (BasicBlock::has_unknown_succ), or
 *      (b) it is an endpoint of an irreducible retreating edge (a
 *          back edge whose target does not dominate its source) —
 *          the CFG's loop analysis already refused these regions;
 *
 * plus an O(1) pc -> instruction-index table used both for dispatch
 * and for the executor's read-only-code invariant check. The table
 * is dense over the program's address span; programs spanning more
 * than kMaxSpanWords words (pathological .org layouts) disable the
 * plan entirely rather than falling back to a slower lookup.
 */

#ifndef MEMWALL_ANALYSIS_LOWERING_HH
#define MEMWALL_ANALYSIS_LOWERING_HH

#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/program.hh"
#include "isa/micro_op.hh"

namespace memwall {

class ExecPlan
{
  public:
    /** Sentinel for "address is not decoded code". */
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /** Address-span cap for the dense dispatch table (words). */
    static constexpr std::uint64_t kMaxSpanWords = 4u << 20;

    ExecPlan() = default;

    /** Lower @p prog using @p cfg's block/irreducibility facts. */
    static ExecPlan build(const Program &prog, const Cfg &cfg);

    /** Convenience: build Program + Cfg internally. */
    static ExecPlan build(const AssembledProgram &prog);

    /** False when the program is empty or its span exceeds the
     * dense-table cap; the executor then always falls back. */
    bool enabled() const { return enabled_; }

    const MicroOp *ops() const { return ops_.data(); }
    std::size_t size() const { return ops_.size(); }

    /** Op index of the instruction at @p pc, or npos. */
    std::size_t
    indexAt(Addr pc) const
    {
        if (!enabled_ || pc < base_ || pc >= limit_ || (pc & 3) != 0)
            return npos;
        const std::int32_t i = table_[(pc - base_) >> 2];
        return i < 0 ? npos : static_cast<std::size_t>(i);
    }

    /** Inclusive op index ending the trace that contains @p idx. */
    std::uint32_t traceEnd(std::size_t idx) const
    {
        return trace_end_[idx];
    }

    /** @return true iff op @p idx may execute on the fast path. */
    bool eligible(std::size_t idx) const
    {
        return eligible_[idx] != 0;
    }

    /** @return true iff @p addr falls inside a decoded instruction
     * word (used for the read-only-code store guard). */
    bool
    isCode(Addr addr) const
    {
        if (!enabled_ || addr < base_ || addr >= limit_)
            return false;
        return table_[(addr - base_) >> 2] >= 0;
    }

    /** Lowest / one-past-highest decoded code byte address. */
    Addr codeBase() const { return base_; }
    Addr codeLimit() const { return limit_; }

    /** Number of fast-eligible ops (coverage introspection). */
    std::size_t eligibleOps() const { return eligible_ops_; }

    /** Ops excluded because of unknown indirect successors. */
    std::size_t unknownSuccFallbackOps() const
    {
        return unknown_succ_ops_;
    }

    /** Ops excluded because of irreducible retreating edges. */
    std::size_t irreducibleFallbackOps() const
    {
        return irreducible_ops_;
    }

  private:
    std::vector<MicroOp> ops_;
    std::vector<std::uint32_t> trace_end_;
    std::vector<std::uint8_t> eligible_;
    std::vector<std::int32_t> table_;
    Addr base_ = 0, limit_ = 0;
    std::size_t eligible_ops_ = 0;
    std::size_t unknown_succ_ops_ = 0;
    std::size_t irreducible_ops_ = 0;
    bool enabled_ = false;
};

} // namespace memwall

#endif // MEMWALL_ANALYSIS_LOWERING_HH
