#include "analysis/vrange.hh"

#include <algorithm>
#include <bit>
#include <limits>
#include <sstream>

namespace memwall {

namespace {

constexpr std::uint64_t kWrap = std::uint64_t{1} << 32;

/** Mask of the @p n lowest bits (n in [0, 32]). */
std::uint32_t
lowMask(unsigned n)
{
    return n >= 32 ? 0xffffffffu : (std::uint32_t{1} << n) - 1;
}

/** Number of consecutive low bits known in @p r. */
unsigned
trailingKnown(const VRange &r)
{
    return static_cast<unsigned>(std::countr_one(r.known_mask));
}

/** Number of consecutive low bits known to be ZERO in @p r. */
unsigned
trailingZeros(const VRange &r)
{
    return static_cast<unsigned>(
        std::countr_one(r.known_mask & ~r.known_val));
}

/**
 * Range of effective shift amounts (b & 31). Exact when the whole
 * interval shares one "lap" of the 5-bit mask or the low 5 bits are
 * all known; conservative [0, 31] otherwise.
 */
void
shiftAmounts(const VRange &b, unsigned &slo, unsigned &shi)
{
    if ((b.known_mask & 31u) == 31u) {
        slo = shi = b.known_val & 31u;
        return;
    }
    if (b.hi - b.lo < 32 && (b.lo & ~31u) == (b.hi & ~31u)) {
        slo = b.lo & 31u;
        shi = b.hi & 31u;
        return;
    }
    slo = 0;
    shi = 31;
}

/** Interpreter's div, wrap-safe (INT_MIN / -1 wraps, divisor != 0). */
std::uint32_t
concreteDiv(std::uint32_t a, std::uint32_t b)
{
    return b == 0xffffffffu
               ? std::uint32_t{0} - a
               : static_cast<std::uint32_t>(
                     static_cast<std::int32_t>(a) /
                     static_cast<std::int32_t>(b));
}

std::uint32_t
concreteRem(std::uint32_t a, std::uint32_t b)
{
    return b == 0xffffffffu
               ? 0u
               : static_cast<std::uint32_t>(
                     static_cast<std::int32_t>(a) %
                     static_cast<std::int32_t>(b));
}

} // namespace

VRange
VRange::reduced() const
{
    VRange r = *this;
    if (r.empty_flag)
        return empty();
    r.known_val &= r.known_mask;
    // The two components refine each other; a couple of rounds
    // reaches the (finite-height) local fixpoint.
    for (int round = 0; round < 4; ++round) {
        if (r.lo > r.hi)
            return empty();
        // Interval -> bits: bits above the highest differing bit of
        // lo and hi are fixed across the whole interval.
        const std::uint32_t diff = r.lo ^ r.hi;
        const std::uint32_t lead =
            diff ? ~lowMask(static_cast<unsigned>(
                       std::bit_width(diff)))
                 : 0xffffffffu;
        const std::uint32_t overlap = r.known_mask & lead;
        if ((r.known_val ^ (r.lo & lead)) & overlap)
            return empty();
        // Bits -> interval: clamp to the smallest/largest value any
        // assignment of the unknown bits can reach.
        const std::uint32_t nmask = r.known_mask | lead;
        const std::uint32_t nval = r.known_val | (r.lo & lead);
        const std::uint32_t bmin = nval;
        const std::uint32_t bmax = nval | ~nmask;
        bool changed = nmask != r.known_mask;
        r.known_mask = nmask;
        r.known_val = nval;
        if (bmin > r.lo) {
            r.lo = bmin;
            changed = true;
        }
        if (bmax < r.hi) {
            r.hi = bmax;
            changed = true;
        }
        if (!changed)
            break;
    }
    if (r.lo > r.hi)
        return empty();
    return r;
}

VRange
VRange::interval(std::uint32_t lo, std::uint32_t hi)
{
    VRange r;
    r.lo = lo;
    r.hi = hi;
    r.known_mask = 0;
    r.known_val = 0;
    return r.reduced();
}

VRange
VRange::bits(std::uint32_t mask, std::uint32_t val)
{
    VRange r;
    r.known_mask = mask;
    r.known_val = val & mask;
    return r.reduced();
}

bool
VRange::subsetOf(const VRange &o) const
{
    if (empty_flag)
        return true;
    if (o.empty_flag)
        return false;
    // Sufficient (not necessary) test: each component refines.
    return lo >= o.lo && hi <= o.hi &&
           (o.known_mask & ~known_mask) == 0 &&
           (known_val & o.known_mask) == o.known_val;
}

std::int32_t
VRange::smin() const
{
    if (hi < 0x80000000u || lo >= 0x80000000u)
        return static_cast<std::int32_t>(lo);
    return std::numeric_limits<std::int32_t>::min();
}

std::int32_t
VRange::smax() const
{
    if (hi < 0x80000000u || lo >= 0x80000000u)
        return static_cast<std::int32_t>(hi);
    return std::numeric_limits<std::int32_t>::max();
}

std::string
VRange::str() const
{
    if (empty_flag)
        return "empty";
    if (isTop())
        return "top";
    std::ostringstream os;
    if (lo == hi) {
        os << "0x" << std::hex << lo;
        return os.str();
    }
    os << "[0x" << std::hex << lo << ",0x" << hi << "]";
    // Bits that the interval alone does not already pin down.
    const std::uint32_t diff = lo ^ hi;
    const std::uint32_t lead =
        diff ? ~lowMask(static_cast<unsigned>(std::bit_width(diff)))
             : 0xffffffffu;
    if (known_mask & ~lead)
        os << " bits(&0x" << (known_mask & ~lead) << "=0x"
           << (known_val & ~lead) << ")";
    return os.str();
}

VRange
VRange::join(const VRange &a, const VRange &b)
{
    if (a.empty_flag)
        return b;
    if (b.empty_flag)
        return a;
    VRange r;
    r.lo = std::min(a.lo, b.lo);
    r.hi = std::max(a.hi, b.hi);
    r.known_mask = a.known_mask & b.known_mask &
                   ~(a.known_val ^ b.known_val);
    r.known_val = a.known_val & r.known_mask;
    return r.reduced();
}

VRange
VRange::meet(const VRange &a, const VRange &b)
{
    if (a.empty_flag || b.empty_flag)
        return empty();
    if (a.known_mask & b.known_mask & (a.known_val ^ b.known_val))
        return empty();
    VRange r;
    r.lo = std::max(a.lo, b.lo);
    r.hi = std::min(a.hi, b.hi);
    r.known_mask = a.known_mask | b.known_mask;
    r.known_val = a.known_val | b.known_val;
    return r.reduced();
}

VRange
VRange::widen(const VRange &prev, const VRange &next)
{
    if (prev.empty_flag)
        return next;
    if (next.empty_flag)
        return prev;
    const VRange j = join(prev, next);
    VRange r = j;
    if (j.lo < prev.lo)
        r.lo = 0;
    if (j.hi > prev.hi)
        r.hi = 0xffffffffu;
    // Known bits can only shrink across widening steps (the join
    // already intersects them), so termination is preserved.
    return r.reduced();
}

VRange
VRange::add(const VRange &a, const VRange &b)
{
    if (a.empty_flag || b.empty_flag)
        return empty();
    VRange r;
    const std::uint64_t lo64 =
        std::uint64_t{a.lo} + std::uint64_t{b.lo};
    const std::uint64_t hi64 =
        std::uint64_t{a.hi} + std::uint64_t{b.hi};
    if (hi64 < kWrap) {
        r.lo = static_cast<std::uint32_t>(lo64);
        r.hi = static_cast<std::uint32_t>(hi64);
    } else if (lo64 >= kWrap) {
        r.lo = static_cast<std::uint32_t>(lo64 - kWrap);
        r.hi = static_cast<std::uint32_t>(hi64 - kWrap);
    }  // else: some sums wrap and some don't -> interval stays top
    const unsigned t =
        std::min(trailingKnown(a), trailingKnown(b));
    if (t > 0) {
        r.known_mask = lowMask(t);
        r.known_val = (a.known_val + b.known_val) & r.known_mask;
    }
    return r.reduced();
}

VRange
VRange::sub(const VRange &a, const VRange &b)
{
    if (a.empty_flag || b.empty_flag)
        return empty();
    VRange r;
    const std::int64_t lo64 =
        std::int64_t{a.lo} - std::int64_t{b.hi};
    const std::int64_t hi64 =
        std::int64_t{a.hi} - std::int64_t{b.lo};
    if (lo64 >= 0) {
        r.lo = static_cast<std::uint32_t>(lo64);
        r.hi = static_cast<std::uint32_t>(hi64);
    } else if (hi64 < 0) {
        r.lo = static_cast<std::uint32_t>(
            lo64 + static_cast<std::int64_t>(kWrap));
        r.hi = static_cast<std::uint32_t>(
            hi64 + static_cast<std::int64_t>(kWrap));
    }  // else mixed sign -> top interval
    const unsigned t =
        std::min(trailingKnown(a), trailingKnown(b));
    if (t > 0) {
        r.known_mask = lowMask(t);
        r.known_val = (a.known_val - b.known_val) & r.known_mask;
    }
    return r.reduced();
}

VRange
VRange::and_(const VRange &a, const VRange &b)
{
    if (a.empty_flag || b.empty_flag)
        return empty();
    VRange r;
    const std::uint32_t known0 = (a.known_mask & ~a.known_val) |
                                 (b.known_mask & ~b.known_val);
    const std::uint32_t known1 =
        (a.known_mask & a.known_val) & (b.known_mask & b.known_val);
    r.known_mask = known0 | known1;
    r.known_val = known1;
    r.lo = 0;
    r.hi = std::min(a.hi, b.hi);
    return r.reduced();
}

VRange
VRange::or_(const VRange &a, const VRange &b)
{
    if (a.empty_flag || b.empty_flag)
        return empty();
    VRange r;
    const std::uint32_t known1 =
        (a.known_mask & a.known_val) | (b.known_mask & b.known_val);
    const std::uint32_t known0 = (a.known_mask & ~a.known_val) &
                                 (b.known_mask & ~b.known_val);
    r.known_mask = known0 | known1;
    r.known_val = known1;
    r.lo = std::max(a.lo, b.lo);
    r.hi = lowMask(static_cast<unsigned>(
        std::bit_width(a.hi | b.hi)));
    return r.reduced();
}

VRange
VRange::xor_(const VRange &a, const VRange &b)
{
    if (a.empty_flag || b.empty_flag)
        return empty();
    VRange r;
    r.known_mask = a.known_mask & b.known_mask;
    r.known_val = (a.known_val ^ b.known_val) & r.known_mask;
    r.lo = 0;
    r.hi = lowMask(static_cast<unsigned>(
        std::bit_width(a.hi | b.hi)));
    return r.reduced();
}

VRange
VRange::shl(const VRange &a, const VRange &b)
{
    if (a.empty_flag || b.empty_flag)
        return empty();
    unsigned slo = 0, shi = 31;
    shiftAmounts(b, slo, shi);
    VRange r;
    const std::uint64_t hi64 = std::uint64_t{a.hi} << shi;
    if (hi64 < kWrap) {
        r.lo = a.lo << slo;
        r.hi = static_cast<std::uint32_t>(hi64);
    }
    if (slo == shi) {
        // Known bits shift exactly; the vacated low bits are zero.
        r.known_mask = (a.known_mask << slo) | lowMask(slo);
        r.known_val = a.known_val << slo;
    } else {
        // Trailing zeros survive any shift in [slo, shi].
        const unsigned tz =
            std::min(32u, trailingZeros(a) + slo);
        r.known_mask = lowMask(tz);
        r.known_val = 0;
    }
    return r.reduced();
}

VRange
VRange::shr(const VRange &a, const VRange &b)
{
    if (a.empty_flag || b.empty_flag)
        return empty();
    unsigned slo = 0, shi = 31;
    shiftAmounts(b, slo, shi);
    VRange r;
    r.lo = a.lo >> shi;
    r.hi = a.hi >> slo;
    if (slo == shi) {
        r.known_mask = (a.known_mask >> slo) |
                       (slo ? ~(0xffffffffu >> slo) : 0);
        r.known_val = a.known_val >> slo;
    } else if (slo > 0) {
        r.known_mask = ~(0xffffffffu >> slo);  // high bits zero
        r.known_val = 0;
    }
    return r.reduced();
}

VRange
VRange::sar(const VRange &a, const VRange &b)
{
    if (a.empty_flag || b.empty_flag)
        return empty();
    unsigned slo = 0, shi = 31;
    shiftAmounts(b, slo, shi);
    auto sraU = [](std::uint32_t v, unsigned s) {
        return static_cast<std::uint32_t>(
            static_cast<std::int32_t>(v) >> s);
    };
    // Split on the sign: within either half, sra is monotone in the
    // value; the shift amount moves negatives up and positives down.
    const VRange pos = meet(a, interval(0, 0x7fffffffu));
    const VRange neg = meet(a, interval(0x80000000u, 0xffffffffu));
    VRange out = empty();
    if (!pos.isEmpty())
        out = join(out, interval(pos.lo >> shi, pos.hi >> slo));
    if (!neg.isEmpty())
        out = join(out,
                   interval(sraU(neg.lo, slo), sraU(neg.hi, shi)));
    if (slo == shi && (a.known_mask & 0x80000000u)) {
        const std::uint32_t fill =
            slo ? ~(0xffffffffu >> slo) : 0;
        VRange bitsr;
        bitsr.known_mask = (a.known_mask >> slo) | fill;
        bitsr.known_val =
            (a.known_val >> slo) |
            ((a.known_val & 0x80000000u) ? fill : 0);
        out = meet(out, bitsr.reduced());
    }
    return out.reduced();
}

VRange
VRange::mul(const VRange &a, const VRange &b)
{
    if (a.empty_flag || b.empty_flag)
        return empty();
    if (a.isConstant() && b.isConstant())
        return constant(a.lo * b.lo);
    VRange r;
    const std::uint64_t hi64 = std::uint64_t{a.hi} * b.hi;
    if (hi64 < kWrap) {
        r.lo = a.lo * b.lo;
        r.hi = static_cast<std::uint32_t>(hi64);
    }
    // The product mod 2^t depends only on the operands mod 2^t, and
    // trailing zero counts add.
    const unsigned t =
        std::min(trailingKnown(a), trailingKnown(b));
    const unsigned tz =
        std::min(32u, trailingZeros(a) + trailingZeros(b));
    r.known_mask = lowMask(t) | lowMask(tz);
    r.known_val = (a.known_val * b.known_val) & lowMask(t);
    return r.reduced();
}

VRange
VRange::div(const VRange &a, const VRange &b)
{
    if (a.empty_flag || b.empty_flag)
        return empty();
    // A zero divisor traps before writing rd; the surviving
    // executions draw the divisor from b \ {0}.
    VRange bd = b;
    if (bd.isConstant() && bd.lo == 0)
        return empty();
    if (bd.lo == 0)
        bd = meet(bd, interval(1, 0xffffffffu));
    if (bd.isEmpty())
        return empty();
    if (a.isConstant() && bd.isConstant())
        return constant(concreteDiv(a.lo, bd.lo));
    // Non-negative / positive: plain unsigned interval division.
    if (a.hi < 0x80000000u && bd.hi < 0x80000000u)
        return interval(a.lo / bd.hi, a.hi / bd.lo);
    return top();
}

VRange
VRange::rem(const VRange &a, const VRange &b)
{
    if (a.empty_flag || b.empty_flag)
        return empty();
    VRange bd = b;
    if (bd.isConstant() && bd.lo == 0)
        return empty();
    if (bd.lo == 0)
        bd = meet(bd, interval(1, 0xffffffffu));
    if (bd.isEmpty())
        return empty();
    if (a.isConstant() && bd.isConstant())
        return constant(concreteRem(a.lo, bd.lo));
    if (a.hi < 0x80000000u && bd.hi < 0x80000000u)
        return interval(0, std::min(a.hi, bd.hi - 1));
    return top();
}

VRange
VRange::slt(const VRange &a, const VRange &b)
{
    if (a.empty_flag || b.empty_flag)
        return empty();
    if (a.smax() < b.smin())
        return constant(1);
    if (a.smin() >= b.smax())
        return constant(0);
    return interval(0, 1);
}

VRange
VRange::sltu(const VRange &a, const VRange &b)
{
    if (a.empty_flag || b.empty_flag)
        return empty();
    if (a.hi < b.lo)
        return constant(1);
    if (a.lo >= b.hi)
        return constant(0);
    return interval(0, 1);
}

} // namespace memwall
