#include "analysis/lowering.hh"

#include <algorithm>

#include "common/logging.hh"

namespace memwall {

ExecPlan
ExecPlan::build(const Program &prog, const Cfg &cfg)
{
    ExecPlan plan;
    const std::size_t n = prog.size();
    if (n == 0)
        return plan;

    // Address span. Instructions arrive in address order, but compute
    // min/max defensively — the dense table must cover every word.
    Addr lo = prog.instr(0).addr, hi = prog.instr(0).addr;
    for (std::size_t i = 1; i < n; ++i) {
        lo = std::min(lo, prog.instr(i).addr);
        hi = std::max(hi, prog.instr(i).addr);
    }
    const std::uint64_t span_words = ((hi + 4) - lo) >> 2;
    if (span_words > kMaxSpanWords) {
        MW_WARN("ExecPlan: code span ", span_words,
                " words exceeds cap; fast path disabled");
        return plan;
    }
    plan.base_ = lo;
    plan.limit_ = hi + 4;

    // Pre-decode every instruction; undecodable words keep their raw
    // machine word for the BadWord diagnostic side exit.
    plan.ops_.reserve(n);
    const auto &words = prog.assembled().words;
    for (std::size_t i = 0; i < n; ++i) {
        const InstrRecord &rec = prog.instr(i);
        std::uint32_t raw = 0;
        if (!rec.decoded) {
            auto it = words.find(rec.addr);
            if (it != words.end())
                raw = it->second;
        }
        plan.ops_.push_back(
            lowerMicroOp(rec.inst, rec.addr, rec.decoded, raw));
    }

    // Dense pc -> index dispatch table.
    plan.table_.assign(span_words, -1);
    for (std::size_t i = 0; i < n; ++i)
        plan.table_[(prog.instr(i).addr - lo) >> 2] =
            static_cast<std::int32_t>(i);

    // Eligibility. Start with everything fast, then knock out the
    // blocks the CFG could not pin down.
    const std::size_t nblocks = cfg.size();
    // 0 = fast, 1 = unknown indirect successor, 2 = irreducible.
    std::vector<std::uint8_t> block_fallback(nblocks, 0);
    for (unsigned b = 0; b < nblocks; ++b) {
        if (cfg.block(b).has_unknown_succ)
            block_fallback[b] = 1;
    }

    // Retreating edges whose target does not dominate the source are
    // the CFG's irreducibility witnesses; exclude both endpoints.
    // rpo() covers reachable blocks only — unreachable blocks carry
    // no ordering facts, so they keep their default eligibility
    // (correctness never depends on this flag).
    const auto &rpo = cfg.rpo();
    std::vector<int> rpo_num(nblocks, -1);
    for (std::size_t i = 0; i < rpo.size(); ++i)
        rpo_num[rpo[i]] = static_cast<int>(i);
    for (unsigned u : rpo) {
        for (unsigned v : cfg.block(u).succs) {
            if (rpo_num[v] < 0 || rpo_num[v] > rpo_num[u])
                continue;  // forward edge or unordered target
            if (!cfg.dominates(v, u)) {
                if (block_fallback[u] == 0)
                    block_fallback[u] = 2;
                if (block_fallback[v] == 0)
                    block_fallback[v] = 2;
            }
        }
    }

    plan.eligible_.assign(n, 1);
    for (unsigned b = 0; b < nblocks; ++b) {
        if (block_fallback[b] == 0)
            continue;
        const BasicBlock &blk = cfg.block(b);
        for (std::size_t i = blk.first; i <= blk.last; ++i) {
            plan.eligible_[i] = 0;
            if (block_fallback[b] == 1)
                ++plan.unknown_succ_ops_;
            else
                ++plan.irreducible_ops_;
        }
    }
    for (std::size_t i = 0; i < n; ++i)
        plan.eligible_ops_ += plan.eligible_[i];

    // Trace ends, computed backwards: a trace runs to the first
    // control transfer, address discontinuity, or eligibility flip.
    // Ineligible ops get a self-trace so traceEnd() is always valid.
    plan.trace_end_.assign(n, 0);
    for (std::size_t i = n; i-- > 0;) {
        const bool last = i + 1 == n;
        const bool contiguous =
            !last && plan.ops_[i + 1].pc == plan.ops_[i].pc + 4;
        if (isControlKind(plan.ops_[i].kind) || !contiguous ||
            plan.eligible_[i + 1] != plan.eligible_[i]) {
            plan.trace_end_[i] = static_cast<std::uint32_t>(i);
        } else {
            plan.trace_end_[i] = plan.trace_end_[i + 1];
        }
    }

    plan.enabled_ = true;
    return plan;
}

ExecPlan
ExecPlan::build(const AssembledProgram &prog)
{
    const Program p = Program::build(prog);
    const Cfg cfg = Cfg::build(p);
    return build(p, cfg);
}

} // namespace memwall
