#include "analysis/dataflow.hh"

#include <algorithm>

namespace memwall {

namespace {

constexpr std::uint32_t all_regs = 0xffffffffu;

/** True for jal/jalr with a live link register (a call). */
bool
isCall(const Instruction &inst)
{
    return (inst.op == Opcode::Jal || inst.op == Opcode::Jalr) &&
           inst.rd != 0;
}

} // namespace

void
ConstState::meet(const ConstState &other)
{
    std::uint32_t agree = known & other.known;
    for (unsigned r = 1; r < 32; ++r)
        if ((agree & (1u << r)) && val[r] != other.val[r])
            agree &= ~(1u << r);
    known = agree | 1u;
}

std::uint32_t
Dataflow::calleeClobbers(Addr entry) const
{
    auto it = clobbers_.find(entry);
    return it != clobbers_.end() ? it->second : all_regs & ~1u;
}

std::uint32_t
Dataflow::calleeWrites(Addr entry) const
{
    auto it = writes_.find(entry);
    return it != writes_.end() ? it->second : all_regs & ~1u;
}

void
Dataflow::transfer(const Program &prog, const Dataflow *df,
                   std::size_t i, ConstState &state)
{
    const InstrRecord &rec = prog.instr(i);
    if (!rec.decoded)
        return;
    const Instruction &inst = rec.inst;
    const unsigned rd = defOf(inst);

    if (isCall(inst)) {
        // The callee may clobber part of the state.
        std::uint32_t clob = all_regs & ~1u;
        if (inst.op == Opcode::Jal && df) {
            const Addr target =
                rec.addr + 4 +
                static_cast<Addr>(
                    static_cast<std::int64_t>(inst.target) * 4);
            clob = df->calleeClobbers(target);
        }
        for (unsigned r = 1; r < 32; ++r)
            if (clob & (1u << r))
                state.kill(r);
        if (rd)
            state.set(rd, static_cast<std::uint32_t>(rec.addr + 4));
        return;
    }
    if (rd == 0)
        return;  // stores, branches, halt, sync define nothing

    const auto a = state.get(inst.rs1);
    const auto b = state.get(inst.rs2);
    const auto uimm = static_cast<std::uint32_t>(inst.imm);
    auto set = [&](std::uint32_t v) { state.set(rd, v); };
    auto fromBinary =
        [&](auto fn) {
            if (a && b)
                set(fn(*a, *b));
            else
                state.kill(rd);
        };
    auto fromUnary =
        [&](auto fn) {
            if (a)
                set(fn(*a));
            else
                state.kill(rd);
        };

    switch (inst.op) {
      case Opcode::Add:
        fromBinary([](std::uint32_t x, std::uint32_t y) {
            return x + y;
        });
        break;
      case Opcode::Sub:
        fromBinary([](std::uint32_t x, std::uint32_t y) {
            return x - y;
        });
        break;
      case Opcode::And:
        fromBinary([](std::uint32_t x, std::uint32_t y) {
            return x & y;
        });
        break;
      case Opcode::Or:
        fromBinary([](std::uint32_t x, std::uint32_t y) {
            return x | y;
        });
        break;
      case Opcode::Xor:
        fromBinary([](std::uint32_t x, std::uint32_t y) {
            return x ^ y;
        });
        break;
      case Opcode::Sll:
        fromBinary([](std::uint32_t x, std::uint32_t y) {
            return x << (y & 31);
        });
        break;
      case Opcode::Srl:
        fromBinary([](std::uint32_t x, std::uint32_t y) {
            return x >> (y & 31);
        });
        break;
      case Opcode::Sra:
        fromBinary([](std::uint32_t x, std::uint32_t y) {
            return static_cast<std::uint32_t>(
                static_cast<std::int32_t>(x) >> (y & 31));
        });
        break;
      case Opcode::Slt:
        fromBinary([](std::uint32_t x, std::uint32_t y) {
            return static_cast<std::int32_t>(x) <
                           static_cast<std::int32_t>(y)
                       ? 1u
                       : 0u;
        });
        break;
      case Opcode::Sltu:
        fromBinary([](std::uint32_t x, std::uint32_t y) {
            return x < y ? 1u : 0u;
        });
        break;
      case Opcode::Mul:
        fromBinary([](std::uint32_t x, std::uint32_t y) {
            return x * y;
        });
        break;
      // A zero divisor traps (StopReason::DivideByZero): no value
      // reaches rd, so only a known non-zero divisor folds. The
      // INT_MIN / -1 case wraps like the interpreter instead of
      // tripping host signed-overflow UB.
      case Opcode::Div:
        if (a && b && *b != 0) {
            set(*b == 0xffffffffu
                    ? std::uint32_t{0} - *a
                    : static_cast<std::uint32_t>(
                          static_cast<std::int32_t>(*a) /
                          static_cast<std::int32_t>(*b)));
        } else {
            state.kill(rd);
        }
        break;
      case Opcode::Rem:
        if (a && b && *b != 0) {
            set(*b == 0xffffffffu
                    ? 0u
                    : static_cast<std::uint32_t>(
                          static_cast<std::int32_t>(*a) %
                          static_cast<std::int32_t>(*b)));
        } else {
            state.kill(rd);
        }
        break;
      case Opcode::Addi:
        fromUnary([&](std::uint32_t x) { return x + uimm; });
        break;
      case Opcode::Andi:
        fromUnary([&](std::uint32_t x) {
            return x & (uimm & 0xffffu);
        });
        break;
      case Opcode::Ori:
        fromUnary([&](std::uint32_t x) {
            return x | (uimm & 0xffffu);
        });
        break;
      case Opcode::Xori:
        fromUnary([&](std::uint32_t x) {
            return x ^ (uimm & 0xffffu);
        });
        break;
      case Opcode::Slli:
        fromUnary([&](std::uint32_t x) { return x << (uimm & 31); });
        break;
      case Opcode::Srli:
        fromUnary([&](std::uint32_t x) { return x >> (uimm & 31); });
        break;
      case Opcode::Srai:
        fromUnary([&](std::uint32_t x) {
            return static_cast<std::uint32_t>(
                static_cast<std::int32_t>(x) >> (uimm & 31));
        });
        break;
      case Opcode::Slti:
        fromUnary([&](std::uint32_t x) {
            return static_cast<std::int32_t>(x) < inst.imm ? 1u : 0u;
        });
        break;
      case Opcode::Lui:
        set(uimm << 16);
        break;
      default:
        state.kill(rd);  // loads and anything else
        break;
    }
}

Dataflow
Dataflow::build(const Program &prog, const Cfg &cfg)
{
    Dataflow df;
    const std::size_t n = prog.size();
    const std::size_t nb = cfg.size();
    df.live_in_.assign(n, 0);
    df.live_out_.assign(n, 0);
    df.may_def_in_.assign(n, 1u);
    df.const_before_.assign(n, ConstState{});
    if (n == 0)
        return df;

    // ---- Callee write/clobber summaries (call-graph fixpoint) ----
    // Function bodies: blocks reachable from the callee entry over
    // CFG edges (calls inside stay in the caller: the call edge is
    // not a CFG edge).
    std::map<Addr, std::vector<unsigned>> bodies;
    for (const CallSite &c : cfg.calls()) {
        if (!c.known || bodies.contains(c.target))
            continue;
        const std::size_t ei = prog.indexOf(c.target);
        if (ei == Program::npos)
            continue;
        std::vector<bool> seen(nb, false);
        std::vector<unsigned> stack{cfg.blockOf(ei)};
        std::vector<unsigned> body;
        seen[cfg.blockOf(ei)] = true;
        while (!stack.empty()) {
            const unsigned b = stack.back();
            stack.pop_back();
            body.push_back(b);
            for (unsigned s : cfg.block(b).succs)
                if (!seen[s]) {
                    seen[s] = true;
                    stack.push_back(s);
                }
        }
        bodies[c.target] = std::move(body);
    }
    for (const auto &[entry, body] : bodies) {
        (void)body;
        df.clobbers_[entry] = 0;
        df.writes_[entry] = 0;
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto &[entry, body] : bodies) {
            std::uint32_t writes = 0, restored = 0;
            for (unsigned b : body) {
                for (std::size_t i = cfg.block(b).first;
                     i <= cfg.block(b).last; ++i) {
                    const InstrRecord &rec = prog.instr(i);
                    if (!rec.decoded)
                        continue;
                    const unsigned rd = defOf(rec.inst);
                    if (rd)
                        writes |= 1u << rd;
                    if (rec.inst.op == Opcode::Lw &&
                        rec.inst.rs1 == 30)
                        restored |= 1u << rec.inst.rd;
                    if (isCall(rec.inst)) {
                        if (rec.inst.op == Opcode::Jal) {
                            const Addr t =
                                rec.addr + 4 +
                                static_cast<Addr>(
                                    static_cast<std::int64_t>(
                                        rec.inst.target) *
                                    4);
                            writes |= df.calleeClobbers(t);
                        } else {
                            writes |= all_regs & ~1u;
                        }
                    }
                }
            }
            const std::uint32_t clob =
                (writes & ~restored) & ~(1u << 30) & ~1u;
            if (clob != df.clobbers_[entry] ||
                (writes & ~1u) != df.writes_[entry]) {
                df.clobbers_[entry] = clob;
                df.writes_[entry] = writes & ~1u;
                changed = true;
            }
        }
    }

    // ---- Per-instruction def/use masks -------------------------
    auto defMaskOf = [&](std::size_t i) -> std::uint32_t {
        const InstrRecord &rec = prog.instr(i);
        if (!rec.decoded)
            return 0;
        std::uint32_t mask =
            defOf(rec.inst) ? 1u << defOf(rec.inst) : 0;
        if (isCall(rec.inst)) {
            // A call may define whatever the callee writes
            // (return values, scratch).
            if (rec.inst.op == Opcode::Jal) {
                const Addr t =
                    rec.addr + 4 +
                    static_cast<Addr>(
                        static_cast<std::int64_t>(rec.inst.target) *
                        4);
                mask |= df.calleeWrites(t);
            } else {
                mask |= all_regs & ~1u;
            }
        }
        return mask;
    };
    auto useMaskOf = [&](std::size_t i) -> std::uint32_t {
        const InstrRecord &rec = prog.instr(i);
        if (!rec.decoded)
            return 0;
        if (isCall(rec.inst))
            return all_regs & ~1u;  // arguments are unknown
        return usesOf(rec.inst);
    };

    // ---- Liveness (backward union) -----------------------------
    std::vector<std::uint32_t> blive_in(nb, 0), blive_out(nb, 0);
    changed = true;
    while (changed) {
        changed = false;
        for (auto it = cfg.rpo().rbegin(); it != cfg.rpo().rend();
             ++it) {
            const BasicBlock &bb = cfg.block(*it);
            std::uint32_t out = 0;
            if (bb.is_exit || bb.has_unknown_succ)
                out = all_regs & ~1u;
            for (unsigned s : bb.succs)
                out |= blive_in[s];
            // Only the direct definition kills liveness; a call's
            // clobber set is a may-def and must not kill.
            std::uint32_t in = out;
            for (std::size_t i = bb.last + 1; i-- > bb.first;) {
                const InstrRecord &rec = prog.instr(i);
                std::uint32_t kill = 0;
                if (rec.decoded && defOf(rec.inst))
                    kill = 1u << defOf(rec.inst);
                in = (in & ~kill) | useMaskOf(i);
            }
            if (in != blive_in[bb.id] || out != blive_out[bb.id]) {
                blive_in[bb.id] = in;
                blive_out[bb.id] = out;
                changed = true;
            }
        }
    }
    for (const BasicBlock &bb : cfg.blocks()) {
        std::uint32_t live = blive_out[bb.id];
        for (std::size_t i = bb.last + 1; i-- > bb.first;) {
            df.live_out_[i] = live;
            const InstrRecord &rec = prog.instr(i);
            std::uint32_t kill = 0;
            if (rec.decoded && defOf(rec.inst))
                kill = 1u << defOf(rec.inst);
            live = (live & ~kill) | useMaskOf(i);
            df.live_in_[i] = live;
        }
    }

    // ---- May-be-defined (forward union, call-aware) ------------
    std::vector<std::uint32_t> bdef_in(nb, 1u), bdef_out(nb, 1u);
    // Callee entries inherit definedness from their call sites.
    std::map<unsigned, std::vector<unsigned>> extra_preds;
    for (const CallSite &c : cfg.calls()) {
        if (!c.known)
            continue;
        const std::size_t ei = prog.indexOf(c.target);
        if (ei != Program::npos)
            extra_preds[cfg.blockOf(ei)].push_back(c.block);
    }
    changed = true;
    while (changed) {
        changed = false;
        for (unsigned b : cfg.rpo()) {
            const BasicBlock &bb = cfg.block(b);
            std::uint32_t in = 1u;
            bool has_pred = false;
            for (unsigned p : bb.preds) {
                in |= bdef_out[p];
                has_pred = true;
            }
            auto ep = extra_preds.find(b);
            if (ep != extra_preds.end())
                for (unsigned p : ep->second) {
                    in |= bdef_out[p];
                    has_pred = true;
                }
            (void)has_pred;
            std::uint32_t out = in;
            for (std::size_t i = bb.first; i <= bb.last; ++i)
                out |= defMaskOf(i);
            if (in != bdef_in[b] || out != bdef_out[b]) {
                bdef_in[b] = in;
                bdef_out[b] = out;
                changed = true;
            }
        }
    }
    for (const BasicBlock &bb : cfg.blocks()) {
        std::uint32_t defined = bdef_in[bb.id];
        for (std::size_t i = bb.first; i <= bb.last; ++i) {
            df.may_def_in_[i] = defined;
            defined |= defMaskOf(i);
        }
    }

    // ---- Constant propagation (forward meet-over-paths) --------
    std::vector<ConstState> bin(nb), bout(nb);
    std::vector<bool> breached(nb, false);
    if (!cfg.rpo().empty()) {
        breached[cfg.entry()] = true;
        // Callee entries start unknown (any caller state).
        for (const auto &[eb, srcs] : extra_preds) {
            (void)srcs;
            breached[eb] = true;
            bin[eb].known = 1u;
        }
        changed = true;
        while (changed) {
            changed = false;
            for (unsigned b : cfg.rpo()) {
                const BasicBlock &bb = cfg.block(b);
                ConstState in;
                bool first = true;
                if (b == cfg.entry() || extra_preds.contains(b)) {
                    // Entry states merge with the unknown world.
                    in.known = 1u;
                    first = false;
                }
                for (unsigned p : bb.preds) {
                    if (!breached[p])
                        continue;
                    if (first) {
                        in = bout[p];
                        first = false;
                    } else {
                        in.meet(bout[p]);
                    }
                }
                if (first && !breached[b])
                    continue;  // unreachable so far
                breached[b] = true;
                ConstState out = in;
                for (std::size_t i = bb.first; i <= bb.last; ++i)
                    transfer(prog, &df, i, out);
                if (in.known != bin[b].known ||
                    in.val != bin[b].val ||
                    out.known != bout[b].known ||
                    out.val != bout[b].val) {
                    bin[b] = in;
                    bout[b] = out;
                    changed = true;
                }
            }
        }
    }
    for (const BasicBlock &bb : cfg.blocks()) {
        ConstState state = bin[bb.id];
        if (!breached[bb.id])
            state.known = 1u;
        for (std::size_t i = bb.first; i <= bb.last; ++i) {
            df.const_before_[i] = state;
            transfer(prog, &df, i, state);
        }
    }

    return df;
}

} // namespace memwall
