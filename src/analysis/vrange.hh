/**
 * @file
 * VRange — the abstract value domain of the mw32 abstract
 * interpreter: a reduced product of an unsigned interval and a
 * known-bits (tristate) lattice over 32-bit machine words.
 *
 *   interval    [lo, hi]      unsigned, inclusive, non-wrapping
 *   known bits  (mask, val)   bit i of the value equals bit i of
 *                             `val` wherever bit i of `mask` is set
 *
 * A concrete value v is represented iff
 *     lo <= v <= hi   and   (v & mask) == val.
 *
 * The two components are kept mutually reduced: leading bits shared
 * by lo and hi become known bits, and the known bits clamp the
 * interval to the smallest/largest consistent values. An
 * unsatisfiable combination collapses to the explicit empty range.
 *
 * All transfer functions are SOUND over-approximations of the
 * interpreter's semantics (interpreter.cc is the ground truth): for
 * any concrete inputs drawn from the argument ranges, the concrete
 * result lies in the returned range. Precision is best-effort —
 * wrap-around in add/sub falls back to top, shifts by non-constant
 * amounts keep only trailing zero bits, and signed division is only
 * folded when both operands stay in the non-negative half.
 *
 * validation_absint_crosscheck enforces the soundness contract
 * dynamically: every register value observed while stepping the
 * interpreter must be contained in the static range computed for
 * that program point.
 */

#ifndef MEMWALL_ANALYSIS_VRANGE_HH
#define MEMWALL_ANALYSIS_VRANGE_HH

#include <cstdint>
#include <string>

namespace memwall {

/** Interval x known-bits abstract value over uint32. */
struct VRange
{
    std::uint32_t lo = 0;
    std::uint32_t hi = 0xffffffffu;
    std::uint32_t known_mask = 0;  ///< 1 = bit value is known
    std::uint32_t known_val = 0;   ///< known bit values (subset of mask)
    bool empty_flag = false;       ///< no concrete value satisfies

    // ---- Constructors --------------------------------------------
    static VRange top() { return VRange{}; }
    static VRange empty()
    {
        VRange r;
        r.empty_flag = true;
        r.lo = 1;
        r.hi = 0;
        return r;
    }
    static VRange constant(std::uint32_t v)
    {
        VRange r;
        r.lo = r.hi = v;
        r.known_mask = 0xffffffffu;
        r.known_val = v;
        return r;
    }
    /** [lo, hi], reduced against trivially-derivable bits. */
    static VRange interval(std::uint32_t lo, std::uint32_t hi);
    /** Bits in @p mask equal @p val; interval derived. */
    static VRange bits(std::uint32_t mask, std::uint32_t val);

    // ---- Queries -------------------------------------------------
    bool isEmpty() const { return empty_flag; }
    bool isTop() const
    {
        return !empty_flag && lo == 0 && hi == 0xffffffffu &&
               known_mask == 0;
    }
    bool isConstant() const { return !empty_flag && lo == hi; }
    bool contains(std::uint32_t v) const
    {
        return !empty_flag && lo <= v && v <= hi &&
               (v & known_mask) == known_val;
    }
    /** @return true iff every value of *this is a value of @p o. */
    bool subsetOf(const VRange &o) const;
    bool operator==(const VRange &o) const
    {
        return empty_flag == o.empty_flag &&
               (empty_flag ||
                (lo == o.lo && hi == o.hi &&
                 known_mask == o.known_mask &&
                 known_val == o.known_val));
    }
    /** Signed lower bound of the range (as int32). */
    std::int32_t smin() const;
    /** Signed upper bound of the range (as int32). */
    std::int32_t smax() const;
    /** "[0x10, 0x1f] &fffffffc=10" style debug/tool rendering. */
    std::string str() const;

    // ---- Lattice -------------------------------------------------
    /** Least upper bound (set union, over-approximated). */
    static VRange join(const VRange &a, const VRange &b);
    /** Greatest lower bound (set intersection, exact or empty). */
    static VRange meet(const VRange &a, const VRange &b);
    /** Widening: extrapolate unstable bounds of @p next past
     * @p prev straight to the domain extremes so loop fixpoints
     * terminate; known bits degrade to the agreeing subset. */
    static VRange widen(const VRange &prev, const VRange &next);

    // ---- Transfer functions (match interpreter.cc) ---------------
    static VRange add(const VRange &a, const VRange &b);
    static VRange sub(const VRange &a, const VRange &b);
    static VRange and_(const VRange &a, const VRange &b);
    static VRange or_(const VRange &a, const VRange &b);
    static VRange xor_(const VRange &a, const VRange &b);
    /** a << (b & 31) */
    static VRange shl(const VRange &a, const VRange &b);
    /** a >> (b & 31), logical */
    static VRange shr(const VRange &a, const VRange &b);
    /** a >> (b & 31), arithmetic */
    static VRange sar(const VRange &a, const VRange &b);
    static VRange mul(const VRange &a, const VRange &b);
    /** Signed divide; zero divisors trap and produce no value, so
     * they are excluded from the result. */
    static VRange div(const VRange &a, const VRange &b);
    static VRange rem(const VRange &a, const VRange &b);
    /** (sa < sb) ? 1 : 0 */
    static VRange slt(const VRange &a, const VRange &b);
    /** (a < b) ? 1 : 0 */
    static VRange sltu(const VRange &a, const VRange &b);

    /** Re-establish the reduced-product invariants. */
    VRange reduced() const;
};

} // namespace memwall

#endif // MEMWALL_ANALYSIS_VRANGE_HH
