#include "isa/opcodes.hh"

#include "common/logging.hh"

namespace memwall {

std::string_view
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Sll: return "sll";
      case Opcode::Srl: return "srl";
      case Opcode::Sra: return "sra";
      case Opcode::Slt: return "slt";
      case Opcode::Sltu: return "sltu";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::Addi: return "addi";
      case Opcode::Andi: return "andi";
      case Opcode::Ori: return "ori";
      case Opcode::Xori: return "xori";
      case Opcode::Slli: return "slli";
      case Opcode::Srli: return "srli";
      case Opcode::Srai: return "srai";
      case Opcode::Slti: return "slti";
      case Opcode::Lui: return "lui";
      case Opcode::Lb: return "lb";
      case Opcode::Lbu: return "lbu";
      case Opcode::Lh: return "lh";
      case Opcode::Lhu: return "lhu";
      case Opcode::Lw: return "lw";
      case Opcode::Sb: return "sb";
      case Opcode::Sh: return "sh";
      case Opcode::Sw: return "sw";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Bltu: return "bltu";
      case Opcode::Bgeu: return "bgeu";
      case Opcode::Jal: return "jal";
      case Opcode::Jalr: return "jalr";
      case Opcode::Halt: return "halt";
      case Opcode::Sync: return "sync";
    }
    return "?";
}

InstrFormat
opcodeFormat(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Sll:
      case Opcode::Srl:
      case Opcode::Sra:
      case Opcode::Slt:
      case Opcode::Sltu:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Rem:
        return InstrFormat::R;
      case Opcode::Addi:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Slli:
      case Opcode::Srli:
      case Opcode::Srai:
      case Opcode::Slti:
        return InstrFormat::I;
      case Opcode::Lui:
        return InstrFormat::LuiI;
      case Opcode::Lb:
      case Opcode::Lbu:
      case Opcode::Lh:
      case Opcode::Lhu:
      case Opcode::Lw:
        return InstrFormat::LoadI;
      case Opcode::Sb:
      case Opcode::Sh:
      case Opcode::Sw:
        return InstrFormat::StoreI;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
      case Opcode::Bgeu:
        return InstrFormat::Branch;
      case Opcode::Jal:
      case Opcode::Jalr:
        return InstrFormat::Jump;
      case Opcode::Halt:
      case Opcode::Sync:
        return InstrFormat::None;
    }
    return InstrFormat::None;
}

bool
opcodeValid(std::uint8_t raw)
{
    switch (static_cast<Opcode>(raw)) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Sll:
      case Opcode::Srl:
      case Opcode::Sra:
      case Opcode::Slt:
      case Opcode::Sltu:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::Addi:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Slli:
      case Opcode::Srli:
      case Opcode::Srai:
      case Opcode::Slti:
      case Opcode::Lui:
      case Opcode::Lb:
      case Opcode::Lbu:
      case Opcode::Lh:
      case Opcode::Lhu:
      case Opcode::Lw:
      case Opcode::Sb:
      case Opcode::Sh:
      case Opcode::Sw:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
      case Opcode::Bgeu:
      case Opcode::Jal:
      case Opcode::Jalr:
      case Opcode::Halt:
      case Opcode::Sync:
        return true;
    }
    return false;
}

unsigned
accessSize(Opcode op)
{
    switch (op) {
      case Opcode::Lb:
      case Opcode::Lbu:
      case Opcode::Sb:
        return 1;
      case Opcode::Lh:
      case Opcode::Lhu:
      case Opcode::Sh:
        return 2;
      case Opcode::Lw:
      case Opcode::Sw:
        return 4;
      default:
        MW_PANIC("accessSize called on non-memory opcode ",
                 opcodeName(op));
    }
}

} // namespace memwall
