/**
 * @file
 * Pre-decoded MW32 micro-operations — the unit of the execution fast
 * path's decode cache.
 *
 * The functional interpreter pays a memory read, a field decode and
 * a dispatch per executed instruction. The fast path decodes each
 * instruction word ONCE into a MicroOp: a flat record holding the
 * dispatch kind, register numbers and a pre-folded immediate, so the
 * execution loop is a table-driven jump with no per-instruction
 * fetch, decode or immediate massaging. Folding done at decode time:
 *
 *  - logical immediates (andi/ori/xori) carry their zero-extended
 *    16-bit mask;
 *  - shift immediates are pre-masked to 5 bits;
 *  - lui carries the final 32-bit constant (kind LoadConst);
 *  - addi/ori with rs1 == r0 also fold to LoadConst;
 *  - ALU ops writing r0 fold to Nop (retires, defines nothing) —
 *    except Div/Rem, which can trap and so always keep their kind;
 *  - branch/jal displacements are pre-scaled to byte offsets from
 *    the instruction's own pc (disp = imm*4 + 4);
 *  - undecodable words become kind BadWord carrying the raw word so
 *    the fast path can reproduce the interpreter's diagnostic.
 *
 * Decoded programs are immutable: guest code is read-only by
 * invariant (see FastExecutor), so a MicroOp never goes stale.
 */

#ifndef MEMWALL_ISA_MICRO_OP_HH
#define MEMWALL_ISA_MICRO_OP_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace memwall {

/** Dispatch kind of a pre-decoded instruction. */
enum class MicroKind : std::uint8_t {
    // Straight-line ops (never change control flow).
    Nop = 0,    ///< retires, no architectural effect (incl. sync)
    LoadConst,  ///< rd <- imm (lui / addi,ori with rs1 == r0)
    Add,
    Sub,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
    Mul,
    Div,
    Rem,
    Addi,
    Andi,  ///< imm pre-masked to 16 bits
    Ori,   ///< imm pre-masked to 16 bits
    Xori,  ///< imm pre-masked to 16 bits
    Slli,  ///< imm pre-masked to 5 bits
    Srli,  ///< imm pre-masked to 5 bits
    Srai,  ///< imm pre-masked to 5 bits
    Slti,
    Lb,
    Lbu,
    Lh,
    Lhu,
    Lw,
    Sb,  ///< value register in rd (StoreI encoding)
    Sh,
    Sw,
    // Control transfers (always end a straight-line trace).
    Beq,  ///< imm = taken byte displacement from this op's pc
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    Jal,   ///< imm = byte displacement; rd may be r0 (plain jump)
    Jalr,  ///< dest = (rs1 + imm) & ~3; rd may be r0
    Halt,
    BadWord,  ///< imm = raw undecodable word (diagnostic side exit)
};

inline constexpr unsigned micro_kind_count =
    static_cast<unsigned>(MicroKind::BadWord) + 1;

/** @return true iff @p k may redirect the pc (ends a trace). */
constexpr bool
isControlKind(MicroKind k)
{
    return k >= MicroKind::Beq;
}

/** One pre-decoded instruction. */
struct MicroOp
{
    Addr pc = 0;           ///< address of the instruction word
    std::int32_t imm = 0;  ///< pre-folded immediate (see MicroKind)
    MicroKind kind = MicroKind::Nop;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
};

/**
 * Decode @p inst (at @p pc) into a MicroOp. @p decoded false marks
 * an undecodable word; @p raw_word is the original machine word,
 * kept for the BadWord diagnostic.
 */
inline MicroOp
lowerMicroOp(const Instruction &inst, Addr pc, bool decoded,
             std::uint32_t raw_word)
{
    MicroOp op;
    op.pc = pc;
    op.rd = inst.rd;
    op.rs1 = inst.rs1;
    op.rs2 = inst.rs2;
    op.imm = inst.imm;

    if (!decoded) {
        op.kind = MicroKind::BadWord;
        op.imm = static_cast<std::int32_t>(raw_word);
        return op;
    }

    auto alu = [&](MicroKind k) {
        // Writes to r0 are discarded by the hardware: the op still
        // retires but defines nothing.
        op.kind = inst.rd == 0 ? MicroKind::Nop : k;
    };
    auto branch = [&](MicroKind k) {
        op.kind = k;
        op.imm = inst.imm * 4 + 4;  // taken byte disp from own pc
    };

    switch (inst.op) {
      case Opcode::Add: alu(MicroKind::Add); break;
      case Opcode::Sub: alu(MicroKind::Sub); break;
      case Opcode::And: alu(MicroKind::And); break;
      case Opcode::Or: alu(MicroKind::Or); break;
      case Opcode::Xor: alu(MicroKind::Xor); break;
      case Opcode::Sll: alu(MicroKind::Sll); break;
      case Opcode::Srl: alu(MicroKind::Srl); break;
      case Opcode::Sra: alu(MicroKind::Sra); break;
      case Opcode::Slt: alu(MicroKind::Slt); break;
      case Opcode::Sltu: alu(MicroKind::Sltu); break;
      case Opcode::Mul: alu(MicroKind::Mul); break;
      // Div/Rem can trap (DivideByZero) even with rd == r0, so they
      // never fold to Nop; the handler discards the r0 write instead.
      case Opcode::Div: op.kind = MicroKind::Div; break;
      case Opcode::Rem: op.kind = MicroKind::Rem; break;

      case Opcode::Addi:
        if (inst.rs1 == 0) {
            alu(MicroKind::LoadConst);  // imm is already the value
        } else {
            alu(MicroKind::Addi);
        }
        break;
      case Opcode::Andi:
        alu(MicroKind::Andi);
        op.imm = inst.imm & 0xffff;
        break;
      case Opcode::Ori:
        if (inst.rs1 == 0) {
            alu(MicroKind::LoadConst);
        } else {
            alu(MicroKind::Ori);
        }
        op.imm = inst.imm & 0xffff;
        break;
      case Opcode::Xori:
        alu(MicroKind::Xori);
        op.imm = inst.imm & 0xffff;
        break;
      case Opcode::Slli:
        alu(MicroKind::Slli);
        op.imm = inst.imm & 31;
        break;
      case Opcode::Srli:
        alu(MicroKind::Srli);
        op.imm = inst.imm & 31;
        break;
      case Opcode::Srai:
        alu(MicroKind::Srai);
        op.imm = inst.imm & 31;
        break;
      case Opcode::Slti: alu(MicroKind::Slti); break;
      case Opcode::Lui:
        alu(MicroKind::LoadConst);
        op.imm = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(inst.imm) << 16);
        break;

      case Opcode::Lb: op.kind = MicroKind::Lb; break;
      case Opcode::Lbu: op.kind = MicroKind::Lbu; break;
      case Opcode::Lh: op.kind = MicroKind::Lh; break;
      case Opcode::Lhu: op.kind = MicroKind::Lhu; break;
      case Opcode::Lw: op.kind = MicroKind::Lw; break;
      case Opcode::Sb: op.kind = MicroKind::Sb; break;
      case Opcode::Sh: op.kind = MicroKind::Sh; break;
      case Opcode::Sw: op.kind = MicroKind::Sw; break;

      case Opcode::Beq: branch(MicroKind::Beq); break;
      case Opcode::Bne: branch(MicroKind::Bne); break;
      case Opcode::Blt: branch(MicroKind::Blt); break;
      case Opcode::Bge: branch(MicroKind::Bge); break;
      case Opcode::Bltu: branch(MicroKind::Bltu); break;
      case Opcode::Bgeu: branch(MicroKind::Bgeu); break;

      case Opcode::Jal:
        op.kind = MicroKind::Jal;
        op.imm = inst.target * 4 + 4;
        break;
      case Opcode::Jalr: op.kind = MicroKind::Jalr; break;
      case Opcode::Halt: op.kind = MicroKind::Halt; break;
      case Opcode::Sync: op.kind = MicroKind::Nop; break;
    }
    return op;
}

} // namespace memwall

#endif // MEMWALL_ISA_MICRO_OP_HH
