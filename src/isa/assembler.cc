#include "isa/assembler.hh"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>

#include "common/logging.hh"

namespace memwall {

namespace {

/** Strip comments and surrounding whitespace. */
std::string
cleanLine(const std::string &raw)
{
    std::string line = raw;
    const auto comment = line.find_first_of(";#");
    if (comment != std::string::npos)
        line.erase(comment);
    const auto begin = line.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos)
        return {};
    const auto end = line.find_last_not_of(" \t\r\n");
    return line.substr(begin, end - begin + 1);
}

/** Split "op a, b, c" into mnemonic and operand strings. */
void
splitOperands(const std::string &line, std::string &mnemonic,
              std::vector<std::string> &operands)
{
    mnemonic.clear();
    operands.clear();
    std::size_t i = 0;
    while (i < line.size() && !std::isspace(
               static_cast<unsigned char>(line[i])))
        mnemonic.push_back(static_cast<char>(std::tolower(
            static_cast<unsigned char>(line[i++]))));
    std::string rest = line.substr(i);
    std::string cur;
    for (char c : rest) {
        if (c == ',') {
            operands.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    operands.push_back(cur);
    // Trim each operand; drop empties from trailing commas.
    for (auto &op : operands) {
        const auto b = op.find_first_not_of(" \t");
        if (b == std::string::npos) {
            op.clear();
            continue;
        }
        const auto e = op.find_last_not_of(" \t");
        op = op.substr(b, e - b + 1);
    }
    while (!operands.empty() && operands.back().empty())
        operands.pop_back();
}

/** Parse a register name. */
std::optional<unsigned>
parseRegister(const std::string &tok)
{
    std::string t;
    for (char c : tok)
        t.push_back(static_cast<char>(std::tolower(
            static_cast<unsigned char>(c))));
    if (t == "zero")
        return 0u;
    if (t == "ra")
        return 31u;
    if (t == "sp")
        return 30u;
    if (t.size() >= 2 && t[0] == 'r') {
        unsigned n = 0;
        for (std::size_t i = 1; i < t.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(t[i])))
                return std::nullopt;
            n = n * 10 + static_cast<unsigned>(t[i] - '0');
        }
        if (n < 32)
            return n;
    }
    return std::nullopt;
}

/** Lines of assembly, pre-tokenised once so both passes agree. */
struct SourceLine
{
    unsigned number;
    std::vector<std::string> labels;
    std::string mnemonic;
    std::vector<std::string> operands;
};

struct Assembler
{
    AssembledProgram out;
    std::vector<SourceLine> lines;
    /** Source line of the directive currently emitting words. */
    unsigned cur_line = 0;
    /** True while emitting .word/.byte data rather than code. */
    bool cur_data = false;

    void error(unsigned line, std::string msg, std::string token = {})
    {
        out.errors.push_back(
            AsmError{line, std::move(msg), std::move(token)});
    }

    /** Parse an integer literal or symbol reference. */
    std::optional<std::int64_t>
    parseValue(const std::string &tok, unsigned line_no,
               bool allow_undefined = false)
    {
        if (tok.empty()) {
            error(line_no, "missing operand");
            return std::nullopt;
        }
        // Numeric literal?
        std::size_t pos = 0;
        bool neg = false;
        if (tok[pos] == '-' || tok[pos] == '+') {
            neg = tok[pos] == '-';
            ++pos;
        }
        if (pos < tok.size() &&
            std::isdigit(static_cast<unsigned char>(tok[pos]))) {
            std::int64_t value = 0;
            try {
                value = std::stoll(tok.substr(pos), nullptr, 0);
            } catch (...) {
                error(line_no, "bad numeric literal", tok);
                return std::nullopt;
            }
            return neg ? -value : value;
        }
        // Symbol.
        auto it = out.symbols.find(tok);
        if (it != out.symbols.end())
            return static_cast<std::int64_t>(it->second);
        if (!allow_undefined)
            error(line_no, "undefined symbol", tok);
        return std::nullopt;
    }

    /** Number of words a (pseudo-)instruction expands to. */
    unsigned
    instructionWords(const std::string &mnemonic) const
    {
        if (mnemonic == "li" || mnemonic == "la")
            return 2;
        return 1;
    }

    /** First pass: tokenize, place labels, size everything. */
    void
    firstPass(const std::string &source)
    {
        std::istringstream is(source);
        std::string raw;
        unsigned line_no = 0;
        Addr pc = 0;
        bool org_seen = false;
        std::vector<std::string> pending_labels;

        while (std::getline(is, raw)) {
            ++line_no;
            std::string line = cleanLine(raw);
            // Peel off leading labels ("foo:" possibly followed by
            // an instruction on the same line).
            while (true) {
                const auto colon = line.find(':');
                if (colon == std::string::npos)
                    break;
                const std::string head = line.substr(0, colon);
                if (head.find_first_of(" \t") != std::string::npos)
                    break;  // colon belongs to something else
                if (head.empty()) {
                    error(line_no, "empty label");
                    line.erase(0, colon + 1);
                    continue;
                }
                pending_labels.push_back(head);
                line = cleanLine(line.substr(colon + 1));
            }
            if (line.empty()) {
                continue;  // labels bind to the next emission
            }

            SourceLine sl;
            sl.number = line_no;
            splitOperands(line, sl.mnemonic, sl.operands);

            if (sl.mnemonic == ".equ") {
                if (sl.operands.size() != 2) {
                    error(line_no, ".equ needs name, value");
                    continue;
                }
                const auto v = parseValue(sl.operands[1], line_no);
                if (v)
                    out.symbols[sl.operands[0]] =
                        static_cast<Addr>(*v);
                continue;
            }
            if (sl.mnemonic == ".org") {
                if (sl.operands.size() != 1) {
                    error(line_no, ".org needs one value");
                    continue;
                }
                const auto v = parseValue(sl.operands[0], line_no);
                if (v) {
                    pc = static_cast<Addr>(*v);
                    org_seen = true;
                }
                // Keep the line so the second pass replays the
                // location-counter change; labels before .org bind
                // to the new location.
                lines.push_back(std::move(sl));
                continue;
            }

            // Bind pending labels here.
            for (const auto &label : pending_labels) {
                if (out.symbols.contains(label))
                    error(line_no, "duplicate label '" + label + "'");
                out.symbols[label] = pc;
            }
            pending_labels.clear();

            if (sl.mnemonic == ".word") {
                pc += 4 * std::max<std::size_t>(1, sl.operands.size());
            } else if (sl.mnemonic == ".byte") {
                // Bytes are packed into words; round the total up.
                pc += (std::max<std::size_t>(1,
                                             sl.operands.size()) +
                       3) /
                      4 * 4;
            } else if (sl.mnemonic == ".align") {
                const auto v = parseValue(
                    sl.operands.empty() ? "" : sl.operands[0],
                    line_no);
                if (v && *v > 0 && (*v & (*v - 1)) == 0)
                    pc = (pc + *v - 1) & ~static_cast<Addr>(*v - 1);
                else
                    error(line_no,
                          ".align needs a power-of-two value");
            } else if (sl.mnemonic == ".space") {
                const auto v = parseValue(
                    sl.operands.empty() ? "" : sl.operands[0],
                    line_no);
                if (v && *v >= 0)
                    pc += static_cast<Addr>((*v + 3) / 4 * 4);
            } else {
                pc += 4 * instructionWords(sl.mnemonic);
            }
            lines.push_back(std::move(sl));
        }
        for (const auto &label : pending_labels)
            out.symbols[label] = pc;
        (void)org_seen;
    }

    void
    emit(Addr &pc, std::uint32_t word)
    {
        out.words[pc] = word;
        if (cur_data)
            out.source_map.data_lines[pc] = cur_line;
        else
            out.source_map.instr_lines[pc] = cur_line;
        pc += 4;
    }

    /** Encode one real (non-pseudo) instruction. */
    void
    encodeReal(Addr &pc, const SourceLine &sl, Opcode op)
    {
        const unsigned n = sl.number;
        const auto &ops = sl.operands;
        auto reg = [&](std::size_t i) -> unsigned {
            if (i >= ops.size()) {
                error(n, "missing register operand");
                return 0;
            }
            const auto r = parseRegister(ops[i]);
            if (!r) {
                error(n, "bad register", ops[i]);
                return 0;
            }
            return *r;
        };
        auto imm = [&](std::size_t i) -> std::int32_t {
            if (i >= ops.size()) {
                error(n, "missing immediate operand");
                return 0;
            }
            const auto v = parseValue(ops[i], n);
            return v ? static_cast<std::int32_t>(*v) : 0;
        };
        // "imm(reg)" addressing for loads/stores.
        auto memOperand = [&](std::size_t i, unsigned &base,
                              std::int32_t &offset) {
            if (i >= ops.size()) {
                error(n, "missing memory operand");
                base = 0;
                offset = 0;
                return;
            }
            const auto open = ops[i].find('(');
            const auto close = ops[i].find(')');
            if (open == std::string::npos ||
                close == std::string::npos || close < open) {
                error(n, "expected imm(reg) memory operand", ops[i]);
                base = 0;
                offset = 0;
                return;
            }
            const std::string imm_str = ops[i].substr(0, open);
            const std::string reg_str =
                ops[i].substr(open + 1, close - open - 1);
            const auto r = parseRegister(reg_str);
            if (!r) {
                error(n, "bad base register", reg_str);
                base = 0;
            } else {
                base = *r;
            }
            if (imm_str.empty()) {
                offset = 0;
            } else {
                const auto v = parseValue(imm_str, n);
                offset = v ? static_cast<std::int32_t>(*v) : 0;
            }
        };
        auto branchTarget = [&](std::size_t i) -> std::int32_t {
            const auto v = parseValue(i < ops.size() ? ops[i] : "", n);
            if (!v)
                return 0;
            const std::int64_t delta =
                (*v - static_cast<std::int64_t>(pc) - 4) / 4;
            if (delta < -1024 || delta > 1023)
                error(n, "branch target out of range");
            return static_cast<std::int32_t>(
                std::clamp<std::int64_t>(delta, -1024, 1023));
        };

        switch (opcodeFormat(op)) {
          case InstrFormat::R:
            emit(pc, Instruction::r(op, reg(0), reg(1),
                                    reg(2)).encode());
            break;
          case InstrFormat::I: {
            const std::int32_t v = imm(2);
            if (v < -32768 || v > 32767)
                error(n, "immediate out of 16-bit range");
            emit(pc, Instruction::i(op, reg(0), reg(1), v).encode());
            break;
          }
          case InstrFormat::LuiI: {
            const std::int32_t v = imm(1);
            emit(pc, Instruction::i(op, reg(0), 0, v).encode());
            break;
          }
          case InstrFormat::LoadI:
          case InstrFormat::StoreI: {
            unsigned base = 0;
            std::int32_t offset = 0;
            memOperand(1, base, offset);
            if (offset < -32768 || offset > 32767)
                error(n, "displacement out of 16-bit range");
            emit(pc, Instruction::i(op, reg(0), base,
                                    offset).encode());
            break;
          }
          case InstrFormat::Branch: {
            const unsigned a = reg(0);
            const unsigned b = reg(1);
            const std::int32_t off = branchTarget(2);
            emit(pc,
                 Instruction::branch(op, a, b, off).encode());
            break;
          }
          case InstrFormat::Jump:
            if (op == Opcode::Jal) {
                const unsigned rd = reg(0);
                const auto v =
                    parseValue(ops.size() > 1 ? ops[1] : "", n);
                std::int32_t off = 0;
                if (v)
                    off = static_cast<std::int32_t>(
                        (*v - static_cast<std::int64_t>(pc) - 4) / 4);
                emit(pc, Instruction::jal(rd, off).encode());
            } else {
                emit(pc, Instruction::i(Opcode::Jalr, reg(0), reg(1),
                                        ops.size() > 2 ? imm(2) : 0)
                             .encode());
            }
            break;
          case InstrFormat::None:
            emit(pc, Instruction{op, 0, 0, 0, 0, 0}.encode());
            break;
        }
    }

    /** Second pass: encode instructions and data. */
    void
    secondPass()
    {
        // Recompute the location counter the same way pass one did.
        Addr pc = 0;
        // Build mnemonic lookup.
        std::map<std::string, Opcode> mnemonics;
        for (unsigned raw = 0; raw < 64; ++raw) {
            if (opcodeValid(static_cast<std::uint8_t>(raw))) {
                const auto op = static_cast<Opcode>(raw);
                mnemonics[std::string(opcodeName(op))] = op;
            }
        }

        for (const auto &sl : lines) {
            const unsigned n = sl.number;
            cur_line = n;
            cur_data = sl.mnemonic == ".word" || sl.mnemonic == ".byte";
            if (sl.mnemonic == ".org") {
                const auto v = parseValue(
                    sl.operands.empty() ? "" : sl.operands[0], n);
                if (v)
                    pc = static_cast<Addr>(*v);
                continue;
            }
            if (sl.mnemonic == ".word") {
                for (const auto &opnd : sl.operands) {
                    const auto v = parseValue(opnd, n);
                    emit(pc, v ? static_cast<std::uint32_t>(*v) : 0);
                }
                if (sl.operands.empty())
                    emit(pc, 0);
                continue;
            }
            if (sl.mnemonic == ".byte") {
                // Pack little-endian into words.
                std::uint32_t word = 0;
                unsigned n_in_word = 0;
                for (const auto &opnd : sl.operands) {
                    const auto v = parseValue(opnd, n);
                    if (v && (*v < -128 || *v > 255))
                        error(n, "byte value out of range");
                    word |= (static_cast<std::uint32_t>(
                                 v ? *v : 0) &
                             0xffu)
                            << (8 * n_in_word);
                    if (++n_in_word == 4) {
                        emit(pc, word);
                        word = 0;
                        n_in_word = 0;
                    }
                }
                if (n_in_word > 0 || sl.operands.empty())
                    emit(pc, word);
                continue;
            }
            if (sl.mnemonic == ".align") {
                const auto v = parseValue(
                    sl.operands.empty() ? "" : sl.operands[0], n);
                if (v && *v > 0 && (*v & (*v - 1)) == 0)
                    pc = (pc + *v - 1) & ~static_cast<Addr>(*v - 1);
                continue;
            }
            if (sl.mnemonic == ".space") {
                const auto v = parseValue(
                    sl.operands.empty() ? "" : sl.operands[0], n);
                if (v && *v >= 0) {
                    const Addr bytes =
                        static_cast<Addr>((*v + 3) / 4 * 4);
                    if (bytes > 0)
                        out.source_map.space_regions.emplace_back(
                            pc, pc + bytes);
                    pc += bytes;
                }
                continue;
            }
            // Pseudo-instructions.
            if (sl.mnemonic == "nop") {
                emit(pc, Instruction::i(Opcode::Addi, 0, 0,
                                        0).encode());
                continue;
            }
            if (sl.mnemonic == "mv") {
                const auto rd = parseRegister(
                    !sl.operands.empty() ? sl.operands[0] : "");
                const auto rs = parseRegister(
                    sl.operands.size() > 1 ? sl.operands[1] : "");
                if (!rd || !rs) {
                    error(n, "mv needs two registers");
                    emit(pc, 0);
                    continue;
                }
                emit(pc, Instruction::i(Opcode::Addi, *rd, *rs,
                                        0).encode());
                continue;
            }
            if (sl.mnemonic == "b") {
                // Unconditional branch via jal r0.
                const auto v = parseValue(
                    sl.operands.empty() ? "" : sl.operands[0], n);
                std::int32_t off = 0;
                if (v)
                    off = static_cast<std::int32_t>(
                        (*v - static_cast<std::int64_t>(pc) - 4) / 4);
                emit(pc, Instruction::jal(0, off).encode());
                continue;
            }
            if (sl.mnemonic == "ret") {
                emit(pc, Instruction::i(Opcode::Jalr, 0, 31,
                                        0).encode());
                continue;
            }
            if (sl.mnemonic == "li" || sl.mnemonic == "la") {
                const auto rd = parseRegister(
                    sl.operands.empty() ? "" : sl.operands[0]);
                const auto v = parseValue(
                    sl.operands.size() > 1 ? sl.operands[1] : "", n);
                if (!rd) {
                    error(n, sl.mnemonic + " needs a register");
                    emit(pc, 0);
                    emit(pc, 0);
                    continue;
                }
                const std::uint32_t value =
                    v ? static_cast<std::uint32_t>(*v) : 0;
                // lui rd, hi16 ; ori rd, rd, lo16
                emit(pc, Instruction::i(Opcode::Lui, *rd, 0,
                                        static_cast<std::int32_t>(
                                            value >> 16))
                             .encode());
                emit(pc, Instruction::i(Opcode::Ori, *rd, *rd,
                                        static_cast<std::int32_t>(
                                            value & 0xffff))
                             .encode());
                continue;
            }
            auto it = mnemonics.find(sl.mnemonic);
            if (it == mnemonics.end()) {
                error(n, "unknown mnemonic", sl.mnemonic);
                emit(pc, 0);
                continue;
            }
            encodeReal(pc, sl, it->second);
        }
    }
};

} // namespace

std::string
AsmError::format(const std::string &file) const
{
    std::ostringstream os;
    os << file << ":" << line << ": error: " << message;
    if (!token.empty())
        os << " (near '" << token << "')";
    return os.str();
}

unsigned
SourceMap::lineOf(Addr addr) const
{
    auto it = instr_lines.find(addr);
    if (it != instr_lines.end())
        return it->second;
    it = data_lines.find(addr);
    return it != data_lines.end() ? it->second : 0;
}

bool
SourceMap::inSpace(Addr addr) const
{
    for (const auto &[begin, end] : space_regions)
        if (addr >= begin && addr < end)
            return true;
    return false;
}

void
AssembledProgram::loadInto(BackingStore &mem) const
{
    for (const auto &[addr, word] : words)
        mem.writeU32(addr, word);
}

Addr
AssembledProgram::symbol(const std::string &label) const
{
    auto it = symbols.find(label);
    if (it == symbols.end())
        MW_FATAL("undefined symbol '", label, "'");
    return it->second;
}

AssembledProgram
assemble(const std::string &source, const std::string &file)
{
    Assembler as;
    as.out.file = file;
    as.firstPass(source);
    as.secondPass();

    if (!as.out.words.empty()) {
        auto it = as.out.symbols.find("start");
        as.out.entry = it != as.out.symbols.end()
            ? it->second
            : as.out.words.begin()->first;
    }
    return as.out;
}

AssembledProgram
assembleOrDie(const std::string &source, const std::string &file)
{
    AssembledProgram prog = assemble(source, file);
    if (!prog.ok()) {
        for (const auto &e : prog.errors)
            MW_WARN(e.format(prog.file));
        MW_FATAL("assembly failed with ", prog.errors.size(),
                 " error(s)");
    }
    return prog;
}

} // namespace memwall
