/**
 * @file
 * Two-pass MW32 assembler.
 *
 * Accepts a small, conventional assembly dialect:
 *
 *     ; comments with ';' or '#'
 *     .org   0x1000          ; set location counter
 *     .word  0x1234, 42      ; literal data words
 *     .space 64              ; reserve zeroed bytes
 *     .equ   N, 100          ; named constant
 *     start:
 *         li   r1, 100000    ; pseudo: lui+ori
 *         la   r2, buffer    ; pseudo: address of label
 *     loop:
 *         lw   r3, 0(r2)
 *         addi r2, r2, 4
 *         addi r1, r1, -1
 *         bne  r1, r0, loop
 *         halt
 *     buffer:
 *         .space 4096
 *
 * Registers: r0..r31 plus the aliases zero (r0), ra (r31), sp (r30).
 * Pseudo-instructions: nop, li, la, mv, b, ret.
 */

#ifndef MEMWALL_ISA_ASSEMBLER_HH
#define MEMWALL_ISA_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"
#include "mem/backing_store.hh"

namespace memwall {

/** One assembler diagnostic. */
struct AsmError
{
    unsigned line = 0;
    std::string message;
    /** The offending token, when one can be singled out. */
    std::string token;

    /** "file:line: error: message (near 'token')". */
    std::string format(const std::string &file) const;
};

/**
 * Where each emitted word came from: instruction index → source
 * line, plus data-word provenance and reserved-but-uninitialised
 * `.space` regions. Consumed by mw32-lint (diagnostic locations),
 * the static analyser (code/data separation) and the flight
 * recorder (decoded dumps with source lines).
 */
struct SourceMap
{
    /** Source line of each emitted *instruction* word. */
    std::map<Addr, unsigned> instr_lines;
    /** Source line of each emitted *data* word (.word/.byte). */
    std::map<Addr, unsigned> data_lines;
    /** [begin, end) byte ranges reserved by .space (zero-backed,
     * never value-initialised by the assembler). */
    std::vector<std::pair<Addr, Addr>> space_regions;

    /** Source line of the word at @p addr, or 0 if unknown. */
    unsigned lineOf(Addr addr) const;

    /** @return true iff @p addr holds an emitted instruction. */
    bool
    isInstruction(Addr addr) const
    {
        return instr_lines.contains(addr);
    }

    /** @return true iff @p addr lies inside a .space region. */
    bool inSpace(Addr addr) const;
};

/** Result of assembling a source text. */
struct AssembledProgram
{
    /** Emitted 32-bit words keyed by byte address. */
    std::map<Addr, std::uint32_t> words;
    /** Label table (also contains .equ constants). */
    std::map<std::string, Addr> symbols;
    /** Entry point: the 'start' label if present, else lowest addr. */
    Addr entry = 0;
    std::vector<AsmError> errors;
    /** File name the source came from ("<string>" if none given). */
    std::string file = "<string>";
    /** Provenance of every emitted word. */
    SourceMap source_map;

    bool ok() const { return errors.empty(); }

    /** Copy all emitted words into @p mem. */
    void loadInto(BackingStore &mem) const;

    /** Address of @p label; fatal if undefined. */
    Addr symbol(const std::string &label) const;
};

/**
 * Assemble @p source. Errors are collected per line rather than
 * aborting, so tests can assert on diagnostics. @p file is only
 * used to prefix formatted diagnostics.
 */
AssembledProgram assemble(const std::string &source,
                          const std::string &file = "<string>");

/** Assemble, MW_FATAL-ing on any diagnostic. */
AssembledProgram assembleOrDie(const std::string &source,
                               const std::string &file = "<string>");

} // namespace memwall

#endif // MEMWALL_ISA_ASSEMBLER_HH
