/**
 * @file
 * MW32 instruction encode / decode / disassemble.
 */

#ifndef MEMWALL_ISA_INSTRUCTION_HH
#define MEMWALL_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "isa/opcodes.hh"

namespace memwall {

/** Decoded MW32 instruction. */
struct Instruction
{
    Opcode op = Opcode::Halt;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    /** Sign-extended 16-bit immediate (I/Branch formats). */
    std::int32_t imm = 0;
    /** Sign-extended 26-bit word offset (Jal). */
    std::int32_t target = 0;

    /** Encode into the 32-bit machine word. */
    std::uint32_t encode() const;

    /**
     * Decode @p word.
     * @param[out] ok set to false when the opcode is invalid.
     */
    static Instruction decode(std::uint32_t word, bool *ok = nullptr);

    /** Human-readable disassembly, e.g. "addi r5, r5, 1". */
    std::string disassemble() const;

    // Builder helpers used by tests and generated code.
    static Instruction r(Opcode op, unsigned rd, unsigned rs1,
                         unsigned rs2);
    static Instruction i(Opcode op, unsigned rd, unsigned rs1,
                         std::int32_t imm);
    static Instruction branch(Opcode op, unsigned rs1, unsigned rs2,
                              std::int32_t word_offset);
    static Instruction jal(unsigned rd, std::int32_t word_offset);
    static Instruction halt() { return Instruction{}; }
};

} // namespace memwall

#endif // MEMWALL_ISA_INSTRUCTION_HH
