/**
 * @file
 * MW32 functional interpreter.
 *
 * Executes assembled programs against a BackingStore and emits the
 * instruction/data reference stream to an optional RefSink — the
 * execution-driven analogue of the paper's Shade front end. The
 * interpreter is purely functional (no timing); timing models consume
 * the emitted stream.
 */

#ifndef MEMWALL_ISA_INTERPRETER_HH
#define MEMWALL_ISA_INTERPRETER_HH

#include <array>
#include <cstdint>

#include "common/stats.hh"
#include "isa/instruction.hh"
#include "mem/backing_store.hh"
#include "trace/ref.hh"

namespace memwall {

/** Architectural register state. */
struct CpuState
{
    std::array<std::uint32_t, 32> regs{};
    Addr pc = 0;

    std::uint32_t reg(unsigned i) const { return regs[i & 31]; }
    void
    setReg(unsigned i, std::uint32_t v)
    {
        if ((i & 31) != 0)
            regs[i & 31] = v;  // r0 is hard-wired to zero
    }
};

/** Reasons run() stopped. */
enum class StopReason {
    Halted,         ///< executed a halt instruction
    InstrLimit,     ///< reached the max_instructions budget
    BadInstruction, ///< decoded an invalid opcode
    AlignmentFault, ///< misaligned word/halfword access (trap on)
    DivideByZero    ///< div/rem with a zero divisor
};

/** Execution statistics of an interpreter run. */
struct ExecStats
{
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t taken_branches = 0;
};

/** Functional MW32 CPU. */
class Interpreter
{
  public:
    explicit Interpreter(BackingStore &mem);

    CpuState &state() { return state_; }
    const CpuState &state() const { return state_; }

    /** Set the program counter. */
    void setPc(Addr pc) { state_.pc = pc; }

    /**
     * Control misaligned-access behaviour. On (the default), a
     * halfword/word load or store whose effective address is not a
     * multiple of its size traps with StopReason::AlignmentFault —
     * matching the mw32-lint `misaligned` diagnostic. Off restores
     * the historical byte-wise wrap-through for experiments that
     * deliberately probe unaligned behaviour.
     */
    void setAlignmentTrap(bool on) { trap_misaligned_ = on; }
    bool alignmentTrap() const { return trap_misaligned_; }

    /** Faulting address of the last AlignmentFault stop. */
    Addr faultAddr() const { return fault_addr_; }

    /**
     * Execute one instruction; emits refs into @p sink when given.
     * @return false if the CPU halted (or hit a bad instruction).
     */
    bool step(const RefSink *sink = nullptr);

    /**
     * Run until halt or @p max_instructions. The budget counts
     * attempted instructions; when it is exhausted by retiring
     * instructions the stop reason is InstrLimit. A zero budget
     * executes nothing, returns InstrLimit, and leaves lastStop()
     * untouched — exactly like a zero-iteration step() loop.
     */
    StopReason run(std::uint64_t max_instructions,
                   const RefSink *sink = nullptr);

    const ExecStats &stats() const { return stats_; }
    StopReason lastStop() const { return last_stop_; }

  private:
    // The execution fast path (src/exec/) shares this architectural
    // state so fast traces and interpreter fallback steps observe a
    // single source of truth.
    friend class FastExecutor;

    BackingStore &mem_;
    CpuState state_;
    ExecStats stats_;
    StopReason last_stop_ = StopReason::InstrLimit;
    bool trap_misaligned_ = true;
    Addr fault_addr_ = 0;
};

} // namespace memwall

#endif // MEMWALL_ISA_INTERPRETER_HH
