#include "isa/instruction.hh"

#include <sstream>

#include "common/logging.hh"

namespace memwall {

namespace {

std::int32_t
signExtend(std::uint32_t value, unsigned bits)
{
    const std::uint32_t mask = 1u << (bits - 1);
    value &= (1u << bits) - 1;
    return static_cast<std::int32_t>((value ^ mask) - mask);
}

} // namespace

std::uint32_t
Instruction::encode() const
{
    std::uint32_t word = static_cast<std::uint32_t>(op) << 26;
    const InstrFormat fmt = opcodeFormat(op);
    switch (fmt) {
      case InstrFormat::R:
        word |= (rd & 31u) << 21;
        word |= (rs1 & 31u) << 16;
        word |= (rs2 & 31u) << 11;
        break;
      case InstrFormat::I:
      case InstrFormat::LoadI:
      case InstrFormat::LuiI:
        word |= (rd & 31u) << 21;
        word |= (rs1 & 31u) << 16;
        word |= static_cast<std::uint32_t>(imm) & 0xffffu;
        break;
      case InstrFormat::StoreI:
        // rd carries the value register for stores.
        word |= (rd & 31u) << 21;
        word |= (rs1 & 31u) << 16;
        word |= static_cast<std::uint32_t>(imm) & 0xffffu;
        break;
      case InstrFormat::Branch:
        word |= (rd & 31u) << 21;  // unused, kept zero by builders
        word |= (rs1 & 31u) << 16;
        word |= (rs2 & 31u) << 11;
        // Branch displacement lives in the low 11 bits: +/-1024
        // words, plenty for generated kernels.
        word |= static_cast<std::uint32_t>(imm) & 0x7ffu;
        break;
      case InstrFormat::Jump:
        if (op == Opcode::Jal) {
            word |= (rd & 31u) << 21;
            word |= static_cast<std::uint32_t>(target) & 0x1fffffu;
        } else {  // Jalr
            word |= (rd & 31u) << 21;
            word |= (rs1 & 31u) << 16;
            word |= static_cast<std::uint32_t>(imm) & 0xffffu;
        }
        break;
      case InstrFormat::None:
        break;
    }
    return word;
}

Instruction
Instruction::decode(std::uint32_t word, bool *ok)
{
    Instruction inst;
    const std::uint8_t raw_op = static_cast<std::uint8_t>(word >> 26);
    if (!opcodeValid(raw_op)) {
        if (ok)
            *ok = false;
        return inst;
    }
    if (ok)
        *ok = true;
    inst.op = static_cast<Opcode>(raw_op);
    inst.rd = (word >> 21) & 31;
    inst.rs1 = (word >> 16) & 31;
    inst.rs2 = (word >> 11) & 31;
    switch (opcodeFormat(inst.op)) {
      case InstrFormat::I:
      case InstrFormat::LoadI:
      case InstrFormat::StoreI:
      case InstrFormat::LuiI:
        inst.imm = signExtend(word & 0xffffu, 16);
        break;
      case InstrFormat::Branch:
        inst.imm = signExtend(word & 0x7ffu, 11);
        break;
      case InstrFormat::Jump:
        if (inst.op == Opcode::Jal)
            inst.target = signExtend(word & 0x1fffffu, 21);
        else
            inst.imm = signExtend(word & 0xffffu, 16);
        break;
      default:
        break;
    }
    return inst;
}

std::string
Instruction::disassemble() const
{
    std::ostringstream os;
    os << opcodeName(op);
    switch (opcodeFormat(op)) {
      case InstrFormat::R:
        os << " r" << +rd << ", r" << +rs1 << ", r" << +rs2;
        break;
      case InstrFormat::I:
        os << " r" << +rd << ", r" << +rs1 << ", " << imm;
        break;
      case InstrFormat::LuiI:
        os << " r" << +rd << ", " << imm;
        break;
      case InstrFormat::LoadI:
        os << " r" << +rd << ", " << imm << "(r" << +rs1 << ")";
        break;
      case InstrFormat::StoreI:
        os << " r" << +rd << ", " << imm << "(r" << +rs1 << ")";
        break;
      case InstrFormat::Branch:
        os << " r" << +rs1 << ", r" << +rs2 << ", " << imm;
        break;
      case InstrFormat::Jump:
        if (op == Opcode::Jal)
            os << " r" << +rd << ", " << target;
        else
            os << " r" << +rd << ", r" << +rs1 << ", " << imm;
        break;
      case InstrFormat::None:
        break;
    }
    return os.str();
}

Instruction
Instruction::r(Opcode op, unsigned rd, unsigned rs1, unsigned rs2)
{
    MW_ASSERT(opcodeFormat(op) == InstrFormat::R, "not an R-format op");
    Instruction inst;
    inst.op = op;
    inst.rd = static_cast<std::uint8_t>(rd);
    inst.rs1 = static_cast<std::uint8_t>(rs1);
    inst.rs2 = static_cast<std::uint8_t>(rs2);
    return inst;
}

Instruction
Instruction::i(Opcode op, unsigned rd, unsigned rs1, std::int32_t imm)
{
    const InstrFormat fmt = opcodeFormat(op);
    MW_ASSERT(fmt == InstrFormat::I || fmt == InstrFormat::LoadI ||
                  fmt == InstrFormat::StoreI ||
                  fmt == InstrFormat::LuiI ||
                  (fmt == InstrFormat::Jump && op == Opcode::Jalr),
              "not an immediate-format op");
    Instruction inst;
    inst.op = op;
    inst.rd = static_cast<std::uint8_t>(rd);
    inst.rs1 = static_cast<std::uint8_t>(rs1);
    inst.imm = imm;
    return inst;
}

Instruction
Instruction::branch(Opcode op, unsigned rs1, unsigned rs2,
                    std::int32_t word_offset)
{
    MW_ASSERT(opcodeFormat(op) == InstrFormat::Branch,
              "not a branch op");
    MW_ASSERT(word_offset >= -1024 && word_offset <= 1023,
              "branch offset out of range: ", word_offset);
    Instruction inst;
    inst.op = op;
    inst.rs1 = static_cast<std::uint8_t>(rs1);
    inst.rs2 = static_cast<std::uint8_t>(rs2);
    inst.imm = word_offset;
    return inst;
}

Instruction
Instruction::jal(unsigned rd, std::int32_t word_offset)
{
    MW_ASSERT(word_offset >= -(1 << 20) && word_offset < (1 << 20),
              "jal offset out of range: ", word_offset);
    Instruction inst;
    inst.op = Opcode::Jal;
    inst.rd = static_cast<std::uint8_t>(rd);
    inst.target = word_offset;
    return inst;
}

} // namespace memwall
