/**
 * @file
 * The MW32 instruction set.
 *
 * MW32 is a small SPARC-flavoured load/store RISC used as the
 * execution-driven front end: 32 general-purpose 32-bit registers
 * (r0 hard-wired to zero), fixed 32-bit instructions, delayed
 * nothing (no branch delay slots — the paper's pipeline discussion
 * is orthogonal to the ISA, Section 4.1: "an ordinary, general-
 * purpose, commodity ISA is assumed").
 *
 * Encoding (big picture):
 *   [31:26] opcode
 *   [25:21] rd
 *   [20:16] rs1
 *   [15:11] rs2          (R-format)
 *   [15:0]  imm16 signed (I-format, branches)
 *   [25:0]  target26     (J-format, word offset)
 */

#ifndef MEMWALL_ISA_OPCODES_HH
#define MEMWALL_ISA_OPCODES_HH

#include <cstdint>
#include <string_view>

namespace memwall {

/** MW32 opcodes. Values are the 6-bit encodings. */
enum class Opcode : std::uint8_t {
    // R-format ALU
    Add = 0x00,
    Sub = 0x01,
    And = 0x02,
    Or = 0x03,
    Xor = 0x04,
    Sll = 0x05,
    Srl = 0x06,
    Sra = 0x07,
    Slt = 0x08,
    Sltu = 0x09,
    Mul = 0x0a,
    Div = 0x0b,
    Rem = 0x0c,

    // I-format ALU
    Addi = 0x10,
    Andi = 0x11,
    Ori = 0x12,
    Xori = 0x13,
    Slli = 0x14,
    Srli = 0x15,
    Srai = 0x16,
    Slti = 0x17,
    Lui = 0x18,

    // Loads / stores (I-format addressing: rs1 + imm16)
    Lb = 0x20,
    Lbu = 0x21,
    Lh = 0x22,
    Lhu = 0x23,
    Lw = 0x24,
    Sb = 0x25,
    Sh = 0x26,
    Sw = 0x27,

    // Branches (I-format: compare rd? no — compare rs1, rs2;
    // imm16 is a signed word offset from the next pc)
    Beq = 0x30,
    Bne = 0x31,
    Blt = 0x32,
    Bge = 0x33,
    Bltu = 0x34,
    Bgeu = 0x35,

    // Jumps
    Jal = 0x38,   ///< rd <- pc+4; pc <- pc+4 + signext(target26)*4
    Jalr = 0x39,  ///< rd <- pc+4; pc <- rs1 + imm16

    // System
    Halt = 0x3e,
    Sync = 0x3f,
};

/** Operand format classes used by the decoder and assembler. */
enum class InstrFormat {
    R,        ///< rd, rs1, rs2
    I,        ///< rd, rs1, imm16
    LoadI,    ///< rd, imm16(rs1)
    StoreI,   ///< rs2?, imm16(rs1) — value register encoded in rd
    Branch,   ///< rs1, rs2, label
    Jump,     ///< rd, label (Jal) / rd, rs1, imm (Jalr)
    LuiI,     ///< rd, imm16
    None,     ///< no operands (Halt, Sync)
};

/** @return the mnemonic for @p op, or "?" if unassigned. */
std::string_view opcodeName(Opcode op);

/** @return the operand format of @p op. */
InstrFormat opcodeFormat(Opcode op);

/** @return true iff @p op is a valid MW32 opcode value. */
bool opcodeValid(std::uint8_t raw);

/** @return byte width of a load/store opcode (1, 2 or 4). */
unsigned accessSize(Opcode op);

} // namespace memwall

#endif // MEMWALL_ISA_OPCODES_HH
