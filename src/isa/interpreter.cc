#include "isa/interpreter.hh"

#include "common/logging.hh"

namespace memwall {

Interpreter::Interpreter(BackingStore &mem) : mem_(mem)
{
}

bool
Interpreter::step(const RefSink *sink)
{
    const Addr pc = state_.pc;
    if (sink)
        (*sink)(MemRef::fetch(pc));
    const std::uint32_t word = mem_.readU32(pc);
    bool ok = true;
    const Instruction inst = Instruction::decode(word, &ok);
    if (!ok) {
        MW_WARN("invalid instruction 0x", std::hex, word, std::dec,
                " at pc 0x", std::hex, pc, std::dec);
        last_stop_ = StopReason::BadInstruction;
        return false;
    }

    ++stats_.instructions;
    Addr next_pc = pc + 4;
    const std::uint32_t a = state_.reg(inst.rs1);
    const std::uint32_t b = state_.reg(inst.rs2);
    const auto sa = static_cast<std::int32_t>(a);
    const auto sb = static_cast<std::int32_t>(b);
    const auto imm = inst.imm;
    const auto uimm = static_cast<std::uint32_t>(imm);

    auto misaligned = [&](Addr ea, unsigned size) {
        if (!trap_misaligned_ || (ea & (size - 1)) == 0)
            return false;
        MW_WARN("misaligned ", size, "-byte access at ea 0x",
                std::hex, ea, " (pc 0x", pc, std::dec, ")");
        fault_addr_ = ea;
        last_stop_ = StopReason::AlignmentFault;
        --stats_.instructions;  // the faulting access doesn't retire
        return true;
    };

    auto divideByZero = [&](std::int32_t divisor) {
        if (divisor != 0)
            return false;
        MW_WARN("divide by zero at pc 0x", std::hex, pc, std::dec);
        last_stop_ = StopReason::DivideByZero;
        --stats_.instructions;  // the faulting div/rem doesn't retire
        return true;
    };

    auto branch = [&](bool take) {
        ++stats_.branches;
        if (take) {
            ++stats_.taken_branches;
            next_pc = pc + 4 +
                      static_cast<Addr>(
                          static_cast<std::int64_t>(imm) * 4);
        }
    };

    switch (inst.op) {
      case Opcode::Add: state_.setReg(inst.rd, a + b); break;
      case Opcode::Sub: state_.setReg(inst.rd, a - b); break;
      case Opcode::And: state_.setReg(inst.rd, a & b); break;
      case Opcode::Or: state_.setReg(inst.rd, a | b); break;
      case Opcode::Xor: state_.setReg(inst.rd, a ^ b); break;
      case Opcode::Sll: state_.setReg(inst.rd, a << (b & 31)); break;
      case Opcode::Srl: state_.setReg(inst.rd, a >> (b & 31)); break;
      case Opcode::Sra:
        state_.setReg(inst.rd,
                      static_cast<std::uint32_t>(sa >> (b & 31)));
        break;
      case Opcode::Slt:
        state_.setReg(inst.rd, sa < sb ? 1 : 0);
        break;
      case Opcode::Sltu:
        state_.setReg(inst.rd, a < b ? 1 : 0);
        break;
      case Opcode::Mul: state_.setReg(inst.rd, a * b); break;
      // A zero divisor traps with DivideByZero rather than producing
      // an incidental value; division overflow (INT_MIN / -1) wraps
      // like the hardware instead of tripping signed-overflow UB in
      // the host.
      case Opcode::Div:
        if (divideByZero(sb))
            return false;
        state_.setReg(inst.rd,
                      sb == -1 ? std::uint32_t{0} - a
                               : static_cast<std::uint32_t>(sa / sb));
        break;
      case Opcode::Rem:
        if (divideByZero(sb))
            return false;
        state_.setReg(inst.rd,
                      sb == -1 ? 0
                               : static_cast<std::uint32_t>(sa % sb));
        break;

      case Opcode::Addi: state_.setReg(inst.rd, a + uimm); break;
      // Logical immediates zero-extend (so lui+ori builds any
      // 32-bit constant); addi sign-extends as usual.
      case Opcode::Andi:
        state_.setReg(inst.rd, a & (uimm & 0xffffu));
        break;
      case Opcode::Ori:
        state_.setReg(inst.rd, a | (uimm & 0xffffu));
        break;
      case Opcode::Xori:
        state_.setReg(inst.rd, a ^ (uimm & 0xffffu));
        break;
      case Opcode::Slli:
        state_.setReg(inst.rd, a << (uimm & 31));
        break;
      case Opcode::Srli:
        state_.setReg(inst.rd, a >> (uimm & 31));
        break;
      case Opcode::Srai:
        state_.setReg(inst.rd,
                      static_cast<std::uint32_t>(sa >> (uimm & 31)));
        break;
      case Opcode::Slti:
        state_.setReg(inst.rd, sa < imm ? 1 : 0);
        break;
      case Opcode::Lui:
        state_.setReg(inst.rd, uimm << 16);
        break;

      case Opcode::Lb:
      case Opcode::Lbu:
      case Opcode::Lh:
      case Opcode::Lhu:
      case Opcode::Lw: {
        const Addr ea = static_cast<Addr>(a + uimm);
        const auto size =
            static_cast<std::uint8_t>(accessSize(inst.op));
        if (misaligned(ea, size))
            return false;
        if (sink)
            (*sink)(MemRef::load(pc, ea, size));
        ++stats_.loads;
        std::uint32_t value = 0;
        switch (inst.op) {
          case Opcode::Lb:
            value = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(
                    static_cast<std::int8_t>(mem_.readU8(ea))));
            break;
          case Opcode::Lbu: value = mem_.readU8(ea); break;
          case Opcode::Lh:
            value = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(
                    static_cast<std::int16_t>(mem_.readU16(ea))));
            break;
          case Opcode::Lhu: value = mem_.readU16(ea); break;
          default: value = mem_.readU32(ea); break;
        }
        state_.setReg(inst.rd, value);
        break;
      }

      case Opcode::Sb:
      case Opcode::Sh:
      case Opcode::Sw: {
        const Addr ea = static_cast<Addr>(a + uimm);
        const auto size =
            static_cast<std::uint8_t>(accessSize(inst.op));
        if (misaligned(ea, size))
            return false;
        if (sink)
            (*sink)(MemRef::store(pc, ea, size));
        ++stats_.stores;
        const std::uint32_t value = state_.reg(inst.rd);
        switch (inst.op) {
          case Opcode::Sb:
            mem_.writeU8(ea, static_cast<std::uint8_t>(value));
            break;
          case Opcode::Sh:
            mem_.writeU16(ea, static_cast<std::uint16_t>(value));
            break;
          default: mem_.writeU32(ea, value); break;
        }
        break;
      }

      case Opcode::Beq: branch(a == b); break;
      case Opcode::Bne: branch(a != b); break;
      case Opcode::Blt: branch(sa < sb); break;
      case Opcode::Bge: branch(sa >= sb); break;
      case Opcode::Bltu: branch(a < b); break;
      case Opcode::Bgeu: branch(a >= b); break;

      case Opcode::Jal:
        state_.setReg(inst.rd, static_cast<std::uint32_t>(pc + 4));
        next_pc = pc + 4 +
                  static_cast<Addr>(
                      static_cast<std::int64_t>(inst.target) * 4);
        break;
      case Opcode::Jalr: {
        const Addr dest = static_cast<Addr>(a + uimm) & ~Addr{3};
        state_.setReg(inst.rd, static_cast<std::uint32_t>(pc + 4));
        next_pc = dest;
        break;
      }

      case Opcode::Halt:
        last_stop_ = StopReason::Halted;
        return false;
      case Opcode::Sync:
        break;  // uniprocessor: memory is always consistent
    }

    state_.pc = next_pc;
    return true;
}

StopReason
Interpreter::run(std::uint64_t max_instructions, const RefSink *sink)
{
    for (std::uint64_t i = 0; i < max_instructions; ++i) {
        if (!step(sink))
            return last_stop_;
    }
    // The budget, not the program, ended the run. A zero budget
    // executes nothing and must leave lastStop() exactly as a
    // zero-iteration step() loop would — untouched.
    if (max_instructions > 0)
        last_stop_ = StopReason::InstrLimit;
    return StopReason::InstrLimit;
}

} // namespace memwall
