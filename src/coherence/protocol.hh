/**
 * @file
 * Write-invalidate coherence protocol definitions (Section 6.1).
 *
 * Coherence is maintained on 32-byte units by a directory-based
 * write-invalidate protocol (the paper cites [24]); the directory
 * lives in main memory, encoded in spare ECC bits (Figure 5). The
 * multiprocessor evaluation charges the fixed latencies of Table 6.
 */

#ifndef MEMWALL_COHERENCE_PROTOCOL_HH
#define MEMWALL_COHERENCE_PROTOCOL_HH

#include <cstdint>

#include "common/types.hh"

namespace memwall {

/** Coherence unit: always 32 bytes (Section 6.1). */
inline constexpr std::uint32_t coherence_unit = 32;

/** @return the 32-byte block address containing @p addr. */
constexpr Addr
blockAddr(Addr addr)
{
    return addr & ~static_cast<Addr>(coherence_unit - 1);
}

/** Directory states of one coherence unit. */
enum class DirState : std::uint8_t {
    Uncached = 0,  ///< no cached copies
    Shared = 1,    ///< up to 3 tracked sharers (limited pointers)
    Modified = 2,  ///< single owner with write permission
    SharedBcast = 3,  ///< pointer overflow: invalidate broadcasts
};

/** Table 6: memory latencies in processor cycles. */
struct LatencyTable
{
    /** Hit in column buffer / victim cache / FLC. */
    Cycles cache_hit = 1;
    /** Local memory access, and SLC hit on the reference machine. */
    Cycles local_memory = 6;
    /** Inter-Node Cache data access (same DRAM timing). */
    Cycles inc_access = 6;
    /** Extra cycles for the INC tag check (1 to 2, Section 4.2). */
    Cycles inc_tag_extra = 1;
    /** Invalidation round trip delay. */
    Cycles invalidation_round_trip = 80;
    /** Load of remote data. */
    Cycles remote_load = 80;
};

/** How an access was served (for statistics). */
enum class ServiceLevel : std::uint8_t {
    CacheHit,      ///< FLC / column buffer / victim cache
    LocalMemory,   ///< home memory on this node (or SLC hit)
    IncHit,        ///< inter-node cache
    Remote,        ///< fetched across the fabric
    Invalidation,  ///< write that had to invalidate sharers
};

} // namespace memwall

#endif // MEMWALL_COHERENCE_PROTOCOL_HH
