#include "coherence/numa.hh"

#include <algorithm>
#include <utility>

#include "checkpoint/state_io.hh"
#include "common/logging.hh"

namespace memwall {

const char *
protocolMutationName(ProtocolMutation mutation)
{
    switch (mutation) {
      case ProtocolMutation::None:
        return "none";
      case ProtocolMutation::SkipInvalidate:
        return "skip-invalidate";
      case ProtocolMutation::DropSharer:
        return "drop-sharer";
      case ProtocolMutation::WrongOwner:
        return "wrong-owner";
      case ProtocolMutation::MissedDowngrade:
        return "missed-downgrade";
    }
    return "?";
}

NumaMachine::NumaMachine(NumaConfig config)
    : config_(config), directory_(config.nodes),
      proto_rng_(config.protocol_fault.seed)
{
    MW_ASSERT(config_.nodes >= 1 &&
                  config_.nodes <= DirEntry::max_nodes,
              "node count out of range");
    MW_ASSERT(isPowerOfTwo(config_.page_bytes),
              "page size must be a power of two");
    while ((std::uint64_t{1} << page_shift_) < config_.page_bytes)
        ++page_shift_;
    nodes_.resize(config_.nodes);
    frames_used_.assign(config_.nodes, 0);
    if (config_.model_fabric_contention) {
        fabric_ = std::make_unique<Fabric>(config_.nodes,
                                           config_.fabric);
        engine_free_.assign(config_.nodes, 0);
    }
    for (auto &node : nodes_) {
        switch (config_.arch) {
          case NodeArch::Integrated: {
            ColumnCacheConfig cc = config_.columns;
            cc.victim_enabled = config_.victim_cache;
            node.columns = std::make_unique<ColumnDataCache>(cc);
            node.inc = std::make_unique<InterNodeCache>(config_.inc);
            break;
          }
          case NodeArch::SimpleComa: {
            ColumnCacheConfig cc = config_.columns;
            cc.victim_enabled = config_.victim_cache;
            node.columns = std::make_unique<ColumnDataCache>(cc);
            // No INC: the attraction memory subsumes it.
            break;
          }
          case NodeArch::ReferenceCcNuma:
            node.flc = std::make_unique<Cache>(config_.flc);
            break;
        }
    }
}

void
NumaMachine::attachObserver(ProtocolObserver *observer)
{
    obs_ = observer;
    if (!fabric_)
        return;
    // Mirror fabric deliveries into the observer so link-level
    // retransmissions and failures land in the flight recorder.
    if (obs_) {
        fabric_->setSendHook([this](Tick deliver, unsigned src,
                                    unsigned dst, MsgType,
                                    const LinkSendOutcome &out) {
            obs_->linkMessage(deliver, src, dst, out.attempts,
                              out.failed);
        });
    } else {
        fabric_->setSendHook({});
    }
}

unsigned
NumaMachine::homeOf(Addr addr) const
{
    const std::uint64_t page = pageOf(addr);
    auto it = pages_.find(page);
    if (it != pages_.end())
        return it->second.home;
    return static_cast<unsigned>(page % config_.nodes);
}

unsigned
NumaMachine::resolveHome(Addr addr, unsigned toucher)
{
    const std::uint64_t page = pageOf(addr);
    auto it = pages_.find(page);
    if (it == pages_.end()) {
        const unsigned home = config_.first_touch
            ? toucher
            : static_cast<unsigned>(page % config_.nodes);
        it = pages_
                 .emplace(page,
                          PagePlacement{home, frames_used_[home]++})
                 .first;
    }
    return it->second.home;
}

Addr
NumaMachine::cacheView(unsigned node, Addr addr) const
{
    const Addr block = blockAddr(addr);
    const std::uint64_t page = pageOf(addr);
    if (config_.arch == NodeArch::SimpleComa) {
        // Every page the node uses is replicated into its local
        // attraction memory, at a per-node local frame.
        const Node &n = nodes_[node];
        auto fit = n.frames.find(page);
        const std::uint64_t frame =
            fit != n.frames.end() ? fit->second : n.next_frame;
        return (Addr{1} << 47) |
               (frame * config_.page_bytes + pageOffset(block));
    }
    auto it = pages_.find(page);
    if (it == pages_.end() || it->second.home != node)
        return block;  // imported blocks are tagged globally
    return localView(it->second, block);
}

Addr
NumaMachine::localView(const PagePlacement &p, Addr block) const
{
    // Local pages are contiguous in the node's physical DRAM, and
    // the column buffers / FLC are physically indexed — without
    // this translation the interleaved global addresses of a P-node
    // machine would alias into a fraction of the cache sets.
    const Addr local = p.local_frame * config_.page_bytes +
                       pageOffset(block);
    // Disjoint from the global space so imported and local tags
    // can share one structure without false matches.
    return (Addr{1} << 47) | local;
}

unsigned
NumaMachine::resolveHomeAndView(Addr addr, unsigned toucher,
                                Addr &view)
{
    const Addr block = blockAddr(addr);
    const std::uint64_t page = pageOf(addr);
    const PagePlacement *pp;
    if (page == memo_page_) {
        pp = memo_place_;
    } else {
        auto it = pages_.find(page);
        if (it == pages_.end()) {
            const unsigned home = config_.first_touch
                ? toucher
                : static_cast<unsigned>(page % config_.nodes);
            it = pages_
                     .emplace(page, PagePlacement{
                                        home, frames_used_[home]++})
                     .first;
        }
        pp = &it->second;
        memo_page_ = page;
        memo_place_ = pp;
    }
    if (config_.arch == NodeArch::SimpleComa)
        view = cacheView(toucher, addr);  // per-node frame table
    else if (pp->home != toucher)
        view = block;
    else
        view = localView(*pp, block);
    return pp->home;
}

const NodeStats &
NumaMachine::nodeStats(unsigned cpu) const
{
    MW_ASSERT(cpu < nodes_.size(), "bad cpu id");
    return nodes_[cpu].stats;
}

bool
NumaMachine::nodeHolds(unsigned node, Addr block) const
{
    const Node &n = nodes_[node];
    const Addr view = cacheView(node, block);
    switch (config_.arch) {
      case NodeArch::Integrated:
        return n.columns->probe(view) || n.inc->probe(block);
      case NodeArch::SimpleComa:
        return n.attraction.contains(block);
      case NodeArch::ReferenceCcNuma:
        break;
    }
    return n.flc->probe(view) || n.slc.contains(block);
}

void
NumaMachine::fillLocal(unsigned node, Addr block, bool store)
{
    Node &n = nodes_[node];
    if (config_.arch == NodeArch::SimpleComa) {
        // Allocate the page's local frame on first use, then fill
        // the column from the attraction memory.
        const std::uint64_t page = pageOf(block);
        if (!n.frames.contains(page))
            n.frames.emplace(page, n.next_frame++);
        n.attraction.insert(block);
        n.columns->access(cacheView(node, block), store);
        return;
    }
    const Addr view = cacheView(node, block);
    if (config_.arch == NodeArch::Integrated) {
        // Home data: the whole column lands in a buffer.
        n.columns->access(view, store);
    } else {
        n.flc->access(view, store);
        n.slc.insert(block);
    }
}

void
NumaMachine::invalidateAt(unsigned node, Addr block)
{
    if (obs_)
        obs_->copyInvalidated(node, block, obs_now_);
    Node &n = nodes_[node];
    const Addr view = cacheView(node, block);
    switch (config_.arch) {
      case NodeArch::Integrated:
        n.columns->invalidateBlock(view);
        n.inc->invalidate(block);
        return;
      case NodeArch::SimpleComa:
        n.columns->invalidateBlock(view);
        n.attraction.erase(block);
        return;
      case NodeArch::ReferenceCcNuma:
        n.flc->invalidate(view);
        n.slc.erase(block);
        return;
    }
}

void
NumaMachine::invalidateSharers(const DirEntry &entry, Addr block,
                               unsigned keep)
{
    // SkipInvalidate mutation (verification test hook): deliberately
    // leave the first victim's copy intact, creating exactly the
    // stale-sharer bug the shadow checker must catch.
    bool skip_one =
        config_.mutation == ProtocolMutation::SkipInvalidate;
    auto doInvalidate = [&](unsigned node) {
        if (skip_one) {
            skip_one = false;
            ++mutated_transitions_;
            return;
        }
        invalidateAt(node, block);
    };
    switch (entry.state()) {
      case DirState::Uncached:
        return;
      case DirState::Modified:
        if (entry.owner() != keep)
            doInvalidate(entry.owner());
        return;
      case DirState::Shared:
        for (unsigned s : entry.sharers())
            if (s != keep)
                doInvalidate(s);
        return;
      case DirState::SharedBcast:
        // Pointer overflow: the invalidation must broadcast.
        for (unsigned node = 0; node < config_.nodes; ++node)
            if (node != keep)
                doInvalidate(node);
        return;
    }
}

Cycles
NumaMachine::remoteRoundTrip(unsigned cpu, unsigned home,
                             Addr block, Tick now, Cycles floor)
{
    auto attempt = [&](Tick when) -> Cycles {
        if (!fabric_ || home == cpu)
            return floor;
        // Request across the fabric, service at the home node's
        // protocol engine (which serialises transactions), reply
        // with the 32-byte payload.
        const Tick req =
            fabric_->send(when, cpu, home, MsgType::ReadRequest);
        const Tick start = std::max(req, engine_free_[home]);
        const Tick done = start + config_.engine_occupancy;
        engine_free_[home] = done;
        const Tick reply =
            fabric_->send(done, home, cpu, MsgType::ReadReply);
        return static_cast<Cycles>(
            std::max<Tick>(reply > when ? reply - when : 0, floor));
    };

    Cycles total = attempt(now);
    const ProtocolFaultConfig &pf = config_.protocol_fault;
    if (pf.enabled() && home != cpu) {
        // The home engine may NACK the transaction (overload, drop
        // under pressure); the requester backs off and retries, each
        // retry paying a full round trip. A bounded budget turns a
        // persistently failing transaction into a machine check
        // instead of a livelock.
        Cycles backoff = pf.backoff_base;
        unsigned tries = 0;
        while (proto_rng_.bernoulli(pf.nack_rate)) {
            nacks_.inc();
            if (obs_)
                obs_->protocolNack(cpu, block, tries + 1, now);
            if (tries == pf.max_retries) {
                proto_failures_.inc();
                if (obs_)
                    obs_->protocolMachineCheck(cpu, block, now);
                break;
            }
            ++tries;
            retries_.inc();
            if (obs_)
                obs_->protocolRetry(cpu, block, tries, backoff,
                                    now);
            total += backoff + attempt(now + total);
            backoff = std::min<Cycles>(backoff * 2, pf.backoff_cap);
        }
    }
    return total;
}

Cycles
NumaMachine::access(unsigned cpu, Addr addr, bool store, Tick now)
{
    if (!obs_)
        return accessImpl(cpu, addr, store, now);
    const Addr block = blockAddr(addr);
    obs_now_ = now;
    const std::uint16_t before = directory_.lookup(block).encode();
    const Cycles latency = accessImpl(cpu, addr, store, now);
    obs_->accessEnd(cpu, block, store, last_service_, latency, now,
                    before, directory_.lookup(block));
    return latency;
}

Cycles
NumaMachine::accessImpl(unsigned cpu, Addr addr, bool store,
                        Tick now)
{
    MW_ASSERT(cpu < nodes_.size(), "bad cpu id");
    const Addr block = blockAddr(addr);
    Node &n = nodes_[cpu];
    n.stats.total.inc();

    const LatencyTable &lat = config_.latency;

    // --- First-level structures --------------------------------------
    Addr view;
    const unsigned home = resolveHomeAndView(addr, cpu, view);
    bool l1_hit;
    if (config_.arch == NodeArch::ReferenceCcNuma)
        l1_hit = n.flc->access(view, store).hit;
    else
        l1_hit = n.columns->accessNoFill(view, store) !=
                 DAccessOutcome::Miss;

    // Invariant: a cached copy is coherent (invalidations remove
    // copies eagerly), so a load hit — or a store hit with ownership
    // — completes in one cycle. Load hits return before the directory
    // lookup: a cached block's entry was created when it was filled,
    // so the lookup is pure overhead on this (dominant) path.
    if (l1_hit && !store) {
        n.stats.cache_hits.inc();
        last_service_ = ServiceLevel::CacheHit;
        return lat.cache_hit;
    }

    if (block != memo_block_) {
        memo_block_ = block;
        memo_entry_ = &directory_.entry(block);
    }
    DirEntry &e = *memo_entry_;
    if (l1_hit && e.state() == DirState::Modified && e.owner() == cpu) {
        n.stats.cache_hits.inc();
        last_service_ = ServiceLevel::CacheHit;
        return lat.cache_hit;
    }

    // Cost of re-reaching data this node can already access
    // (L1 miss but local home / INC / SLC), shared by several paths.
    auto local_refetch = [&](bool st) -> Cycles {
        if (config_.arch == NodeArch::SimpleComa) {
            if (n.attraction.contains(block)) {
                // Valid in the local attraction memory: a plain
                // local DRAM access regardless of the block's home.
                fillLocal(cpu, block, st);
                last_service_ = ServiceLevel::LocalMemory;
                n.stats.local_mem.inc();
                return lat.local_memory;
            }
            // Not replicated yet: fetch across the fabric (or from
            // the local home) and install in attraction memory.
            fillLocal(cpu, block, st);
            if (home == cpu) {
                last_service_ = ServiceLevel::LocalMemory;
                n.stats.local_mem.inc();
                return lat.local_memory;
            }
            last_service_ = ServiceLevel::Remote;
            n.stats.remote_loads.inc();
            return remoteRoundTrip(cpu, home, block, now, lat.remote_load);
        }
        if (home == cpu) {
            fillLocal(cpu, block, st);
            last_service_ = ServiceLevel::LocalMemory;
            n.stats.local_mem.inc();
            return lat.local_memory;
        }
        if (config_.arch == NodeArch::Integrated) {
            if (n.inc->access(block, st)) {
                n.columns->stageRemoteBlock(block);
                last_service_ = ServiceLevel::IncHit;
                n.stats.inc_hits.inc();
                return lat.inc_access + lat.inc_tag_extra;
            }
            // Fell out of the INC as well: fetch again.
            n.inc->insert(block);
            n.columns->stageRemoteBlock(block);
            last_service_ = ServiceLevel::Remote;
            n.stats.remote_loads.inc();
            return remoteRoundTrip(cpu, home, block, now, lat.remote_load);
        }
        if (n.slc.contains(block)) {
            n.flc->access(block, st);
            last_service_ = ServiceLevel::LocalMemory;
            n.stats.local_mem.inc();
            return lat.local_memory;  // SLC hit (Table 6: 6 cycles)
        }
        n.flc->access(block, st);
        n.slc.insert(block);
        last_service_ = ServiceLevel::Remote;
        n.stats.remote_loads.inc();
        return remoteRoundTrip(cpu, home, block, now, lat.remote_load);
    };

    // Import a remote block after a fabric transaction.
    auto remote_import = [&](bool st) {
        if (config_.arch == NodeArch::SimpleComa || home == cpu) {
            fillLocal(cpu, block, st);
        } else if (config_.arch == NodeArch::Integrated) {
            n.inc->insert(block);
            n.columns->stageRemoteBlock(block);
        } else {
            n.flc->access(block, st);
            n.slc.insert(block);
        }
    };

    if (!store) {
        // ---- Load miss -----------------------------------------------
        if (e.state() == DirState::Modified) {
            if (e.owner() == cpu) {
                // Reading our own dirty block: ownership is kept
                // (no directory transition), just refetch the data.
                return local_refetch(false);
            }
            // Dirty elsewhere: round trip through the owner, which
            // downgrades to shared and keeps its copy.
            // MissedDowngrade mutation: the directory forgets to
            // demote the dirty owner, leaving Modified(owner) while
            // this reader pulls a copy anyway.
            if (config_.mutation == ProtocolMutation::MissedDowngrade)
                ++mutated_transitions_;
            else
                e.addSharer(cpu);
            remote_import(false);
            last_service_ = ServiceLevel::Remote;
            n.stats.remote_loads.inc();
            return remoteRoundTrip(cpu, e.owner(), block, now,
                                   lat.remote_load);
        }
        // DropSharer mutation: the directory never records this
        // reader, so a later invalidation will miss its copy.
        if (config_.mutation == ProtocolMutation::DropSharer)
            ++mutated_transitions_;
        else
            e.addSharer(cpu);
        return local_refetch(false);
    }

    // ---- Store ---------------------------------------------------------
    if (e.state() == DirState::Modified && e.owner() == cpu) {
        // Ownership retained but the data slipped out of the L1.
        return local_refetch(true);
    }

    // Exclusivity is required. Count copies elsewhere.
    bool others = false;
    switch (e.state()) {
      case DirState::Uncached:
        others = false;
        break;
      case DirState::Modified:
        others = e.owner() != cpu;
        break;
      case DirState::Shared: {
        for (unsigned s : e.sharers())
            if (s != cpu)
                others = true;
        break;
      }
      case DirState::SharedBcast:
        others = true;
        break;
    }

    Cycles cost;
    if (others) {
        // Invalidation round trip covers both the permission grant
        // and, for dirty blocks, the data forward (Table 6).
        invalidateSharers(e, block, cpu);
        n.stats.invalidations.inc();
        last_service_ = ServiceLevel::Invalidation;
        cost = remoteRoundTrip(cpu,
                               home == cpu
                                   ? (cpu + 1) % config_.nodes
                                   : home,
                               block, now,
                               lat.invalidation_round_trip);
    } else if (home == cpu) {
        // Sole (or no) copy, local home: the directory grant is a
        // local memory transaction.
        last_service_ = ServiceLevel::LocalMemory;
        n.stats.local_mem.inc();
        cost = lat.local_memory;
    } else {
        // Sole (or no) copy, remote home: the grant is a fabric
        // round trip whether or not the data is already here.
        last_service_ = ServiceLevel::Remote;
        n.stats.remote_loads.inc();
        cost = remoteRoundTrip(cpu, home, block, now, lat.remote_load);
    }
    // WrongOwner mutation: the directory grants exclusive ownership
    // to the wrong node after a store.
    if (config_.mutation == ProtocolMutation::WrongOwner &&
        config_.nodes > 1) {
        ++mutated_transitions_;
        e.setModified((cpu + 1) % config_.nodes);
    } else {
        e.setModified(cpu);
    }
    if (!l1_hit)
        remote_import(true);
    return cost;
}

std::uint64_t
NumaMachine::totalAccesses() const
{
    std::uint64_t total = 0;
    for (const auto &node : nodes_)
        total += node.stats.total.value();
    return total;
}

std::uint64_t
NumaMachine::totalRemoteLoads() const
{
    std::uint64_t total = 0;
    for (const auto &node : nodes_)
        total += node.stats.remote_loads.value();
    return total;
}

std::uint64_t
NumaMachine::totalInvalidations() const
{
    std::uint64_t total = 0;
    for (const auto &node : nodes_)
        total += node.stats.invalidations.value();
    return total;
}

namespace {

/** Emit an unordered set of addresses as a sorted list. */
void
putAddrSet(ckpt::Encoder &e, const std::unordered_set<Addr> &set)
{
    std::vector<Addr> sorted(set.begin(), set.end());
    std::sort(sorted.begin(), sorted.end());
    e.varint(sorted.size());
    for (const Addr a : sorted)
        e.varint(a);
}

/** Decode a strictly increasing address list back into a set. */
void
getAddrSet(ckpt::Decoder &d, std::unordered_set<Addr> &set,
           const char *what)
{
    const std::uint64_t count = d.varint();
    std::unordered_set<Addr> out;
    Addr prev = 0;
    for (std::uint64_t i = 0; i < count && d.ok(); ++i) {
        const Addr a = d.varint();
        if (i > 0 && a <= prev) {
            d.fail(what);
            return;
        }
        prev = a;
        out.insert(a);
    }
    if (d.ok())
        set = std::move(out);
}

void
putNodeStats(ckpt::Encoder &e, const NodeStats &s)
{
    ckpt::putCounter(e, s.cache_hits);
    ckpt::putCounter(e, s.local_mem);
    ckpt::putCounter(e, s.inc_hits);
    ckpt::putCounter(e, s.remote_loads);
    ckpt::putCounter(e, s.invalidations);
    ckpt::putCounter(e, s.total);
}

void
getNodeStats(ckpt::Decoder &d, NodeStats &s)
{
    ckpt::getCounter(d, s.cache_hits);
    ckpt::getCounter(d, s.local_mem);
    ckpt::getCounter(d, s.inc_hits);
    ckpt::getCounter(d, s.remote_loads);
    ckpt::getCounter(d, s.invalidations);
    ckpt::getCounter(d, s.total);
}

} // namespace

void
NumaMachine::saveState(ckpt::Encoder &e) const
{
    MW_ASSERT(!fabric_,
              "fabric-contention runs are not checkpointable: the "
              "link clocks are not captured");
    e.varint(config_.nodes);
    e.u8(static_cast<std::uint8_t>(config_.arch));
    e.u8(config_.victim_cache ? 1 : 0);
    e.varint(config_.page_bytes);
    e.u8(config_.first_touch ? 1 : 0);

    directory_.saveState(e);
    e.varint(mutated_transitions_);
    ckpt::putRng(e, proto_rng_);
    ckpt::putCounter(e, nacks_);
    ckpt::putCounter(e, retries_);
    ckpt::putCounter(e, proto_failures_);
    e.u8(static_cast<std::uint8_t>(last_service_));

    std::vector<std::pair<std::uint64_t, PagePlacement>> pages(
        pages_.begin(), pages_.end());
    std::sort(pages.begin(), pages.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    e.varint(pages.size());
    for (const auto &[page, place] : pages) {
        e.varint(page);
        e.varint(place.home);
        e.varint(place.local_frame);
    }
    for (const std::uint64_t used : frames_used_)
        e.varint(used);

    for (const Node &node : nodes_) {
        switch (config_.arch) {
          case NodeArch::Integrated:
            node.columns->saveState(e);
            node.inc->saveState(e);
            break;
          case NodeArch::SimpleComa: {
            node.columns->saveState(e);
            putAddrSet(e, node.attraction);
            std::vector<std::pair<std::uint64_t, std::uint64_t>>
                frames(node.frames.begin(), node.frames.end());
            std::sort(frames.begin(), frames.end());
            e.varint(frames.size());
            for (const auto &[page, frame] : frames) {
                e.varint(page);
                e.varint(frame);
            }
            e.varint(node.next_frame);
            break;
          }
          case NodeArch::ReferenceCcNuma:
            node.flc->saveState(e);
            putAddrSet(e, node.slc);
            break;
        }
        putNodeStats(e, node.stats);
    }
}

void
NumaMachine::loadState(ckpt::Decoder &d)
{
    if (fabric_) {
        d.fail("numa machine: fabric-contention runs are not "
               "checkpointable");
        return;
    }
    const std::uint64_t nodes = d.varint();
    const std::uint8_t arch = d.u8();
    const std::uint8_t victim = d.u8();
    const std::uint64_t page_bytes = d.varint();
    const std::uint8_t first_touch = d.u8();
    if (d.failed())
        return;
    if (nodes != config_.nodes ||
        arch != static_cast<std::uint8_t>(config_.arch) ||
        victim != (config_.victim_cache ? 1 : 0) ||
        page_bytes != config_.page_bytes ||
        first_touch != (config_.first_touch ? 1 : 0)) {
        d.fail("numa machine: checkpoint topology mismatch");
        return;
    }

    Directory directory = directory_;
    directory.loadState(d);
    const std::uint64_t mutated = d.varint();
    Rng rng = proto_rng_;
    ckpt::getRng(d, rng);
    Counter nacks, retries, failures;
    ckpt::getCounter(d, nacks);
    ckpt::getCounter(d, retries);
    ckpt::getCounter(d, failures);
    const std::uint8_t service = d.u8();
    if (d.ok() &&
        service >
            static_cast<std::uint8_t>(ServiceLevel::Invalidation))
        d.fail("numa machine: invalid service level");

    const std::uint64_t npages = d.varint();
    std::unordered_map<std::uint64_t, PagePlacement> pages;
    std::uint64_t prev_page = 0;
    for (std::uint64_t i = 0; i < npages && d.ok(); ++i) {
        const std::uint64_t page = d.varint();
        const std::uint64_t home = d.varint();
        const std::uint64_t frame = d.varint();
        if ((i > 0 && page <= prev_page) || home >= config_.nodes) {
            d.fail("numa machine: malformed page placement");
            return;
        }
        prev_page = page;
        pages.emplace(page,
                      PagePlacement{static_cast<unsigned>(home),
                                    frame});
    }
    std::vector<std::uint64_t> frames_used(frames_used_.size());
    for (std::uint64_t &used : frames_used)
        used = d.varint();
    if (d.failed())
        return;

    std::vector<Node> restored(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const Node &cur = nodes_[i];
        Node &node = restored[i];
        switch (config_.arch) {
          case NodeArch::Integrated:
            node.columns =
                std::make_unique<ColumnDataCache>(*cur.columns);
            node.columns->loadState(d);
            node.inc =
                std::make_unique<InterNodeCache>(*cur.inc);
            node.inc->loadState(d);
            break;
          case NodeArch::SimpleComa: {
            node.columns =
                std::make_unique<ColumnDataCache>(*cur.columns);
            node.columns->loadState(d);
            getAddrSet(d, node.attraction,
                       "numa machine: malformed attraction set");
            const std::uint64_t nframes = d.varint();
            std::uint64_t prev = 0;
            for (std::uint64_t f = 0; f < nframes && d.ok(); ++f) {
                const std::uint64_t page = d.varint();
                const std::uint64_t frame = d.varint();
                if (f > 0 && page <= prev) {
                    d.fail("numa machine: malformed frame map");
                    return;
                }
                prev = page;
                node.frames.emplace(page, frame);
            }
            node.next_frame = d.varint();
            break;
          }
          case NodeArch::ReferenceCcNuma:
            node.flc = std::make_unique<Cache>(*cur.flc);
            node.flc->loadState(d);
            getAddrSet(d, node.slc,
                       "numa machine: malformed slc set");
            break;
        }
        getNodeStats(d, node.stats);
        if (d.failed())
            return;
    }

    directory_ = std::move(directory);
    mutated_transitions_ = mutated;
    proto_rng_ = rng;
    nacks_ = nacks;
    retries_ = retries;
    proto_failures_ = failures;
    last_service_ = static_cast<ServiceLevel>(service);
    pages_ = std::move(pages);
    frames_used_ = std::move(frames_used);
    nodes_ = std::move(restored);
    // The memos cache raw pointers into the replaced containers.
    memo_page_ = ~std::uint64_t{0};
    memo_place_ = nullptr;
    memo_block_ = ~Addr{0};
    memo_entry_ = nullptr;
}

} // namespace memwall
