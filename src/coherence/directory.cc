#include "coherence/directory.hh"

#include <algorithm>

#include "common/logging.hh"

namespace memwall {

std::vector<unsigned>
DirEntry::sharers() const
{
    std::vector<unsigned> out;
    if (state_ != DirState::Shared)
        return out;
    for (auto p : ptrs_)
        if (std::find(out.begin(), out.end(), p) == out.end())
            out.push_back(static_cast<unsigned>(p));
    return out;
}

bool
DirEntry::tracks(unsigned node) const
{
    switch (state_) {
      case DirState::Uncached:
        return false;
      case DirState::SharedBcast:
        return true;  // conservatively: anyone may hold it
      case DirState::Modified:
        return ptrs_[0] == node;
      case DirState::Shared:
        return std::any_of(std::begin(ptrs_), std::end(ptrs_),
                           [node](std::uint8_t p) {
                               return p == node;
                           });
    }
    return false;
}

void
DirEntry::clear()
{
    state_ = DirState::Uncached;
    std::fill(std::begin(ptrs_), std::end(ptrs_), 0);
}

void
DirEntry::addSharer(unsigned node)
{
    MW_ASSERT(node < max_nodes, "node id exceeds pointer width");
    switch (state_) {
      case DirState::SharedBcast:
        return;  // already imprecise
      case DirState::Uncached:
        state_ = DirState::Shared;
        // Duplicate the single sharer into every slot (duplicates
        // mark free slots).
        std::fill(std::begin(ptrs_), std::end(ptrs_),
                  static_cast<std::uint8_t>(node));
        return;
      case DirState::Modified: {
        // Owner downgrades; both become sharers.
        const std::uint8_t owner = ptrs_[0];
        state_ = DirState::Shared;
        std::fill(std::begin(ptrs_), std::end(ptrs_), owner);
        if (owner != node)
            ptrs_[1] = static_cast<std::uint8_t>(node);
        return;
      }
      case DirState::Shared: {
        for (auto p : ptrs_)
            if (p == node)
                return;  // already tracked
        // Replace a duplicate slot if one exists.
        for (unsigned i = 1; i < max_pointers; ++i) {
            bool dup = false;
            for (unsigned j = 0; j < i; ++j)
                if (ptrs_[i] == ptrs_[j])
                    dup = true;
            if (dup) {
                ptrs_[i] = static_cast<std::uint8_t>(node);
                return;
            }
        }
        // Three distinct sharers already: overflow to broadcast.
        state_ = DirState::SharedBcast;
        std::fill(std::begin(ptrs_), std::end(ptrs_), 0);
        return;
      }
    }
}

void
DirEntry::setModified(unsigned node)
{
    MW_ASSERT(node < max_nodes, "node id exceeds pointer width");
    state_ = DirState::Modified;
    std::fill(std::begin(ptrs_), std::end(ptrs_),
              static_cast<std::uint8_t>(node));
}

std::uint16_t
DirEntry::encode() const
{
    std::uint16_t bits =
        static_cast<std::uint16_t>(static_cast<unsigned>(state_)
                                   << 12);
    bits |= static_cast<std::uint16_t>(ptrs_[0] & 0xf) << 8;
    bits |= static_cast<std::uint16_t>(ptrs_[1] & 0xf) << 4;
    bits |= static_cast<std::uint16_t>(ptrs_[2] & 0xf);
    return bits;
}

DirEntry
DirEntry::decode(std::uint16_t bits)
{
    MW_ASSERT((bits >> 14) == 0, "directory entry wider than 14 bits");
    DirEntry e;
    e.state_ = static_cast<DirState>((bits >> 12) & 0x3);
    e.ptrs_[0] = static_cast<std::uint8_t>((bits >> 8) & 0xf);
    e.ptrs_[1] = static_cast<std::uint8_t>((bits >> 4) & 0xf);
    e.ptrs_[2] = static_cast<std::uint8_t>(bits & 0xf);
    return e;
}

bool
DirEntry::operator==(const DirEntry &other) const
{
    return encode() == other.encode();
}

Directory::Directory(unsigned nodes) : nodes_(nodes)
{
    MW_ASSERT(nodes_ >= 1 && nodes_ <= DirEntry::max_nodes,
              "the 14-bit directory supports 1..16 nodes, got ",
              nodes_);
}

DirEntry &
Directory::entry(Addr addr)
{
    return map_[blockAddr(addr)];
}

DirEntry
Directory::lookup(Addr addr) const
{
    auto it = map_.find(blockAddr(addr));
    return it == map_.end() ? DirEntry{} : it->second;
}

void
Directory::saveState(ckpt::Encoder &e) const
{
    e.varint(nodes_);
    e.varint(map_.size());
    std::vector<Addr> addrs;
    addrs.reserve(map_.size());
    for (const auto &[addr, entry] : map_)
        addrs.push_back(addr);
    std::sort(addrs.begin(), addrs.end());
    for (const Addr addr : addrs) {
        e.varint(addr);
        e.u16(map_.at(addr).encode());
    }
}

void
Directory::loadState(ckpt::Decoder &d)
{
    const std::uint64_t nodes = d.varint();
    const std::uint64_t count = d.varint();
    if (d.failed())
        return;
    if (nodes != nodes_) {
        d.fail("directory: node count mismatch");
        return;
    }
    std::unordered_map<Addr, DirEntry> map;
    map.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        const Addr addr = d.varint();
        const std::uint16_t bits = d.u16();
        if (d.failed())
            return;
        map[addr] = DirEntry::decode(bits);
    }
    map_ = std::move(map);
}

} // namespace memwall
