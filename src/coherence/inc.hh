/**
 * @file
 * The Inter-Node Cache (Section 4.2, Figure 6).
 *
 * For CC-NUMA operation a configurable fraction of each node's DRAM
 * is reserved as a cache for imported remote data. A 512-byte DRAM
 * column stores seven 32-byte lines plus a tag block, making the
 * cache 7-way set-associative; each access needs 1-2 extra cycles
 * over a local memory access for the tag check.
 */

#ifndef MEMWALL_COHERENCE_INC_HH
#define MEMWALL_COHERENCE_INC_HH

#include <cstdint>

#include "coherence/protocol.hh"
#include "mem/cache.hh"

namespace memwall {

/** INC geometry. */
struct IncConfig
{
    /**
     * DRAM bytes reserved for the INC (1 MiB in the paper's MP
     * simulations). Sets = reserved / 512; each set holds 7 lines.
     */
    std::uint64_t reserved_bytes = 1 * MiB;
    /** Column size (fixed by the device). */
    std::uint32_t column_bytes = 512;
    /** Lines per column: 7 data + 1 tag block. */
    std::uint32_t ways = 7;
};

/** 7-way set-associative cache of imported 32-byte blocks. */
class InterNodeCache
{
  public:
    explicit InterNodeCache(IncConfig config = {});

    /** @return true iff @p addr's block is present (refreshes LRU). */
    bool access(Addr addr, bool store);

    /** Probe without statistics. */
    bool probe(Addr addr) const { return cache_.probe(addr); }

    /** Insert an imported block (may evict another import). */
    void insert(Addr addr);

    /** Invalidate a block on coherence action. */
    bool invalidate(Addr addr);

    void flush() { cache_.flush(); }

    const AccessStats &stats() const { return stats_; }
    const IncConfig &config() const { return config_; }

    /** Usable data capacity in bytes (7/16 of each column). */
    std::uint64_t dataCapacity() const;

    void saveState(ckpt::Encoder &e) const;
    void loadState(ckpt::Decoder &d);

  private:
    IncConfig config_;
    Cache cache_;
    AccessStats stats_;
};

} // namespace memwall

#endif // MEMWALL_COHERENCE_INC_HH
