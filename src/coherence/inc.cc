#include "coherence/inc.hh"

#include "checkpoint/state_io.hh"
#include "common/logging.hh"

namespace memwall {

namespace {

CacheConfig
incCacheConfig(const IncConfig &config)
{
    if (!isPowerOfTwo(config.reserved_bytes / config.column_bytes))
        MW_FATAL("INC reserved size must give a power-of-two number "
                 "of columns");
    CacheConfig c;
    const std::uint64_t sets =
        config.reserved_bytes / config.column_bytes;
    c.line_size = coherence_unit;
    c.assoc = config.ways;
    c.capacity = sets * config.ways * coherence_unit;
    c.sub_block_size = coherence_unit;
    c.name = "inc";
    return c;
}

} // namespace

InterNodeCache::InterNodeCache(IncConfig config)
    : config_(config), cache_(incCacheConfig(config))
{
    MW_ASSERT(config_.ways == 7,
              "the column layout fixes the INC at 7 ways");
}

bool
InterNodeCache::access(Addr addr, bool store)
{
    // Presence test only: fills go through insert() so that a miss
    // here does not allocate (the protocol decides what to import).
    if (cache_.probe(addr)) {
        cache_.touch(addr, store);
        if (store)
            stats_.store_hits.inc();
        else
            stats_.load_hits.inc();
        return true;
    }
    if (store)
        stats_.store_misses.inc();
    else
        stats_.load_misses.inc();
    return false;
}

void
InterNodeCache::insert(Addr addr)
{
    cache_.access(blockAddr(addr), false);
}

bool
InterNodeCache::invalidate(Addr addr)
{
    return cache_.invalidate(addr).has_value();
}

std::uint64_t
InterNodeCache::dataCapacity() const
{
    return cache_.config().capacity;
}

void
InterNodeCache::saveState(ckpt::Encoder &e) const
{
    cache_.saveState(e);
    ckpt::putAccessStats(e, stats_);
}

void
InterNodeCache::loadState(ckpt::Decoder &d)
{
    Cache cache = cache_;
    cache.loadState(d);
    AccessStats stats;
    ckpt::getAccessStats(d, stats);
    if (d.failed())
        return;
    cache_ = std::move(cache);
    stats_ = stats;
}

} // namespace memwall
