/**
 * @file
 * In-memory directory with 14-bit entries (Figure 5).
 *
 * The directory is co-located with the data: computing ECC over
 * 128-bit instead of 64-bit words frees 14 bits per 32-byte block
 * (see mem/ecc.hh), which hold the directory state and pointer.
 * 14 bits force a LIMITED-POINTER organisation: 2 bits of state and
 * three 4-bit node pointers. When a fourth sharer arrives the entry
 * overflows to broadcast mode (invalidations go to every node) —
 * the classic Dir3B scheme.
 */

#ifndef MEMWALL_COHERENCE_DIRECTORY_HH
#define MEMWALL_COHERENCE_DIRECTORY_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "checkpoint/codec.hh"
#include "coherence/protocol.hh"

namespace memwall {

/** One 14-bit directory entry (decoded form). */
class DirEntry
{
  public:
    static constexpr unsigned max_pointers = 3;
    /** 4-bit pointers: node ids 0..15. Empty pointer slots are
     * marked by DUPLICATING an existing pointer (duplicates are
     * idempotent for invalidation), so no id is sacrificed as a
     * null sentinel and 16-node systems work. */
    static constexpr unsigned max_nodes = 16;

    DirEntry() { clear(); }

    DirState state() const { return state_; }

    /** Owner node id; valid only in Modified state. */
    unsigned owner() const { return ptrs_[0]; }

    /** Tracked sharers (Shared state only; empty under broadcast). */
    std::vector<unsigned> sharers() const;

    /** @return true iff @p node is a tracked sharer or the owner. */
    bool tracks(unsigned node) const;

    /** Reset to Uncached. */
    void clear();

    /** Record a (first or additional) sharer after a load miss. */
    void addSharer(unsigned node);

    /** Grant exclusive ownership to @p node. */
    void setModified(unsigned node);

    /**
     * Pack into the 14-bit on-DRAM representation:
     * [13:12] state, [11:8][7:4][3:0] pointers.
     */
    std::uint16_t encode() const;

    /** Unpack a 14-bit value. */
    static DirEntry decode(std::uint16_t bits);

    bool operator==(const DirEntry &other) const;

  private:
    DirState state_;
    std::uint8_t ptrs_[max_pointers];
};

/**
 * Sparse directory over the shared address space. In hardware every
 * 32-byte block has an entry in its home node's DRAM; the simulator
 * materialises entries on first touch (absent = Uncached).
 */
class Directory
{
  public:
    explicit Directory(unsigned nodes);

    /** Look up (and create) the entry for @p addr's block. */
    DirEntry &entry(Addr addr);

    /** Read-only probe; returns Uncached default when untouched. */
    DirEntry lookup(Addr addr) const;

    unsigned nodes() const { return nodes_; }
    std::size_t materialisedEntries() const { return map_.size(); }

    /**
     * Storage overhead check: bits of directory state per data
     * block, as stored in the freed ECC bits (always 14).
     */
    static constexpr unsigned bitsPerBlock() { return 14; }

    /**
     * Serialize the materialised entries in ascending address order
     * (canonical bytes regardless of hash-map iteration order),
     * each as its packed 14-bit form.
     */
    void saveState(ckpt::Encoder &e) const;

    /** All-or-nothing restore; fails the decoder on mismatch. */
    void loadState(ckpt::Decoder &d);

  private:
    unsigned nodes_;
    std::unordered_map<Addr, DirEntry> map_;
};

} // namespace memwall

#endif // MEMWALL_COHERENCE_DIRECTORY_HH
