/**
 * @file
 * CC-NUMA machine models for the multiprocessor evaluation
 * (Section 6).
 *
 * Two node architectures are compared, both running the same
 * directory-based write-invalidate protocol on 32-byte units with
 * the Table 6 latencies:
 *
 *  - Integrated: the proposed device. The column-buffer data cache
 *    (2-way, 512-byte lines) with an optional victim cache filters
 *    accesses; remote data is cached in a 7-way INC held in DRAM;
 *    imported blocks stage through the victim cache.
 *
 *  - ReferenceCcNuma: a conventional node with a 16 KB direct-mapped
 *    first-level cache (32-byte lines) and an INFINITE second-level
 *    cache, the idealised comparison system of Section 6.1 (no SLC
 *    capacity misses; only cold and coherence misses remain).
 *
 * The model is execution-driven and synchronous: each access runs
 * the full protocol immediately and returns its latency; remote
 * operations invalidate/downgrade the other nodes' cache structures
 * directly, so presence information is always consistent.
 */

#ifndef MEMWALL_COHERENCE_NUMA_HH
#define MEMWALL_COHERENCE_NUMA_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "coherence/directory.hh"
#include "common/rng.hh"
#include "interconnect/fabric.hh"
#include "coherence/inc.hh"
#include "coherence/protocol.hh"
#include "mem/cache.hh"
#include "mem/column_cache.hh"

namespace memwall {

/** Node architecture selector. */
enum class NodeArch {
    Integrated,       ///< CC-NUMA: column buffers (+ VC) + INC
    ReferenceCcNuma,  ///< 16 KB DM FLC + infinite SLC
    /**
     * Simple-COMA on the integrated device (Section 4.2 says both
     * are supported; the authors' HPCA'95 "An Argument for Simple
     * COMA" is reference [21]). Memory behaves as an attraction
     * cache: pages are replicated into the local DRAM on first use
     * (page-grain allocation, 32-byte-grain coherence), so re-used
     * remote data costs a 6-cycle local access instead of an INC
     * lookup, at the price of replication storage.
     */
    SimpleComa,
};

/**
 * Error process of the protocol engines. A loaded (or flaky) home
 * engine NACKs an incoming remote transaction instead of servicing
 * it; the requester backs off exponentially and retries a bounded
 * number of times. Exhausting the retry budget is counted as a
 * protocol failure (machine-check material) and the transaction is
 * then forced through, so forward progress is never lost silently.
 * Disabled by default (nack_rate == 0 draws nothing from the RNG, so
 * fault-free runs reproduce bit-for-bit).
 */
struct ProtocolFaultConfig
{
    /** Probability that one remote transaction attempt is NACKed. */
    double nack_rate = 0.0;
    /** Retries before the requester raises a machine check. */
    unsigned max_retries = 8;
    /** Backoff before the first retry (doubles per retry). */
    Cycles backoff_base = 16;
    /** Upper bound on a single backoff interval. */
    Cycles backoff_cap = 1024;
    /** Seed of the NACK stream. */
    std::uint64_t seed = 42;

    bool enabled() const { return nack_rate > 0.0; }
};

/**
 * Deliberate protocol corruption (verification test hook). Each
 * mutation disables exactly one protocol transition so the shadow
 * checker's sensitivity can be proven: a correct checker MUST flag
 * every mutated run. None (the default) leaves the protocol intact.
 */
enum class ProtocolMutation : std::uint8_t {
    None,            ///< protocol behaves correctly
    SkipInvalidate,  ///< leave one stale sharer on every invalidation
    DropSharer,      ///< load misses are not recorded in the directory
    WrongOwner,      ///< stores grant ownership to the wrong node
    MissedDowngrade, ///< loads from a dirty block skip the M->S step
};

/** Decoded name of @p mutation ("none", "skip-invalidate", ...). */
const char *protocolMutationName(ProtocolMutation mutation);

/**
 * Observer of every protocol action of one NumaMachine (the hook
 * surface the runtime verification layer in src/verify/ attaches
 * to). All hooks default to no-ops; with no observer attached the
 * machine pays one predictable-branch test per action.
 */
class ProtocolObserver
{
  public:
    virtual ~ProtocolObserver() = default;

    /** A node's copy of @p block was invalidated. */
    virtual void copyInvalidated(unsigned, Addr, Tick) {}

    /** A remote transaction attempt was NACKed (tries so far). */
    virtual void protocolNack(unsigned, Addr, unsigned, Tick) {}

    /** A NACKed transaction retries after backing off. */
    virtual void protocolRetry(unsigned, Addr, unsigned, Cycles,
                               Tick) {}

    /** The retry budget was exhausted (machine-check material). */
    virtual void protocolMachineCheck(unsigned, Addr, Tick) {}

    /** A fabric message was delivered (contention mode only):
     * (deliver tick, src, dst, attempts, link gave up). */
    virtual void linkMessage(Tick, unsigned, unsigned, unsigned,
                             bool) {}

    /**
     * One access completed: requester, block, store?, service
     * level, latency, start time, the 14-bit directory entry before
     * the access and the decoded entry after it.
     */
    virtual void accessEnd(unsigned, Addr, bool, ServiceLevel,
                           Cycles, Tick, std::uint16_t,
                           const DirEntry &) {}
};

/** Machine-wide configuration. */
struct NumaConfig
{
    unsigned nodes = 16;
    NodeArch arch = NodeArch::Integrated;
    /** Victim cache present (Integrated only). */
    bool victim_cache = true;
    /** Table 6 latencies. */
    LatencyTable latency = {};
    /** INC geometry (Integrated only). */
    IncConfig inc = {};
    /** Home interleaving granularity (bytes, power of two). */
    std::uint32_t page_bytes = 4 * KiB;
    /**
     * First-touch page placement: a page's home is the first CPU
     * that references it (the standard NUMA policy of the era and
     * the behaviour SPLASH codes were tuned for). When false, pages
     * interleave round-robin.
     */
    bool first_touch = true;
    /** FLC geometry for the reference node. */
    CacheConfig flc = {16 * KiB, 32, 1, ReplPolicy::LRU, 32, "flc"};
    /**
     * Model fabric and protocol-engine contention instead of the
     * fixed Table 6 remote latencies. Remote transactions then
     * occupy one of the sender's four serial links and the home
     * node's protocol engine; the charged latency is the larger of
     * the Table 6 figure and the contended round trip. (The paper
     * notes its fixed numbers are conservative for an unloaded
     * fabric; this switch explores the loaded case.)
     */
    bool model_fabric_contention = false;
    /** Serial-link fabric parameters (contention mode). */
    FabricConfig fabric = {};
    /** Protocol-engine occupancy per remote transaction (cycles),
     * from the S3.mp engine microcode budget. */
    Cycles engine_occupancy = 12;
    /** Column cache geometry for the integrated node. */
    ColumnCacheConfig columns = {};
    /** Protocol-engine NACK/retry error process. */
    ProtocolFaultConfig protocol_fault = {};
    /** Deliberate protocol corruption (verification test hook). */
    ProtocolMutation mutation = ProtocolMutation::None;
};

/** Per-node access statistics. */
struct NodeStats
{
    Counter cache_hits;
    Counter local_mem;
    Counter inc_hits;
    Counter remote_loads;
    Counter invalidations;
    Counter total;

    std::uint64_t hits() const { return cache_hits.value(); }
};

/**
 * The shared-memory machine. Thread-compatible with the MP
 * scheduler: only one simulated CPU executes at a time, so no
 * internal locking is needed.
 */
class NumaMachine
{
  public:
    explicit NumaMachine(NumaConfig config = {});

    /**
     * Perform one data access by CPU @p cpu at time @p now (the
     * timestamp only matters in fabric-contention mode).
     * @return the access latency in cycles.
     */
    Cycles access(unsigned cpu, Addr addr, bool store,
                  Tick now = 0);

    /** Service level of the most recent access (for tests). */
    ServiceLevel lastService() const { return last_service_; }

    /**
     * Home node of @p addr: the assigned first-touch home, or the
     * round-robin interleave for pages never touched (or when
     * first_touch is off).
     */
    unsigned homeOf(Addr addr) const;

    const NumaConfig &config() const { return config_; }
    const NodeStats &nodeStats(unsigned cpu) const;
    const Directory &directory() const { return directory_; }

    /** Aggregate counters across nodes. */
    std::uint64_t totalAccesses() const;
    std::uint64_t totalRemoteLoads() const;
    std::uint64_t totalInvalidations() const;

    /** Fabric instance (null unless fabric contention is modelled). */
    const Fabric *fabric() const { return fabric_.get(); }

    /**
     * Attach (or with nullptr detach) a protocol observer. At most
     * one observer is supported; it must outlive the machine or be
     * detached first. Also mirrors fabric messages into the
     * observer when fabric contention is modelled.
     */
    void attachObserver(ProtocolObserver *observer);

    /** The attached observer (null when verification is off). */
    ProtocolObserver *observer() const { return obs_; }

    /**
     * @return true iff @p node's cache structures actually hold
     * @p addr's block right now (presence probe for the shadow
     * checker and tests; counts no statistics).
     */
    bool holdsBlock(unsigned node, Addr addr) const
    {
        return nodeHolds(node, blockAddr(addr));
    }

    /** Protocol transitions corrupted by the configured mutation. */
    std::uint64_t mutatedTransitions() const
    {
        return mutated_transitions_;
    }

    // Protocol-fault bookkeeping (all zero when the fault model is
    // disabled).
    /** Remote transaction attempts NACKed by a protocol engine. */
    std::uint64_t protocolNacks() const { return nacks_.value(); }
    /** Backoff-spaced retries that followed those NACKs. */
    std::uint64_t protocolRetries() const { return retries_.value(); }
    /** Transactions that exhausted the retry budget. */
    std::uint64_t protocolFailures() const
    {
        return proto_failures_.value();
    }

    /**
     * Serialize the full protocol state — directory, per-node cache
     * structures (column/victim/INC or FLC + infinite SLC),
     * Simple-COMA attraction sets and frame maps, page placements,
     * per-node statistics, fault-model RNG and counters — behind a
     * topology guard (nodes, arch, victim cache, page size,
     * first-touch). Sets and maps are emitted in sorted order so the
     * bytes are canonical. Fabric-contention mode is not
     * checkpointable (the link clocks are not captured); saveState
     * asserts it is off.
     */
    void saveState(ckpt::Encoder &e) const;

    /** All-or-nothing restore; fails the decoder on any topology
     * mismatch and invalidates the hot-path memos on success. */
    void loadState(ckpt::Decoder &d);

  private:
    struct Node
    {
        // Integrated structures.
        std::unique_ptr<ColumnDataCache> columns;
        std::unique_ptr<InterNodeCache> inc;
        // Reference structures.
        std::unique_ptr<Cache> flc;
        std::unordered_set<Addr> slc;  ///< infinite SLC contents
        // Simple-COMA structures: blocks currently valid in this
        // node's attraction memory, and the local frame assigned to
        // each replicated page.
        std::unordered_set<Addr> attraction;
        std::unordered_map<std::uint64_t, std::uint64_t> frames;
        std::uint64_t next_frame = 0;
        NodeStats stats;
    };

    /**
     * Tag/index under which @p node's physically indexed caches see
     * @p addr: imported blocks keep their global block address;
     * local-home blocks translate to the node's contiguous local
     * DRAM space (disjoint range).
     */
    Addr cacheView(unsigned node, Addr addr) const;

    /** @return true iff @p node's caches hold @p block. */
    bool nodeHolds(unsigned node, Addr block) const;
    /** Fill @p block into @p node's local cache structures. */
    void fillLocal(unsigned node, Addr block, bool store);
    /** Remove @p block from @p node (invalidation). */
    void invalidateAt(unsigned node, Addr block);
    /** Invalidate every copy except @p keep's. */
    void invalidateSharers(const DirEntry &entry, Addr block,
                           unsigned keep);

    /** Assign (or look up) the home of @p addr's page. */
    unsigned resolveHome(Addr addr, unsigned toucher);

    struct PagePlacement
    {
        unsigned home;
        /** Index of this page within its home's local DRAM. */
        std::uint64_t local_frame;
    };

    /** Local-DRAM tag of @p block under placement @p p. */
    Addr localView(const PagePlacement &p, Addr block) const;

    /**
     * resolveHome() + cacheView() fused into one pages_ lookup —
     * the access hot path calls both back to back.
     */
    unsigned resolveHomeAndView(Addr addr, unsigned toucher,
                                Addr &view);

    /** Contended cost of a request/reply round trip to @p home. */
    Cycles remoteRoundTrip(unsigned cpu, unsigned home, Addr block,
                           Tick now, Cycles floor);

    /** Protocol body of access(); access() adds observer hooks. */
    Cycles accessImpl(unsigned cpu, Addr addr, bool store,
                      Tick now);

    NumaConfig config_;
    Directory directory_;
    ProtocolObserver *obs_ = nullptr;
    /** Start time of the access in flight (for observer hooks fired
     * from helpers that do not carry the timestamp). */
    Tick obs_now_ = 0;
    std::uint64_t mutated_transitions_ = 0;
    Rng proto_rng_;
    Counter nacks_;
    Counter retries_;
    Counter proto_failures_;
    std::unique_ptr<Fabric> fabric_;
    /** Per-node protocol-engine ready times (contention mode). */
    std::vector<Tick> engine_free_;
    std::vector<Node> nodes_;
    ServiceLevel last_service_ = ServiceLevel::CacheHit;
    std::unordered_map<std::uint64_t, PagePlacement> pages_;
    std::vector<std::uint64_t> frames_used_;
    /** log2(page_bytes): pages are power-of-two sized, and the
     * page-number division sits on the per-access hot path. */
    unsigned page_shift_ = 0;
    /**
     * One-entry memo over pages_ for the access hot path. Safe
     * because placements are immutable once assigned and
     * unordered_map never invalidates element pointers; pure
     * memoization, so results are bit-identical with or without it.
     */
    std::uint64_t memo_page_ = ~std::uint64_t{0};
    const PagePlacement *memo_place_ = nullptr;
    /** Same memo idea for the directory entry of the last block
     * (entry pointers are stable; contents are re-read live). */
    Addr memo_block_ = ~Addr{0};
    DirEntry *memo_entry_ = nullptr;

    std::uint64_t pageOf(Addr addr) const
    {
        return addr >> page_shift_;
    }
    Addr pageOffset(Addr addr) const
    {
        return addr & (static_cast<Addr>(config_.page_bytes) - 1);
    }
};

} // namespace memwall

#endif // MEMWALL_COHERENCE_NUMA_HH
