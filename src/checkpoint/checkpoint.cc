#include "checkpoint/checkpoint.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace memwall {
namespace ckpt {

namespace {

constexpr std::uint32_t file_magic = fourcc("MWCP");

/** Fixed part of the header preceding the section table. */
constexpr std::size_t header_fixed = 4 + 4 + 8 + 4;
/** Per-entry size in the section table. */
constexpr std::size_t table_entry = 4 + 8 + 8 + 4;

std::string
errnoMessage(const std::string &what, const std::string &path)
{
    return what + " '" + path + "': " + std::strerror(errno);
}

/** fsync the directory containing @p path so the rename is durable. */
void
fsyncParentDir(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd); // best effort; rename already hit the journal
        ::close(dfd);
    }
}

} // namespace

std::string
fourccName(std::uint32_t id)
{
    std::string s;
    for (int i = 0; i < 4; ++i) {
        const char c = static_cast<char>(id >> (8 * i));
        s += std::isprint(static_cast<unsigned char>(c)) ? c : '?';
    }
    return s;
}

const char *
loadErrorName(LoadError e)
{
    switch (e) {
    case LoadError::None: return "ok";
    case LoadError::Io: return "io-error";
    case LoadError::Truncated: return "truncated";
    case LoadError::BadMagic: return "bad-magic";
    case LoadError::BadVersion: return "version-mismatch";
    case LoadError::BadConfig: return "config-mismatch";
    case LoadError::BadHeaderCrc: return "header-crc";
    case LoadError::BadSectionCrc: return "section-crc";
    case LoadError::Malformed: return "malformed";
    }
    return "unknown";
}

bool
atomicWriteFile(const std::string &path, const void *data,
                std::size_t len, std::string *why)
{
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        if (why)
            *why = errnoMessage("cannot create", tmp);
        return false;
    }
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::size_t off = 0;
    while (off < len) {
        const ssize_t n = ::write(fd, p + off, len - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (why)
                *why = errnoMessage("short write to", tmp);
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        if (why)
            *why = errnoMessage("fsync failed on", tmp);
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::close(fd) != 0) {
        if (why)
            *why = errnoMessage("close failed on", tmp);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        if (why)
            *why = errnoMessage("rename failed for", path);
        ::unlink(tmp.c_str());
        return false;
    }
    fsyncParentDir(path);
    return true;
}

std::optional<std::vector<std::uint8_t>>
readFileBytes(const std::string &path, std::string *why)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (why)
            *why = errnoMessage("cannot open", path);
        return std::nullopt;
    }
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (why)
                *why = errnoMessage("read failed on", path);
            ::close(fd);
            return std::nullopt;
        }
        if (n == 0)
            break;
        bytes.insert(bytes.end(), buf, buf + n);
    }
    ::close(fd);
    return bytes;
}

std::vector<std::uint8_t>
CheckpointWriter::serialize() const
{
    Encoder header;
    header.u32(file_magic);
    header.u32(format_version);
    header.u64(config_hash_);
    header.u32(static_cast<std::uint32_t>(sections_.size()));
    std::uint64_t offset = 0;
    for (const Section &s : sections_) {
        header.u32(s.id);
        header.u64(offset);
        header.u64(s.enc.size());
        header.u32(crc32(s.enc.data().data(), s.enc.size()));
        offset += s.enc.size();
    }
    header.u32(crc32(header.data().data(), header.size()));

    std::vector<std::uint8_t> out = header.take();
    for (const Section &s : sections_)
        out.insert(out.end(), s.enc.data().begin(),
                   s.enc.data().end());
    return out;
}

bool
CheckpointWriter::writeFile(const std::string &path,
                            std::string *why) const
{
    const std::vector<std::uint8_t> bytes = serialize();
    return atomicWriteFile(path, bytes.data(), bytes.size(), why);
}

LoadError
CheckpointReader::failLoad(LoadError e, std::string detail)
{
    bytes_.clear();
    sections_.clear();
    detail_ = std::move(detail);
    return e;
}

LoadError
CheckpointReader::loadFile(const std::string &path,
                           std::optional<std::uint64_t>
                               expected_config_hash)
{
    std::string why;
    auto bytes = readFileBytes(path, &why);
    if (!bytes)
        return failLoad(LoadError::Io, why);
    return loadBytes(std::move(*bytes), expected_config_hash);
}

LoadError
CheckpointReader::loadBytes(std::vector<std::uint8_t> bytes,
                            std::optional<std::uint64_t>
                                expected_config_hash)
{
    bytes_ = std::move(bytes);
    sections_.clear();
    detail_.clear();

    if (bytes_.size() < header_fixed + 4)
        return failLoad(LoadError::Truncated,
                        "file shorter than a checkpoint header");

    Decoder fixed(bytes_.data(), bytes_.size());
    const std::uint32_t magic = fixed.u32();
    version_ = fixed.u32();
    config_hash_ = fixed.u64();
    const std::uint32_t count = fixed.u32();

    if (magic != file_magic)
        return failLoad(LoadError::BadMagic,
                        "magic is not 'MWCP'");

    // Header CRC next: it covers the fixed header and the section
    // table, and gates every later check — a flipped version byte
    // must read as corruption, not as honest version skew.
    const std::size_t table_bytes =
        static_cast<std::size_t>(count) * table_entry;
    if (bytes_.size() < header_fixed + table_bytes + 4)
        return failLoad(LoadError::Truncated,
                        "section table extends past end of file");
    const std::size_t crc_off = header_fixed + table_bytes;
    Decoder crc_field(bytes_.data() + crc_off, 4);
    const std::uint32_t stored_crc = crc_field.u32();
    const std::uint32_t actual_crc = crc32(bytes_.data(), crc_off);
    if (stored_crc != actual_crc)
        return failLoad(LoadError::BadHeaderCrc,
                        "header CRC mismatch");

    if (version_ != format_version)
        return failLoad(LoadError::BadVersion,
                        "format version " +
                            std::to_string(version_) +
                            " (expected " +
                            std::to_string(format_version) + ")");
    if (expected_config_hash && config_hash_ != *expected_config_hash)
        return failLoad(LoadError::BadConfig,
                        "checkpoint was written under a different "
                        "configuration");

    payload_base_ = crc_off + 4;
    const std::uint64_t payload_len = bytes_.size() - payload_base_;

    Decoder table(bytes_.data() + header_fixed, table_bytes);
    std::uint64_t expected_off = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
        SectionInfo info;
        info.id = table.u32();
        info.offset = table.u64();
        info.length = table.u64();
        info.crc = table.u32();
        // Sections must tile the payload in order; anything else is
        // a forged or scrambled table.
        if (info.offset != expected_off)
            return failLoad(LoadError::Malformed,
                            "section '" + fourccName(info.id) +
                                "' has inconsistent extent");
        // A consistent table pointing past the end of the file means
        // the payload was cut short, not that the table was forged.
        if (info.length > payload_len - info.offset)
            return failLoad(LoadError::Truncated,
                            "section '" + fourccName(info.id) +
                                "' extends past end of file");
        expected_off = info.offset + info.length;
        sections_.push_back(info);
    }
    if (expected_off != payload_len)
        return failLoad(LoadError::Truncated,
                        "payload length disagrees with section "
                        "table");

    for (const SectionInfo &info : sections_) {
        const std::uint32_t crc =
            crc32(bytes_.data() + payload_base_ + info.offset,
                  static_cast<std::size_t>(info.length));
        if (crc != info.crc)
            return failLoad(LoadError::BadSectionCrc,
                            "section '" + fourccName(info.id) +
                                "' failed its CRC");
    }
    return LoadError::None;
}

bool
CheckpointReader::hasSection(std::uint32_t id) const
{
    for (const SectionInfo &s : sections_)
        if (s.id == id)
            return true;
    return false;
}

Decoder
CheckpointReader::section(std::uint32_t id) const
{
    for (const SectionInfo &s : sections_) {
        if (s.id == id)
            return Decoder(bytes_.data() + payload_base_ + s.offset,
                           static_cast<std::size_t>(s.length));
    }
    Decoder missing(nullptr, 0);
    missing.fail("section '" + fourccName(id) + "' absent");
    return missing;
}

} // namespace ckpt
} // namespace memwall
