#include "checkpoint/store.hh"

namespace memwall {
namespace ckpt {

bool
CheckpointStore::save(const std::string &key,
                      const CheckpointWriter &w, std::string *why)
{
    std::string local_why;
    if (!w.writeFile(pathFor(key), &local_why)) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.write_errors;
        if (why)
            *why = local_why;
        return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.written;
    return true;
}

LoadError
CheckpointStore::load(const std::string &key,
                      CheckpointReader &reader)
{
    const LoadError e = reader.loadFile(pathFor(key), config_hash_);
    std::lock_guard<std::mutex> lock(mutex_);
    switch (e) {
    case LoadError::None:
        ++counters_.loaded;
        break;
    case LoadError::Io:
        ++counters_.degraded_missing;
        break;
    case LoadError::BadVersion:
        ++counters_.degraded_version;
        break;
    case LoadError::BadConfig:
        ++counters_.degraded_config;
        break;
    case LoadError::Truncated:
    case LoadError::BadMagic:
    case LoadError::BadHeaderCrc:
    case LoadError::BadSectionCrc:
    case LoadError::Malformed:
        ++counters_.degraded_corrupt;
        break;
    }
    return e;
}

void
CheckpointStore::noteMalformed()
{
    std::lock_guard<std::mutex> lock(mutex_);
    // The container validated, so load() counted it as applied;
    // reclassify now that the payload turned out to be bad.
    if (counters_.loaded > 0)
        --counters_.loaded;
    ++counters_.degraded_corrupt;
}

StoreCounters
CheckpointStore::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

} // namespace ckpt
} // namespace memwall
