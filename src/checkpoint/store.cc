#include "checkpoint/store.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

namespace memwall {
namespace ckpt {

bool
CheckpointStore::save(const std::string &key,
                      const CheckpointWriter &w, std::string *why)
{
    std::string local_why;
    if (!w.writeFile(pathFor(key), &local_why)) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.write_errors;
        if (why)
            *why = local_why;
        return false;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.written;
    }
    if (cap_bytes_ > 0)
        enforceCap(key);
    return true;
}

void
CheckpointStore::enforceCap(const std::string &keep_key)
{
    struct Entry
    {
        std::string name;
        std::uint64_t size;
        std::time_t mtime;
    };
    DIR *d = ::opendir(dir_.c_str());
    if (d == nullptr)
        return; // directory vanished: nothing to cap
    std::vector<Entry> entries;
    std::uint64_t total = 0;
    const std::string keep_name = keep_key + ".mwcp";
    while (const dirent *de = ::readdir(d)) {
        const std::string name = de->d_name;
        if (name.size() < 5 ||
            name.compare(name.size() - 5, 5, ".mwcp") != 0)
            continue;
        struct stat st;
        if (::stat((dir_ + "/" + name).c_str(), &st) != 0 ||
            !S_ISREG(st.st_mode))
            continue;
        total += static_cast<std::uint64_t>(st.st_size);
        entries.push_back(Entry{
            name, static_cast<std::uint64_t>(st.st_size),
            st.st_mtime});
    }
    ::closedir(d);
    if (total <= cap_bytes_)
        return;
    // Oldest first; name breaks mtime ties so eviction order is
    // deterministic within one second of activity.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.name < b.name;
              });
    std::uint64_t evicted_here = 0;
    for (const Entry &e : entries) {
        if (total <= cap_bytes_)
            break;
        if (e.name == keep_name)
            continue; // never evict what we just wrote
        // Losing an unlink race to another process is fine: the
        // space is freed either way.
        ::unlink((dir_ + "/" + e.name).c_str());
        total -= e.size;
        ++evicted_here;
    }
    if (evicted_here > 0) {
        std::lock_guard<std::mutex> lock(mutex_);
        counters_.evicted += evicted_here;
    }
}

LoadError
CheckpointStore::load(const std::string &key,
                      CheckpointReader &reader)
{
    const LoadError e = reader.loadFile(pathFor(key), config_hash_);
    std::lock_guard<std::mutex> lock(mutex_);
    switch (e) {
    case LoadError::None:
        ++counters_.loaded;
        break;
    case LoadError::Io:
        ++counters_.degraded_missing;
        break;
    case LoadError::BadVersion:
        ++counters_.degraded_version;
        break;
    case LoadError::BadConfig:
        ++counters_.degraded_config;
        break;
    case LoadError::Truncated:
    case LoadError::BadMagic:
    case LoadError::BadHeaderCrc:
    case LoadError::BadSectionCrc:
    case LoadError::Malformed:
        ++counters_.degraded_corrupt;
        break;
    }
    return e;
}

void
CheckpointStore::noteMalformed()
{
    std::lock_guard<std::mutex> lock(mutex_);
    // The container validated, so load() counted it as applied;
    // reclassify now that the payload turned out to be bad.
    if (counters_.loaded > 0)
        --counters_.loaded;
    ++counters_.degraded_corrupt;
}

StoreCounters
CheckpointStore::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

} // namespace ckpt
} // namespace memwall
