/**
 * @file
 * Append-only sweep journal for resumable figure/table runs.
 *
 * A ParallelSweep writes one record per committed point; an
 * interrupted run reopens the journal with --resume and replays the
 * recorded results instead of recomputing them. The format is
 * deliberately dumb — a header plus self-checking records — because
 * the failure mode it must survive is SIGKILL mid-append:
 *
 *     magic "MWSJ"   u32
 *     version        u32
 *     run hash       u64   (FNV-1a over plan/config/flags)
 *     records:
 *       point index  u64
 *       payload len  u64
 *       payload CRC  u32
 *       payload bytes
 *
 * On open, records are scanned front to back; the first record whose
 * length or CRC does not check out marks the torn tail, which is
 * truncated away so the journal is again append-clean. A journal
 * whose run hash differs from the current run is discarded (fresh
 * start), never partially applied.
 */

#ifndef MEMWALL_CHECKPOINT_JOURNAL_HH
#define MEMWALL_CHECKPOINT_JOURNAL_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace memwall {
namespace ckpt {

class SweepJournal
{
  public:
    SweepJournal() = default;
    ~SweepJournal() { close(); }

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /**
     * Open (or create) the journal at @p path for run @p run_hash.
     * Existing valid records are loaded for lookup(); a torn tail is
     * truncated; a foreign run hash discards the old contents.
     * Returns false with @p why on I/O errors.
     */
    bool open(const std::string &path, std::uint64_t run_hash,
              std::string *why = nullptr);

    /** Recorded payload for @p index, or nullptr if not journaled. */
    const std::vector<std::uint8_t> *lookup(std::size_t index) const;

    /**
     * Append one record and fsync it. Not thread-safe: callers
     * append from the sweep's commit path, which is ordered. Any
     * failure — including a failed fsync, which means the record may
     * not survive a crash — returns false with @p why naming the
     * journal path and the errno.
     */
    bool append(std::size_t index,
                const std::vector<std::uint8_t> &payload,
                std::string *why = nullptr);

    void close();

    /**
     * All live records, keyed by point index. The map view is what a
     * replay consumer (e.g. the server's result cache) walks at
     * startup to rebuild state from a crash-surviving journal.
     */
    const std::map<std::size_t, std::vector<std::uint8_t>> &
    records() const
    {
        return records_;
    }

    /** Records recovered from a previous run at open(). */
    std::size_t recovered() const { return recovered_; }
    /** Torn bytes truncated from the tail at open(). */
    std::size_t tornBytes() const { return torn_bytes_; }
    /** Whether open() discarded a journal from a different run. */
    bool discardedForeign() const { return discarded_foreign_; }

  private:
    int fd_ = -1;
    std::string path_; ///< for error messages naming the file
    std::map<std::size_t, std::vector<std::uint8_t>> records_;
    std::size_t recovered_ = 0;
    std::size_t torn_bytes_ = 0;
    bool discarded_foreign_ = false;
};

} // namespace ckpt
} // namespace memwall

#endif // MEMWALL_CHECKPOINT_JOURNAL_HH
