/**
 * @file
 * Binary codec for checkpoint serialization.
 *
 * Every value is written little-endian with explicit widths so a
 * checkpoint produced on one host loads bit-identically on another.
 * The Decoder is the load-bearing piece: checkpoints come from disk
 * and may be truncated, bit-flipped or maliciously short, so every
 * read is bounds-checked and failure is recoverable — the decoder
 * latches the first error and all subsequent reads return zeros.
 * Callers check ok() once at the end instead of after every field,
 * and the library never throws or crashes on corrupt input.
 */

#ifndef MEMWALL_CHECKPOINT_CODEC_HH
#define MEMWALL_CHECKPOINT_CODEC_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace memwall {
namespace ckpt {

/** CRC-32 (IEEE 802.3, reflected) over @p len bytes. */
std::uint32_t crc32(const void *data, std::size_t len,
                    std::uint32_t crc = 0);

/** FNV-1a 64-bit offset basis. */
constexpr std::uint64_t fnv_basis = 0xcbf29ce484222325ULL;

/** FNV-1a 64-bit hash, chainable via @p h. */
std::uint64_t fnv1a64(const void *data, std::size_t len,
                      std::uint64_t h = fnv_basis);

inline std::uint64_t
fnv1a64(std::string_view s, std::uint64_t h = fnv_basis)
{
    return fnv1a64(s.data(), s.size(), h);
}

/** Chain one 64-bit value into an FNV-1a hash. */
inline std::uint64_t
fnvMix(std::uint64_t h, std::uint64_t v)
{
    return fnv1a64(&v, sizeof(v), h);
}

/** Append-only little-endian encoder over a growable byte buffer. */
class Encoder
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(v); }

    void u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }

    void u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    void u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    /** Unsigned LEB128; compact for the small values that dominate. */
    void varint(std::uint64_t v)
    {
        while (v >= 0x80) {
            u8(static_cast<std::uint8_t>(v) | 0x80);
            v >>= 7;
        }
        u8(static_cast<std::uint8_t>(v));
    }

    /** IEEE-754 bit pattern; exact round-trip, no locale involved. */
    void f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void bytes(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        buf_.insert(buf_.end(), p, p + len);
    }

    /** Length-prefixed string. */
    void str(std::string_view s)
    {
        varint(s.size());
        bytes(s.data(), s.size());
    }

    const std::vector<std::uint8_t> &data() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

  private:
    std::vector<std::uint8_t> buf_;
};

/**
 * Bounds-checked decoder over a read-only byte span.
 *
 * The first failed read (or explicit fail()) latches an error; every
 * later read returns zero without touching memory. This makes long
 * decode sequences safe to write straight-line — check ok() once.
 */
class Decoder
{
  public:
    Decoder(const std::uint8_t *data, std::size_t len)
        : data_(data), len_(len)
    {
    }

    explicit Decoder(const std::vector<std::uint8_t> &buf)
        : Decoder(buf.data(), buf.size())
    {
    }

    std::uint8_t u8()
    {
        if (!need(1, "u8"))
            return 0;
        return data_[pos_++];
    }

    std::uint16_t u16()
    {
        if (!need(2, "u16"))
            return 0;
        const std::uint16_t v =
            static_cast<std::uint16_t>(data_[pos_]) |
            static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
        pos_ += 2;
        return v;
    }

    std::uint32_t u32()
    {
        if (!need(4, "u32"))
            return 0;
        std::uint32_t v = 0;
        for (int i = 3; i >= 0; --i)
            v = v << 8 | data_[pos_ + static_cast<std::size_t>(i)];
        pos_ += 4;
        return v;
    }

    std::uint64_t u64()
    {
        if (!need(8, "u64"))
            return 0;
        std::uint64_t v = 0;
        for (int i = 7; i >= 0; --i)
            v = v << 8 | data_[pos_ + static_cast<std::size_t>(i)];
        pos_ += 8;
        return v;
    }

    std::uint64_t varint()
    {
        std::uint64_t v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            if (!need(1, "varint"))
                return 0;
            const std::uint8_t byte = data_[pos_++];
            v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return v;
        }
        fail("varint longer than 64 bits");
        return 0;
    }

    double f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return failed_ ? 0.0 : v;
    }

    void bytes(void *out, std::size_t len)
    {
        if (!need(len, "bytes")) {
            std::memset(out, 0, len);
            return;
        }
        std::memcpy(out, data_ + pos_, len);
        pos_ += len;
    }

    std::string str(std::size_t max_len = 1u << 20)
    {
        const std::uint64_t n = varint();
        if (failed_)
            return {};
        if (n > max_len) {
            fail("string length implausible");
            return {};
        }
        if (!need(static_cast<std::size_t>(n), "str"))
            return {};
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }

    /** Latch a semantic error (bad magic, impossible count, ...). */
    void fail(const std::string &why)
    {
        if (!failed_) {
            failed_ = true;
            error_ = why;
        }
    }

    bool ok() const { return !failed_; }
    bool failed() const { return failed_; }
    const std::string &error() const { return error_; }
    std::size_t remaining() const { return len_ - pos_; }
    bool atEnd() const { return pos_ == len_; }

  private:
    bool need(std::size_t n, const char *what)
    {
        if (failed_)
            return false;
        if (len_ - pos_ < n) {
            fail(std::string("truncated input reading ") + what);
            return false;
        }
        return true;
    }

    const std::uint8_t *data_;
    std::size_t len_;
    std::size_t pos_ = 0;
    bool failed_ = false;
    std::string error_;
};

} // namespace ckpt
} // namespace memwall

#endif // MEMWALL_CHECKPOINT_CODEC_HH
