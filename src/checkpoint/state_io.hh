/**
 * @file
 * Encode/decode helpers for the small common-library value types
 * that appear in nearly every component checkpoint section.
 */

#ifndef MEMWALL_CHECKPOINT_STATE_IO_HH
#define MEMWALL_CHECKPOINT_STATE_IO_HH

#include "checkpoint/codec.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace memwall {
namespace ckpt {

inline void
putRng(Encoder &e, const Rng &rng)
{
    for (const std::uint64_t word : rng.state())
        e.u64(word);
}

inline void
getRng(Decoder &d, Rng &rng)
{
    std::array<std::uint64_t, 4> s{};
    bool nonzero = false;
    for (std::uint64_t &word : s) {
        word = d.u64();
        nonzero = nonzero || word != 0;
    }
    if (!nonzero) {
        // All-zero state wedges xoshiro forever; a valid generator
        // can never reach it, so it can only mean corruption.
        d.fail("rng state is all zeros");
        return;
    }
    rng.setState(s);
}

inline void
putCounter(Encoder &e, const Counter &c)
{
    e.varint(c.value());
}

inline void
getCounter(Decoder &d, Counter &c)
{
    c.set(d.varint());
}

inline void
putAccessStats(Encoder &e, const AccessStats &s)
{
    putCounter(e, s.load_hits);
    putCounter(e, s.load_misses);
    putCounter(e, s.store_hits);
    putCounter(e, s.store_misses);
}

inline void
getAccessStats(Decoder &d, AccessStats &s)
{
    getCounter(d, s.load_hits);
    getCounter(d, s.load_misses);
    getCounter(d, s.store_hits);
    getCounter(d, s.store_misses);
}

inline void
putSampleStat(Encoder &e, const SampleStat &s)
{
    const SampleStat::Snapshot snap = s.snapshot();
    e.varint(snap.n);
    e.f64(snap.mean);
    e.f64(snap.m2);
    e.f64(snap.sum);
    e.f64(snap.min);
    e.f64(snap.max);
}

inline void
getSampleStat(Decoder &d, SampleStat &s)
{
    SampleStat::Snapshot snap;
    snap.n = d.varint();
    snap.mean = d.f64();
    snap.m2 = d.f64();
    snap.sum = d.f64();
    snap.min = d.f64();
    snap.max = d.f64();
    if (d.ok())
        s.restore(snap);
}

} // namespace ckpt
} // namespace memwall

#endif // MEMWALL_CHECKPOINT_STATE_IO_HH
