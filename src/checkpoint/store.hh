/**
 * @file
 * Directory of per-unit checkpoints with graceful-degradation
 * accounting.
 *
 * The accelerated sampling path asks the store for "the checkpoint
 * of unit k"; if the file is missing, corrupt, version-skewed or
 * from a foreign configuration, the caller falls back to functional
 * warming and the store remembers *why* in its counters so the JSON
 * output can surface how often degradation happened. A load never
 * crashes the run and never silently applies bad state — the
 * container layer rejects it first.
 */

#ifndef MEMWALL_CHECKPOINT_STORE_HH
#define MEMWALL_CHECKPOINT_STORE_HH

#include <cstdint>
#include <mutex>
#include <string>

#include "checkpoint/checkpoint.hh"

namespace memwall {
namespace ckpt {

/** Degradation/bookkeeping counters, summable across threads. */
struct StoreCounters
{
    std::uint64_t loaded = 0;           ///< checkpoints applied
    std::uint64_t written = 0;          ///< checkpoints populated
    std::uint64_t degraded_missing = 0; ///< no file: rewarm
    std::uint64_t degraded_corrupt = 0; ///< CRC/truncation: rewarm
    std::uint64_t degraded_version = 0; ///< format skew: rewarm
    std::uint64_t degraded_config = 0;  ///< foreign config: rewarm
    std::uint64_t write_errors = 0;     ///< population failed (I/O)
    std::uint64_t evicted = 0;          ///< entries removed by the cap

    std::uint64_t degraded() const
    {
        return degraded_missing + degraded_corrupt +
               degraded_version + degraded_config;
    }
};

class CheckpointStore
{
  public:
    CheckpointStore(std::string dir, std::uint64_t config_hash)
        : dir_(std::move(dir)), config_hash_(config_hash)
    {
    }

    const std::string &dir() const { return dir_; }
    std::uint64_t configHash() const { return config_hash_; }

    /**
     * Cap the total bytes of .mwcp entries in the directory; 0 (the
     * default) means unbounded. After every successful save the
     * oldest entries (mtime, then name) are unlinked until the total
     * fits, so a long-running populator — the experiment service's
     * result cache rides on this — cannot grow the directory without
     * bound. The entry just written is never evicted, even when it
     * alone exceeds the cap. Eviction is advisory under concurrent
     * access: losing a race to unlink a file another process already
     * removed is fine, and readers degrade to a rewarm exactly as for
     * any other missing entry.
     */
    void setCapBytes(std::uint64_t cap) { cap_bytes_ = cap; }
    std::uint64_t capBytes() const { return cap_bytes_; }

    std::string pathFor(const std::string &key) const
    {
        return dir_ + "/" + key + ".mwcp";
    }

    /** Write @p key's checkpoint crash-safely; counts errors instead
     *  of failing the run (population is an optimization). */
    bool save(const std::string &key, const CheckpointWriter &w,
              std::string *why = nullptr);

    /**
     * Validate and load @p key into @p reader. Any failure is
     * classified into the degradation counters and reported; the
     * caller must then rewarm instead.
     */
    LoadError load(const std::string &key, CheckpointReader &reader);

    /**
     * Record a post-validation decode failure — the container's
     * CRCs checked out but a section payload would not decode (or a
     * component guard rejected it). Counted with the corrupt
     * degradations; the caller rewarms exactly as for a bad CRC.
     */
    void noteMalformed();

    /** Snapshot of the counters (thread-safe). */
    StoreCounters counters() const;

  private:
    /** Unlink oldest entries until the directory fits the cap. */
    void enforceCap(const std::string &keep_key);

    std::string dir_;
    std::uint64_t config_hash_;
    std::uint64_t cap_bytes_ = 0;
    mutable std::mutex mutex_;
    StoreCounters counters_;
};

} // namespace ckpt
} // namespace memwall

#endif // MEMWALL_CHECKPOINT_STORE_HH
