/**
 * @file
 * MWCP checkpoint container: a versioned, CRC-protected section file
 * written crash-safely.
 *
 * On-disk layout (all little-endian):
 *
 *     magic "MWCP"                          4 bytes
 *     format version                        u32
 *     config hash (FNV-1a over the run's   u64
 *       canonical configuration)
 *     section count                         u32
 *     section table: per section
 *       id (fourcc)                         u32
 *       payload offset (from payload base)  u64
 *       payload length                      u64
 *       payload CRC-32                      u32
 *     header CRC-32 over everything above   u32
 *     payload bytes...
 *
 * A checkpoint is *rejected*, never silently loaded, when any of
 * magic, version, config hash, header CRC, section CRC or the file
 * length disagrees with the header. Writing goes through a temporary
 * file in the same directory plus fsync and an atomic rename, so a
 * crash mid-write leaves either the old file or no file — never a
 * torn one with a valid name.
 */

#ifndef MEMWALL_CHECKPOINT_CHECKPOINT_HH
#define MEMWALL_CHECKPOINT_CHECKPOINT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "checkpoint/codec.hh"

namespace memwall {
namespace ckpt {

/** Bumped whenever the serialized state layout changes shape. */
constexpr std::uint32_t format_version = 1;

/** Four-character section/file tags, e.g. fourcc("CACH"). */
constexpr std::uint32_t
fourcc(const char (&s)[5])
{
    return static_cast<std::uint32_t>(s[0]) |
           static_cast<std::uint32_t>(s[1]) << 8 |
           static_cast<std::uint32_t>(s[2]) << 16 |
           static_cast<std::uint32_t>(s[3]) << 24;
}

/** Render a fourcc back to printable text for diagnostics. */
std::string fourccName(std::uint32_t id);

/** Why a checkpoint failed to load. Every class is distinct so the
 *  torture bench can assert the *right* rejection fired. */
enum class LoadError {
    None,
    Io,            ///< open/read failed (includes missing file)
    Truncated,     ///< shorter than the header or a section claims
    BadMagic,      ///< not an MWCP file
    BadVersion,    ///< format version skew
    BadConfig,     ///< checkpoint from a different configuration
    BadHeaderCrc,  ///< header or section table corrupted
    BadSectionCrc, ///< payload corrupted
    Malformed,     ///< internally inconsistent header
};

const char *loadErrorName(LoadError e);

/**
 * Write @p len bytes to @p path via temp file + fsync + atomic
 * rename (+ directory fsync). Returns false and fills @p why (with
 * errno text and the path) on any failure; no partial file is ever
 * visible under the final name.
 */
bool atomicWriteFile(const std::string &path, const void *data,
                     std::size_t len, std::string *why = nullptr);

/** Slurp a whole file; returns nullopt and fills @p why on error. */
std::optional<std::vector<std::uint8_t>>
readFileBytes(const std::string &path, std::string *why = nullptr);

/** Builder for one checkpoint file. */
class CheckpointWriter
{
  public:
    explicit CheckpointWriter(std::uint64_t config_hash)
        : config_hash_(config_hash)
    {
    }

    /**
     * Start a new section and return its encoder. The reference is
     * valid until the next section() call.
     */
    Encoder &section(std::uint32_t id)
    {
        sections_.push_back(Section{id, Encoder{}});
        return sections_.back().enc;
    }

    /** Serialize the container to bytes (header + table + payloads). */
    std::vector<std::uint8_t> serialize() const;

    /** serialize() + atomicWriteFile(). */
    bool writeFile(const std::string &path,
                   std::string *why = nullptr) const;

  private:
    struct Section
    {
        std::uint32_t id;
        Encoder enc;
    };

    std::uint64_t config_hash_;
    std::vector<Section> sections_;
};

/** Parsed, validated view of one checkpoint file. */
class CheckpointReader
{
  public:
    struct SectionInfo
    {
        std::uint32_t id;
        std::uint64_t offset; ///< from payload base
        std::uint64_t length;
        std::uint32_t crc;
    };

    /**
     * Load and fully validate @p path. @p expected_config_hash of
     * nullopt skips the config check (inspector use only — loads for
     * restore must always pass the hash).
     */
    LoadError loadFile(const std::string &path,
                       std::optional<std::uint64_t>
                           expected_config_hash);

    /** Same validation over an in-memory image. */
    LoadError loadBytes(std::vector<std::uint8_t> bytes,
                        std::optional<std::uint64_t>
                            expected_config_hash);

    /** Human-readable detail for the last load failure. */
    const std::string &errorDetail() const { return detail_; }

    std::uint32_t version() const { return version_; }
    std::uint64_t configHash() const { return config_hash_; }
    const std::vector<SectionInfo> &sections() const
    {
        return sections_;
    }

    bool hasSection(std::uint32_t id) const;

    /**
     * Decoder over a section's payload. Asking for a section that is
     * absent returns a decoder already in the failed state, so
     * callers can decode straight-line and check ok() once.
     */
    Decoder section(std::uint32_t id) const;

  private:
    LoadError failLoad(LoadError e, std::string detail);

    std::vector<std::uint8_t> bytes_;
    std::size_t payload_base_ = 0;
    std::uint32_t version_ = 0;
    std::uint64_t config_hash_ = 0;
    std::vector<SectionInfo> sections_;
    std::string detail_;
};

} // namespace ckpt
} // namespace memwall

#endif // MEMWALL_CHECKPOINT_CHECKPOINT_HH
