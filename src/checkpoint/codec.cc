#include "checkpoint/codec.hh"

#include <array>

namespace memwall {
namespace ckpt {

namespace {

/** Build the reflected CRC-32 table once (polynomial 0xedb88320). */
std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t len, std::uint32_t crc)
{
    static const std::array<std::uint32_t, 256> table =
        makeCrcTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    crc = ~crc;
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
    return ~crc;
}

std::uint64_t
fnv1a64(const void *data, std::size_t len, std::uint64_t h)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace ckpt
} // namespace memwall
