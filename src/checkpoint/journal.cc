#include "checkpoint/journal.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "checkpoint/checkpoint.hh"
#include "checkpoint/codec.hh"

namespace memwall {
namespace ckpt {

namespace {

constexpr std::uint32_t journal_magic = fourcc("MWSJ");
constexpr std::uint32_t journal_version = 1;
constexpr std::size_t journal_header = 4 + 4 + 8;
constexpr std::size_t record_header = 8 + 8 + 4;

std::string
errnoMessage(const std::string &what, const std::string &path)
{
    return what + " '" + path + "': " + std::strerror(errno);
}

} // namespace

bool
SweepJournal::open(const std::string &path, std::uint64_t run_hash,
                   std::string *why)
{
    close();
    records_.clear();
    recovered_ = 0;
    torn_bytes_ = 0;
    discarded_foreign_ = false;

    std::size_t valid_len = 0;
    bool fresh = true;
    std::string read_why;
    if (auto bytes = readFileBytes(path, &read_why)) {
        Decoder d(*bytes);
        const std::uint32_t magic = d.u32();
        const std::uint32_t version = d.u32();
        const std::uint64_t hash = d.u64();
        if (d.ok() && magic == journal_magic &&
            version == journal_version && hash == run_hash) {
            fresh = false;
            valid_len = journal_header;
            // Scan records; stop at the first torn or corrupt one.
            while (d.remaining() >= record_header) {
                const std::uint64_t index = d.u64();
                const std::uint64_t len = d.u64();
                const std::uint32_t crc = d.u32();
                if (d.failed() || len > d.remaining())
                    break;
                std::vector<std::uint8_t> payload(
                    static_cast<std::size_t>(len));
                d.bytes(payload.data(), payload.size());
                if (d.failed() ||
                    crc32(payload.data(), payload.size()) != crc)
                    break;
                records_[static_cast<std::size_t>(index)] =
                    std::move(payload);
                valid_len += record_header +
                             static_cast<std::size_t>(len);
            }
            recovered_ = records_.size();
            torn_bytes_ = bytes->size() - valid_len;
        } else {
            // Present but not ours: a different run (or garbage).
            // Resuming it would splice foreign results into this
            // sweep, so start over instead.
            discarded_foreign_ = true;
        }
    }

    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
    if (fd_ < 0) {
        if (why)
            *why = errnoMessage("cannot open journal", path);
        return false;
    }
    path_ = path;
    if (fresh) {
        if (::ftruncate(fd_, 0) != 0) {
            if (why)
                *why = errnoMessage("cannot truncate journal", path);
            close();
            return false;
        }
        Encoder header;
        header.u32(journal_magic);
        header.u32(journal_version);
        header.u64(run_hash);
        if (::write(fd_, header.data().data(), header.size()) !=
            static_cast<ssize_t>(header.size())) {
            if (why)
                *why = errnoMessage("short write to journal", path);
            close();
            return false;
        }
        valid_len = header.size();
    } else if (torn_bytes_ > 0 &&
               ::ftruncate(fd_, static_cast<off_t>(valid_len)) != 0) {
        if (why)
            *why = errnoMessage("cannot drop torn tail of", path);
        close();
        return false;
    }
    if (::lseek(fd_, static_cast<off_t>(valid_len), SEEK_SET) < 0) {
        if (why)
            *why = errnoMessage("cannot seek journal", path);
        close();
        return false;
    }
    if (::fsync(fd_) != 0) {
        // The truncated tail / fresh header may not be durable:
        // refuse to run on top of a journal we cannot sync.
        if (why)
            *why = errnoMessage("cannot fsync journal", path);
        close();
        return false;
    }
    return true;
}

const std::vector<std::uint8_t> *
SweepJournal::lookup(std::size_t index) const
{
    const auto it = records_.find(index);
    return it == records_.end() ? nullptr : &it->second;
}

bool
SweepJournal::append(std::size_t index,
                     const std::vector<std::uint8_t> &payload,
                     std::string *why)
{
    if (fd_ < 0) {
        if (why)
            *why = "journal is not open";
        return false;
    }
    Encoder rec;
    rec.u64(index);
    rec.u64(payload.size());
    rec.u32(crc32(payload.data(), payload.size()));
    rec.bytes(payload.data(), payload.size());
    const auto &buf = rec.data();
    std::size_t off = 0;
    while (off < buf.size()) {
        const ssize_t n =
            ::write(fd_, buf.data() + off, buf.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (why)
                *why = errnoMessage("short write to journal", path_);
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd_) != 0) {
        // The bytes are in the page cache but not durably on disk:
        // a crash could tear this record. Report it — resumability
        // is the whole point of the journal.
        if (why)
            *why = errnoMessage("cannot fsync journal", path_);
        return false;
    }
    records_[index] = payload;
    return true;
}

void
SweepJournal::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    path_.clear();
}

} // namespace ckpt
} // namespace memwall
