#include "fault/injector.hh"

#include "common/logging.hh"

namespace memwall {

FaultInjector::FaultInjector(FaultInjectorConfig config,
                             const EccMemoryArray &array)
    : config_(config), rows_(array.rows()),
      blocks_per_row_(array.blocksPerRow()), rng_(config.seed)
{
    MW_ASSERT(config_.faults_per_megacycle >= 0.0,
              "fault rate must be non-negative");
    if (config_.enabled()) {
        mean_interval_ = 1e6 / config_.faults_per_megacycle;
        next_at_ = rng_.exponential(mean_interval_);
    } else {
        mean_interval_ = 0.0;
        next_at_ = static_cast<double>(max_tick);
    }
}

Tick
FaultInjector::nextFaultAt() const
{
    if (!config_.enabled())
        return max_tick;
    return static_cast<Tick>(next_at_);
}

unsigned
FaultInjector::drainUpTo(EccMemoryArray &array, Tick now)
{
    if (!config_.enabled())
        return 0;
    unsigned flipped = 0;
    while (next_at_ <= static_cast<double>(now)) {
        const auto row =
            static_cast<std::uint32_t>(rng_.uniformInt(rows_));
        const auto block = static_cast<std::uint32_t>(
            rng_.uniformInt(blocks_per_row_));
        const auto bit = static_cast<unsigned>(
            rng_.uniformInt(EccMemoryArray::bits_per_block));
        array.injectBit(row, block, bit);
        if (bit < EccMemoryArray::data_bits_per_block)
            injected_data_.inc();
        else
            injected_check_.inc();
        ++flipped;
        next_at_ += rng_.exponential(mean_interval_);
    }
    return flipped;
}

} // namespace memwall
