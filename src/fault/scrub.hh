/**
 * @file
 * Memory scrubber riding the DRAM refresh walk.
 *
 * The RefreshAgent already touches every row of every bank inside the
 * 64 ms retention window; the scrubber hooks its RefreshObserver and
 * decode-checks one row of the modelled ECC slice per refresh event.
 * A latent single-bit error is corrected in place before a second
 * strike in the same 128-bit half could pair it into an
 * uncorrectable double — the classic reason scrubbing multiplies
 * effective DRAM reliability.
 *
 * Outcomes per scrubbed block:
 *  - Ok: nothing to do;
 *  - CorrectedSingle: written back corrected (counted);
 *  - DetectedDouble: graceful degradation — the row is remapped to a
 *    spare (counted) or, past the spare budget, a machine check is
 *    raised (counted); either way the block is reconstructed so the
 *    event is counted exactly once rather than on every pass.
 *
 * The scrubber also charges a per-block decode cost so campaigns can
 * report the CPI overhead of scrubbing.
 */

#ifndef MEMWALL_FAULT_SCRUB_HH
#define MEMWALL_FAULT_SCRUB_HH

#include <cstdint>

#include "common/stats.hh"
#include "fault/memory_array.hh"
#include "io/refresh.hh"

namespace memwall {

/** Cost model of the scrub pass. */
struct ScrubConfig
{
    /** EDAC pipeline cycles to decode-check one 32-byte block. */
    Cycles decode_cycles_per_block = 1;
};

/**
 * RefreshObserver that scrubs the modelled slice row by row. Each
 * refresh event scrubs the next slice row in rotation (the slice is
 * a sample of the full array, so scrub pace == refresh pace).
 */
class Scrubber : public RefreshObserver
{
  public:
    explicit Scrubber(EccMemoryArray &array, ScrubConfig config = {});

    void onRefresh(std::uint32_t bank, std::uint32_t row,
                   Tick when) override;

    std::uint64_t rowsScrubbed() const { return rows_.value(); }
    std::uint64_t corrected() const { return corrected_.value(); }
    /** Detected-uncorrectable blocks met during scrubbing. */
    std::uint64_t uncorrectable() const
    {
        return uncorrectable_.value();
    }
    std::uint64_t rowsSpared() const { return spared_.value(); }
    std::uint64_t machineChecks() const
    {
        return machine_checks_.value();
    }
    /** Total decode cycles charged (overhead accounting). */
    std::uint64_t scrubCycles() const
    {
        return scrub_cycles_.value();
    }

    /** Scrub overhead as a fraction of @p elapsed cycles. */
    double overheadFraction(Tick elapsed) const;

  private:
    EccMemoryArray &array_;
    ScrubConfig config_;
    std::uint64_t rotor_ = 0;
    Counter rows_;
    Counter corrected_;
    Counter uncorrectable_;
    Counter spared_;
    Counter machine_checks_;
    Counter scrub_cycles_;
};

} // namespace memwall

#endif // MEMWALL_FAULT_SCRUB_HH
