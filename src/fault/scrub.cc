#include "fault/scrub.hh"

namespace memwall {

Scrubber::Scrubber(EccMemoryArray &array, ScrubConfig config)
    : array_(array), config_(config)
{
}

void
Scrubber::onRefresh(std::uint32_t /*bank*/, std::uint32_t /*row*/,
                    Tick /*when*/)
{
    const auto slice_row =
        static_cast<std::uint32_t>(rotor_++ % array_.rows());
    rows_.inc();
    for (std::uint32_t b = 0; b < array_.blocksPerRow(); ++b) {
        scrub_cycles_.inc(config_.decode_cycles_per_block);
        switch (array_.scrubBlock(slice_row, b)) {
          case EccStatus::Ok:
            break;
          case EccStatus::CorrectedSingle:
            corrected_.inc();
            break;
          case EccStatus::DetectedDouble:
            uncorrectable_.inc();
            if (array_.spareRow(slice_row)) {
                spared_.inc();
            } else {
                // Spare budget exhausted: raise a machine check and
                // reconstruct in place so the same double is not
                // re-counted on every later pass.
                machine_checks_.inc();
                array_.rewriteBlock(slice_row, b);
            }
            break;
        }
    }
}

double
Scrubber::overheadFraction(Tick elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(scrub_cycles_.value()) /
           static_cast<double>(elapsed);
}

} // namespace memwall
