/**
 * @file
 * Deterministic, seeded soft-error injector for the DRAM array.
 *
 * Soft errors (alpha particles, cosmic-ray neutrons) strike DRAM
 * cells at an approximately Poisson rate, conventionally quoted in
 * FIT (failures per 1e9 device-hours). The simulator works in cycles,
 * so the rate here is "expected bit flips per megacycle across the
 * modelled slice"; inter-arrival times are drawn from an exponential
 * distribution and each fault lands on a uniformly random bit of a
 * uniformly random block — data and check bits weighted by their
 * real storage share (256 data + 18 check bits per 32-byte block).
 *
 * Everything is driven by one seeded Rng stream: the same seed
 * always produces the same fault schedule, which is what makes fault
 * campaigns reproducible and reports comparable across runs.
 */

#ifndef MEMWALL_FAULT_INJECTOR_HH
#define MEMWALL_FAULT_INJECTOR_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "fault/memory_array.hh"

namespace memwall {

/** Rate and seed of the soft-error process. */
struct FaultInjectorConfig
{
    /** Expected bit flips per 1e6 cycles over the whole slice;
     * 0 disables injection entirely (no RNG draws). */
    double faults_per_megacycle = 0.0;
    /** Seed of the fault schedule. */
    std::uint64_t seed = 42;

    bool enabled() const { return faults_per_megacycle > 0.0; }
};

/** Poisson-process bit-flip generator over an EccMemoryArray. */
class FaultInjector
{
  public:
    FaultInjector(FaultInjectorConfig config,
                  const EccMemoryArray &array);

    /**
     * Inject every fault due at or before @p now into @p array.
     * @return the number of bits flipped by this call.
     */
    unsigned drainUpTo(EccMemoryArray &array, Tick now);

    /** Time of the next scheduled fault (max_tick when disabled). */
    Tick nextFaultAt() const;

    std::uint64_t injected() const
    {
        return injected_data_.value() + injected_check_.value();
    }
    std::uint64_t injectedData() const
    {
        return injected_data_.value();
    }
    std::uint64_t injectedCheck() const
    {
        return injected_check_.value();
    }

  private:
    FaultInjectorConfig config_;
    std::uint32_t rows_;
    std::uint32_t blocks_per_row_;
    Rng rng_;
    double mean_interval_;
    double next_at_;
    Counter injected_data_;
    Counter injected_check_;
};

} // namespace memwall

#endif // MEMWALL_FAULT_INJECTOR_HH
