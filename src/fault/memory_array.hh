/**
 * @file
 * An ECC-protected slice of the on-chip DRAM array, with row sparing.
 *
 * The fault subsystem needs real bits to corrupt, not just rates: this
 * models a sampled slice of the 256 Mbit array as rows of
 * DirectoryEccBlocks (one 512-byte DRAM row = sixteen 32-byte
 * coherence blocks, each protected the paper's way: 2 x 128-bit
 * SECDED). Every block is initialised with a deterministic pattern
 * derived from its coordinates, which doubles as the golden reference
 * for the end-of-campaign audit — any block whose decoded contents
 * differ from the pattern without a DetectedDouble flag is silent
 * corruption.
 *
 * Graceful degradation: a detected-uncorrectable block triggers row
 * sparing — the logical row is remapped to one of a small budget of
 * reserved spare rows and its contents are reconstructed (modelling
 * recovery from higher-level redundancy). Once the budget is spent,
 * further uncorrectable errors raise machine checks instead of
 * corrupting data silently.
 */

#ifndef MEMWALL_FAULT_MEMORY_ARRAY_HH
#define MEMWALL_FAULT_MEMORY_ARRAY_HH

#include <array>
#include <cstdint>
#include <vector>

#include "mem/ecc.hh"

namespace memwall {

/** Geometry of the modelled slice. */
struct MemoryArrayConfig
{
    /** Logical rows in the slice. */
    std::uint32_t rows = 512;
    /** 32-byte blocks per row (512-byte DRAM row). */
    std::uint32_t blocks_per_row = 16;
    /** Reserved spare rows for remapping bad rows. */
    std::uint32_t spare_rows = 8;
    /** Seed of the deterministic fill pattern. */
    std::uint64_t pattern_seed = 42;
};

/** ECC-protected row array with spare-row remapping. */
class EccMemoryArray
{
  public:
    static constexpr unsigned data_bits_per_block = 256;
    static constexpr unsigned check_bits_per_block = 18;
    /** Injectable bits per block (data then check). */
    static constexpr unsigned bits_per_block =
        data_bits_per_block + check_bits_per_block;

    explicit EccMemoryArray(MemoryArrayConfig config = {});

    std::uint32_t rows() const { return config_.rows; }
    std::uint32_t blocksPerRow() const
    {
        return config_.blocks_per_row;
    }

    /**
     * Flip bit @p bit of block (@p row, @p block): bits 0..255 are
     * data bits, 256..273 check bits.
     */
    void injectBit(std::uint32_t row, std::uint32_t block,
                   unsigned bit);

    /**
     * Demand read: decode into @p out, correcting on the fly. The
     * stored copy is NOT repaired (that is the scrubber's job).
     */
    EccStatus demandRead(
        std::uint32_t row, std::uint32_t block,
        std::array<std::uint64_t, 4> &out) const;

    /** Decode and repair the stored copy in place (scrubbing). */
    EccStatus scrubBlock(std::uint32_t row, std::uint32_t block);

    /**
     * Restore block (@p row, @p block) to its golden contents —
     * recovery from higher-level redundancy after an uncorrectable
     * error.
     */
    void rewriteBlock(std::uint32_t row, std::uint32_t block);

    /**
     * Remap logical @p row to a reserved spare row and reconstruct
     * its contents.
     * @return false when the spare budget is exhausted (the caller
     * should raise a machine check).
     */
    bool spareRow(std::uint32_t row);

    /** @return true iff @p row has been remapped to a spare. */
    bool isSpared(std::uint32_t row) const;

    std::uint32_t sparesUsed() const { return next_spare_; }
    std::uint32_t sparesLeft() const
    {
        return config_.spare_rows - next_spare_;
    }

    /** The deterministic fill word of (row, block, word). */
    std::uint64_t goldenWord(std::uint32_t row, std::uint32_t block,
                             unsigned word) const;

    /**
     * End-of-campaign audit: count blocks whose decoded contents
     * differ from the golden pattern without being flagged
     * DetectedDouble — i.e. corruption ECC missed or miscorrected.
     */
    std::uint64_t auditSilentCorruptions() const;

    /** Blocks still flagged detected-uncorrectable (latent doubles
     * that no scrub or demand read has met yet). */
    std::uint64_t auditLatentUncorrectable() const;

    const MemoryArrayConfig &config() const { return config_; }

  private:
    DirectoryEccBlock &at(std::uint32_t row, std::uint32_t block);
    const DirectoryEccBlock &at(std::uint32_t row,
                                std::uint32_t block) const;

    MemoryArrayConfig config_;
    /** (rows + spare_rows) x blocks_per_row blocks. */
    std::vector<DirectoryEccBlock> blocks_;
    /** Logical row -> physical row (identity until spared). */
    std::vector<std::uint32_t> remap_;
    std::uint32_t next_spare_ = 0;
};

} // namespace memwall

#endif // MEMWALL_FAULT_MEMORY_ARRAY_HH
