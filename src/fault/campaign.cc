#include "fault/campaign.hh"

#include <algorithm>
#include <array>
#include <vector>

#include "coherence/numa.hh"
#include "common/rng.hh"
#include "fault/injector.hh"
#include "fault/scrub.hh"
#include "interconnect/reliable_link.hh"

namespace memwall {

namespace {

void
runMemoryPhase(const CampaignConfig &config, ReliabilityReport &rep)
{
    MemoryArrayConfig array_cfg = config.array;
    array_cfg.pattern_seed = config.seed;
    EccMemoryArray array(array_cfg);

    Dram dram(config.dram);
    RefreshAgent refresh(config.refresh, config.dram);
    Scrubber scrubber(array);
    refresh.setObserver(&scrubber);

    FaultInjector injector({config.faults_per_megacycle,
                            config.seed + 1},
                           array);
    Rng demand_rng(config.seed + 2);

    // Handle an uncorrectable block met by a demand read exactly
    // like the scrubber does: spare the row or raise a machine
    // check, reconstructing either way so it is counted once.
    Counter demand_spared, demand_checks;
    auto degrade = [&](std::uint32_t row, std::uint32_t block) {
        if (array.spareRow(row)) {
            demand_spared.inc();
        } else {
            demand_checks.inc();
            array.rewriteBlock(row, block);
        }
    };

    // March time forward in chunks comfortably above the refresh
    // interval (~98 cycles) so each step drains a few refreshes.
    const Tick step = 256;
    Tick next_demand = config.demand_read_interval;
    for (Tick t = step; t <= config.horizon; t += step) {
        injector.drainUpTo(array, t);
        refresh.drainUpTo(dram, t);
        while (next_demand <= t) {
            const auto row = static_cast<std::uint32_t>(
                demand_rng.uniformInt(array.rows()));
            const auto block = static_cast<std::uint32_t>(
                demand_rng.uniformInt(array.blocksPerRow()));
            std::array<std::uint64_t, 4> data;
            rep.demand_reads++;
            switch (array.demandRead(row, block, data)) {
              case EccStatus::Ok:
                break;
              case EccStatus::CorrectedSingle:
                rep.demand_corrected++;
                break;
              case EccStatus::DetectedDouble:
                rep.demand_uncorrectable++;
                degrade(row, block);
                break;
            }
            next_demand += config.demand_read_interval;
        }
    }

    rep.faults_injected = injector.injected();
    rep.faults_data = injector.injectedData();
    rep.faults_check = injector.injectedCheck();
    rep.refreshes = refresh.refreshesIssued();
    rep.rows_scrubbed = scrubber.rowsScrubbed();
    rep.scrub_corrected = scrubber.corrected();
    rep.scrub_uncorrectable = scrubber.uncorrectable();
    rep.rows_spared = scrubber.rowsSpared() + demand_spared.value();
    rep.machine_checks =
        scrubber.machineChecks() + demand_checks.value();
    rep.silent_corruptions = array.auditSilentCorruptions();
    rep.latent_uncorrectable = array.auditLatentUncorrectable();
    rep.scrub_overhead = scrubber.overheadFraction(config.horizon);
}

void
runLinkPhase(const CampaignConfig &config, ReliabilityReport &rep)
{
    LinkFaultConfig fault;
    fault.bit_error_rate = config.link_bit_error_rate;
    fault.drop_rate = config.link_drop_rate;
    fault.seed = config.seed + 3;
    ReliableLink link(LinkConfig{}, fault);
    ReliableLink clean(LinkConfig{});

    const std::uint32_t frame_bytes = 40;  // header + 32-byte payload
    const Tick gap = 64;  // inter-arrival: link mostly idle
    double total = 0.0, clean_total = 0.0;
    Tick now = 0;
    for (std::uint64_t i = 0; i < config.link_messages; ++i) {
        const auto outcome = link.sendReliable(now, frame_bytes);
        total += static_cast<double>(outcome.delivered - now);
        clean_total += static_cast<double>(
            clean.send(now, frame_bytes) - now);
        now += gap;
    }

    rep.link_messages = config.link_messages;
    rep.link_retransmissions = link.retransmissions();
    rep.link_crc_detected = link.crcErrorsDetected();
    rep.link_timeouts = link.timeouts();
    rep.link_failures = link.failures();
    if (config.link_messages > 0) {
        rep.link_mean_latency =
            total / static_cast<double>(config.link_messages);
        rep.link_clean_latency =
            clean_total / static_cast<double>(config.link_messages);
    }
}

void
runProtocolPhase(const CampaignConfig &config,
                 ReliabilityReport &rep)
{
    NumaConfig nc;
    nc.nodes = config.protocol_nodes;
    nc.model_fabric_contention = true;
    nc.fabric.fault.bit_error_rate = config.link_bit_error_rate;
    nc.fabric.fault.drop_rate = config.link_drop_rate;
    nc.fabric.fault.seed = config.seed + 4;
    nc.protocol_fault.nack_rate = config.protocol_nack_rate;
    nc.protocol_fault.seed = config.seed + 5;

    NumaConfig clean_cfg = nc;
    clean_cfg.fabric.fault = LinkFaultConfig{};
    clean_cfg.protocol_fault = ProtocolFaultConfig{};

    NumaMachine machine(nc);
    NumaMachine clean(clean_cfg);

    Rng ops(config.seed + 6);
    double total = 0.0, clean_total = 0.0;
    Tick now = 0, clean_now = 0;
    for (std::uint64_t i = 0; i < config.protocol_accesses; ++i) {
        const auto cpu = static_cast<unsigned>(
            ops.uniformInt(config.protocol_nodes));
        const Addr addr = 0x100000 + ops.uniformInt(256) * 32;
        const bool store = ops.bernoulli(0.3);
        const Cycles lat = machine.access(cpu, addr, store, now);
        total += static_cast<double>(lat);
        now += lat;
        const Cycles clat = clean.access(cpu, addr, store, clean_now);
        clean_total += static_cast<double>(clat);
        clean_now += clat;
    }

    rep.protocol_accesses = config.protocol_accesses;
    rep.remote_transactions = machine.totalRemoteLoads() +
                              machine.totalInvalidations();
    rep.fabric_retransmissions =
        machine.fabric() ? machine.fabric()->totalRetransmissions()
                         : 0;
    rep.protocol_nacks = machine.protocolNacks();
    rep.protocol_retries = machine.protocolRetries();
    rep.protocol_failures = machine.protocolFailures();
    if (config.protocol_accesses > 0) {
        rep.mean_access_cycles =
            total / static_cast<double>(config.protocol_accesses);
        rep.clean_access_cycles =
            clean_total /
            static_cast<double>(config.protocol_accesses);
    }
}

} // namespace

ReliabilityReport
runFaultCampaign(const CampaignConfig &config)
{
    ReliabilityReport rep;
    runMemoryPhase(config, rep);
    runLinkPhase(config, rep);
    runProtocolPhase(config, rep);
    return rep;
}

} // namespace memwall
