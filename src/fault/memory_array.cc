#include "fault/memory_array.hh"

#include "common/logging.hh"

namespace memwall {

namespace {

/** splitmix64 finaliser — decorrelates the coordinate mix. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

EccMemoryArray::EccMemoryArray(MemoryArrayConfig config)
    : config_(config)
{
    MW_ASSERT(config_.rows > 0 && config_.blocks_per_row > 0,
              "memory array needs at least one block");
    const std::uint32_t total_rows =
        config_.rows + config_.spare_rows;
    blocks_.resize(static_cast<std::size_t>(total_rows) *
                   config_.blocks_per_row);
    remap_.resize(config_.rows);
    for (std::uint32_t r = 0; r < config_.rows; ++r) {
        remap_[r] = r;
        for (std::uint32_t b = 0; b < config_.blocks_per_row; ++b)
            rewriteBlock(r, b);
    }
}

DirectoryEccBlock &
EccMemoryArray::at(std::uint32_t row, std::uint32_t block)
{
    MW_ASSERT(row < config_.rows, "row out of range");
    MW_ASSERT(block < config_.blocks_per_row, "block out of range");
    return blocks_[static_cast<std::size_t>(remap_[row]) *
                       config_.blocks_per_row +
                   block];
}

const DirectoryEccBlock &
EccMemoryArray::at(std::uint32_t row, std::uint32_t block) const
{
    MW_ASSERT(row < config_.rows, "row out of range");
    MW_ASSERT(block < config_.blocks_per_row, "block out of range");
    return blocks_[static_cast<std::size_t>(remap_[row]) *
                       config_.blocks_per_row +
                   block];
}

std::uint64_t
EccMemoryArray::goldenWord(std::uint32_t row, std::uint32_t block,
                           unsigned word) const
{
    return mix64(config_.pattern_seed ^
                 (static_cast<std::uint64_t>(row) << 34) ^
                 (static_cast<std::uint64_t>(block) << 8) ^ word);
}

void
EccMemoryArray::rewriteBlock(std::uint32_t row, std::uint32_t block)
{
    std::array<std::uint64_t, 4> data;
    for (unsigned w = 0; w < 4; ++w)
        data[w] = goldenWord(row, block, w);
    at(row, block).store(data, 0);
}

void
EccMemoryArray::injectBit(std::uint32_t row, std::uint32_t block,
                          unsigned bit)
{
    MW_ASSERT(bit < bits_per_block, "bit index out of range");
    if (bit < data_bits_per_block)
        at(row, block).injectDataError(bit);
    else
        at(row, block).injectCheckError(bit - data_bits_per_block);
}

EccStatus
EccMemoryArray::demandRead(std::uint32_t row, std::uint32_t block,
                           std::array<std::uint64_t, 4> &out) const
{
    return at(row, block).load(out);
}

EccStatus
EccMemoryArray::scrubBlock(std::uint32_t row, std::uint32_t block)
{
    return at(row, block).scrub();
}

bool
EccMemoryArray::spareRow(std::uint32_t row)
{
    MW_ASSERT(row < config_.rows, "row out of range");
    if (next_spare_ >= config_.spare_rows)
        return false;
    remap_[row] = config_.rows + next_spare_++;
    // The spare row starts from reconstructed golden contents
    // (higher-level redundancy recovers the data; an uncorrectable
    // block would otherwise have been lost either way).
    for (std::uint32_t b = 0; b < config_.blocks_per_row; ++b)
        rewriteBlock(row, b);
    return true;
}

bool
EccMemoryArray::isSpared(std::uint32_t row) const
{
    MW_ASSERT(row < config_.rows, "row out of range");
    return remap_[row] != row;
}

std::uint64_t
EccMemoryArray::auditSilentCorruptions() const
{
    std::uint64_t silent = 0;
    for (std::uint32_t r = 0; r < config_.rows; ++r) {
        for (std::uint32_t b = 0; b < config_.blocks_per_row; ++b) {
            std::array<std::uint64_t, 4> data;
            const EccStatus status = demandRead(r, b, data);
            if (status == EccStatus::DetectedDouble)
                continue;  // flagged, not silent
            for (unsigned w = 0; w < 4; ++w) {
                if (data[w] != goldenWord(r, b, w)) {
                    ++silent;
                    break;
                }
            }
        }
    }
    return silent;
}

std::uint64_t
EccMemoryArray::auditLatentUncorrectable() const
{
    std::uint64_t latent = 0;
    for (std::uint32_t r = 0; r < config_.rows; ++r) {
        for (std::uint32_t b = 0; b < config_.blocks_per_row; ++b) {
            std::array<std::uint64_t, 4> data;
            if (demandRead(r, b, data) == EccStatus::DetectedDouble)
                ++latent;
        }
    }
    return latent;
}

} // namespace memwall
