/**
 * @file
 * Deterministic fault campaigns across the memory, link and protocol
 * layers.
 *
 * A campaign answers "does the simulated machine survive this error
 * rate?" with numbers instead of anecdotes. It runs three phases
 * from one seed:
 *
 *  1. Memory: a Poisson soft-error process peppers an ECC-protected
 *     DRAM slice while the refresh agent walks the array and the
 *     scrubber rides along; demand reads sample blocks between scrub
 *     passes. Reported: injected vs corrected vs uncorrectable,
 *     rows spared, machine checks, silent corruption (end audit),
 *     and the scrub CPI overhead.
 *
 *  2. Link: a stream of 40-byte frames crosses one reliable serial
 *     link at the configured bit-error/drop rates. Reported:
 *     retransmissions, CRC catches, timeouts, failures, and the mean
 *     delivery latency against a clean twin link.
 *
 *  3. Protocol: a seeded random sharing workload runs on a small
 *     CC-NUMA machine whose fabric links and protocol engines both
 *     carry the error processes. Reported: NACKs, retries, failures,
 *     and the mean access latency against a clean twin machine fed
 *     the identical operation sequence.
 *
 * Same seed ⇒ same fault schedule ⇒ identical report, and with every
 * rate at zero the campaign touches no RNG stream the seed run does
 * not, so it reproduces fault-free results bit-for-bit.
 */

#ifndef MEMWALL_FAULT_CAMPAIGN_HH
#define MEMWALL_FAULT_CAMPAIGN_HH

#include <cstdint>

#include "common/types.hh"
#include "fault/memory_array.hh"
#include "io/refresh.hh"
#include "mem/dram.hh"

namespace memwall {

/** Everything one campaign run needs. */
struct CampaignConfig
{
    std::uint64_t seed = 42;
    /** Simulated cycles of the memory phase. */
    Tick horizon = 1'000'000;
    /** Soft-error rate (bit flips per megacycle over the slice). */
    double faults_per_megacycle = 0.0;
    /** Serial-link bit error rate. */
    double link_bit_error_rate = 0.0;
    /** Serial-link whole-frame drop rate. */
    double link_drop_rate = 0.0;
    /** Protocol-engine NACK probability per transaction attempt. */
    double protocol_nack_rate = 0.0;
    /** Modelled DRAM slice geometry. */
    MemoryArrayConfig array = {};
    /** Refresh/scrub pacing. */
    RefreshConfig refresh = {};
    DramConfig dram = {};
    /** Cycles between demand-read samples in the memory phase. */
    Tick demand_read_interval = 500;
    /** Frames pushed through the link phase. */
    std::uint64_t link_messages = 5'000;
    /** Operations executed in the protocol phase. */
    std::uint64_t protocol_accesses = 20'000;
    /** Nodes of the protocol-phase machine. */
    unsigned protocol_nodes = 4;
};

/**
 * One campaign's complete outcome. Value-comparable so determinism
 * (same seed ⇒ same report) is a single EXPECT_EQ.
 */
struct ReliabilityReport
{
    // --- memory phase ---
    std::uint64_t faults_injected = 0;
    std::uint64_t faults_data = 0;
    std::uint64_t faults_check = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t rows_scrubbed = 0;
    std::uint64_t scrub_corrected = 0;
    std::uint64_t scrub_uncorrectable = 0;
    std::uint64_t demand_reads = 0;
    std::uint64_t demand_corrected = 0;
    std::uint64_t demand_uncorrectable = 0;
    std::uint64_t rows_spared = 0;
    std::uint64_t machine_checks = 0;
    std::uint64_t silent_corruptions = 0;
    std::uint64_t latent_uncorrectable = 0;
    double scrub_overhead = 0.0;

    // --- link phase ---
    std::uint64_t link_messages = 0;
    std::uint64_t link_retransmissions = 0;
    std::uint64_t link_crc_detected = 0;
    std::uint64_t link_timeouts = 0;
    std::uint64_t link_failures = 0;
    double link_mean_latency = 0.0;
    double link_clean_latency = 0.0;

    // --- protocol phase ---
    std::uint64_t protocol_accesses = 0;
    std::uint64_t remote_transactions = 0;
    std::uint64_t fabric_retransmissions = 0;
    std::uint64_t protocol_nacks = 0;
    std::uint64_t protocol_retries = 0;
    std::uint64_t protocol_failures = 0;
    double mean_access_cycles = 0.0;
    double clean_access_cycles = 0.0;

    bool operator==(const ReliabilityReport &) const = default;
};

/** Run the three-phase campaign described by @p config. */
ReliabilityReport runFaultCampaign(const CampaignConfig &config);

} // namespace memwall

#endif // MEMWALL_FAULT_CAMPAIGN_HH
