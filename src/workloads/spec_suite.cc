#include "workloads/spec_suite.hh"

#include <algorithm>

#include "common/logging.hh"

namespace memwall {

namespace {

// Shared layout conventions for all proxies.
constexpr Addr code_base = 0x00400000;
constexpr Addr data_base = 0x10000000;

// Column-conflict spacing: congruent modulo the 8 KB way size of
// the proposed data cache at 512-byte granularity, but NOT congruent
// at 32-byte granularity in any of the conventional comparison
// caches (see DESIGN.md). Streams spaced this way collide in the 16
// column-buffer sets while coexisting peacefully in conventional
// caches — the su2cor/swim/tomcatv mechanism of Section 5.3.
constexpr Addr conflict_step = 8 * KiB + 64;

CodeRoutine
loop(Addr offset, std::uint32_t length, double weight,
     double repeats, int call = -1)
{
    CodeRoutine r;
    r.base = code_base + offset;
    r.length = length;
    r.weight = weight;
    r.mean_repeats = repeats;
    r.call_target = call;
    return r;
}

DataStream
seq(Addr offset, std::uint64_t size, double weight,
    double store_frac = 0.3, std::int64_t stride = 8,
    std::uint32_t reuse = 1, int group = -1)
{
    DataStream s;
    s.kind = StreamKind::Strided;
    s.base = data_base + offset;
    s.size = size;
    s.stride = stride;
    s.weight = weight;
    s.store_frac = store_frac;
    s.access_size = 8;
    s.reuse = reuse;
    s.group = group;
    return s;
}

/**
 * A lockstep family of @p count arrays whose bases collide in the
 * proposed cache's column-buffer sets while mapping to distinct sets
 * of every conventional comparison cache: member i sits at
 * offset + i * (P + 64) where P is a power of two >= the array size
 * (so P mod every way size of interest is 0, and the +64i keeps the
 * members in the SAME 512-byte column set but DIFFERENT 32-byte
 * granules). @p weight is the total weight of the family.
 */
std::vector<DataStream>
conflictFamily(int group, unsigned count, Addr offset,
               std::uint64_t each_size, double weight,
               double store_frac = 0.3, std::uint32_t reuse = 3)
{
    const std::uint64_t gap =
        std::max<std::uint64_t>(ceilPowerOfTwo(each_size), 8 * KiB);
    std::vector<DataStream> out;
    for (unsigned i = 0; i < count; ++i)
        out.push_back(seq(offset + i * (gap + 64), each_size,
                          weight / count, store_frac, 8, reuse,
                          group));
    return out;
}

void
append(std::vector<DataStream> &dst, std::vector<DataStream> more)
{
    for (auto &s : more)
        dst.push_back(std::move(s));
}

DataStream
rnd(Addr offset, std::uint64_t size, double weight,
    double store_frac = 0.3, std::uint8_t access = 8)
{
    DataStream s;
    s.kind = StreamKind::Random;
    s.base = data_base + offset;
    s.size = size;
    s.weight = weight;
    s.store_frac = store_frac;
    s.access_size = access;
    return s;
}

DataStream
chase(Addr offset, std::uint64_t size, double weight,
      double store_frac = 0.1, std::uint8_t access = 16)
{
    DataStream s;
    s.kind = StreamKind::Chase;
    s.base = data_base + offset;
    s.size = size;
    s.weight = weight;
    s.store_frac = store_frac;
    s.access_size = access;
    return s;
}

/** Spread @p count routines of @p each bytes over @p span bytes,
 * weighting earlier routines more heavily (Zipf-ish, like the hot
 * functions of gcc/perl/vortex). */
std::vector<CodeRoutine>
routineFarm(std::uint32_t count, std::uint32_t each, Addr span,
            double repeats)
{
    std::vector<CodeRoutine> rs;
    for (std::uint32_t i = 0; i < count; ++i) {
        const Addr offset = span * i / count;
        const double weight = 10.0 / (1.0 + i);
        rs.push_back(loop(offset, each, weight, repeats));
    }
    return rs;
}

SpecWorkload
make(std::string name, std::string description, bool fp,
     double base_cpi, double mem_novc, double ratio_novc,
     double total_vc, double ratio_vc, double alpha,
     double load_frac, double store_frac, SyntheticSpec proxy)
{
    SpecWorkload w;
    w.name = std::move(name);
    w.description = std::move(description);
    w.floating_point = fp;
    w.base_cpi = base_cpi;
    w.paper_mem_cpi_novc = mem_novc;
    w.paper_ratio_novc = ratio_novc;
    w.paper_total_cpi_vc = total_vc;
    w.paper_ratio_vc = ratio_vc;
    w.alpha_ratio = alpha;
    w.load_frac = load_frac;
    w.store_frac = store_frac;
    w.proxy = std::move(proxy);
    w.proxy.name = w.name;
    w.proxy.refs_per_instr = load_frac + store_frac;
    return w;
}

std::vector<SpecWorkload>
buildSuite()
{
    std::vector<SpecWorkload> suite;

    // ---- SPEC'95 integer ------------------------------------------------

    {  // 099.go — small data structures, poor locality; the victim
       // cache only shaves ~25% off the miss rate (Section 5.4).
        SyntheticSpec p;
        p.seed = 9901;
        p.routines = {loop(0, 6 * KiB, 10, 4),
                      loop(8 * KiB, 8 * KiB, 6, 2),
                      loop(18 * KiB, 2 * KiB, 2, 3),
                      loop(22 * KiB, 1 * KiB, 2, 2),
                      loop(26 * KiB, 2 * KiB, 1, 2),
                      loop(30 * KiB, 1 * KiB, 1, 2),
                      loop(34 * KiB, 2 * KiB, 1, 2)};
        p.streams = {rnd(0, 24 * KiB, 3, 0.30, 8),
                     rnd(64 * KiB, 6 * KiB, 5, 0.30, 8),
                     seq(128 * KiB, 6 * KiB, 2, 0.40, 8, 2)};
        append(p.streams,
               conflictFamily(0, 3, 1 * MiB, 16 * KiB, 1.2, 0.30, 2));
        suite.push_back(make(
            "099.go",
            "Artificial intelligence; plays the game Go against "
            "itself",
            false, 1.01, 0.48, 6.0, 1.30, 6.9, 10.1, 0.22, 0.08,
            std::move(p)));
    }

    {  // 124.m88ksim — CPU simulator with a hot dispatch loop.
        SyntheticSpec p;
        p.seed = 12401;
        p.routines = {loop(0, 4 * KiB, 10, 20),
                      loop(6 * KiB, 2 * KiB, 2, 4),
                      loop(10 * KiB, 2 * KiB, 2, 4),
                      loop(14 * KiB, 2 * KiB, 1, 3)};
        p.streams = {seq(0, 10 * KiB, 5, 0.35, 8, 2),
                     rnd(1 * MiB, 96 * KiB, 0.15, 0.25, 8),
                     seq(2 * MiB, 64 * KiB, 2, 0.30, 8, 6)};
        suite.push_back(make(
            "124.m88ksim",
            "Simulates the Motorola 88100 processor running "
            "Dhrystone and a memory test program",
            false, 1.01, 0.12, 4.3, 1.10, 4.5, 7.1, 0.20, 0.08,
            std::move(p)));
    }

    {  // 126.gcc — large code footprint, many moderately hot
       // functions; I-cache behaviour dominated by capacity.
        SyntheticSpec p;
        p.seed = 12601;
        // Many short, branchy functions: little straight-line code,
        // so the 512-byte lines prefetch less and conflict more —
        // the paper finds the proposed cache only "within 27%" of a
        // 64 KB conventional cache here.
        p.routines = routineFarm(96, 1 * KiB, 192 * KiB, 1.6);
        p.streams = {rnd(0, 10 * KiB, 4, 0.30, 8),
                     rnd(1 * MiB, 1 * MiB, 0.12, 0.30, 8),
                     seq(4 * MiB, 256 * KiB, 2, 0.35, 8, 6),
                     chase(8 * MiB, 64 * KiB, 0.2)};
        suite.push_back(make(
            "126.gcc",
            "Compiler; cc1 from gcc-2.5.3 compiling pre-processed "
            "source into optimized SPARC assembly",
            false, 1.01, 0.14, 7.6, 1.13, 7.8, 6.7, 0.23, 0.09,
            std::move(p)));
    }

    {  // 129.compress — tiny code; 16 MB sequential stream plus a
       // randomly accessed hash table.
        SyntheticSpec p;
        p.seed = 12901;
        p.routines = {loop(0, 1536, 1, 500)};
        p.streams = {seq(0, 16 * MiB, 5, 0.35, 8, 2),
                     rnd(20 * MiB, 6 * KiB, 3, 0.25, 8),
                     rnd(21 * MiB, 256 * KiB, 0.25, 0.25, 8)};
        suite.push_back(make(
            "129.compress",
            "Compresses large text files (about 16MB) using "
            "adaptive Lempel-Ziv coding",
            false, 1.03, 0.17, 6.4, 1.16, 6.6, 6.8, 0.24, 0.10,
            std::move(p)));
    }

    {  // 130.li — lisp interpreter: cons-cell streams that collide
       // in the 16 column-buffer sets; the victim cache absorbs the
       // conflicts (2-5x miss reduction, Section 5.4).
        SyntheticSpec p;
        p.seed = 13001;
        p.routines = {loop(0, 3 * KiB, 8, 10),
                      loop(4 * KiB, 4 * KiB, 1, 2),
                      loop(10 * KiB, 2 * KiB, 2, 4),
                      loop(14 * KiB, 2 * KiB, 1, 3)};
        p.streams = {rnd(0, 6 * KiB, 4, 0.35, 8),
                     seq(1 * MiB, 32 * KiB, 1, 0.30, 16, 3)};
        append(p.streams,
               conflictFamily(0, 3, 2 * MiB, 32 * KiB, 0.35, 0.30, 2));
        suite.push_back(make(
            "130.li",
            "Lisp interpreter based on xlisp 1.6 running a number "
            "of lisp programs",
            false, 1.02, 0.06, 6.7, 1.07, 6.8, 6.8, 0.26, 0.12,
            std::move(p)));
    }

    {  // 132.ijpeg — compact transform loops over image rows.
        SyntheticSpec p;
        p.seed = 13201;
        p.routines = {loop(0, 4 * KiB, 5, 50),
                      loop(5 * KiB, 2 * KiB, 1, 10)};
        p.streams = {seq(0, 512 * KiB, 3, 0.30, 8, 3),
                     seq(1 * MiB, 512 * KiB, 3, 0.30, 8, 3),
                     seq(2 * MiB, 64 * KiB, 2, 0.40, 8, 4)};
        suite.push_back(make(
            "132.ijpeg",
            "Performs JPEG image compression using fixed point "
            "integer arithmetic",
            false, 1.00, 0.01, 5.8, 1.01, 5.8, 6.9, 0.20, 0.08,
            std::move(p)));
    }

    {  // 134.perl — interpreter with large, poorly localised code.
        SyntheticSpec p;
        p.seed = 13401;
        p.routines = routineFarm(100, 768, 140 * KiB, 1.3);
        p.streams = {chase(0, 64 * KiB, 0.35, 0.10, 16),
                     rnd(1 * MiB, 8 * KiB, 4, 0.30, 8),
                     rnd(2 * MiB, 768 * KiB, 0.12, 0.30, 8),
                     seq(4 * MiB, 64 * KiB, 2, 0.40, 8, 4)};
        suite.push_back(make(
            "134.perl",
            "Shell interpreter; performs text and numeric "
            "manipulations (anagrams and prime-number factoring)",
            false, 1.04, 0.21, 6.0, 1.21, 6.2, 8.1, 0.24, 0.11,
            std::move(p)));
    }

    {  // 147.vortex — object-oriented database transactions over a
       // 40 MB working set with a hot index.
        SyntheticSpec p;
        p.seed = 14701;
        p.routines = routineFarm(16, 4 * KiB, 80 * KiB, 3);
        p.streams = {rnd(0, 40 * MiB, 0.30, 0.35, 8),
                     rnd(41 * MiB, 8 * KiB, 4, 0.25, 8),
                     seq(42 * MiB, 512 * KiB, 2, 0.40, 8, 3),
                     chase(43 * MiB, 128 * KiB, 0.2)};
        suite.push_back(make(
            "147.vortex",
            "A single-user object-oriented database transaction "
            "benchmark (40MB for SPEC95)",
            false, 1.02, 0.27, 6.4, 1.17, 7.1, 7.4, 0.25, 0.12,
            std::move(p)));
    }

    // ---- SPEC'95 floating point -----------------------------------------

    {  // 101.tomcatv — mesh arrays whose bases collide in the
       // column-buffer sets; conflicts ~5x a conventional cache
       // until the victim cache absorbs them.
        SyntheticSpec p;
        p.seed = 10101;
        p.routines = {loop(0, 2560, 1, 200)};
        p.streams = {seq(0, 1792 * KiB, 3, 0.25, 8, 3),
                     seq(4 * MiB, 1792 * KiB, 1.5, 0.25, 8, 3),
                     rnd(8 * MiB, 6 * KiB, 3, 0.30, 8)};
        append(p.streams, conflictFamily(0, 3, 16 * MiB,
                                         1792 * KiB, 2.2, 0.25, 3));
        suite.push_back(make(
            "101.tomcatv",
            "Fluid dynamics/mesh generation; 2D boundary-fitted "
            "coordinate system around general geometric domains",
            false, 1.15, 0.50, 8.2, 1.23, 11.1, 14.0, 0.28, 0.10,
            std::move(p)));
        suite.back().floating_point = true;
    }

    {  // 102.swim — four shallow-water grids in lock-step; the worst
       // conflict case (mem CPI 0.97) fully healed by the VC.
        SyntheticSpec p;
        p.seed = 10201;
        p.routines = {loop(0, 2 * KiB, 1, 300)};
        p.streams = {seq(0, 3840 * KiB, 2, 0.30, 8, 3),
                     rnd(8 * MiB, 6 * KiB, 2, 0.30, 8)};
        append(p.streams, conflictFamily(0, 4, 16 * MiB,
                                         3840 * KiB, 4.0, 0.30, 3));
        suite.push_back(make(
            "102.swim",
            "Weather prediction; solves shallow water equations "
            "using finite difference approximations",
            true, 1.56, 0.97, 12.7, 1.65, 19.5, 18.3, 0.30, 0.12,
            std::move(p)));
    }

    {  // 103.su2cor — lattice arrays with the same column-set
       // collision pattern, milder than swim.
        SyntheticSpec p;
        p.seed = 10301;
        p.routines = {loop(0, 6 * KiB, 4, 40),
                      loop(8 * KiB, 4 * KiB, 1, 10)};
        p.streams = {seq(0, 2 * MiB, 2.5, 0.25, 8, 3),
                     rnd(8 * MiB, 6 * KiB, 3, 0.25, 8)};
        append(p.streams, conflictFamily(0, 3, 16 * MiB,
                                         2 * MiB, 1.2, 0.25, 3));
        suite.push_back(make(
            "103.su2cor",
            "Quantum physics; computes masses of elementary "
            "particles in Quark-Gluon theory",
            true, 1.41, 0.44, 3.2, 1.51, 3.9, 7.2, 0.30, 0.10,
            std::move(p)));
    }

    {  // 104.hydro2d — well-behaved sequential sweeps: the long
       // lines' prefetching effect wins outright.
        SyntheticSpec p;
        p.seed = 10401;
        p.routines = {loop(0, 5 * KiB, 3, 60),
                      loop(6 * KiB, 3 * KiB, 1, 20)};
        p.streams = {seq(0, 4 * MiB, 3, 0.30, 8, 6),
                     seq(5 * MiB, 4 * MiB, 3, 0.30, 8, 6),
                     seq(10 * MiB, 2 * MiB, 2, 0.30, 8, 6),
                     rnd(16 * MiB, 6 * KiB, 2, 0.30, 8)};
        suite.push_back(make(
            "104.hydro2d",
            "Astrophysics; solves hydrodynamical Navier Stokes "
            "equations to compute galactic jets",
            true, 1.74, 0.04, 4.2, 1.75, 4.2, 7.8, 0.28, 0.10,
            std::move(p)));
    }

    {  // 107.mgrid — 3D stencil sweeps; >10x better than a same-size
       // conventional cache thanks to the 512-byte lines.
        SyntheticSpec p;
        p.seed = 10701;
        p.routines = {loop(0, 3 * KiB, 1, 150)};
        p.streams = {seq(0, 8 * MiB, 3, 0.20, 8, 4),
                     seq(9 * MiB, 8 * MiB, 2, 0.20, 8, 4),
                     seq(18 * MiB, 4 * MiB, 1, 0.35, 8, 4)};
        suite.push_back(make(
            "107.mgrid",
            "Electromagnetism; computes a 3D potential field",
            true, 1.20, 0.01, 3.2, 1.21, 3.2, 9.1, 0.30, 0.08,
            std::move(p)));
    }

    {  // 110.applu — small resident working set; everything fits.
        SyntheticSpec p;
        p.seed = 11001;
        p.routines = {loop(0, 4 * KiB, 1, 100)};
        p.streams = {seq(0, 8 * KiB, 4, 0.35, 8, 4),
                     seq(16 * KiB, 24 * KiB, 2, 0.35, 8, 8)};
        suite.push_back(make(
            "110.applu",
            "Math/fluid dynamics; solves matrix system with "
            "pivoting",
            true, 1.53, 0.01, 3.9, 1.54, 4.0, 6.5, 0.28, 0.10,
            std::move(p)));
    }

    {  // 125.turb3d — the I-cache pathology: a hot loop whose
       // helper function aliases the loop's second column buffer
       // (distance = 8 KB + 464 B), thrashing two of the sixteen
       // 512-byte lines while no 32-byte-granule conventional cache
       // sees any conflict (Section 5.2).
        SyntheticSpec p;
        p.seed = 12501;
        p.routines = {
            // routine 0: the loop, offsets 0x100..0x22C (cols 0-1)
            loop(0x100, 300, 8, 50, /*call=*/1),
            // routine 1: the callee, placed one way-size plus 464
            // bytes later so it lands in column 1 only.
            loop(0x100 + 8 * KiB + 464, 256, 0.0001, 1),
            // background code
            loop(16 * KiB, 3 * KiB, 2, 10),
        };
        p.streams = {seq(0, 2 * MiB, 3, 0.30, 8, 4),
                     seq(3 * MiB, 2 * MiB, 2, 0.30, 8, 4)};
        suite.push_back(make(
            "125.turb3d",
            "Simulates turbulence in a cubic area",
            true, 1.16, 0.05, 4.3, 1.20, 4.3, 10.8, 0.26, 0.10,
            std::move(p)));
    }

    {  // 141.apsi — moderate arrays, modest miss rates.
        SyntheticSpec p;
        p.seed = 14101;
        p.routines = {loop(0, 7 * KiB, 4, 30),
                      loop(8 * KiB, 4 * KiB, 1, 8),
                      loop(14 * KiB, 2 * KiB, 1, 6)};
        p.streams = {seq(0, 1 * MiB, 2, 0.30, 8, 4),
                     seq(2 * MiB, 1 * MiB, 1.5, 0.30, 8, 4),
                     rnd(4 * MiB, 8 * KiB, 3, 0.25, 8),
                     rnd(5 * MiB, 192 * KiB, 0.12, 0.25, 8)};
        suite.push_back(make(
            "141.apsi",
            "Weather; calculates statistics on temperature and "
            "pollutants in a grid",
            true, 1.70, 0.08, 5.0, 1.76, 5.1, 14.5, 0.28, 0.10,
            std::move(p)));
    }

    {  // 145.fpppp — enormous straight-line loop body: the 512-byte
       // lines cut the miss rate by an order of magnitude
       // (paper: 11.2x vs the same-size conventional cache).
        SyntheticSpec p;
        p.seed = 14501;
        p.routines = {loop(0, 20 * KiB, 10, 400),
                      loop(24 * KiB, 2 * KiB, 1, 10)};
        p.streams = {seq(0, 96 * KiB, 4, 0.30, 8, 8),
                     rnd(1 * MiB, 6 * KiB, 2, 0.35, 8)};
        suite.push_back(make(
            "145.fpppp",
            "Chemistry; performs multi-electron derivatives",
            true, 1.34, 0.08, 7.5, 1.42, 7.5, 21.3, 0.30, 0.10,
            std::move(p)));
    }

    {  // 146.wave5 — particle/field arrays; conflicts healed 2-5x
       // by the victim cache.
        SyntheticSpec p;
        p.seed = 14601;
        p.routines = {loop(0, 5 * KiB, 3, 40),
                      loop(6 * KiB, 3 * KiB, 1, 10)};
        p.streams = {seq(0, 3 * MiB, 2.5, 0.25, 8, 3),
                     rnd(8 * MiB, 6 * KiB, 2.5, 0.20, 8)};
        append(p.streams, conflictFamily(0, 3, 16 * MiB,
                                         3 * MiB, 0.9, 0.25, 3));
        suite.push_back(make(
            "146.wave5",
            "Electromagnetics; solves Maxwell's equations on a "
            "cartesian mesh",
            true, 1.31, 0.25, 7.6, 1.41, 8.4, 16.8, 0.30, 0.10,
            std::move(p)));
    }

    // ---- Synopsys (the Table 1 workload) ---------------------------------

    {  // Logic synthesis: netlist graph traversal over a >50 MB
       // working set — the workload class the paper's introduction
       // argues current machines mishandle.
        SyntheticSpec p;
        p.seed = 40001;
        p.routines = routineFarm(20, 4 * KiB, 96 * KiB, 4);
        p.streams = {chase(0, 56 * MiB, 2.4, 0.15, 32),
                     rnd(56 * MiB, 700 * KiB, 1.8, 0.30, 8),
                     rnd(64 * MiB, 8 * KiB, 2.2, 0.25, 8),
                     seq(66 * MiB, 1 * MiB, 1.6, 0.40, 8, 2)};
        SpecWorkload w = make(
            "synopsys",
            "Chip verification; compares two logic circuits and "
            "tests them for logical identity (>50MB working set)",
            false, 1.05, 0.0, 0.0, 0.0, 0.0, 0.0, 0.25, 0.10,
            std::move(p));
        w.in_spec_tables = false;
        suite.push_back(std::move(w));
    }

    return suite;
}

} // namespace

const std::vector<SpecWorkload> &
specSuite()
{
    static const std::vector<SpecWorkload> suite = buildSuite();
    return suite;
}

const SpecWorkload &
findWorkload(const std::string &name)
{
    for (const auto &w : specSuite())
        if (w.name == name)
            return w;
    MW_FATAL("unknown workload '", name, "'");
}

std::vector<std::string>
integerNames()
{
    std::vector<std::string> names;
    for (const auto &w : specSuite())
        if (!w.floating_point && w.in_spec_tables)
            names.push_back(w.name);
    return names;
}

std::vector<std::string>
floatNames()
{
    std::vector<std::string> names;
    for (const auto &w : specSuite())
        if (w.floating_point && w.in_spec_tables)
            names.push_back(w.name);
    return names;
}

} // namespace memwall
