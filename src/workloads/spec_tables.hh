/**
 * @file
 * Shared runners and JSON renderers for the Table 1/3/4 experiments.
 *
 * The missrate_figures pattern applied to the SPEC tables: the
 * one-shot bench binaries (table1_ss5_vs_ss10, table3_spec_estimates,
 * table4_spec_estimates_vc) and the resident experiment service
 * (mw-server) both resolve parameters, execute points and render
 * the --format=json document through THESE entry points, so a served
 * response is byte-identical to the one-shot output by construction.
 *
 * Each table is decomposed into independent points (six machine runs
 * for Table 1, one SpecEstimate per in_spec_tables workload for
 * Tables 3/4) so the server's batching layer can deduplicate and
 * schedule them individually.
 */

#ifndef MEMWALL_WORKLOADS_SPEC_TABLES_HH
#define MEMWALL_WORKLOADS_SPEC_TABLES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/spec_eval.hh"
#include "workloads/spec_suite.hh"

namespace memwall {

// --------------------------------------------------------------------
// Table 1: SS-5 vs SS-10/61

/** Timing summary of one (workload, machine) hierarchy run. */
struct MachineRun
{
    double cpi = 0.0;
    double seconds_per_ginstr = 0.0;
};

/** The measured reference window: explicit @p refs wins, otherwise
 *  quick/full defaults — the same resolution the binary applies. */
std::uint64_t resolveTable1Refs(bool quick, std::uint64_t refs);

/**
 * The six independent points of Table 1, in canonical order:
 * synopsys, 130.li, 132.ijpeg, each on SS-5 then SS-10/61 (the
 * SPEC'92-like composite runs at refs/2, as in the paper's rating).
 */
constexpr std::size_t table1_points = 6;

/** Workload name of point @p index ("synopsys", "130.li", ...). */
const char *table1PointWorkload(std::size_t index);
/** Machine name of point @p index ("SS-5" / "SS-10/61"). */
const char *table1PointMachine(std::size_t index);
/** Measured references of point @p index (refs or refs/2). */
std::uint64_t table1PointRefs(std::size_t index, std::uint64_t refs);

/** Execute point @p index of the table at resolved @p refs. */
MachineRun runTable1Point(std::size_t index, std::uint64_t refs);

/** Run all six points serially, in canonical order. */
std::vector<MachineRun> runTable1(std::uint64_t refs);

/**
 * Render the six point results (canonical order) as the
 * --format=json document, trailing newline included.
 */
std::string table1Json(const std::vector<MachineRun> &points);

// --------------------------------------------------------------------
// Tables 3/4: SPEC'95 estimates without/with the victim cache

/**
 * Resolve the estimation knobs exactly like the bench binaries:
 * quick shrinks the miss-rate window and the GSPN run; an explicit
 * refs overrides the window (warm-up = refs/4). @p seed is the sweep
 * base seed, NOT the per-point seed — see specTablePointSeed().
 */
SpecEvalParams resolveSpecEvalParams(bool quick, std::uint64_t refs,
                                     std::uint64_t seed);

/** The rows of Tables 3/4: specSuite() filtered to in_spec_tables,
 *  in suite order. */
std::vector<const SpecWorkload *> specTableWorkloads();

/**
 * The seed of point @p index under sweep base seed @p seed — the
 * same splitmix64 derivation ParallelSweep hands each point, so a
 * server-side computation reproduces the one-shot binary's
 * Monte-Carlo draws exactly.
 */
std::uint64_t specTablePointSeed(std::uint64_t seed,
                                 std::size_t index);

/** Execute one row: @p params must already carry the point seed. */
SpecEstimate runSpecTablePoint(const SpecWorkload &workload,
                               bool victim_cache,
                               const SpecEvalParams &params);

/** Run every row serially, in specTableWorkloads() order. */
std::vector<SpecEstimate> runSpecTable(bool victim_cache,
                                       const SpecEvalParams &params);

/** "table3_spec_estimates" / "table4_spec_estimates_vc". */
const char *specTableName(bool victim_cache);

/**
 * Render the rows (specTableWorkloads() order) as the table's
 * --format=json document, trailing newline included.
 */
std::string specTableJson(bool victim_cache,
                          const std::vector<SpecEstimate> &rows);

} // namespace memwall

#endif // MEMWALL_WORKLOADS_SPEC_TABLES_HH
