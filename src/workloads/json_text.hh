/**
 * @file
 * Tiny helpers for the hand-rolled JSON renderers in src/workloads.
 *
 * The figure/table documents are built with printf-style formatting
 * (the formats ARE the byte contract between the one-shot binaries
 * and mw-server), so the helpers here exist for two jobs only:
 * appending formatted text to a growing document, and formatting a
 * double so that a non-finite value becomes the JSON literal `null`
 * instead of the bare `nan`/`inf` printf would produce — which the
 * strict parser on the other end rightly rejects.
 */

#ifndef MEMWALL_WORKLOADS_JSON_TEXT_HH
#define MEMWALL_WORKLOADS_JSON_TEXT_HH

#include <cmath>
#include <cstdio>
#include <string>

#include "common/logging.hh"

namespace memwall {
namespace jsontext {

/** printf into a std::string (the figures were written with printf;
 *  keeping the exact format strings keeps the exact bytes). */
template <typename... Args>
void
appendf(std::string &out, const char *fmt, Args... args)
{
    char buf[512];
    const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
    MW_ASSERT(n >= 0 && n < static_cast<int>(sizeof(buf)),
              "figure JSON row overflows the format buffer");
    out.append(buf, static_cast<std::size_t>(n));
}

/**
 * A double as a JSON number token: %.9g for finite values, `null`
 * for NaN/inf (e.g. a confidence half-width from a single-unit
 * sample, where the variance is undefined). Splice the returned
 * token with %s.
 */
inline std::string
num(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    const int n = std::snprintf(buf, sizeof(buf), "%.9g", v);
    MW_ASSERT(n > 0 && n < static_cast<int>(sizeof(buf)),
              "JSON number overflows the format buffer");
    return std::string(buf, static_cast<std::size_t>(n));
}

} // namespace jsontext
} // namespace memwall

#endif // MEMWALL_WORKLOADS_JSON_TEXT_HH
