/**
 * @file
 * Miss-ratio measurement harness (the Shade-replacement loop).
 *
 * Runs a workload proxy's reference stream once and feeds every
 * cache configuration under study simultaneously, reproducing the
 * methodology of Sections 5.2/5.3: "Cache hit and miss rates were
 * measured for instruction and data caches, both for the proposed
 * architecture and for comparable conventional cache architectures."
 */

#ifndef MEMWALL_WORKLOADS_MISSRATE_HH
#define MEMWALL_WORKLOADS_MISSRATE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "checkpoint/store.hh"
#include "common/stats.hh"
#include "mem/cache.hh"
#include "mem/column_cache.hh"
#include "mem/hierarchy.hh"
#include "sampling/confidence.hh"
#include "sampling/plan.hh"
#include "workloads/spec_suite.hh"

namespace memwall {

/** Result for one cache configuration. */
struct CacheMissResult
{
    /** Display label, e.g. "proposed" or "conv-16K-dm". */
    std::string label;
    /** Hit/miss counters after the measured window. */
    AccessStats stats;

    double missRate() const { return stats.missRate(); }
};

/** Figure 7 / Figure 8 measurements for one workload. */
struct WorkloadMissRates
{
    std::string workload;
    /** Instruction caches: proposed first, then conventional. */
    std::vector<CacheMissResult> icaches;
    /** Data caches: proposed, proposed+victim, then conventional. */
    std::vector<CacheMissResult> dcaches;

    const CacheMissResult &icache(const std::string &label) const;
    const CacheMissResult &dcache(const std::string &label) const;
};

/** Measurement window sizes. */
struct MissRateParams
{
    /** References to generate after warm-up. */
    std::uint64_t measured_refs = 4'000'000;
    /** References used to warm the caches (stats discarded). */
    std::uint64_t warmup_refs = 1'000'000;
    /**
     * Scatter the generator to a stationary-state draw before
     * warming (SyntheticWorkload::scatterState()), so the measured
     * window estimates the steady-state miss rate instead of the
     * cold start-of-stream window. The stratified sampling scheme
     * targets the same population; the crosscheck bench gates it
     * against an exhaustive run with this flag set.
     */
    bool stationary_start = false;
};

/** Labels used for the standard comparison set. */
namespace cachelabels {
inline constexpr const char *proposed = "proposed";
inline constexpr const char *proposed_vc = "proposed+vc";
inline constexpr const char *conv8 = "conv-8K-dm";
inline constexpr const char *conv16 = "conv-16K-dm";
inline constexpr const char *conv16w2 = "conv-16K-2w";
inline constexpr const char *conv32 = "conv-32K-dm";
inline constexpr const char *conv64 = "conv-64K-dm";
inline constexpr const char *conv256w2 = "conv-256K-2w";
} // namespace cachelabels

/**
 * Measure the full Figure 7 + Figure 8 comparison set for
 * @p workload: proposed column-buffer caches (with and without the
 * victim cache) against conventional direct-mapped/2-way caches with
 * 32-byte lines.
 */
WorkloadMissRates measureMissRates(const SpecWorkload &workload,
                                   const MissRateParams &params = {});

/** Sampled estimate of one cache configuration's miss rate. */
struct SampledCacheMissRate
{
    std::string label;
    /** One miss-rate sample per detail unit that touched the cache. */
    SampleStat unit_rates;
    /** Interval over the unit rates at the plan's level. */
    ConfidenceInterval ci;

    double mean() const { return unit_rates.mean(); }
};

/** Sampled Figure 7 / Figure 8 measurements for one workload. */
struct SampledWorkloadMissRates
{
    std::string workload;
    /** SamplingPlan::describe() of the plan that produced this. */
    std::string plan;
    std::vector<SampledCacheMissRate> icaches;
    std::vector<SampledCacheMissRate> dcaches;

    /** Detail units completed (== max sample count per cache). */
    std::uint64_t units = 0;
    /**
     * References each mode accounts for. A unit whose post-warm
     * state was restored from a checkpoint still counts its
     * warmup_refs here (the state transitions were applied, just
     * not re-simulated), so accelerated and cold runs report
     * identical figures.
     */
    std::uint64_t detail_refs = 0;
    std::uint64_t warm_refs = 0;
    std::uint64_t ff_refs = 0;

    // Checkpoint acceleration bookkeeping (zero without a store).
    /** Units whose warm phase was replaced by a checkpoint load. */
    std::uint64_t ckpt_restored_units = 0;
    /** Units that populated a missing checkpoint after warming. */
    std::uint64_t ckpt_saved_units = 0;
    /** Units that fell back to functional warming because the
     * checkpoint was missing, corrupt or mismatched. */
    std::uint64_t ckpt_degraded_units = 0;

    const SampledCacheMissRate &icache(const std::string &label) const;
    const SampledCacheMissRate &dcache(const std::string &label) const;
};

/**
 * Sampled version of measureMissRates(): runs the same comparison set
 * under @p plan instead of replaying the full stream in detail.
 *
 * Systematic plans walk the single reference stream of length
 * warmup_refs + measured_refs phase by phase: fast-forward advances
 * the generator only, warm phases update cache state without
 * statistics, and each detail unit contributes one miss-rate sample
 * per cache. Stratified plans draw each unit from an independent
 * substream (seed = pointSeed(pointSeed(plan.seed, proxy seed),
 * unit)) against shared, cumulatively warmed caches — the natural fit
 * for the stationary synthetic proxies, and far cheaper because the
 * fast-forward gap is never generated at all.
 *
 * Adaptive plans (target_ci > 0) keep adding units until the
 * headline metrics — the proposed icache and proposed+victim dcache —
 * reach the target relative half-width (with a 1% miss-rate floor so
 * near-zero rates terminate), bounded by max_units and, for
 * systematic plans, by the stream length.
 */
SampledWorkloadMissRates
measureMissRatesSampled(const SpecWorkload &workload,
                        const MissRateParams &params,
                        const SamplingPlan &plan);

/**
 * Checkpoint-accelerated variant. For stratified plans with a
 * non-null @p store, each unit first tries to load its per-unit
 * checkpoint ("<workload>-u<unit>") containing the post-warm cache
 * and generator state; a hit replaces the warm phase outright, a
 * miss (or any rejected/corrupt file) degrades to functional warming
 * and then populates the store for the next run. Because restore
 * applies the exact state a cold run would have reached, accelerated
 * and cold runs produce byte-identical samples; only the ckpt_*
 * bookkeeping fields differ. Systematic plans ignore the store (the
 * single warming stream cannot be skipped piecemeal), as does a null
 * @p store — both fall through to the plain sampled measurement.
 */
SampledWorkloadMissRates
measureMissRatesSampled(const SpecWorkload &workload,
                        const MissRateParams &params,
                        const SamplingPlan &plan,
                        ckpt::CheckpointStore *store);

/**
 * Result serialization for the resumable-sweep journal
 * (ParallelSweep memo hooks + ckpt::SweepJournal): encode one sweep
 * point's result so an interrupted figure run can be resumed without
 * recomputing committed points. decode returns false (without
 * touching @p r beyond scratch) when the payload does not parse.
 */
void encodeResult(ckpt::Encoder &e, const WorkloadMissRates &r);
bool decodeResult(ckpt::Decoder &d, WorkloadMissRates &r);
void encodeResult(ckpt::Encoder &e,
                  const SampledWorkloadMissRates &r);
bool decodeResult(ckpt::Decoder &d, SampledWorkloadMissRates &r);

/** Hit ratios of a two-level conventional hierarchy (Section 5.5). */
struct HierarchyRates
{
    /** L1 instruction hit probability. */
    double icache_hit = 1.0;
    /** P(L2 hit | L1 instruction miss). */
    double icache_l2_hit = 1.0;
    /** L1 hit probability for loads. */
    double load_hit = 1.0;
    double load_l2_hit = 1.0;
    /** L1 hit probability for stores. */
    double store_hit = 1.0;
    double store_l2_hit = 1.0;
};

/**
 * Measure per-level hit ratios of @p config under @p workload —
 * the rates "dialed directly into" the Figure 10/11 GSPN model.
 */
HierarchyRates measureHierarchyRates(const SpecWorkload &workload,
                                     const HierarchyConfig &config,
                                     const MissRateParams &params = {});

/**
 * Hit ratios of the proposed integrated device for @p workload,
 * expressed in the same shape (no L2 level).
 */
HierarchyRates measureIntegratedRates(const SpecWorkload &workload,
                                      bool victim_cache,
                                      const MissRateParams &params = {});

} // namespace memwall

#endif // MEMWALL_WORKLOADS_MISSRATE_HH
